#ifndef FEATSEP_BENCH_BENCH_UTIL_H_
#define FEATSEP_BENCH_BENCH_UTIL_H_

// Shared helpers for the featsep benchmark harness. Each bench binary
// regenerates one experiment from DESIGN.md §2 (the paper's Table 1 cells
// and quantitative theorems); absolute times are machine-specific, the
// *shape* (scaling exponents, who wins, where crossovers fall) is the
// reproduced result.
//
// JSON output convention: every bench binary accepts the standard google
// benchmark flags, and committed snapshots are produced with
//
//   ./build/bench_<name> --benchmark_out=<file>.json \
//                        --benchmark_out_format=json
//
// Checked-in snapshots live at the repo root as BENCH_<topic>.json (e.g.
// BENCH_homomorphism.json merges bench_evaluation + bench_table1_cq_sep).
// Regenerate them on a Release build (cmake --preset release) so numbers
// are comparable across commits from the same machine; see EXPERIMENTS.md
// for the recorded before/after history.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/training_database.h"
#include "workload/generators.h"

namespace featsep::bench {

/// xorshift64* PRNG (deterministic across platforms).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9e3779b9 : seed) {}
  std::uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  std::size_t Below(std::size_t n) { return Next() % n; }

 private:
  std::uint64_t state_;
};

/// Random sparse digraph database over the Eta/E schema (no entities).
inline std::shared_ptr<Database> RandomGraphDatabase(std::size_t nodes,
                                                     std::size_t edges,
                                                     std::uint64_t seed) {
  auto db = std::make_shared<Database>(GraphWorkloadSchema());
  RelationId e = db->schema().FindRelation("E");
  Rng rng(seed);
  std::vector<Value> vs;
  vs.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    vs.push_back(db->Intern("v" + std::to_string(i)));
  }
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < edges && attempts < edges * 20) {
    ++attempts;
    Value a = vs[rng.Below(nodes)];
    Value b = vs[rng.Below(nodes)];
    if (a == b) continue;
    if (db->AddFact(e, {a, b})) ++added;
  }
  return db;
}

}  // namespace featsep::bench

#endif  // FEATSEP_BENCH_BENCH_UTIL_H_
