// Microbenchmarks for the SvoBitset word kernels (DESIGN.md §11): the
// homomorphism engine's forward checking is dominated by AND / popcount /
// scan passes over domain bitsets, so these isolate each primitive — and
// the fused kernels that replaced two-pass sequences — at sizes on both
// sides of the inline↔heap boundary (kInlineBits = 256). Compare a
// FEATSEP_NATIVE=ON build against the portable one to see what
// -march=native vectorization buys on this machine.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "util/svo_bitset.h"

namespace featsep::bench {
namespace {

// Benchmarked sizes: inline (64, 256) and heap (1024, 8192) universes.

SvoBitset Pattern(std::size_t size, std::uint64_t seed) {
  SvoBitset bits(size);
  for (std::size_t i = 0; i < size; ++i) {
    std::uint64_t h = (seed + i) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    if (h & 1) bits.set(i);
  }
  return bits;
}

void BM_BitsetAnd(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  SvoBitset a = Pattern(size, 1);
  SvoBitset b = Pattern(size, 2);
  for (auto _ : state) {
    SvoBitset c = a;
    c.intersect_with(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BitsetAnd)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_BitsetPopcount(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  SvoBitset a = Pattern(size, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BitsetPopcount)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

// The two-pass shape the kernel used before the fused ops: copy + AND, then
// a separate popcount. Baseline for BM_BitsetAndCount / IntersectWithCount.
void BM_BitsetAndThenCount(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  SvoBitset a = Pattern(size, 4);
  SvoBitset b = Pattern(size, 5);
  for (auto _ : state) {
    SvoBitset c = a;
    c.intersect_with(b);
    benchmark::DoNotOptimize(c.count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BitsetAndThenCount)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

// Fused read-only probe: popcount(a & b), no copy, no write — the
// PruneDomain "would this mask shrink the domain?" fast path.
void BM_BitsetAndCount(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  SvoBitset a = Pattern(size, 4);
  SvoBitset b = Pattern(size, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.and_count(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BitsetAndCount)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

// Fused in-place AND + popcount — the general path's candidate-set
// narrowing with its early-exit count.
void BM_BitsetIntersectWithCount(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  SvoBitset a = Pattern(size, 6);
  SvoBitset b = Pattern(size, 7);
  for (auto _ : state) {
    SvoBitset c = a;
    benchmark::DoNotOptimize(c.intersect_with_count(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BitsetIntersectWithCount)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_BitsetIntersects(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  // Disjoint halves: the worst case (must scan everything to say no).
  SvoBitset a(size);
  SvoBitset b(size);
  for (std::size_t i = 0; i < size / 2; ++i) a.set(i);
  for (std::size_t i = size / 2; i < size; ++i) b.set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersects(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BitsetIntersects)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_BitsetFindNextSweep(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  SvoBitset a = Pattern(size, 8);
  for (auto _ : state) {
    std::size_t sum = 0;
    for (std::size_t bit = a.find_first(); bit != SvoBitset::kNoBit;
         bit = a.find_next(bit + 1)) {
      sum += bit;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BitsetFindNextSweep)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

void BM_BitsetForEach(benchmark::State& state) {
  std::size_t size = static_cast<std::size_t>(state.range(0));
  SvoBitset a = Pattern(size, 9);
  for (auto _ : state) {
    std::size_t sum = 0;
    a.for_each([&](std::size_t bit) { sum += bit; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BitsetForEach)->Arg(64)->Arg(256)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace featsep::bench
