// Experiment E8 — Proposition 7.2's source of hardness: exact linear
// separability is polynomial (LP, [19, 21]) while minimum-error separation
// is NP-complete ([17]). Series contrast the exact-LP decision with the
// branch-and-bound min-error search as the number of examples grows; on
// inseparable data the min-error search degrades while the LP stays flat.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "linsep/min_error.h"
#include "linsep/perceptron.h"
#include "linsep/separability_lp.h"

namespace featsep {
namespace {

TrainingCollection RandomCollection(std::size_t examples, std::size_t dims,
                                    std::uint64_t seed) {
  bench::Rng rng(seed);
  TrainingCollection collection;
  for (std::size_t i = 0; i < examples; ++i) {
    FeatureVector v;
    for (std::size_t j = 0; j < dims; ++j) {
      v.push_back(rng.Next() % 2 == 0 ? 1 : -1);
    }
    collection.emplace_back(std::move(v),
                            rng.Next() % 2 == 0 ? kPositive : kNegative);
  }
  return collection;
}

void BM_LpSeparability(benchmark::State& state) {
  auto collection =
      RandomCollection(static_cast<std::size_t>(state.range(0)), 4, 71);
  bool separable = false;
  for (auto _ : state) {
    separable = IsLinearlySeparable(collection);
    benchmark::DoNotOptimize(separable);
  }
  state.counters["separable"] = separable ? 1 : 0;
}
BENCHMARK(BM_LpSeparability)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MinErrorExact(benchmark::State& state) {
  auto collection =
      RandomCollection(static_cast<std::size_t>(state.range(0)), 4, 71);
  std::size_t errors = 0;
  for (auto _ : state) {
    MinErrorResult result = MinimizeErrors(collection);
    errors = result.errors;
    benchmark::DoNotOptimize(result.errors);
  }
  state.counters["min_errors"] = static_cast<double>(errors);
}
BENCHMARK(BM_MinErrorExact)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_PocketPerceptronHeuristic(benchmark::State& state) {
  auto collection =
      RandomCollection(static_cast<std::size_t>(state.range(0)), 4, 71);
  std::size_t errors = 0;
  for (auto _ : state) {
    auto [classifier, pocket_errors] = PocketPerceptron(collection);
    errors = pocket_errors;
    benchmark::DoNotOptimize(classifier.arity());
  }
  state.counters["pocket_errors"] = static_cast<double>(errors);
}
BENCHMARK(BM_PocketPerceptronHeuristic)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace featsep
