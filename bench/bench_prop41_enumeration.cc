// Experiment E6 — Proposition 4.1's bound: the number of CQ[m] feature
// queries is r^m · 2^{p(k)} for r relation symbols of maximal arity k —
// independent of the data. Series sweep r (relations/*), m (atoms/*), and
// k (arity/*) and report the realized counts against the bound's shape.

#include <benchmark/benchmark.h>

#include <memory>

#include "cq/enumeration.h"

namespace featsep {
namespace {

std::shared_ptr<const Schema> MakeSchema(std::size_t relations,
                                         std::size_t arity) {
  Schema schema;
  RelationId eta = schema.AddRelation("Eta", 1);
  schema.set_entity_relation(eta);
  for (std::size_t i = 0; i < relations; ++i) {
    schema.AddRelation("R" + std::to_string(i), arity);
  }
  return std::make_shared<const Schema>(std::move(schema));
}

void BM_EnumerationVsRelations(benchmark::State& state) {
  auto schema = MakeSchema(static_cast<std::size_t>(state.range(0)), 2);
  std::size_t count = 0;
  for (auto _ : state) {
    count = CountFeatureQueries(schema, 2);
    benchmark::DoNotOptimize(count);
  }
  state.counters["features"] = static_cast<double>(count);
}
BENCHMARK(BM_EnumerationVsRelations)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_EnumerationVsAtoms(benchmark::State& state) {
  auto schema = MakeSchema(2, 2);
  std::size_t m = static_cast<std::size_t>(state.range(0));
  std::size_t count = 0;
  for (auto _ : state) {
    count = CountFeatureQueries(schema, m);
    benchmark::DoNotOptimize(count);
  }
  state.counters["features"] = static_cast<double>(count);
}
BENCHMARK(BM_EnumerationVsAtoms)->Arg(1)->Arg(2)->Arg(3);

void BM_EnumerationVsArity(benchmark::State& state) {
  auto schema = MakeSchema(1, static_cast<std::size_t>(state.range(0)));
  std::size_t count = 0;
  for (auto _ : state) {
    count = CountFeatureQueries(schema, 2);
    benchmark::DoNotOptimize(count);
  }
  state.counters["features"] = static_cast<double>(count);
}
BENCHMARK(BM_EnumerationVsArity)->Arg(1)->Arg(2)->Arg(3);

void BM_EnumerationVariableOccurrenceRestriction(benchmark::State& state) {
  // Prop 4.3's CQ[m,p]: restricting variable occurrences shrinks the space.
  auto schema = MakeSchema(2, 2);
  EnumerationOptions options;
  options.max_variable_occurrences =
      static_cast<std::size_t>(state.range(0));
  std::size_t count = 0;
  for (auto _ : state) {
    count = CountFeatureQueries(schema, 3, options);
    benchmark::DoNotOptimize(count);
  }
  state.counters["features"] = static_cast<double>(count);
}
BENCHMARK(BM_EnumerationVariableOccurrenceRestriction)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace featsep
