// Shared main for every featsep bench binary (replacing google benchmark's
// stock benchmark_main), so the committed JSON snapshots record the context
// needed to judge whether the numbers are trustworthy:
//
//   - featsep_build_type: "release" or "debug" from the *library's* NDEBUG,
//     not the generic "library_build_type" field, which reports how google
//     benchmark itself was compiled and has misleadingly read "debug" in
//     snapshots taken from perfectly fine Release builds of featsep.
//   - featsep_native: whether the build targets the host CPU
//     (-march=native via -DFEATSEP_NATIVE=ON).
//   - load_avg_at_start: /proc/loadavg at launch. Committed snapshots are
//     only comparable when taken on a quiet machine, so a high 1-minute
//     load additionally prints a loud stderr warning instead of silently
//     producing garbage numbers.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

namespace {

std::string ReadLoadAvg() {
  std::FILE* f = std::fopen("/proc/loadavg", "r");
  if (f == nullptr) return "unavailable";
  char buffer[128];
  std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  buffer[n] = '\0';
  std::string line(buffer);
  std::size_t end = line.find_last_not_of(" \n");
  return end == std::string::npos ? line : line.substr(0, end + 1);
}

void WarnIfLoaded(const std::string& loadavg) {
  double one_minute = 0.0;
  if (std::sscanf(loadavg.c_str(), "%lf", &one_minute) != 1) return;
  if (one_minute > 1.0) {
    std::fprintf(stderr,
                 "WARNING: 1-minute load average is %.2f - this machine is "
                 "busy, and the measured times will be noisy. Do not commit "
                 "this run as a BENCH_*.json snapshot.\n",
                 one_minute);
  }
}

}  // namespace

int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("featsep_build_type", "release");
#else
  benchmark::AddCustomContext("featsep_build_type", "debug");
  std::fprintf(stderr,
               "WARNING: featsep was compiled without NDEBUG (a debug "
               "build). Bench numbers from this binary are meaningless; "
               "rebuild with --preset release.\n");
#endif
#ifdef FEATSEP_NATIVE
  benchmark::AddCustomContext("featsep_native", "true");
#else
  benchmark::AddCustomContext("featsep_native", "false");
#endif
  std::string loadavg = ReadLoadAvg();
  benchmark::AddCustomContext("load_avg_at_start", loadavg);
  WarnIfLoaded(loadavg);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
