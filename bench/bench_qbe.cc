// Experiment E9 — Theorem 6.1: CQ-QBE (coNEXPTIME) vs GHW(k)-QBE
// (EXPTIME) vs CQ[m]-QBE (NP in the schema). Measured on the movie
// database with example sets of growing size; also reports explanation
// minimization (core computation) cost.

#include <benchmark/benchmark.h>

#include "qbe/qbe.h"
#include "workload/movies.h"

namespace featsep {
namespace {

QbeInstance SciFiInstance(const Database& db, std::size_t positives) {
  const char* names[] = {"ada", "bela", "dora", "fay"};
  QbeInstance instance;
  instance.db = &db;
  for (std::size_t i = 0; i < positives && i < 4; ++i) {
    instance.positives.push_back(db.FindValue(names[i]));
  }
  instance.negatives.push_back(db.FindValue("carlos"));
  instance.negatives.push_back(db.FindValue("emil"));
  return instance;
}

void BM_CqQbe(benchmark::State& state) {
  auto db = MakeMovieDatabase();
  QbeInstance instance =
      SciFiInstance(*db, static_cast<std::size_t>(state.range(0)));
  std::size_t product = 0;
  for (auto _ : state) {
    QbeResult result = SolveCqQbe(instance);
    product = result.product_facts;
    benchmark::DoNotOptimize(result.exists);
  }
  state.counters["product_facts"] = static_cast<double>(product);
}
BENCHMARK(BM_CqQbe)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_GhwQbe(benchmark::State& state) {
  auto db = MakeMovieDatabase();
  QbeInstance instance =
      SciFiInstance(*db, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    QbeResult result = SolveGhwQbe(instance, 1);
    benchmark::DoNotOptimize(result.exists);
  }
}
BENCHMARK(BM_GhwQbe)->Arg(1)->Arg(2);

void BM_CqmQbe(benchmark::State& state) {
  auto db = MakeMovieDatabase();
  QbeInstance instance =
      SciFiInstance(*db, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    QbeResult result = SolveCqmQbe(instance, 2, 2);
    benchmark::DoNotOptimize(result.exists);
  }
}
BENCHMARK(BM_CqmQbe)->Arg(1)->Arg(2)->Arg(4);

void BM_CqQbeMinimized(benchmark::State& state) {
  auto db = MakeMovieDatabase();
  QbeInstance instance =
      SciFiInstance(*db, static_cast<std::size_t>(state.range(0)));
  QbeOptions options;
  options.minimize_explanation = true;
  std::size_t atoms = 0;
  for (auto _ : state) {
    QbeResult result = SolveCqQbe(instance, options);
    if (result.explanation.has_value()) {
      atoms = result.explanation->NumAtoms(true);
    }
    benchmark::DoNotOptimize(result.exists);
  }
  state.counters["explanation_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_CqQbeMinimized)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace featsep
