// Experiment T1.c — Table 1, cell (GHW(k)-SEP, PTIME).
//
// Theorem 5.3: the GHW(k)-separability test runs the existential k-cover
// game between every differently-labeled entity pair (Prop 5.5). Series
// sweep the number of entities at k ∈ {1, 2}: polynomial growth in |D|,
// with the exponent rising in k (the game's position space is O(|D|^k)).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/ghw_separability.h"
#include "workload/generators.h"

namespace featsep {
namespace {

void RunGhwSep(benchmark::State& state, std::size_t k) {
  std::size_t entities = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> lengths;
  for (std::size_t i = 0; i < entities; ++i) lengths.push_back(i % 4);
  auto training = PathLengthFamily(lengths, 2);
  bool separable = false;
  for (auto _ : state) {
    GhwSepResult result = DecideGhwSep(*training, k);
    separable = result.separable;
    benchmark::DoNotOptimize(result.separable);
  }
  state.counters["facts"] =
      static_cast<double>(training->database().size());
  state.counters["separable"] = separable ? 1 : 0;
}

void BM_GhwSep_k1(benchmark::State& state) { RunGhwSep(state, 1); }
void BM_GhwSep_k2(benchmark::State& state) { RunGhwSep(state, 2); }

BENCHMARK(BM_GhwSep_k1)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_GhwSep_k2)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace featsep
