// Experiment T1.a — Table 1, cell (CQ-SEP, coNP-complete [22]).
//
// CQ-SEP reduces to pairwise homomorphism-equivalence tests between
// differently-labeled entities (Kimelfeld–Ré). Each test is an NP
// homomorphism search: polynomial-behaving on structured instances, with
// exponential blowup available on adversarial ones. The two series below
// reproduce that shape:
//   easy/*: entities on planted paths — time grows polynomially with |D|;
//   hard/*: entities on unions of coprime directed cycles — the
//           backtracking search degrades as the cycle products grow.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/separability.h"
#include "workload/generators.h"

namespace featsep {
namespace {

void BM_CqSepEasy(benchmark::State& state) {
  std::size_t entities = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> lengths;
  for (std::size_t i = 0; i < entities; ++i) lengths.push_back(i % 5);
  auto training = PathLengthFamily(lengths, 3);
  for (auto _ : state) {
    CqSepResult result = DecideCqSep(*training);
    benchmark::DoNotOptimize(result.separable);
  }
  state.counters["facts"] =
      static_cast<double>(training->database().size());
  state.counters["entities"] = static_cast<double>(entities);
}
BENCHMARK(BM_CqSepEasy)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// Hard instances: a positive entity over cycles {2,3,...} and a negative
/// over slightly different cycles — hom-equivalence testing must reason
/// about divisibility, which resists the solver's pruning.
void BM_CqSepHard(benchmark::State& state) {
  std::size_t r = static_cast<std::size_t>(state.range(0));
  auto db = std::make_shared<Database>(GraphWorkloadSchema());
  RelationId eta = db->schema().entity_relation();
  RelationId e = db->schema().FindRelation("E");
  auto add_entity_with_cycles =
      [&](const std::string& name, const std::vector<std::size_t>& lengths) {
        Value entity = db->Intern(name);
        db->AddFact(eta, {entity});
        for (std::size_t c = 0; c < lengths.size(); ++c) {
          std::vector<Value> nodes;
          for (std::size_t i = 0; i < lengths[c]; ++i) {
            nodes.push_back(db->Intern(name + "_c" + std::to_string(c) +
                                       "_" + std::to_string(i)));
          }
          for (std::size_t i = 0; i < lengths[c]; ++i) {
            db->AddFact(e, {nodes[i], nodes[(i + 1) % lengths[c]]});
          }
          db->AddFact(e, {entity, nodes[0]});
        }
        return entity;
      };
  std::vector<std::size_t> base = {2, 3, 5, 7, 11, 13};
  std::vector<std::size_t> lengths_a(base.begin(), base.begin() + r);
  std::vector<std::size_t> lengths_b = lengths_a;
  lengths_b.back() += 2;  // Almost the same cycle system.
  Value a = add_entity_with_cycles("a", lengths_a);
  Value b = add_entity_with_cycles("b", lengths_b);
  auto training = std::make_shared<TrainingDatabase>(db);
  training->SetLabel(a, kPositive);
  training->SetLabel(b, kNegative);

  for (auto _ : state) {
    CqSepResult result = DecideCqSep(*training);
    benchmark::DoNotOptimize(result.separable);
  }
  state.counters["facts"] = static_cast<double>(db->size());
}
BENCHMARK(BM_CqSepHard)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
}  // namespace featsep
