// Experiment E7 — Proposition 5.1: deciding (D, ā) →_k (D', b̄) is
// polynomial for every fixed k, with the exponent growing in k. Series:
//   game_k1, game_k2: cover-game time vs database size;
//   hom:              the NP homomorphism test on the same instances, for
//                     the approximation-versus-exactness contrast of §5
//                     (→ ⊆ … ⊆ →₂ ⊆ →₁).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "covergame/cover_game.h"
#include "cq/homomorphism.h"

namespace featsep {
namespace {

void RunGame(benchmark::State& state, std::size_t k) {
  std::size_t nodes = static_cast<std::size_t>(state.range(0));
  auto a = bench::RandomGraphDatabase(nodes, nodes * 2, 57);
  auto b = bench::RandomGraphDatabase(nodes, nodes * 2, 58);
  bool wins = false;
  for (auto _ : state) {
    wins = CoverGameWins(*a, {}, *b, {}, k);
    benchmark::DoNotOptimize(wins);
  }
  state.counters["facts"] = static_cast<double>(a->size());
  state.counters["duplicator_wins"] = wins ? 1 : 0;
}

void BM_CoverGame_k1(benchmark::State& state) { RunGame(state, 1); }
void BM_CoverGame_k2(benchmark::State& state) { RunGame(state, 2); }

BENCHMARK(BM_CoverGame_k1)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_CoverGame_k2)->Arg(8)->Arg(12)->Arg(16);

void BM_Homomorphism(benchmark::State& state) {
  std::size_t nodes = static_cast<std::size_t>(state.range(0));
  auto a = bench::RandomGraphDatabase(nodes, nodes * 2, 57);
  auto b = bench::RandomGraphDatabase(nodes, nodes * 2, 58);
  bool exists = false;
  for (auto _ : state) {
    exists = HomomorphismExists(*a, *b);
    benchmark::DoNotOptimize(exists);
  }
  state.counters["facts"] = static_cast<double>(a->size());
  state.counters["hom_exists"] = exists ? 1 : 0;
}
BENCHMARK(BM_Homomorphism)->Arg(8)->Arg(16)->Arg(32);

void BM_CoverGameSolverReuse(benchmark::State& state) {
  // The separability preorder amortizes one solver across O(n²) pairs;
  // this measures the per-query cost after the shared enumeration.
  std::size_t nodes = static_cast<std::size_t>(state.range(0));
  auto a = bench::RandomGraphDatabase(nodes, nodes * 2, 61);
  CoverGameSolver solver(*a, *a, 1);
  const std::vector<Value>& domain = a->domain();
  std::size_t i = 0;
  for (auto _ : state) {
    Value u = domain[i % domain.size()];
    Value v = domain[(i * 7 + 1) % domain.size()];
    benchmark::DoNotOptimize(solver.Decide({u}, {v}));
    ++i;
  }
  state.counters["positions"] = static_cast<double>(solver.num_positions());
}
BENCHMARK(BM_CoverGameSolverReuse)->Arg(8)->Arg(16);

}  // namespace
}  // namespace featsep
