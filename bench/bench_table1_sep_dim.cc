// Experiments T1.d/e/f — Table 1, row L-SEP[ℓ] (bounded dimension).
//
//   T1.d (CQ-SEP[ℓ], coNEXPTIME-c.): the guess-and-check test of Lemma 6.3
//        drives a QBE oracle whose canonical product has |D|^{|S+|} facts —
//        the series shows the oracle cost exploding with the positive-set
//        size while |D| stays fixed.
//   T1.e (GHW(k)-SEP[ℓ], EXPTIME-c.): same products, judged by the cover
//        game instead of homomorphism.
//   T1.f (CQ[m]-SEP[*], NP-c. via Prop 6.9): vertex-cover reductions —
//        exponential growth in the number of entities/bipartitions even
//        though every oracle call is cheap.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/dimension_bounded.h"
#include "qbe/qbe.h"
#include "workload/generators.h"
#include "workload/vertex_cover.h"

namespace featsep {
namespace {

// --- T1.d / T1.e: oracle cost vs |S+| -------------------------------------

std::shared_ptr<Database> QbeWorld() {
  // Entities on paths of lengths 1..4 plus background.
  auto db = std::make_shared<Database>(GraphWorkloadSchema());
  RelationId eta = db->schema().entity_relation();
  RelationId e = db->schema().FindRelation("E");
  for (std::size_t i = 0; i < 6; ++i) {
    std::vector<Value> nodes;
    for (std::size_t j = 0; j <= 1 + i % 4; ++j) {
      nodes.push_back(
          db->Intern("p" + std::to_string(i) + "_" + std::to_string(j)));
    }
    for (std::size_t j = 0; j + 1 < nodes.size(); ++j) {
      db->AddFact(e, {nodes[j], nodes[j + 1]});
    }
    db->AddFact(eta, {nodes[0]});
  }
  return db;
}

void BM_CqQbeProductGrowth(benchmark::State& state) {
  auto db = QbeWorld();
  std::vector<Value> entities = db->Entities();
  std::size_t positives = static_cast<std::size_t>(state.range(0));
  QbeInstance instance;
  instance.db = db.get();
  for (std::size_t i = 0; i < positives; ++i) {
    instance.positives.push_back(entities[i]);
  }
  instance.negatives.push_back(entities.back());

  std::size_t product_facts = 0;
  QbeOptions options;
  options.max_product_facts = 50000000;
  for (auto _ : state) {
    QbeResult result = SolveCqQbe(instance, options);
    product_facts = result.product_facts;
    benchmark::DoNotOptimize(result.exists);
  }
  state.counters["product_facts"] = static_cast<double>(product_facts);
  state.counters["db_facts"] = static_cast<double>(db->size());
}
BENCHMARK(BM_CqQbeProductGrowth)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_GhwQbeProductGrowth(benchmark::State& state) {
  auto db = QbeWorld();
  std::vector<Value> entities = db->Entities();
  std::size_t positives = static_cast<std::size_t>(state.range(0));
  QbeInstance instance;
  instance.db = db.get();
  for (std::size_t i = 0; i < positives; ++i) {
    instance.positives.push_back(entities[i]);
  }
  instance.negatives.push_back(entities.back());

  QbeOptions options;
  options.max_product_facts = 50000000;
  for (auto _ : state) {
    QbeResult result = SolveGhwQbe(instance, 1, options);
    benchmark::DoNotOptimize(result.exists);
  }
}
BENCHMARK(BM_GhwQbeProductGrowth)->Arg(1)->Arg(2)->Arg(3);

// --- T1.f: CQ[1]-SEP[*] on vertex-cover reductions -------------------------

void BM_CqmSepEllVertexCover(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  // Cycle graph C_n: minimum vertex cover = ceil(n/2).
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  VertexCoverInstance instance = MakeVertexCoverInstance(n, edges);
  std::size_t ell = (n + 1) / 2;
  QbeOracle oracle = MakeCqmQbeOracle(1);

  bool separable = false;
  for (auto _ : state) {
    separable = DecideSepDim(*instance.training, ell, oracle).separable;
    benchmark::DoNotOptimize(separable);
  }
  state.counters["separable"] = separable ? 1 : 0;
  state.counters["ell"] = static_cast<double>(ell);
}
BENCHMARK(BM_CqmSepEllVertexCover)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

}  // namespace
}  // namespace featsep
