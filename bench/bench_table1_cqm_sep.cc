// Experiment T1.b — Table 1, cell (CQ[m]-SEP, PTIME).
//
// Proposition 4.1: with the number of atoms fixed, separability reduces to
// (i) enumerating the finitely many CQ[m] features, (ii) evaluating them,
// (iii) one exact LP. Series sweep |D| at m ∈ {1, 2}: runtime grows
// polynomially with the database, and the feature count is independent of
// the data (it depends only on the schema and m).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/separability.h"
#include "workload/generators.h"

namespace featsep {
namespace {

void RunCqmSep(benchmark::State& state, std::size_t m) {
  std::size_t entities = static_cast<std::size_t>(state.range(0));
  RandomGraphParams params;
  params.num_entities = entities;
  params.num_background_nodes = entities;
  params.num_background_edges = entities;
  params.planted_path_length = 2;
  params.seed = 13;
  auto training = RandomPlantedGraph(params);

  std::size_t features = 0;
  bool separable = false;
  for (auto _ : state) {
    CqmSepResult result = DecideCqmSep(*training, m);
    features = result.features_enumerated;
    separable = result.separable;
    benchmark::DoNotOptimize(result.separable);
  }
  state.counters["facts"] =
      static_cast<double>(training->database().size());
  state.counters["features_enumerated"] = static_cast<double>(features);
  state.counters["separable"] = separable ? 1 : 0;
}

void BM_CqmSep_m1(benchmark::State& state) { RunCqmSep(state, 1); }
void BM_CqmSep_m2(benchmark::State& state) { RunCqmSep(state, 2); }

BENCHMARK(BM_CqmSep_m1)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_CqmSep_m2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace featsep
