// Ablation studies for the design choices called out in DESIGN.md §3:
//   hom_fc_on / hom_fc_off : forward checking in the homomorphism engine —
//       with pruning off, only per-fact compatibility is verified, and the
//       search tree balloons on structured instances;
//   qbe_minimize_on / off  : core minimization of QBE explanations — the
//       canonical product is orders of magnitude larger than its core;
//   solver_shared / fresh  : reusing one cover-game solver across entity
//       pairs vs rebuilding it per pair (the amortization that makes the
//       separability preorder cheap).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "covergame/cover_game.h"
#include "cq/homomorphism.h"
#include "qbe/qbe.h"
#include "workload/movies.h"

namespace featsep {
namespace {

void RunHomAblation(benchmark::State& state, bool forward_checking) {
  // Cycle-divisibility instances: C_{2n} -> C_n exists; C_{2n+1} -> C_n
  // search must exhaust. A mix stresses propagation.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = bench::RandomGraphDatabase(2 * n, 4 * n, 91);
  auto b = bench::RandomGraphDatabase(n, 2 * n, 92);
  HomOptions options;
  options.forward_checking = forward_checking;
  // Without pruning the refutation search is astronomically large; the
  // budget turns "never finishes" into a measurable exhaustion count.
  options.max_nodes = 2000000;
  std::uint64_t nodes = 0;
  bool exhausted = false;
  for (auto _ : state) {
    HomResult result = FindHomomorphism(*a, *b, {}, options);
    nodes = result.nodes;
    exhausted = result.status == HomStatus::kExhausted;
    benchmark::DoNotOptimize(result.status);
  }
  state.counters["search_nodes"] = static_cast<double>(nodes);
  state.counters["exhausted"] = exhausted ? 1 : 0;
}

void BM_HomForwardCheckingOn(benchmark::State& state) {
  RunHomAblation(state, true);
}
void BM_HomForwardCheckingOff(benchmark::State& state) {
  RunHomAblation(state, false);
}
BENCHMARK(BM_HomForwardCheckingOn)->Arg(8)->Arg(16)->Arg(24);
BENCHMARK(BM_HomForwardCheckingOff)->Arg(8)->Arg(16)->Arg(24);

void RunQbeMinimization(benchmark::State& state, bool minimize) {
  auto db = MakeMovieDatabase();
  QbeInstance instance;
  instance.db = db.get();
  instance.positives = {db->FindValue("ada"), db->FindValue("bela")};
  instance.negatives = {db->FindValue("carlos"), db->FindValue("emil")};
  QbeOptions options;
  options.minimize_explanation = minimize;
  std::size_t atoms = 0;
  for (auto _ : state) {
    QbeResult result = SolveCqQbe(instance, options);
    if (result.explanation.has_value()) {
      atoms = result.explanation->NumAtoms(true);
    }
    benchmark::DoNotOptimize(result.exists);
  }
  state.counters["explanation_atoms"] = static_cast<double>(atoms);
}

void BM_QbeMinimizeOn(benchmark::State& state) {
  RunQbeMinimization(state, true);
}
void BM_QbeMinimizeOff(benchmark::State& state) {
  RunQbeMinimization(state, false);
}
BENCHMARK(BM_QbeMinimizeOn);
BENCHMARK(BM_QbeMinimizeOff);

void BM_CoverSolverShared(benchmark::State& state) {
  std::size_t nodes = static_cast<std::size_t>(state.range(0));
  auto db = bench::RandomGraphDatabase(nodes, 2 * nodes, 93);
  const std::vector<Value>& domain = db->domain();
  for (auto _ : state) {
    CoverGameSolver solver(*db, *db, 1);
    for (std::size_t i = 0; i + 1 < domain.size(); i += 2) {
      benchmark::DoNotOptimize(
          solver.Decide({domain[i]}, {domain[i + 1]}));
    }
  }
}
void BM_CoverSolverFresh(benchmark::State& state) {
  std::size_t nodes = static_cast<std::size_t>(state.range(0));
  auto db = bench::RandomGraphDatabase(nodes, 2 * nodes, 93);
  const std::vector<Value>& domain = db->domain();
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < domain.size(); i += 2) {
      CoverGameSolver solver(*db, *db, 1);
      benchmark::DoNotOptimize(
          solver.Decide({domain[i]}, {domain[i + 1]}));
    }
  }
}
BENCHMARK(BM_CoverSolverShared)->Arg(8)->Arg(16);
BENCHMARK(BM_CoverSolverFresh)->Arg(8)->Arg(16);

}  // namespace
}  // namespace featsep
