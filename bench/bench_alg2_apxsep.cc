// Experiment E5 — Algorithm 2 (GHW(k)-ApxSep, Theorem 7.4): the optimal
// GHW(k)-consistent relabeling in polynomial time. The noise sweep shows
// the achieved minimal disagreement tracking the injected flip count, and
// the runtime staying polynomial (contrast with the NP-complete min-error
// problem for explicit vectors, bench_linsep).

#include <benchmark/benchmark.h>

#include "core/ghw_separability.h"
#include "workload/generators.h"

namespace featsep {
namespace {

void BM_Alg2NoiseSweep(benchmark::State& state) {
  double noise = static_cast<double>(state.range(0)) / 100.0;
  RandomGraphParams params;
  params.num_entities = 16;
  params.num_background_nodes = 8;
  params.num_background_edges = 10;
  params.planted_path_length = 2;
  params.label_noise = noise;
  params.seed = 41;
  auto training = RandomPlantedGraph(params);

  std::size_t disagreement = 0;
  for (auto _ : state) {
    GhwRelabelResult result = GhwOptimalRelabel(*training, 1);
    disagreement = result.disagreement;
    benchmark::DoNotOptimize(result.disagreement);
  }
  state.counters["noise_pct"] = static_cast<double>(state.range(0));
  state.counters["min_disagreement"] = static_cast<double>(disagreement);
  state.counters["entities"] =
      static_cast<double>(training->Entities().size());
}
BENCHMARK(BM_Alg2NoiseSweep)->Arg(0)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

void BM_Alg2Scaling(benchmark::State& state) {
  RandomGraphParams params;
  params.num_entities = static_cast<std::size_t>(state.range(0));
  params.planted_path_length = 2;
  params.label_noise = 0.2;
  params.seed = 43;
  auto training = RandomPlantedGraph(params);
  for (auto _ : state) {
    GhwRelabelResult result = GhwOptimalRelabel(*training, 1);
    benchmark::DoNotOptimize(result.disagreement);
  }
  state.counters["facts"] =
      static_cast<double>(training->database().size());
}
BENCHMARK(BM_Alg2Scaling)->Arg(8)->Arg(16)->Arg(24);

}  // namespace
}  // namespace featsep
