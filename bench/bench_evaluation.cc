// Evaluation-engine comparison underlying the GHW(k) tractability story
// (paper, Section 5 / [12]): decomposition-guided Yannakakis evaluation is
// polynomial O(|D|^k) per entity for GHW(k) queries, while the generic
// backtracking engine is worst-case exponential. Series sweep the database
// size for an acyclic (width-1) query and a cyclic (width-2) query.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cq/decomposed_evaluation.h"
#include "cq/evaluation.h"
#include "io/cq_parser.h"
#include "workload/generators.h"

namespace featsep {
namespace {

ConjunctiveQuery CyclicQuery() {
  auto q = ParseCq(GraphWorkloadSchema(),
                   "q(x) :- Eta(x), E(x, y1), E(y1, y2), E(y2, y3), "
                   "E(y3, y1)");
  return q.value();
}

ConjunctiveQuery AcyclicQuery() {
  auto q = ParseCq(GraphWorkloadSchema(),
                   "q(x) :- Eta(x), E(x, y1), E(y1, y2), E(y2, y3)");
  return q.value();
}

std::shared_ptr<Database> World(std::size_t nodes) {
  auto db = bench::RandomGraphDatabase(nodes, nodes * 3, 101);
  // Mark a few entities.
  RelationId eta = db->schema().entity_relation();
  const std::vector<Value>& domain = db->domain();
  for (std::size_t i = 0; i < domain.size(); i += 4) {
    db->AddFact(eta, {domain[i]});
  }
  return db;
}

void BM_BacktrackingAcyclic(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  CqEvaluator evaluator(AcyclicQuery());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(*db).size());
  }
  state.counters["facts"] = static_cast<double>(db->size());
}
BENCHMARK(BM_BacktrackingAcyclic)->Arg(16)->Arg(32)->Arg(64);

void BM_DecomposedAcyclic(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  auto evaluator = DecomposedEvaluator::Create(AcyclicQuery(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->Evaluate(*db).size());
  }
  state.counters["facts"] = static_cast<double>(db->size());
}
BENCHMARK(BM_DecomposedAcyclic)->Arg(16)->Arg(32)->Arg(64);

void BM_BacktrackingCyclic(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  CqEvaluator evaluator(CyclicQuery());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(*db).size());
  }
  state.counters["facts"] = static_cast<double>(db->size());
}
BENCHMARK(BM_BacktrackingCyclic)->Arg(16)->Arg(32)->Arg(64);

void BM_DecomposedCyclic(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  auto evaluator = DecomposedEvaluator::Create(CyclicQuery(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->Evaluate(*db).size());
  }
  state.counters["facts"] = static_cast<double>(db->size());
  state.counters["width"] = static_cast<double>(evaluator->width());
}
BENCHMARK(BM_DecomposedCyclic)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace featsep
