// Width-notion comparison (supporting Section 5's choice of ghw):
// generalized hypertree width (exact, exponential candidate-bag search —
// NP-hard for fixed k ≥ 2, Gottlob et al.) vs plain hypertree width
// (det-k-decomp, polynomial for fixed k). The series show htw's decision
// staying tame while exact ghw pays for subset-closed bag families, and
// report both widths (ghw ≤ htw).

#include <benchmark/benchmark.h>

#include "hypertree/ghw.h"
#include "hypertree/htw.h"
#include "hypertree/hypergraph.h"

namespace featsep {
namespace {

Hypergraph CycleHypergraph(std::size_t n) {
  Hypergraph g;
  for (std::size_t i = 0; i < n; ++i) g.AddVertex();
  for (std::size_t i = 0; i < n; ++i) g.AddEdge({i, (i + 1) % n});
  return g;
}

Hypergraph GridHypergraph(std::size_t rows, std::size_t cols) {
  Hypergraph g;
  for (std::size_t i = 0; i < rows * cols; ++i) g.AddVertex();
  auto at = [&](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge({at(r, c), at(r, c + 1)});
      if (r + 1 < rows) g.AddEdge({at(r, c), at(r + 1, c)});
    }
  }
  return g;
}

void BM_GhwOnCycles(benchmark::State& state) {
  Hypergraph g = CycleHypergraph(static_cast<std::size_t>(state.range(0)));
  std::size_t width = 0;
  for (auto _ : state) {
    width = Ghw(g);
    benchmark::DoNotOptimize(width);
  }
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_GhwOnCycles)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_HtwOnCycles(benchmark::State& state) {
  Hypergraph g = CycleHypergraph(static_cast<std::size_t>(state.range(0)));
  std::size_t width = 0;
  for (auto _ : state) {
    width = Htw(g);
    benchmark::DoNotOptimize(width);
  }
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_HtwOnCycles)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_GhwOnGrids(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Hypergraph g = GridHypergraph(2, n);
  std::size_t width = 0;
  for (auto _ : state) {
    width = Ghw(g);
    benchmark::DoNotOptimize(width);
  }
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_GhwOnGrids)->Arg(2)->Arg(3)->Arg(4);

void BM_HtwOnGrids(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Hypergraph g = GridHypergraph(2, n);
  std::size_t width = 0;
  for (auto _ : state) {
    width = Htw(g);
    benchmark::DoNotOptimize(width);
  }
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_HtwOnGrids)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
}  // namespace featsep
