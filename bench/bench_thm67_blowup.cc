// Experiment E3 — Theorem 6.7: under a fixed statistic dimension, feature
// queries must blow up. The prime-cycle family (workload/thm57.h) realizes
// the mechanism: any single CQ explanation separating entities on cycles of
// the first r primes from one on a fresh prime cycle must contain a
// connected cycle of length lcm(p₁..p_r) = ∏ pᵢ, while the database has
// only Θ(Σ pᵢ) facts. We report the canonical (product) explanation size
// and the lcm lower bound against |D|.

#include <benchmark/benchmark.h>

#include "qbe/qbe.h"
#include "workload/thm57.h"

namespace featsep {
namespace {

void BM_Thm67ProductExplanation(benchmark::State& state) {
  std::size_t r = static_cast<std::size_t>(state.range(0));
  PrimeCycleFamily family = MakePrimeCycleFamily(r);
  QbeInstance instance{&family.training->database(), family.positives,
                       {family.negative}};
  QbeOptions options;
  options.max_product_facts = 100000000;

  bool exists = false;
  std::size_t product_facts = 0;
  for (auto _ : state) {
    QbeResult result = SolveCqQbe(instance, options);
    exists = result.exists;
    product_facts = result.product_facts;
    benchmark::DoNotOptimize(result.exists);
  }
  state.counters["db_facts"] =
      static_cast<double>(family.training->database().size());
  state.counters["explanation_exists"] = exists ? 1 : 0;
  state.counters["product_facts"] = static_cast<double>(product_facts);
  state.counters["lcm_lower_bound"] = static_cast<double>(family.lcm);
}
BENCHMARK(BM_Thm67ProductExplanation)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace featsep
