// Experiment E2 — Theorem 5.7: statistics separating GHW(k)-separable data
// may need (a) dimension linear in the number of entities and (b)
// exponentially large feature queries.
//
//   dimension/*: the alternating-path family (a linear family per
//     Prop 8.6): the implicit Algorithm-1 statistic has one feature per
//     →₁ class, i.e., dimension m+1 for path length m.
//   generated_atoms/*: materializing the GHW(1) statistic (Prop 5.6's
//     exponential-time generation) — total atom count of the generated
//     features grows with the family size.

#include <benchmark/benchmark.h>

#include "core/ghw_generation.h"
#include "core/ghw_separability.h"
#include "workload/thm57.h"

namespace featsep {
namespace {

void BM_Thm57Dimension(benchmark::State& state) {
  std::size_t m = static_cast<std::size_t>(state.range(0));
  auto training = AlternatingPathFamily(m);
  std::size_t dimension = 0;
  for (auto _ : state) {
    auto classifier = GhwClassifier::Train(training, 1);
    dimension = classifier->dimension();
    benchmark::DoNotOptimize(dimension);
  }
  state.counters["entities"] =
      static_cast<double>(training->Entities().size());
  state.counters["dimension"] = static_cast<double>(dimension);
}
BENCHMARK(BM_Thm57Dimension)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_Thm57GeneratedAtoms(benchmark::State& state) {
  std::size_t m = static_cast<std::size_t>(state.range(0));
  auto training = AlternatingPathFamily(m);
  GhwGenerationOptions options;
  options.minimize = true;
  std::size_t total_atoms = 0;
  std::size_t dimension = 0;
  for (auto _ : state) {
    auto statistic = GenerateGhw1Statistic(*training, options);
    total_atoms = statistic->TotalAtoms();
    dimension = statistic->dimension();
    benchmark::DoNotOptimize(total_atoms);
  }
  state.counters["db_facts"] =
      static_cast<double>(training->database().size());
  state.counters["dimension"] = static_cast<double>(dimension);
  state.counters["total_feature_atoms"] = static_cast<double>(total_atoms);
}
BENCHMARK(BM_Thm57GeneratedAtoms)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace featsep
