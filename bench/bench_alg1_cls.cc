// Experiment E4 — Algorithm 1 (GHW(k)-CLS, Theorem 5.8): classification of
// an evaluation database in polynomial time WITHOUT materializing the
// (potentially exponential, Theorem 5.7) feature queries. Series sweep the
// training size (train/*) and the evaluation size (classify/*).

#include <benchmark/benchmark.h>

#include "core/ghw_separability.h"
#include "workload/generators.h"

namespace featsep {
namespace {

std::shared_ptr<TrainingDatabase> TrainingOfSize(std::size_t entities) {
  std::vector<std::size_t> lengths;
  for (std::size_t i = 0; i < entities; ++i) lengths.push_back(i % 4);
  return PathLengthFamily(lengths, 2);
}

void BM_Alg1Train(benchmark::State& state) {
  auto training = TrainingOfSize(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto classifier = GhwClassifier::Train(training, 1);
    benchmark::DoNotOptimize(classifier->dimension());
  }
  state.counters["facts"] =
      static_cast<double>(training->database().size());
}
BENCHMARK(BM_Alg1Train)->Arg(4)->Arg(8)->Arg(16);

void BM_Alg1Classify(benchmark::State& state) {
  auto training = TrainingOfSize(8);
  auto classifier = GhwClassifier::Train(training, 1);
  std::size_t eval_entities = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> lengths;
  for (std::size_t i = 0; i < eval_entities; ++i) {
    lengths.push_back((i * 3) % 5);
  }
  auto eval = PathLengthFamily(lengths, 2);

  for (auto _ : state) {
    Labeling labeling = classifier->Classify(eval->database());
    benchmark::DoNotOptimize(labeling.size());
  }
  state.counters["eval_entities"] = static_cast<double>(eval_entities);
  state.counters["implicit_dimension"] =
      static_cast<double>(classifier->dimension());
}
BENCHMARK(BM_Alg1Classify)->Arg(4)->Arg(8)->Arg(16);

void BM_Alg1ClassifyWidth2(benchmark::State& state) {
  std::size_t entities = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> lengths;
  std::vector<Label> labels;
  for (std::size_t i = 0; i < entities; ++i) {
    lengths.push_back(3 + i % 3);
    labels.push_back(lengths.back() % 2 == 0 ? kPositive : kNegative);
  }
  auto training = CycleTailFamily(lengths, labels);
  auto classifier = GhwClassifier::Train(training, 2);
  if (!classifier.has_value()) {
    state.SkipWithError("training not GHW(2)-separable");
    return;
  }
  for (auto _ : state) {
    Labeling labeling = classifier->Classify(training->database());
    benchmark::DoNotOptimize(labeling.size());
  }
  state.counters["facts"] =
      static_cast<double>(training->database().size());
}
BENCHMARK(BM_Alg1ClassifyWidth2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
}  // namespace featsep
