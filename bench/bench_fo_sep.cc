// Experiment E10 — Section 8 / Corollary 8.2: FO-separability has the
// complexity of graph isomorphism (GI-complete). Series:
//   refinable/*: random graphs where color refinement is discrete — the
//                iso tests finish without backtracking;
//   regular/*:   disjoint unions of equal-length cycles (vertex-transitive)
//                where refinement is maximally uninformative and the
//                individualization search must branch.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/fo_separability.h"
#include "fo/iso.h"
#include "workload/generators.h"

namespace featsep {
namespace {

void BM_FoSepRefinable(benchmark::State& state) {
  std::size_t entities = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> lengths;
  for (std::size_t i = 0; i < entities; ++i) lengths.push_back(i % 4);
  auto training = PathLengthFamily(lengths, 2);
  bool separable = false;
  for (auto _ : state) {
    separable = DecideFoSep(*training).separable;
    benchmark::DoNotOptimize(separable);
  }
  state.counters["separable"] = separable ? 1 : 0;
}
BENCHMARK(BM_FoSepRefinable)->Arg(4)->Arg(8)->Arg(16);

void BM_IsoRegularCycles(benchmark::State& state) {
  // c disjoint directed 4-cycles vs the same: isomorphic, but refinement
  // cannot split anything — the search must individualize through the
  // automorphism classes.
  std::size_t copies = static_cast<std::size_t>(state.range(0));
  auto make = [&](const std::string& prefix) {
    auto db = std::make_shared<Database>(GraphWorkloadSchema());
    RelationId e = db->schema().FindRelation("E");
    for (std::size_t c = 0; c < copies; ++c) {
      std::vector<Value> nodes;
      for (std::size_t i = 0; i < 4; ++i) {
        nodes.push_back(db->Intern(prefix + std::to_string(c) + "_" +
                                   std::to_string(i)));
      }
      for (std::size_t i = 0; i < 4; ++i) {
        db->AddFact(e, {nodes[i], nodes[(i + 1) % 4]});
      }
    }
    return db;
  };
  auto a = make("a");
  auto b = make("b");
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    bool iso = AreIsomorphic(*a, {}, *b, {}, &nodes);
    benchmark::DoNotOptimize(iso);
  }
  state.counters["search_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_IsoRegularCycles)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_IsoNonIsomorphicRegular(benchmark::State& state) {
  // C_{2n} vs two C_n: same degree sequence, not isomorphic — the negative
  // certificates require exhausting the individualization branches.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  auto make_cycles = [&](const std::string& prefix,
                         const std::vector<std::size_t>& lengths) {
    auto db = std::make_shared<Database>(GraphWorkloadSchema());
    RelationId e = db->schema().FindRelation("E");
    for (std::size_t c = 0; c < lengths.size(); ++c) {
      std::vector<Value> nodes;
      for (std::size_t i = 0; i < lengths[c]; ++i) {
        nodes.push_back(db->Intern(prefix + std::to_string(c) + "_" +
                                   std::to_string(i)));
      }
      for (std::size_t i = 0; i < lengths[c]; ++i) {
        db->AddFact(e, {nodes[i], nodes[(i + 1) % lengths[c]]});
      }
    }
    return db;
  };
  auto a = make_cycles("a", {2 * n});
  auto b = make_cycles("b", {n, n});
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    bool iso = AreIsomorphic(*a, {}, *b, {}, &nodes);
    benchmark::DoNotOptimize(iso);
  }
  state.counters["search_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_IsoNonIsomorphicRegular)->Arg(3)->Arg(5)->Arg(7);

}  // namespace
}  // namespace featsep
