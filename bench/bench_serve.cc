// Serve-path benchmarks, in two sections:
//
// Batch section (DESIGN.md §8): Statistic::Matrix over a feature bank
// through serve::EvalService vs the serial per-feature sweep. Series
// compare (a) cold-cache sharded evaluation at 1/2/8 shards against the
// unserved baseline, and (b) warm-cache reuse, where repeated Matrix calls
// over equal database content reduce to digest + hash lookups — the
// acceptance bar is warm ≥ 5× faster than cold.
//
// Durable tier section (DESIGN.md §13): warm-restart-from-disk, where a
// fresh service (simulating a restarted process, empty LRU) serves the
// whole feature bank from the persistent result cache — the row's
// disk_hits/feat_eval counters prove no kernel work ran; cost sits between
// in-memory-warm lookups and cold evaluation.
//
// Closed-loop async section (DESIGN.md §12): a configurable number of
// closed-loop clients each keep one request in flight against an
// AsyncEvalService (mixed priorities, optional deadline distribution).
// Rows report p50/p99 request latency, saturation throughput
// (items_per_second), and the expired/rejected lifecycle counters, plus an
// admission benchmark that bursts past a small queue to measure shed rate.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/statistic.h"
#include "cq/enumeration.h"
#include "serve/async_service.h"
#include "serve/eval_service.h"
#include "util/budget.h"
#include "workload/generators.h"

namespace featsep {
namespace {

/// Publishes the service's full counter set on the benchmark row, so a
/// bench run doubles as an observability check on the serve path.
void ExportServeStats(benchmark::State& state,
                      const serve::EvalService& service) {
  serve::ServeStats stats = service.stats();
  state.counters["hits"] = static_cast<double>(stats.cache_hits);
  state.counters["misses"] = static_cast<double>(stats.cache_misses);
  state.counters["evictions"] = static_cast<double>(stats.cache_evictions);
  state.counters["feat_eval"] = static_cast<double>(stats.features_evaluated);
  state.counters["ent_eval"] = static_cast<double>(stats.entity_evaluations);
  state.counters["cancelled"] = static_cast<double>(stats.cancelled_shards);
  state.counters["retries"] = static_cast<double>(stats.evaluation_retries);
  if (!service.options().cache_dir.empty()) {
    state.counters["disk_hits"] = static_cast<double>(stats.disk_hits);
    state.counters["disk_writes"] = static_cast<double>(stats.disk_writes);
  }
}

std::shared_ptr<Database> World(std::size_t nodes) {
  auto db = bench::RandomGraphDatabase(nodes, nodes * 3, 2024);
  RelationId eta = db->schema().entity_relation();
  const std::vector<Value>& domain = db->domain();
  for (std::size_t i = 0; i < domain.size(); i += 2) {
    db->AddFact(eta, {domain[i]});
  }
  return db;
}

/// The CQ[2] feature bank over the graph schema — the same bank the
/// DecideCqmSep and QBE sweeps evaluate.
Statistic FeatureBank() {
  EnumerationOptions options;
  std::vector<ConjunctiveQuery> features =
      EnumerateFeatureQueries(GraphWorkloadSchema(), 2, options);
  return Statistic(std::move(features));
}

void BM_MatrixSerial(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  Statistic statistic = FeatureBank();
  for (auto _ : state) {
    benchmark::DoNotOptimize(statistic.Matrix(*db).size());
  }
  state.counters["features"] = static_cast<double>(statistic.dimension());
  state.counters["entities"] = static_cast<double>(db->Entities().size());
}
BENCHMARK(BM_MatrixSerial)->Arg(32)->Arg(64);

void BM_MatrixServedCold(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  Statistic statistic = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = static_cast<std::size_t>(state.range(1));
  serve::EvalService service(options);
  for (auto _ : state) {
    service.ClearCache();  // Every iteration pays the kernel cost.
    benchmark::DoNotOptimize(statistic.Matrix(*db, &service).size());
  }
  state.counters["shards"] = static_cast<double>(options.num_shards);
  ExportServeStats(state, service);
}
BENCHMARK(BM_MatrixServedCold)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 8})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 8});

void BM_MatrixServedWarm(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  Statistic statistic = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = static_cast<std::size_t>(state.range(1));
  options.cache_capacity = statistic.dimension() + 1;
  serve::EvalService service(options);
  statistic.Matrix(*db, &service);  // Warm the cache once, outside timing.
  for (auto _ : state) {
    benchmark::DoNotOptimize(statistic.Matrix(*db, &service).size());
  }
  ExportServeStats(state, service);
}
BENCHMARK(BM_MatrixServedWarm)->Args({32, 1})->Args({64, 1})->Args({64, 8});

void BM_MatrixServedDiskWarm(benchmark::State& state) {
  // Warm restart from the persistent tier: a cold service fills the disk
  // cache once, then every iteration constructs a FRESH service (empty
  // in-memory LRU — a restarted process) over the same directory and
  // resolves the whole bank through disk read-through. feat_eval stays 0:
  // the kernel never runs after a restart.
  namespace fs = std::filesystem;
  auto db = World(static_cast<std::size_t>(state.range(0)));
  Statistic statistic = FeatureBank();
  const fs::path dir =
      fs::temp_directory_path() /
      ("featsep-bench-diskwarm-" + std::to_string(state.range(0)));
  std::error_code ec;
  fs::remove_all(dir, ec);
  serve::ServeOptions options;
  options.num_shards = 1;
  options.cache_dir = dir.string();
  { serve::EvalService(options).Matrix(statistic.features(), *db); }

  std::uint64_t disk_hits = 0, features_evaluated = 0;
  for (auto _ : state) {
    serve::EvalService restarted(options);
    benchmark::DoNotOptimize(
        restarted.Matrix(statistic.features(), *db).size());
    serve::ServeStats stats = restarted.stats();
    disk_hits += stats.disk_hits;
    features_evaluated += stats.features_evaluated;
  }
  state.counters["disk_hits"] = static_cast<double>(disk_hits);
  state.counters["feat_eval"] = static_cast<double>(features_evaluated);
  state.counters["features"] = static_cast<double>(statistic.dimension());
  fs::remove_all(dir, ec);
}
BENCHMARK(BM_MatrixServedDiskWarm)->Arg(32)->Arg(64);

void BM_TryResolveDeadline(benchmark::State& state) {
  // Per-request deadline on a cold service: measures how quickly an
  // abandoned batch drains. The cancelled/retries counters on the row show
  // the interruption machinery actually engaging (and the cache never
  // absorbing an aborted shard — retries only, no wrong answers).
  auto db = World(static_cast<std::size_t>(state.range(0)));
  Statistic statistic = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = 2;
  serve::EvalService service(options);
  for (auto _ : state) {
    service.ClearCache();
    ExecutionBudget budget =
        ExecutionBudget::WithTimeout(std::chrono::milliseconds(1));
    benchmark::DoNotOptimize(
        service.TryResolve(statistic.features(), *db, &budget).size());
  }
  ExportServeStats(state, service);
}
BENCHMARK(BM_TryResolveDeadline)->Arg(32)->Arg(64);

// --------------------------------------------------------------------------
// Closed-loop async section.

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t index = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[index];
}

/// Publishes the per-class lifecycle counters summed over both priority
/// classes, so a bench row shows how many requests completed vs expired vs
/// were shed at admission.
void ExportAsyncStats(benchmark::State& state,
                      const serve::AsyncEvalService& service) {
  serve::AsyncServeStats stats = service.stats();
  double completed = 0, expired = 0, rejected = 0, cancelled = 0;
  for (const serve::RequestClassStats& cls : stats.classes) {
    completed += static_cast<double>(cls.completed);
    expired += static_cast<double>(cls.expired);
    rejected += static_cast<double>(cls.rejected);
    cancelled += static_cast<double>(cls.cancelled);
  }
  state.counters["completed"] = completed;
  state.counters["expired"] = expired;
  state.counters["rejected"] = rejected;
  state.counters["cancelled"] = cancelled;
}

/// Closed-loop load generator: `clients` (range 0) requests are kept in
/// flight at all times — each benchmark iteration waits on the oldest,
/// records its latency, and immediately resubmits. items_per_second is the
/// saturation throughput of the closed loop; p50_ms/p99_ms are the
/// end-to-end (submit → terminal) request latencies. Deadlines (range 1,
/// milliseconds; 0 = unbounded) are spread over [D/2, 3D/2] per request so
/// under queueing some requests expire instead of completing. The backend
/// cache is disabled so every request pays real evaluation work.
void BM_AsyncClosedLoop(benchmark::State& state) {
  using Clock = std::chrono::steady_clock;
  std::shared_ptr<const Database> db = World(32);
  Statistic statistic = FeatureBank();
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  const std::int64_t deadline_ms = state.range(1);

  serve::AsyncServeOptions options;
  options.serve.num_shards = 1;
  options.serve.cache_capacity = 0;
  options.queue_capacity = 0;  // Closed loop bounds its own in-flight count.
  serve::AsyncEvalService service(options);

  WorkloadRng rng(2026);
  auto submit = [&]() {
    serve::SubmitOptions opts;
    opts.priority = rng.Chance(0.5) ? serve::RequestPriority::kBatch
                                    : serve::RequestPriority::kInteractive;
    if (deadline_ms > 0) {
      opts.timeout = std::chrono::milliseconds(
          deadline_ms / 2 +
          static_cast<std::int64_t>(
              rng.Below(static_cast<std::size_t>(deadline_ms) + 1)));
    }
    return std::make_pair(service.Submit(statistic.features(), db, opts),
                          Clock::now());
  };

  std::deque<std::pair<serve::RequestHandle, Clock::time_point>> in_flight;
  for (std::size_t c = 0; c < clients; ++c) in_flight.push_back(submit());

  std::vector<double> latencies_ms;
  for (auto _ : state) {
    auto [handle, submitted_at] = std::move(in_flight.front());
    in_flight.pop_front();
    handle.Wait();
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                               Clock::now() - submitted_at)
                               .count());
    in_flight.push_back(submit());
  }
  for (auto& [handle, submitted_at] : in_flight) handle.Wait();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["p50_ms"] = Percentile(latencies_ms, 0.5);
  state.counters["p99_ms"] = Percentile(latencies_ms, 0.99);
  ExportAsyncStats(state, service);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AsyncClosedLoop)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({8, 20})
    ->UseRealTime();

/// Admission control under burst: each iteration submits `burst` (range 0)
/// requests against a queue of capacity 4 and drains them. With a burst
/// well past capacity most of the tail is shed with kRejected — the
/// rejected counter and items_per_second together give the sustainable
/// admitted throughput under overload.
void BM_AsyncAdmission(benchmark::State& state) {
  std::shared_ptr<const Database> db = World(32);
  Statistic statistic = FeatureBank();
  const std::size_t burst = static_cast<std::size_t>(state.range(0));

  serve::AsyncServeOptions options;
  options.serve.num_shards = 1;
  options.serve.cache_capacity = 0;
  options.queue_capacity = 4;
  serve::AsyncEvalService service(options);

  WorkloadRng rng(2027);
  for (auto _ : state) {
    std::vector<serve::RequestHandle> handles;
    handles.reserve(burst);
    for (std::size_t b = 0; b < burst; ++b) {
      serve::SubmitOptions opts;
      opts.priority = rng.Chance(0.5) ? serve::RequestPriority::kBatch
                                      : serve::RequestPriority::kInteractive;
      handles.push_back(service.Submit(statistic.features(), db, opts));
    }
    for (serve::RequestHandle& handle : handles) handle.Wait();
  }

  state.counters["burst"] = static_cast<double>(burst);
  state.counters["queue_capacity"] =
      static_cast<double>(options.queue_capacity);
  ExportAsyncStats(state, service);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_AsyncAdmission)->Arg(8)->Arg(32)->UseRealTime();

}  // namespace
}  // namespace featsep
