// Batched-evaluation-service comparison (DESIGN.md §8): Statistic::Matrix
// over a feature bank through serve::EvalService vs the serial per-feature
// sweep. Series compare (a) cold-cache sharded evaluation at 1/2/8 shards
// against the unserved baseline, and (b) warm-cache reuse, where repeated
// Matrix calls over equal database content reduce to digest + hash lookups
// — the acceptance bar is warm ≥ 5× faster than cold.

#include <chrono>
#include <cstddef>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/statistic.h"
#include "cq/enumeration.h"
#include "serve/eval_service.h"
#include "util/budget.h"
#include "workload/generators.h"

namespace featsep {
namespace {

/// Publishes the service's full counter set on the benchmark row, so a
/// bench run doubles as an observability check on the serve path.
void ExportServeStats(benchmark::State& state,
                      const serve::EvalService& service) {
  serve::ServeStats stats = service.stats();
  state.counters["hits"] = static_cast<double>(stats.cache_hits);
  state.counters["misses"] = static_cast<double>(stats.cache_misses);
  state.counters["evictions"] = static_cast<double>(stats.cache_evictions);
  state.counters["feat_eval"] = static_cast<double>(stats.features_evaluated);
  state.counters["ent_eval"] = static_cast<double>(stats.entity_evaluations);
  state.counters["cancelled"] = static_cast<double>(stats.cancelled_shards);
  state.counters["retries"] = static_cast<double>(stats.evaluation_retries);
}

std::shared_ptr<Database> World(std::size_t nodes) {
  auto db = bench::RandomGraphDatabase(nodes, nodes * 3, 2024);
  RelationId eta = db->schema().entity_relation();
  const std::vector<Value>& domain = db->domain();
  for (std::size_t i = 0; i < domain.size(); i += 2) {
    db->AddFact(eta, {domain[i]});
  }
  return db;
}

/// The CQ[2] feature bank over the graph schema — the same bank the
/// DecideCqmSep and QBE sweeps evaluate.
Statistic FeatureBank() {
  EnumerationOptions options;
  std::vector<ConjunctiveQuery> features =
      EnumerateFeatureQueries(GraphWorkloadSchema(), 2, options);
  return Statistic(std::move(features));
}

void BM_MatrixSerial(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  Statistic statistic = FeatureBank();
  for (auto _ : state) {
    benchmark::DoNotOptimize(statistic.Matrix(*db).size());
  }
  state.counters["features"] = static_cast<double>(statistic.dimension());
  state.counters["entities"] = static_cast<double>(db->Entities().size());
}
BENCHMARK(BM_MatrixSerial)->Arg(32)->Arg(64);

void BM_MatrixServedCold(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  Statistic statistic = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = static_cast<std::size_t>(state.range(1));
  serve::EvalService service(options);
  for (auto _ : state) {
    service.ClearCache();  // Every iteration pays the kernel cost.
    benchmark::DoNotOptimize(statistic.Matrix(*db, &service).size());
  }
  state.counters["shards"] = static_cast<double>(options.num_shards);
  ExportServeStats(state, service);
}
BENCHMARK(BM_MatrixServedCold)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 8})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 8});

void BM_MatrixServedWarm(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  Statistic statistic = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = static_cast<std::size_t>(state.range(1));
  options.cache_capacity = statistic.dimension() + 1;
  serve::EvalService service(options);
  statistic.Matrix(*db, &service);  // Warm the cache once, outside timing.
  for (auto _ : state) {
    benchmark::DoNotOptimize(statistic.Matrix(*db, &service).size());
  }
  ExportServeStats(state, service);
}
BENCHMARK(BM_MatrixServedWarm)->Args({32, 1})->Args({64, 1})->Args({64, 8});

void BM_TryResolveDeadline(benchmark::State& state) {
  // Per-request deadline on a cold service: measures how quickly an
  // abandoned batch drains. The cancelled/retries counters on the row show
  // the interruption machinery actually engaging (and the cache never
  // absorbing an aborted shard — retries only, no wrong answers).
  auto db = World(static_cast<std::size_t>(state.range(0)));
  Statistic statistic = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = 2;
  serve::EvalService service(options);
  for (auto _ : state) {
    service.ClearCache();
    ExecutionBudget budget =
        ExecutionBudget::WithTimeout(std::chrono::milliseconds(1));
    benchmark::DoNotOptimize(
        service.TryResolve(statistic.features(), *db, &budget).size());
  }
  ExportServeStats(state, service);
}
BENCHMARK(BM_TryResolveDeadline)->Arg(32)->Arg(64);

}  // namespace
}  // namespace featsep
