// Delta-maintenance benchmarks (DESIGN.md §14): the steady-state cost of
// keeping a warm serve tier and the separability verdicts current across
// single-fact mutations, against the permanently-naive alternative of
// recomputing everything from a cold cache.
//
// Each iteration applies an insert immediately undone by a remove, so the
// database content (and digest) returns to its starting point and the
// series is steady-state by construction. The incremental rows pay two
// IncrementalMaintainer::ApplyDelta calls (screens + a handful of entity
// re-evaluations + cache re-keying); the cold rows pay two full
// Matrix-shaped evaluations. The acceptance bar is incremental ≥ 10×
// faster than cold on the same mutation.
//
// The sep section stacks IncrementalSeparability::Recheck (warm-started
// LP, witness-reused CQ-SEP) against from-scratch FindSeparator +
// DecideCqSep after the same mutation.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/separability.h"
#include "cq/enumeration.h"
#include "linsep/separability_lp.h"
#include "relational/training_database.h"
#include "serve/eval_service.h"
#include "serve/incremental.h"
#include "workload/generators.h"

namespace featsep {
namespace {

std::shared_ptr<Database> World(std::size_t nodes) {
  // Sparse (average degree ~1): the neighborhood screen's blast radius is a
  // handful of values, which is the regime delta maintenance is built for.
  auto db = bench::RandomGraphDatabase(nodes, nodes, 2024);
  RelationId eta = db->schema().entity_relation();
  const std::vector<Value>& domain = db->domain();
  for (std::size_t i = 0; i < domain.size(); i += 2) {
    db->AddFact(eta, {domain[i]});
  }
  return db;
}

/// The CQ[2] feature bank over the graph schema, connected fragment only: a
/// free-variable-disconnected feature carries a global Boolean component
/// whose truth a single fact anywhere can flip, which by design caps the
/// neighborhood screen at the direction screen (see AffectedEntities). The
/// connected fragment is the regime the delta path is built for.
std::vector<ConjunctiveQuery> FeatureBank() {
  EnumerationOptions options;
  options.include_disconnected = false;
  return EnumerateFeatureQueries(GraphWorkloadSchema(), 2, options);
}

/// The benchmarked mutation: an edge from an existing node to a fresh
/// sink, absent from the generated world, so insert-then-remove restores
/// the starting content (and digest) exactly.
struct Probe {
  RelationId relation;
  std::vector<Value> args;
};

Probe MakeProbe(Database& db) {
  return Probe{db.schema().FindRelation("E"),
               {db.domain()[0], db.Intern("bench-sink")}};
}

void ExportMaintainerStats(benchmark::State& state,
                           const serve::IncrementalMaintainer& maintainer) {
  serve::IncrementalStats stats = maintainer.stats();
  state.counters["deltas"] = static_cast<double>(stats.deltas_applied);
  state.counters["rechecked"] = static_cast<double>(stats.entities_rechecked);
  state.counters["screened_out"] =
      static_cast<double>(stats.entities_screened_out);
  state.counters["patched"] = static_cast<double>(stats.features_patched);
  state.counters["cells_changed"] = static_cast<double>(stats.cells_changed);
}

void BM_SingleFactDeltaMaintain(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  std::vector<ConjunctiveQuery> features = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = 1;
  options.cache_capacity = 1024;
  serve::EvalService service(options);
  service.Matrix(features, *db);  // Warm the tier once, outside the loop.
  serve::IncrementalMaintainer maintainer(&service, features);
  Probe probe = MakeProbe(*db);
  for (auto _ : state) {
    Delta insert = db->InsertFact(probe.relation, probe.args);
    benchmark::DoNotOptimize(
        maintainer.ApplyDelta(*db, insert).changed_entities.size());
    Delta remove = db->RemoveFact(probe.relation, probe.args);
    benchmark::DoNotOptimize(
        maintainer.ApplyDelta(*db, remove).changed_entities.size());
  }
  state.counters["features"] = static_cast<double>(features.size());
  state.counters["entities"] = static_cast<double>(db->Entities().size());
  ExportMaintainerStats(state, maintainer);
}
BENCHMARK(BM_SingleFactDeltaMaintain)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SingleFactColdRecompute(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  std::vector<ConjunctiveQuery> features = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = 1;
  options.cache_capacity = 0;  // Permanently naive: every read re-evaluates.
  serve::EvalService cold(options);
  Probe probe = MakeProbe(*db);
  for (auto _ : state) {
    db->InsertFact(probe.relation, probe.args);
    benchmark::DoNotOptimize(cold.Matrix(features, *db).size());
    db->RemoveFact(probe.relation, probe.args);
    benchmark::DoNotOptimize(cold.Matrix(features, *db).size());
  }
  state.counters["features"] = static_cast<double>(features.size());
  state.counters["entities"] = static_cast<double>(db->Entities().size());
}
BENCHMARK(BM_SingleFactColdRecompute)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// λ(e) = +1 iff e has an outgoing edge. "∃y E(x, y)" is itself a CQ in the
/// bank, so the labeling is realisable (one matrix coordinate separates it)
/// and hom-equivalent entities always agree on it — both warm paths of
/// IncrementalSeparability stay live instead of degenerating to resolves.
TrainingDatabase LabelByOutEdge(std::shared_ptr<Database> db) {
  RelationId edge = db->schema().FindRelation("E");
  std::unordered_set<Value> has_out;
  for (const Fact& fact : db->facts()) {
    if (fact.relation == edge) has_out.insert(fact.args[0]);
  }
  TrainingDatabase training(std::move(db));
  for (Value e : training.Entities()) {
    training.SetLabel(e, has_out.count(e) != 0 ? 1 : -1);
  }
  return training;
}

void BM_IncrementalSepRecheck(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  std::vector<ConjunctiveQuery> features = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = 1;
  options.cache_capacity = 1024;
  serve::EvalService service(options);
  service.Matrix(features, *db);
  serve::IncrementalMaintainer maintainer(&service, features);
  serve::IncrementalSeparability isep(features);
  isep.Recheck(LabelByOutEdge(std::make_shared<Database>(*db)), &service,
               {});  // Prime the previous-verdict state.
  Probe probe = MakeProbe(*db);
  for (auto _ : state) {
    // Mutated recheck: digest moved, so at best a warm-started LP plus a
    // witness probe. Stable recheck: nothing moved, so verdicts are reused
    // outright. The remove restores the starting content for the next lap.
    Delta insert = db->InsertFact(probe.relation, probe.args);
    serve::DeltaMaintenance m = maintainer.ApplyDelta(*db, insert);
    benchmark::DoNotOptimize(
        isep.Recheck(LabelByOutEdge(std::make_shared<Database>(*db)),
                     &service, m.changed_entities)
            .lin_separable);
    benchmark::DoNotOptimize(
        isep.Recheck(LabelByOutEdge(std::make_shared<Database>(*db)),
                     &service, {})
            .lin_separable);
    Delta remove = db->RemoveFact(probe.relation, probe.args);
    m = maintainer.ApplyDelta(*db, remove);
    benchmark::DoNotOptimize(
        isep.Recheck(LabelByOutEdge(std::make_shared<Database>(*db)),
                     &service, m.changed_entities)
            .lin_separable);
  }
  serve::IncrementalSepStats stats = isep.stats();
  state.counters["lin_warm"] = static_cast<double>(stats.lin_warm_hits);
  state.counters["lin_solve"] = static_cast<double>(stats.lin_resolves);
  state.counters["cq_reuse"] = static_cast<double>(stats.cqsep_reuses);
  state.counters["cq_witness"] = static_cast<double>(stats.cqsep_witness_hits);
  state.counters["cq_solve"] = static_cast<double>(stats.cqsep_resolves);
}
BENCHMARK(BM_IncrementalSepRecheck)->Arg(32);

void BM_ColdSepRecompute(benchmark::State& state) {
  auto db = World(static_cast<std::size_t>(state.range(0)));
  std::vector<ConjunctiveQuery> features = FeatureBank();
  serve::ServeOptions options;
  options.num_shards = 1;
  options.cache_capacity = 0;
  serve::EvalService cold(options);
  Probe probe = MakeProbe(*db);
  auto decide = [&] {
    TrainingDatabase training =
        LabelByOutEdge(std::make_shared<Database>(*db));
    const Database& current = training.database();
    std::vector<Value> entities = current.Entities();
    std::vector<FeatureVector> rows = cold.Matrix(features, current);
    TrainingCollection collection;
    for (std::size_t i = 0; i < entities.size(); ++i) {
      collection.emplace_back(rows[i], training.label(entities[i]));
    }
    bool separable = FindSeparator(collection).has_value();
    return separable == DecideCqSep(training).separable;
  };
  for (auto _ : state) {
    // Same three decision points per lap as the incremental row — the naive
    // tier pays a full sweep for the stable middle read too.
    db->InsertFact(probe.relation, probe.args);
    benchmark::DoNotOptimize(decide());
    benchmark::DoNotOptimize(decide());
    db->RemoveFact(probe.relation, probe.args);
    benchmark::DoNotOptimize(decide());
  }
}
BENCHMARK(BM_ColdSepRecompute)->Arg(32);

}  // namespace
}  // namespace featsep
