// Query-by-example (paper, Section 6.1) on a movie database: given people
// marked as positive and negative examples, synthesize a conjunctive query
// explaining the selection — or prove that none exists.

#include <cstdio>
#include <vector>

#include "qbe/qbe.h"
#include "workload/movies.h"

namespace {

void Explain(const featsep::Database& db,
             const std::vector<std::string>& positives,
             const std::vector<std::string>& negatives,
             const std::string& description) {
  using namespace featsep;
  QbeInstance instance;
  instance.db = &db;
  for (const std::string& name : positives) {
    instance.positives.push_back(db.FindValue(name));
  }
  for (const std::string& name : negatives) {
    instance.negatives.push_back(db.FindValue(name));
  }

  QbeOptions options;
  options.minimize_explanation = true;  // Core-minimize the product query.
  QbeResult result = SolveCqQbe(instance, options);

  std::printf("%s\n", description.c_str());
  std::printf("  S+ = {");
  for (std::size_t i = 0; i < positives.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", positives[i].c_str());
  }
  std::printf("}, S- = {");
  for (std::size_t i = 0; i < negatives.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", negatives[i].c_str());
  }
  std::printf("}\n");
  std::printf("  canonical product: %zu facts\n", result.product_facts);
  if (result.exists) {
    std::printf("  explanation: %s\n",
                result.explanation->ToString().c_str());
  } else {
    std::printf("  NO conjunctive query can explain this selection\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto db = featsep::MakeMovieDatabase();
  std::printf("Movie database: %zu facts over %zu people\n\n", db->size(),
              db->Entities().size());

  Explain(*db, {"ada", "bela", "dora", "fay"}, {"carlos", "emil", "gus"},
          "Who are the sci-fi actors?");
  Explain(*db, {"dora", "carlos"}, {"ada", "gus"},
          "Who directs a movie they act in?");
  Explain(*db, {"gus"}, {"ada", "emil"},
          "Who directs without acting?");
  Explain(*db, {"emil"}, {"fay"},
          "Impossible: everything true of emil is true of fay");
  return 0;
}
