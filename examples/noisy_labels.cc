// Approximate separability under label noise (paper, Section 7): Algorithm 2
// computes the provably-optimal GHW(k)-consistent relabeling, and
// Corollary 7.5 classifies unseen data despite the noise.

#include <cstdio>
#include <memory>

#include "core/ghw_separability.h"
#include "workload/generators.h"

int main() {
  using namespace featsep;

  std::printf("noise  entities  min_disagreement  eps=0  eps=0.1  eps=0.3\n");
  for (double noise : {0.0, 0.1, 0.2, 0.3}) {
    RandomGraphParams params;
    params.num_entities = 14;
    params.num_background_nodes = 6;
    params.num_background_edges = 8;
    params.planted_path_length = 2;
    params.label_noise = noise;
    params.seed = 23;
    auto training = RandomPlantedGraph(params);

    // Algorithm 2 (Theorem 7.4): optimal relabeling per →₁ class.
    GhwRelabelResult relabel = GhwOptimalRelabel(*training, 1);
    std::printf("%5.2f  %8zu  %16zu  %5s  %7s  %7s\n", noise,
                training->Entities().size(), relabel.disagreement,
                DecideGhwApxSep(*training, 1, 0.0) ? "yes" : "no",
                DecideGhwApxSep(*training, 1, 0.1) ? "yes" : "no",
                DecideGhwApxSep(*training, 1, 0.3) ? "yes" : "no");
  }

  // End-to-end approximate classification (GHW(k)-ApxCls, Corollary 7.5):
  // train on noisy labels, classify a clean evaluation set.
  RandomGraphParams params;
  params.num_entities = 14;
  params.planted_path_length = 2;
  params.label_noise = 0.2;
  params.seed = 29;
  auto noisy = RandomPlantedGraph(params);

  RandomGraphParams eval_params = params;
  eval_params.label_noise = 0.0;
  eval_params.seed = 31;
  auto eval = RandomPlantedGraph(eval_params);

  auto labeling = GhwApxClassify(noisy, 1, 0.49, eval->database());
  if (!labeling.has_value()) {
    std::printf("\nnot approximately separable at eps=0.49 (unexpected)\n");
    return 1;
  }
  std::size_t correct = 0;
  for (Value e : eval->Entities()) {
    if (labeling->Get(e) == eval->label(e)) ++correct;
  }
  std::printf("\nApxCls trained on 20%% label noise: "
              "clean eval accuracy %zu/%zu\n",
              correct, eval->Entities().size());
  return 0;
}
