// A tour of Section 8 of the paper: feature languages beyond CQs.
//  1. FO separates what CQs cannot (hom-equivalent but non-isomorphic
//     entities).
//  2. The dimension-collapse characterization (Theorem 8.4): FO's definable
//     entity sets are closed under intersection-with-complements; CQ's are
//     not — witnessed concretely on Example 6.2's database.
//  3. The unbounded-dimension mechanism (Prop 8.6): a linear family of
//     CQ-definable sets.

#include <cstdio>
#include <memory>

#include "core/dimension_collapse.h"
#include "core/fo_separability.h"
#include "core/separability.h"
#include "io/reader.h"

namespace {

void PrintFamily(const featsep::Database& db,
                 const featsep::EntitySetFamily& family, const char* name) {
  std::printf("%s definable entity sets:", name);
  for (const auto& set : family) {
    std::printf(" {");
    for (std::size_t i = 0; i < set.size(); ++i) {
      std::printf("%s%s", i ? "," : "", db.value_name(set[i]).c_str());
    }
    std::printf("}");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace featsep;

  // --- 1. CQ vs FO ---------------------------------------------------------
  auto gap = ReadTrainingDatabase(R"(relation Eta 1 entity
relation E 2
Eta(e1)
Eta(e2)
E(e1, t)
E(e2, u1)
E(e2, u2)
label e1 +
label e2 -
)");
  std::printf("== CQ vs FO ==\n");
  std::printf("e1 has one out-edge, e2 has two: hom-equivalent pointed "
              "databases.\n");
  std::printf("CQ-separable: %s\n",
              DecideCqSep(*gap.value()).separable ? "yes" : "no");
  std::printf("FO-separable: %s  (isomorphism distinguishes them)\n\n",
              DecideFoSep(*gap.value()).separable ? "yes" : "no");

  // --- 2. Theorem 8.4 on Example 6.2 --------------------------------------
  auto ex62 = ReadDatabase(R"(relation Eta 1 entity
relation R 1
relation S 1
Eta(a)
Eta(b)
Eta(c)
R(a)
S(a)
S(c)
)");
  const Database& db = *ex62.value();
  std::printf("== Theorem 8.4 on Example 6.2 ==\n");
  EntitySetFamily cq_family = CqDefinableEntitySets(db);
  EntitySetFamily fo_family = FoDefinableEntitySets(db);
  PrintFamily(db, cq_family, "CQ");
  auto cq_violation =
      FindIntersectionClosureViolation(cq_family, db.Entities());
  std::printf("CQ family closed under intersection-with-complements: %s\n",
              cq_violation.has_value() ? "NO (no dimension collapse)"
                                       : "yes");
  auto fo_violation =
      FindIntersectionClosureViolation(fo_family, db.Entities());
  std::printf("FO family (%zu orbit unions) closed: %s "
              "(dimension collapse, Prop 8.1)\n\n",
              fo_family.size(),
              fo_violation.has_value() ? "NO" : "yes");

  // --- 3. Prop 8.6: a linear family ---------------------------------------
  auto chain = ReadDatabase(R"(relation Eta 1 entity
relation E 2
Eta(p0)
Eta(q0)
Eta(r0)
E(q0, q1)
E(r0, r1)
E(r1, r2)
)");
  std::printf("== Prop 8.6: linear CQ family on nested path heads ==\n");
  EntitySetFamily linear = CqDefinableEntitySets(*chain.value());
  PrintFamily(*chain.value(), linear, "CQ");
  std::printf("linear (chain under inclusion): %s — the unbounded-dimension "
              "mechanism of Theorem 8.7\n",
              IsLinearFamily(linear) ? "yes" : "no");
  return 0;
}
