// Propositionalization-style feature generation over multi-relational data
// (the paper's intro motivation [24, 29]): molecules labeled by a hidden
// structural motif. The CQ[m] machinery of Section 4 recovers the motif as
// an explicit, human-readable feature query.

#include <cstdio>

#include "core/separability.h"
#include "workload/molecules.h"

int main() {
  using namespace featsep;

  MoleculeParams params;
  params.num_molecules = 8;
  params.atoms_per_molecule = 5;
  params.bonds_per_molecule = 5;
  params.seed = 5;
  auto training = MakeMoleculeDataset(params);

  std::printf("Molecule dataset: %zu molecules (%zu positive), %zu facts\n",
              training->Entities().size(),
              training->PositiveExamples().size(),
              training->database().size());

  // Sweep the atom budget m: the planted motif (nitrogen–oxygen bond)
  // needs 4 atoms; the paper's regularization question is exactly "what is
  // the smallest m for which CQ[m] features separate?".
  for (std::size_t m = 1; m <= 4; ++m) {
    // Limit variable reuse (CQ[m,p] of Prop 4.3) to keep the feature space
    // tractable as m grows.
    CqmSepResult result = DecideCqmSep(*training, m, 2);
    std::printf("CQ[%zu]: %s (searched %zu features)\n", m,
                result.separable ? "separable" : "not separable",
                result.features_enumerated);
    if (result.separable) {
      std::printf("  discovered feature queries:\n");
      for (const ConjunctiveQuery& q : result.model->statistic.features()) {
        std::printf("    %s\n", q.ToString().c_str());
      }
      std::printf("  training errors: %zu\n",
                  result.model->TrainingErrors(*training));

      // Classify a fresh batch of molecules with the learned model.
      MoleculeParams eval_params = params;
      eval_params.seed = 17;
      eval_params.num_molecules = 6;
      auto eval = MakeMoleculeDataset(eval_params);
      Labeling predicted = result.model->Apply(eval->database());
      std::size_t correct = 0;
      for (Value e : eval->Entities()) {
        if (predicted.Get(e) == eval->label(e)) ++correct;
      }
      std::printf("  held-out accuracy: %zu/%zu\n", correct,
                  eval->Entities().size());
      break;
    }
  }
  return 0;
}
