// featsep command-line tool: run the paper's separability, feature
// generation, classification, relabeling, and query-by-example algorithms
// on databases in the featsep text format (see src/io/reader.h).
//
// Usage:
//   featsep_cli sep <training-file>
//       Separability report: CQ-SEP, GHW(1)/GHW(2)-SEP, CQ[1..3]-SEP.
//   featsep_cli train <training-file> <m> <model-file>
//       Generate a CQ[m] statistic + classifier and save it.
//   featsep_cli classify <training-file> <model-file> <db-file>
//       Apply a saved model to a database; prints one label per entity.
//   featsep_cli relabel <training-file> <k>
//       Algorithm 2: optimal GHW(k)-consistent relabeling.
//   featsep_cli qbe <db-file> +<entity> ... -<entity> ...
//       CQ query-by-example over the marked examples.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ghw_separability.h"
#include "core/separability.h"
#include "io/model_io.h"
#include "io/reader.h"
#include "io/writer.h"
#include "qbe/qbe.h"

namespace {

using namespace featsep;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "featsep_cli: %s\n", message.c_str());
  return 1;
}

int CmdSep(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) return Fail("cannot read " + path);
  auto training = ReadTrainingDatabase(text);
  if (!training.ok()) return Fail(training.error().message());

  CqSepResult cq = DecideCqSep(*training.value());
  std::printf("CQ-SEP:      %s\n", cq.separable ? "separable" : "NOT separable");
  if (cq.conflict.has_value()) {
    const Database& db = training.value()->database();
    std::printf("  conflict: %s vs %s (hom-equivalent, labels differ)\n",
                db.value_name(cq.conflict->first).c_str(),
                db.value_name(cq.conflict->second).c_str());
  }
  for (std::size_t k = 1; k <= 2; ++k) {
    GhwSepResult ghw = DecideGhwSep(*training.value(), k);
    std::printf("GHW(%zu)-SEP:  %s\n", k,
                ghw.separable ? "separable" : "NOT separable");
  }
  for (std::size_t m = 1; m <= 3; ++m) {
    CqmSepResult result = DecideCqmSep(*training.value(), m, 2);
    std::printf("CQ[%zu]-SEP:   %s (%zu features searched)\n", m,
                result.separable ? "separable" : "NOT separable",
                result.features_enumerated);
    if (result.separable) break;
  }
  return 0;
}

int CmdTrain(const std::string& training_path, const std::string& m_text,
             const std::string& model_path) {
  std::string text;
  if (!ReadFile(training_path, &text)) {
    return Fail("cannot read " + training_path);
  }
  auto training = ReadTrainingDatabase(text);
  if (!training.ok()) return Fail(training.error().message());
  std::size_t m = static_cast<std::size_t>(std::stoul(m_text));

  CqmSepResult result = DecideCqmSep(*training.value(), m);
  if (!result.separable) {
    return Fail("training database is not CQ[" + m_text + "]-separable");
  }
  std::ofstream out(model_path);
  if (!out) return Fail("cannot write " + model_path);
  out << WriteSeparatorModel(*result.model);
  std::printf("model with %zu features written to %s\n",
              result.model->statistic.dimension(), model_path.c_str());
  return 0;
}

int CmdClassify(const std::string& training_path,
                const std::string& model_path, const std::string& db_path) {
  std::string training_text;
  std::string model_text;
  std::string db_text;
  if (!ReadFile(training_path, &training_text)) {
    return Fail("cannot read " + training_path);
  }
  if (!ReadFile(model_path, &model_text)) {
    return Fail("cannot read " + model_path);
  }
  if (!ReadFile(db_path, &db_text)) return Fail("cannot read " + db_path);

  // The schema travels with the training file.
  auto training = ReadTrainingDatabase(training_text);
  if (!training.ok()) return Fail(training.error().message());
  auto schema = training.value()->database().schema_ptr();
  auto model = ReadSeparatorModel(schema, model_text);
  if (!model.ok()) return Fail(model.error().message());
  auto db = ReadDatabase(db_text);
  if (!db.ok()) return Fail(db.error().message());

  Labeling predicted = model.value().Apply(*db.value());
  for (Value e : db.value()->Entities()) {
    std::printf("%s %s\n", db.value()->value_name(e).c_str(),
                predicted.Get(e) == kPositive ? "+" : "-");
  }
  return 0;
}

int CmdRelabel(const std::string& path, const std::string& k_text) {
  std::string text;
  if (!ReadFile(path, &text)) return Fail("cannot read " + path);
  auto training = ReadTrainingDatabase(text);
  if (!training.ok()) return Fail(training.error().message());
  std::size_t k = static_cast<std::size_t>(std::stoul(k_text));

  GhwRelabelResult result = GhwOptimalRelabel(*training.value(), k);
  std::printf("# optimal GHW(%zu)-consistent relabeling, disagreement %zu\n",
              k, result.disagreement);
  const Database& db = training.value()->database();
  for (Value e : training.value()->Entities()) {
    std::printf("label %s %s\n", db.value_name(e).c_str(),
                result.relabeled.Get(e) == kPositive ? "+" : "-");
  }
  return 0;
}

int CmdQbe(const std::string& path, const std::vector<std::string>& marks) {
  std::string text;
  if (!ReadFile(path, &text)) return Fail("cannot read " + path);
  // Accept both plain databases and training files (labels ignored).
  std::shared_ptr<Database> database;
  auto as_training = ReadTrainingDatabase(text);
  if (as_training.ok()) {
    database = as_training.value()->database_ptr();
  } else {
    auto db = ReadDatabase(text);
    if (!db.ok()) return Fail(db.error().message());
    database = db.value();
  }

  QbeInstance instance;
  instance.db = database.get();
  for (const std::string& mark : marks) {
    if (mark.size() < 2 || (mark[0] != '+' && mark[0] != '-')) {
      return Fail("examples must look like +name or -name: " + mark);
    }
    Value v = database->FindValue(mark.substr(1));
    if (v == kNoValue) return Fail("unknown value " + mark.substr(1));
    if (mark[0] == '+') {
      instance.positives.push_back(v);
    } else {
      instance.negatives.push_back(v);
    }
  }
  if (instance.positives.empty()) return Fail("need at least one +example");

  QbeOptions options;
  options.minimize_explanation = true;
  QbeResult result = SolveCqQbe(instance, options);
  if (!result.exists) {
    std::printf("no conjunctive query explains this selection\n");
    return 0;
  }
  std::printf("%s\n", result.explanation->ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Fail("usage: featsep_cli sep|train|classify|relabel|qbe ... "
                "(see source header)");
  }
  const std::string& command = args[0];
  if (command == "sep" && args.size() == 2) return CmdSep(args[1]);
  if (command == "train" && args.size() == 4) {
    return CmdTrain(args[1], args[2], args[3]);
  }
  if (command == "classify" && args.size() == 4) {
    return CmdClassify(args[1], args[2], args[3]);
  }
  if (command == "relabel" && args.size() == 3) {
    return CmdRelabel(args[1], args[2]);
  }
  if (command == "qbe" && args.size() >= 3) {
    return CmdQbe(args[1], {args.begin() + 2, args.end()});
  }
  return Fail("bad arguments for '" + command + "'");
}
