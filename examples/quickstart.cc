// Quickstart for the featsep library: build a labeled entity database,
// decide separability under the paper's regularizations, generate feature
// queries, and classify unseen entities.
//
// Scenario: entities are accounts in a tiny transaction graph; an account
// is "suspicious" (+1) when it starts a money-forwarding chain of length 2.

#include <cstdio>
#include <memory>

#include "core/ghw_separability.h"
#include "core/separability.h"
#include "io/reader.h"
#include "relational/training_database.h"

namespace {

constexpr const char* kTrainingText = R"(# accounts and transfers
relation Eta 1 entity
relation E 2
Eta(alice)
Eta(bob)
Eta(carol)
Eta(dave)
E(alice, shell1)
E(shell1, offshore)
E(bob, shop)
E(carol, shell2)
E(shell2, offshore)
label alice +
label bob -
label carol +
label dave -
)";

constexpr const char* kEvalText = R"(relation Eta 1 entity
relation E 2
Eta(erin)
Eta(frank)
E(erin, mixer)
E(mixer, exit)
E(frank, cafe)
)";

}  // namespace

int main() {
  using namespace featsep;

  auto training_result = ReadTrainingDatabase(kTrainingText);
  if (!training_result.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 training_result.error().message().c_str());
    return 1;
  }
  std::shared_ptr<TrainingDatabase> training = training_result.value();
  std::printf("Training database: %zu facts, %zu entities\n",
              training->database().size(), training->Entities().size());

  // --- CQ separability (Theorem 3.2 test) --------------------------------
  CqSepResult cq = DecideCqSep(*training);
  std::printf("CQ-separable: %s\n", cq.separable ? "yes" : "no");

  // --- CQ[m]: bounded number of atoms (Section 4) ------------------------
  for (std::size_t m = 1; m <= 2; ++m) {
    CqmSepResult result = DecideCqmSep(*training, m);
    std::printf("CQ[%zu]-separable: %s (%zu candidate features)\n", m,
                result.separable ? "yes" : "no", result.features_enumerated);
    if (result.separable) {
      std::printf("  generated statistic:\n");
      for (const ConjunctiveQuery& q : result.model->statistic.features()) {
        std::printf("    %s\n", q.ToString().c_str());
      }
      std::printf("  classifier: %s\n",
                  result.model->classifier.ToString().c_str());

      auto eval_result = ReadDatabase(kEvalText);
      if (!eval_result.ok()) return 1;
      Labeling predicted = result.model->Apply(*eval_result.value());
      for (Value e : eval_result.value()->Entities()) {
        std::printf("  eval %s -> %+d\n",
                    eval_result.value()->value_name(e).c_str(),
                    predicted.Get(e));
      }
    }
  }

  // --- GHW(k): bounded generalized hypertree width (Section 5) -----------
  GhwSepResult ghw = DecideGhwSep(*training, 1);
  std::printf("GHW(1)-separable: %s\n", ghw.separable ? "yes" : "no");
  if (ghw.separable) {
    auto classifier = GhwClassifier::Train(training, 1);
    std::printf("Algorithm 1: implicit statistic of dimension %zu "
                "(features never materialized)\n",
                classifier->dimension());
    auto eval_result = ReadDatabase(kEvalText);
    if (!eval_result.ok()) return 1;
    Labeling predicted = classifier->Classify(*eval_result.value());
    for (Value e : eval_result.value()->Entities()) {
      std::printf("  eval %s -> %+d\n",
                  eval_result.value()->value_name(e).c_str(),
                  predicted.Get(e));
    }
  }
  return 0;
}
