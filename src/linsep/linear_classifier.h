#ifndef FEATSEP_LINSEP_LINEAR_CLASSIFIER_H_
#define FEATSEP_LINSEP_LINEAR_CLASSIFIER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "numeric/rational.h"
#include "relational/value.h"

namespace featsep {

/// A feature vector over {1, -1} — the image Π^D(e) of an entity under a
/// statistic (paper, Section 3).
using FeatureVector = std::vector<int>;

/// A linear classifier Λ_w̄ with w̄ = (w₀, w₁, …, wₙ) (paper, Section 2):
///   Λ(b₁,…,bₙ) = +1  iff  Σᵢ wᵢ·bᵢ ≥ w₀.
/// Weights are exact rationals so classification decisions at the boundary
/// are never corrupted by rounding.
class LinearClassifier {
 public:
  LinearClassifier() = default;

  /// threshold = w₀, weights = (w₁,…,wₙ).
  LinearClassifier(Rational threshold, std::vector<Rational> weights);

  std::size_t arity() const { return weights_.size(); }
  const Rational& threshold() const { return threshold_; }
  const std::vector<Rational>& weights() const { return weights_; }

  /// Λ(features); the vector length must equal arity, entries must be ±1.
  Label Classify(const FeatureVector& features) const;

  /// Number of examples (features, label) the classifier gets wrong.
  std::size_t CountErrors(
      const std::vector<std::pair<FeatureVector, Label>>& examples) const;

  std::string ToString() const;

 private:
  Rational threshold_;
  std::vector<Rational> weights_;
};

}  // namespace featsep

#endif  // FEATSEP_LINSEP_LINEAR_CLASSIFIER_H_
