#include "linsep/min_error.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "linsep/perceptron.h"
#include "util/check.h"

namespace featsep {

namespace {

struct Group {
  FeatureVector vector;
  std::size_t positives = 0;
  std::size_t negatives = 0;

  std::size_t CostIf(Label assigned) const {
    return assigned == kPositive ? negatives : positives;
  }
  std::size_t UnavoidableCost() const {
    return std::min(positives, negatives);
  }
  Label MajorityLabel() const {
    return positives >= negatives ? kPositive : kNegative;
  }
};

/// Depth-first branch and bound over per-group label assignments.
class MinErrorSearch {
 public:
  MinErrorSearch(std::vector<Group> groups, std::size_t incumbent_errors,
                 LinearClassifier incumbent)
      : groups_(std::move(groups)),
        best_errors_(incumbent_errors),
        best_classifier_(std::move(incumbent)) {
    suffix_lower_bound_.assign(groups_.size() + 1, 0);
    for (std::size_t i = groups_.size(); i-- > 0;) {
      suffix_lower_bound_[i] =
          suffix_lower_bound_[i + 1] + groups_[i].UnavoidableCost();
    }
  }

  MinErrorResult Run() {
    assigned_.clear();
    Recurse(0, 0);
    return MinErrorResult{best_errors_, best_classifier_};
  }

 private:
  void Recurse(std::size_t depth, std::size_t cost) {
    if (cost + suffix_lower_bound_[depth] >= best_errors_) return;
    // Realizability of the partial assignment.
    std::optional<LinearClassifier> separator = FindSeparator(assigned_);
    if (!separator.has_value()) return;
    if (depth == groups_.size()) {
      best_errors_ = cost;
      best_classifier_ = std::move(*separator);
      return;
    }
    const Group& group = groups_[depth];
    Label majority = group.MajorityLabel();
    for (Label label : {majority, static_cast<Label>(-majority)}) {
      assigned_.emplace_back(group.vector, label);
      Recurse(depth + 1, cost + group.CostIf(label));
      assigned_.pop_back();
      if (best_errors_ == 0) return;
    }
  }

  std::vector<Group> groups_;
  std::vector<std::size_t> suffix_lower_bound_;
  TrainingCollection assigned_;
  std::size_t best_errors_;
  LinearClassifier best_classifier_;
};

}  // namespace

MinErrorResult MinimizeErrors(const TrainingCollection& examples) {
  if (examples.empty()) {
    return MinErrorResult{0, LinearClassifier(Rational(0), {})};
  }

  // Group duplicates.
  std::map<FeatureVector, Group> by_vector;
  for (const auto& [features, label] : examples) {
    Group& group = by_vector[features];
    group.vector = features;
    if (label == kPositive) {
      ++group.positives;
    } else {
      ++group.negatives;
    }
  }
  std::vector<Group> groups;
  groups.reserve(by_vector.size());
  for (auto& [vector, group] : by_vector) {
    (void)vector;
    groups.push_back(std::move(group));
  }
  // Most decisive groups first: larger |positives - negatives| means the
  // majority branch is more likely to be part of the optimum.
  std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    auto skew = [](const Group& g) {
      return g.positives > g.negatives ? g.positives - g.negatives
                                       : g.negatives - g.positives;
    };
    return skew(a) > skew(b);
  });

  auto [incumbent, incumbent_errors] = PocketPerceptron(examples);
  MinErrorSearch search(std::move(groups), incumbent_errors,
                        std::move(incumbent));
  MinErrorResult result = search.Run();
  FEATSEP_CHECK_EQ(result.classifier.CountErrors(examples), result.errors)
      << "min-error classifier does not achieve its reported error";
  return result;
}

bool IsSeparableWithError(const TrainingCollection& examples,
                          double epsilon) {
  FEATSEP_CHECK_GE(epsilon, 0.0);
  FEATSEP_CHECK_LT(epsilon, 1.0);
  double budget = epsilon * static_cast<double>(examples.size());
  MinErrorResult result = MinimizeErrors(examples);
  return static_cast<double>(result.errors) <= budget;
}

}  // namespace featsep
