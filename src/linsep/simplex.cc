#include "linsep/simplex.h"

#include <cstddef>
#include <utility>

#include "testing/coverage.h"
#include "testing/faults.h"
#include "util/budget.h"
#include "util/check.h"

namespace featsep {

namespace {

/// Outcome of one Optimize() run.
enum class OptimizeResult { kOptimal, kUnbounded, kInterrupted };

/// Dense simplex tableau with explicit objective row; all entries exact.
class Tableau {
 public:
  /// rows: coefficient rows (with slacks/artificials appended by caller
  /// logic below); rhs must be ≥ 0 after setup.
  Tableau(std::size_t num_rows, std::size_t num_cols)
      : num_rows_(num_rows),
        num_cols_(num_cols),
        rows_(num_rows, std::vector<Rational>(num_cols)),
        rhs_(num_rows),
        objective_(num_cols),
        objective_value_(0),
        basis_(num_rows, 0) {}

  std::vector<Rational>& row(std::size_t i) { return rows_[i]; }
  Rational& rhs(std::size_t i) { return rhs_[i]; }
  std::vector<std::size_t>& basis() { return basis_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_cols() const { return num_cols_; }
  const Rational& objective_value() const { return objective_value_; }

  /// Installs -objective into the z-row and prices out the basic columns
  /// (so that reduced costs of basic variables are zero).
  void SetObjective(const std::vector<Rational>& c) {
    FEATSEP_CHECK_EQ(c.size(), num_cols_);
    for (std::size_t j = 0; j < num_cols_; ++j) objective_[j] = -c[j];
    objective_value_ = 0;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      std::size_t basic = basis_[i];
      if (objective_[basic].is_zero()) continue;
      Rational factor = objective_[basic];
      for (std::size_t j = 0; j < num_cols_; ++j) {
        objective_[j] -= factor * rows_[i][j];
      }
      objective_value_ -= factor * rhs_[i];
    }
  }

  /// Runs simplex pivots (maximization) with Bland's rule until optimal,
  /// unbounded, or the budget trips (one charge per pivot).
  OptimizeResult Optimize(ExecutionBudget* budget) {
    while (true) {
      // Entering column: smallest index with negative reduced cost.
      std::size_t entering = num_cols_;
      for (std::size_t j = 0; j < num_cols_; ++j) {
        if (objective_[j].sign() < 0) {
          entering = j;
          break;
        }
      }
      if (entering == num_cols_) return OptimizeResult::kOptimal;

      // Leaving row: minimum ratio; Bland ties by smallest basis index.
      std::size_t leaving = num_rows_;
      Rational best_ratio = 0;
      for (std::size_t i = 0; i < num_rows_; ++i) {
        if (rows_[i][entering].sign() <= 0) continue;
        Rational ratio = rhs_[i] / rows_[i][entering];
        if (leaving == num_rows_ || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leaving])) {
          leaving = i;
          best_ratio = ratio;
        }
      }
      if (leaving == num_rows_) return OptimizeResult::kUnbounded;
      if (!ChargeBudget(budget)) return OptimizeResult::kInterrupted;
      Pivot(leaving, entering);
    }
  }

  void Pivot(std::size_t pivot_row, std::size_t pivot_col) {
    FEATSEP_COVERAGE(kSimplexPivot);
    FEATSEP_FAULT_POINT(kSimplexPivot);
    Rational pivot = rows_[pivot_row][pivot_col];
    FEATSEP_CHECK(pivot.sign() != 0);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      rows_[pivot_row][j] /= pivot;
    }
    rhs_[pivot_row] /= pivot;
    for (std::size_t i = 0; i < num_rows_; ++i) {
      if (i == pivot_row || rows_[i][pivot_col].is_zero()) continue;
      Rational factor = rows_[i][pivot_col];
      for (std::size_t j = 0; j < num_cols_; ++j) {
        rows_[i][j] -= factor * rows_[pivot_row][j];
      }
      rhs_[i] -= factor * rhs_[pivot_row];
    }
    if (!objective_[pivot_col].is_zero()) {
      Rational factor = objective_[pivot_col];
      for (std::size_t j = 0; j < num_cols_; ++j) {
        objective_[j] -= factor * rows_[pivot_row][j];
      }
      objective_value_ -= factor * rhs_[pivot_row];
    }
    basis_[pivot_row] = pivot_col;
  }

 private:
  std::size_t num_rows_;
  std::size_t num_cols_;
  std::vector<std::vector<Rational>> rows_;
  std::vector<Rational> rhs_;
  std::vector<Rational> objective_;  // Reduced costs (z_j - c_j).
  Rational objective_value_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution SolveLp(const LpProblem& problem, ExecutionBudget* budget) {
  std::size_t m = problem.a.size();
  std::size_t n = problem.c.size();
  FEATSEP_CHECK_EQ(problem.b.size(), m);
  for (const std::vector<Rational>& row : problem.a) {
    FEATSEP_CHECK_EQ(row.size(), n);
  }

  auto interrupted = [&]() {
    LpSolution solution;
    solution.status = LpStatus::kInterrupted;
    solution.outcome = OutcomeOf(budget);
    return solution;
  };
  // A zero/expired/cancelled budget at entry: bail before building the
  // tableau.
  if (!RecheckBudget(budget)) return interrupted();

  // Columns: n original, m slacks, up to m artificials.
  // Determine which rows need an artificial (those with negative rhs whose
  // slack, after negation, has coefficient -1).
  std::vector<bool> needs_artificial(m, false);
  std::size_t num_artificials = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (problem.b[i].sign() < 0) {
      needs_artificial[i] = true;
      ++num_artificials;
    }
  }

  std::size_t cols = n + m + num_artificials;
  Tableau tableau(m, cols);

  std::size_t artificial_col = n + m;
  std::vector<std::size_t> artificial_columns;
  for (std::size_t i = 0; i < m; ++i) {
    bool negate = problem.b[i].sign() < 0;
    for (std::size_t j = 0; j < n; ++j) {
      tableau.row(i)[j] = negate ? -problem.a[i][j] : problem.a[i][j];
    }
    tableau.row(i)[n + i] = negate ? Rational(-1) : Rational(1);
    tableau.rhs(i) = negate ? -problem.b[i] : problem.b[i];
    if (needs_artificial[i]) {
      tableau.row(i)[artificial_col] = 1;
      tableau.basis()[i] = artificial_col;
      artificial_columns.push_back(artificial_col);
      ++artificial_col;
    } else {
      tableau.basis()[i] = n + i;  // Slack is basic.
    }
  }

  // Phase 1: maximize -(sum of artificials).
  if (num_artificials > 0) {
    FEATSEP_COVERAGE(kSimplexPhase1);
    std::vector<Rational> phase1(cols);
    for (std::size_t col : artificial_columns) phase1[col] = -1;
    tableau.SetObjective(phase1);
    OptimizeResult phase1_result = tableau.Optimize(budget);
    if (phase1_result == OptimizeResult::kInterrupted) return interrupted();
    FEATSEP_CHECK(phase1_result != OptimizeResult::kUnbounded)
        << "phase-1 LP cannot be unbounded";
    if (tableau.objective_value().sign() < 0) {
      FEATSEP_COVERAGE(kSimplexInfeasible);
      LpSolution solution;
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Pivot any artificial still in the basis (at value 0) out of it.
    for (std::size_t i = 0; i < m; ++i) {
      std::size_t basic = tableau.basis()[i];
      bool is_artificial = basic >= n + m;
      if (!is_artificial) continue;
      std::size_t pivot_col = cols;
      for (std::size_t j = 0; j < n + m; ++j) {
        if (!tableau.row(i)[j].is_zero()) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col != cols) {
        tableau.Pivot(i, pivot_col);
      } else {
        FEATSEP_COVERAGE(kSimplexDegenerate);
      }
      // Otherwise the row is redundant (all-zero over real columns with
      // zero rhs); leaving the artificial basic at level 0 is harmless as
      // long as its column never re-enters, which the phase-2 objective
      // (zero coefficient, nonnegative reduced cost) guarantees after we
      // zero it below.
    }
  }

  // Fix every nonbasic artificial at zero by clearing its column (its basic
  // occurrences are unit columns already); this removes the variable from
  // the problem so it can never re-enter during phase 2.
  for (std::size_t col : artificial_columns) {
    for (std::size_t i = 0; i < m; ++i) {
      if (tableau.basis()[i] != col) tableau.row(i)[col] = 0;
    }
  }

  // Phase 2: real objective (zero on slacks and artificials).
  std::vector<Rational> phase2(cols);
  for (std::size_t j = 0; j < n; ++j) phase2[j] = problem.c[j];
  tableau.SetObjective(phase2);

  OptimizeResult phase2_result = tableau.Optimize(budget);
  if (phase2_result == OptimizeResult::kInterrupted) return interrupted();
  if (phase2_result == OptimizeResult::kUnbounded) {
    FEATSEP_COVERAGE(kSimplexUnbounded);
    LpSolution solution;
    solution.status = LpStatus::kUnbounded;
    return solution;
  }

  FEATSEP_COVERAGE(kSimplexOptimal);
  LpSolution solution;
  solution.status = LpStatus::kOptimal;
  solution.objective = tableau.objective_value();
  solution.x.assign(n, Rational(0));
  for (std::size_t i = 0; i < m; ++i) {
    if (tableau.basis()[i] < n) {
      solution.x[tableau.basis()[i]] = tableau.rhs(i);
    }
  }
  return solution;
}

}  // namespace featsep
