#ifndef FEATSEP_LINSEP_SIMPLEX_H_
#define FEATSEP_LINSEP_SIMPLEX_H_

#include <vector>

#include "numeric/rational.h"
#include "util/budget.h"

namespace featsep {

/// A linear program in inequality form:
///   maximize c·x  subject to  A x ≤ b,  x ≥ 0.
struct LpProblem {
  std::vector<std::vector<Rational>> a;  ///< m rows of n coefficients.
  std::vector<Rational> b;               ///< m right-hand sides.
  std::vector<Rational> c;               ///< n objective coefficients.
};

enum class LpStatus {
  kOptimal,      ///< Finite optimum found.
  kInfeasible,   ///< The constraint set is empty.
  kUnbounded,    ///< The objective is unbounded above.
  kInterrupted,  ///< The execution budget tripped mid-solve — undecided.
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  Rational objective;
  std::vector<Rational> x;  ///< Optimal point (valid for kOptimal).
  /// kCompleted iff `status` is definitive; otherwise the budget outcome
  /// accompanying kInterrupted.
  BudgetOutcome outcome = BudgetOutcome::kCompleted;
};

/// Solves the LP with a dense two-phase primal simplex over exact rational
/// arithmetic, using Bland's anti-cycling rule (guaranteed termination).
/// Exactness matters here: linear separability of training collections
/// (paper, Section 2 / Proposition 4.1 / [19, 21]) must be decided without
/// floating-point tolerance artifacts at the separating hyperplane.
///
/// `budget` (nullptr = unbounded) is checked at entry and charged one step
/// per pivot; an interrupted solve returns kInterrupted, never a definitive
/// status.
LpSolution SolveLp(const LpProblem& problem,
                   ExecutionBudget* budget = nullptr);

}  // namespace featsep

#endif  // FEATSEP_LINSEP_SIMPLEX_H_
