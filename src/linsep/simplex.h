#ifndef FEATSEP_LINSEP_SIMPLEX_H_
#define FEATSEP_LINSEP_SIMPLEX_H_

#include <vector>

#include "numeric/rational.h"

namespace featsep {

/// A linear program in inequality form:
///   maximize c·x  subject to  A x ≤ b,  x ≥ 0.
struct LpProblem {
  std::vector<std::vector<Rational>> a;  ///< m rows of n coefficients.
  std::vector<Rational> b;               ///< m right-hand sides.
  std::vector<Rational> c;               ///< n objective coefficients.
};

enum class LpStatus {
  kOptimal,     ///< Finite optimum found.
  kInfeasible,  ///< The constraint set is empty.
  kUnbounded,   ///< The objective is unbounded above.
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  Rational objective;
  std::vector<Rational> x;  ///< Optimal point (valid for kOptimal).
};

/// Solves the LP with a dense two-phase primal simplex over exact rational
/// arithmetic, using Bland's anti-cycling rule (guaranteed termination).
/// Exactness matters here: linear separability of training collections
/// (paper, Section 2 / Proposition 4.1 / [19, 21]) must be decided without
/// floating-point tolerance artifacts at the separating hyperplane.
LpSolution SolveLp(const LpProblem& problem);

}  // namespace featsep

#endif  // FEATSEP_LINSEP_SIMPLEX_H_
