#ifndef FEATSEP_LINSEP_SEPARABILITY_LP_H_
#define FEATSEP_LINSEP_SEPARABILITY_LP_H_

#include <optional>
#include <utility>
#include <vector>

#include "linsep/linear_classifier.h"
#include "util/budget.h"

namespace featsep {

/// A training collection (b̄ᵢ, yᵢ)ᵢ of ±1 feature vectors with ±1 labels
/// (paper, Section 2).
using TrainingCollection = std::vector<std::pair<FeatureVector, Label>>;

/// Decides linear separability of a training collection and, when
/// separable, returns a witnessing classifier (paper, Section 2 and
/// Proposition 4.1; tractable by LP, [19, 21]).
///
/// Encoding: Λ(b̄) = y for all examples iff the system
///   Σⱼ wⱼ·bᵢⱼ − w₀ ≥ 0    for yᵢ = +1
///   Σⱼ wⱼ·bᵢⱼ − w₀ ≤ −1   for yᵢ = −1
/// is feasible — the strict "< w₀" branch of the classifier is rescaled to
/// margin −1 by homogeneity in (w̄, w₀). Solved exactly by the rational
/// simplex with free variables split into nonnegative pairs.
std::optional<LinearClassifier> FindSeparator(
    const TrainingCollection& examples);

/// Outcome of a budgeted separator search.
struct SeparatorSearch {
  /// kCompleted: `classifier` is definitive (nullopt = not separable).
  /// Otherwise the simplex was interrupted and separability is UNDECIDED.
  BudgetOutcome outcome = BudgetOutcome::kCompleted;
  std::optional<LinearClassifier> classifier;
};

/// Budgeted FindSeparator: `budget` (nullptr = unbounded) is charged one
/// step per simplex pivot; an interrupted solve reports the budget outcome
/// and no classifier.
SeparatorSearch TryFindSeparator(const TrainingCollection& examples,
                                 ExecutionBudget* budget);

/// Warm-started separator search for incremental workloads (DESIGN.md §14).
/// The warm start reuses the previous solve's optimal *point* rather than
/// its basis: for the feasibility LP any feasible point is an answer, so if
/// `previous` still classifies every example in `changed_rows` correctly it
/// is feasible for the whole new system — the caller asserts all other rows
/// are unchanged since the solve that produced `previous`, whose
/// constraints it already satisfied — and is returned in O(|changed_rows| ·
/// arity) rational arithmetic with zero pivots. Any miss (or an arity
/// mismatch) falls back to a fresh TryFindSeparator over all examples.
/// The verdict is identical to the cold path either way.
SeparatorSearch TryFindSeparatorWarm(const TrainingCollection& examples,
                                     const LinearClassifier& previous,
                                     const std::vector<std::size_t>& changed_rows,
                                     ExecutionBudget* budget);

/// True iff the collection is linearly separable.
bool IsLinearlySeparable(const TrainingCollection& examples);

}  // namespace featsep

#endif  // FEATSEP_LINSEP_SEPARABILITY_LP_H_
