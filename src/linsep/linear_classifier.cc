#include "linsep/linear_classifier.h"

#include <sstream>
#include <utility>

#include "util/check.h"

namespace featsep {

LinearClassifier::LinearClassifier(Rational threshold,
                                   std::vector<Rational> weights)
    : threshold_(std::move(threshold)), weights_(std::move(weights)) {}

Label LinearClassifier::Classify(const FeatureVector& features) const {
  FEATSEP_CHECK_EQ(features.size(), weights_.size())
      << "feature vector arity mismatch";
  Rational sum = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    FEATSEP_CHECK(features[i] == 1 || features[i] == -1)
        << "feature entries must be +1/-1";
    if (features[i] == 1) {
      sum += weights_[i];
    } else {
      sum -= weights_[i];
    }
  }
  return sum >= threshold_ ? kPositive : kNegative;
}

std::size_t LinearClassifier::CountErrors(
    const std::vector<std::pair<FeatureVector, Label>>& examples) const {
  std::size_t errors = 0;
  for (const auto& [features, label] : examples) {
    if (Classify(features) != label) ++errors;
  }
  return errors;
}

std::string LinearClassifier::ToString() const {
  std::ostringstream out;
  out << "Lambda(w0=" << threshold_.ToString();
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    out << ", w" << (i + 1) << "=" << weights_[i].ToString();
  }
  out << ")";
  return out.str();
}

}  // namespace featsep
