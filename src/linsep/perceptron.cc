#include "linsep/perceptron.h"

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace featsep {

namespace {

/// xorshift64* PRNG; deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9e3779b9 : seed) {}
  std::uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  std::size_t Below(std::size_t n) { return Next() % n; }

 private:
  std::uint64_t state_;
};

std::size_t CountErrors(const std::vector<std::vector<int>>& augmented,
                        const std::vector<Label>& labels,
                        const std::vector<std::int64_t>& weights) {
  std::size_t errors = 0;
  for (std::size_t i = 0; i < augmented.size(); ++i) {
    std::int64_t score = 0;
    for (std::size_t j = 0; j < weights.size(); ++j) {
      score += weights[j] * augmented[i][j];
    }
    Label predicted = score >= 0 ? kPositive : kNegative;
    if (predicted != labels[i]) ++errors;
  }
  return errors;
}

}  // namespace

std::pair<LinearClassifier, std::size_t> PocketPerceptron(
    const TrainingCollection& examples, const PerceptronOptions& options) {
  if (examples.empty()) {
    return {LinearClassifier(Rational(0), {}), 0};
  }
  std::size_t n = examples[0].first.size();

  // Augment with a constant feature +1 carrying -w₀: predict +1 iff
  // Σ wⱼbⱼ - w₀ ≥ 0 i.e. u·x' ≥ 0 with u = (w₁..wₙ, -w₀), x' = (b̄, 1).
  std::vector<std::vector<int>> augmented;
  std::vector<Label> labels;
  augmented.reserve(examples.size());
  for (const auto& [features, label] : examples) {
    FEATSEP_CHECK_EQ(features.size(), n);
    std::vector<int> x = features;
    x.push_back(1);
    augmented.push_back(std::move(x));
    labels.push_back(label);
  }

  std::vector<std::int64_t> weights(n + 1, 0);
  std::vector<std::int64_t> pocket = weights;
  std::size_t pocket_errors = CountErrors(augmented, labels, weights);

  Rng rng(options.seed);
  std::size_t updates = 0;
  std::size_t streak = 0;  // Consecutive correct random probes.
  while (updates < options.max_updates && pocket_errors > 0) {
    std::size_t i = rng.Below(augmented.size());
    std::int64_t score = 0;
    for (std::size_t j = 0; j <= n; ++j) score += weights[j] * augmented[i][j];
    Label predicted = score >= 0 ? kPositive : kNegative;
    if (predicted == labels[i]) {
      // Long streaks suggest improvement; re-evaluate for the pocket.
      if (++streak >= augmented.size()) {
        streak = 0;
        std::size_t errors = CountErrors(augmented, labels, weights);
        if (errors < pocket_errors) {
          pocket = weights;
          pocket_errors = errors;
        }
      }
      continue;
    }
    streak = 0;
    for (std::size_t j = 0; j <= n; ++j) {
      weights[j] += static_cast<std::int64_t>(labels[i]) * augmented[i][j];
    }
    ++updates;
    std::size_t errors = CountErrors(augmented, labels, weights);
    if (errors < pocket_errors) {
      pocket = weights;
      pocket_errors = errors;
    }
  }

  std::vector<Rational> w;
  w.reserve(n);
  for (std::size_t j = 0; j < n; ++j) w.emplace_back(pocket[j]);
  Rational threshold(-pocket[n]);
  LinearClassifier classifier(threshold, std::move(w));
  return {classifier, pocket_errors};
}

}  // namespace featsep
