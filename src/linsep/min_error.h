#ifndef FEATSEP_LINSEP_MIN_ERROR_H_
#define FEATSEP_LINSEP_MIN_ERROR_H_

#include <cstddef>

#include "linsep/linear_classifier.h"
#include "linsep/separability_lp.h"

namespace featsep {

/// Result of the exact minimum-error separation search.
struct MinErrorResult {
  std::size_t errors = 0;
  LinearClassifier classifier;
};

/// Computes a linear classifier minimizing the number of misclassified
/// examples — the optimization core of approximate separability (paper,
/// Section 7). The problem is NP-complete (Höffgen–Simon–Van Horn [17]),
/// so this is a branch-and-bound over the labels assigned to the *distinct*
/// feature vectors:
///   - duplicates are grouped (cost of flipping a group = its minority
///     count),
///   - a pocket-perceptron incumbent bounds the search from above,
///   - the sum of unavoidable minority counts bounds from below,
///   - exact-LP feasibility prunes label assignments no hyperplane
///     realizes.
/// Exponential in the number of distinct vectors in the worst case.
MinErrorResult MinimizeErrors(const TrainingCollection& examples);

/// True iff some linear classifier misclassifies at most ε·|examples|
/// examples — approximate linear separability with relative error ε
/// (trivially true for ε ≥ 1/2 via a constant classifier; paper, fn. 1).
bool IsSeparableWithError(const TrainingCollection& examples, double epsilon);

}  // namespace featsep

#endif  // FEATSEP_LINSEP_MIN_ERROR_H_
