#ifndef FEATSEP_LINSEP_PERCEPTRON_H_
#define FEATSEP_LINSEP_PERCEPTRON_H_

#include <cstdint>
#include <utility>

#include "linsep/linear_classifier.h"
#include "linsep/separability_lp.h"

namespace featsep {

/// Options for the pocket perceptron heuristic.
struct PerceptronOptions {
  /// Total mistake-driven updates before giving up.
  std::size_t max_updates = 20000;
  std::uint64_t seed = 1;
};

/// Pocket perceptron: runs the classic mistake-driven perceptron on the
/// (augmented) ±1 vectors, keeping the best-so-far ("pocket") weight vector
/// by training error. Returns the pocket classifier and its error count.
///
/// Used as (a) a fast incumbent for the exact min-error branch-and-bound
/// (approximate separability, paper Section 7 / [17]) and (b) a cheap
/// separator heuristic — it finds a perfect separator whenever the data is
/// separable and the update budget exceeds the perceptron mistake bound.
std::pair<LinearClassifier, std::size_t> PocketPerceptron(
    const TrainingCollection& examples, const PerceptronOptions& options = {});

}  // namespace featsep

#endif  // FEATSEP_LINSEP_PERCEPTRON_H_
