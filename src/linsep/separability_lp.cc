#include "linsep/separability_lp.h"

#include <utility>

#include "linsep/simplex.h"
#include "util/check.h"

namespace featsep {

std::optional<LinearClassifier> FindSeparator(
    const TrainingCollection& examples) {
  SeparatorSearch search = TryFindSeparator(examples, nullptr);
  FEATSEP_CHECK(search.outcome == BudgetOutcome::kCompleted);
  return std::move(search.classifier);
}

SeparatorSearch TryFindSeparator(const TrainingCollection& examples,
                                 ExecutionBudget* budget) {
  SeparatorSearch search;
  if (examples.empty()) {
    search.classifier = LinearClassifier(Rational(0), {});
    return search;
  }
  std::size_t n = examples[0].first.size();
  for (const auto& [features, label] : examples) {
    FEATSEP_CHECK_EQ(features.size(), n) << "ragged training collection";
    FEATSEP_CHECK(label == kPositive || label == kNegative);
  }

  // LP variables (all ≥ 0): wp_0..wp_n, wn_0..wn_n with w_j = wp_j - wn_j
  // (index 0 is the threshold w₀).
  std::size_t num_vars = 2 * (n + 1);
  auto wp = [&](std::size_t j) { return j; };
  auto wn = [&](std::size_t j) { return (n + 1) + j; };

  LpProblem problem;
  problem.c.assign(num_vars, Rational(0));
  for (const auto& [features, label] : examples) {
    // s(w) := Σⱼ wⱼ·bⱼ − w₀.
    // label +1: s(w) ≥ 0   →  −s(w) ≤ 0.
    // label −1: s(w) ≤ −1.
    std::vector<Rational> row(num_vars, Rational(0));
    int sign = label == kPositive ? -1 : 1;
    // Coefficient of w_j in sign*s(w) is sign*b_j; of w₀ is -sign.
    for (std::size_t j = 0; j < n; ++j) {
      Rational coeff(sign * features[j]);
      row[wp(j + 1)] = coeff;
      row[wn(j + 1)] = -coeff;
    }
    row[wp(0)] = Rational(-sign);
    row[wn(0)] = Rational(sign);
    problem.a.push_back(std::move(row));
    problem.b.push_back(label == kPositive ? Rational(0) : Rational(-1));
  }

  LpSolution solution = SolveLp(problem, budget);
  if (solution.status == LpStatus::kInterrupted) {
    search.outcome = solution.outcome;
    return search;
  }
  if (solution.status == LpStatus::kInfeasible) return search;
  FEATSEP_CHECK(solution.status == LpStatus::kOptimal);

  Rational threshold = solution.x[wp(0)] - solution.x[wn(0)];
  std::vector<Rational> weights;
  weights.reserve(n);
  for (std::size_t j = 1; j <= n; ++j) {
    weights.push_back(solution.x[wp(j)] - solution.x[wn(j)]);
  }
  LinearClassifier classifier(threshold, std::move(weights));
  FEATSEP_CHECK_EQ(classifier.CountErrors(examples), 0u)
      << "separator returned by LP misclassifies an example";
  search.classifier = std::move(classifier);
  return search;
}

SeparatorSearch TryFindSeparatorWarm(
    const TrainingCollection& examples, const LinearClassifier& previous,
    const std::vector<std::size_t>& changed_rows, ExecutionBudget* budget) {
  const std::size_t arity =
      examples.empty() ? previous.arity() : examples.front().first.size();
  if (previous.arity() == arity) {
    bool feasible = true;
    for (std::size_t row : changed_rows) {
      if (row >= examples.size()) continue;  // Row deleted since the solve.
      if (previous.Classify(examples[row].first) != examples[row].second) {
        feasible = false;
        break;
      }
    }
    // Feasible on the changed rows + unchanged on the rest (the caller's
    // contract) = feasible for the whole system; for the feasibility LP
    // that IS the answer — no pivots.
    if (feasible) {
      SeparatorSearch search;
      search.classifier = previous;
      return search;
    }
  }
  return TryFindSeparator(examples, budget);
}

bool IsLinearlySeparable(const TrainingCollection& examples) {
  return FindSeparator(examples).has_value();
}

}  // namespace featsep
