#include "numeric/bigint.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/check.h"
#include "util/hash.h"

namespace featsep {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}  // namespace

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Handle INT64_MIN without overflow: negate as unsigned.
  std::uint64_t magnitude =
      negative_ ? (~static_cast<std::uint64_t>(value)) + 1
                : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffULL));
    magnitude >>= 32;
  }
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Error("BigInt: empty string");
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) return Error("BigInt: sign without digits");
  BigInt value;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Error(std::string("BigInt: invalid digit '") + c + "'");
    }
    value *= BigInt(10);
    value += BigInt(c - '0');
  }
  if (negative && !value.is_zero()) value.negative_ = true;
  return value;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::CompareMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_ ? -1 : 1;
  int magnitude = CompareMagnitude(a.limbs_, b.limbs_);
  return a.negative_ ? -magnitude : magnitude;
}

void BigInt::AddMagnitude(std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b) {
  if (b.size() > a.size()) a.resize(b.size(), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t sum = carry + a[i] + (i < b.size() ? b[i] : 0);
    a[i] = static_cast<std::uint32_t>(sum & 0xffffffffULL);
    carry = sum >> 32;
  }
  if (carry != 0) a.push_back(static_cast<std::uint32_t>(carry));
}

void BigInt::SubMagnitude(std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<std::uint32_t>(diff);
  }
  FEATSEP_CHECK_EQ(borrow, 0) << "SubMagnitude requires |a| >= |b|";
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (negative_ == other.negative_) {
    AddMagnitude(limbs_, other.limbs_);
  } else if (CompareMagnitude(limbs_, other.limbs_) >= 0) {
    SubMagnitude(limbs_, other.limbs_);
  } else {
    std::vector<std::uint32_t> magnitude = other.limbs_;
    SubMagnitude(magnitude, limbs_);
    limbs_ = std::move(magnitude);
    negative_ = other.negative_;
  }
  Normalize();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) { return *this += -other; }

BigInt& BigInt::operator*=(const BigInt& other) {
  if (is_zero() || other.is_zero()) {
    limbs_.clear();
    negative_ = false;
    return *this;
  }
  std::vector<std::uint32_t> result(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      std::uint64_t cur = result[i + j] + carry +
                          static_cast<std::uint64_t>(limbs_[i]) *
                              static_cast<std::uint64_t>(other.limbs_[j]);
      result[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = result[k] + carry;
      result[k] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  limbs_ = std::move(result);
  negative_ = negative_ != other.negative_;
  Normalize();
  return *this;
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  FEATSEP_CHECK(!divisor.is_zero()) << "BigInt division by zero";
  // Long division on magnitudes, 32 bits at a time via binary shifting.
  // Simple bit-at-a-time schoolbook division is adequate here.
  const std::vector<std::uint32_t>& n = dividend.limbs_;
  BigInt q;
  BigInt r;
  q.limbs_.assign(n.size(), 0);
  std::size_t total_bits = n.size() * 32;
  for (std::size_t bit = total_bits; bit-- > 0;) {
    // r = (r << 1) | n.bit(bit)
    // Shift r left by one bit.
    std::uint32_t carry = 0;
    for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
      std::uint32_t next_carry = r.limbs_[i] >> 31;
      r.limbs_[i] = (r.limbs_[i] << 1) | carry;
      carry = next_carry;
    }
    if (carry != 0) r.limbs_.push_back(carry);
    std::uint32_t n_bit = (n[bit / 32] >> (bit % 32)) & 1u;
    if (n_bit != 0) {
      if (r.limbs_.empty()) r.limbs_.push_back(0);
      r.limbs_[0] |= 1u;
    }
    if (CompareMagnitude(r.limbs_, divisor.limbs_) >= 0) {
      SubMagnitude(r.limbs_, divisor.limbs_);
      r.Normalize();
      q.limbs_[bit / 32] |= (1u << (bit % 32));
    }
  }
  q.Normalize();
  r.Normalize();
  // Truncated-division sign rules.
  q.negative_ = !q.is_zero() && (dividend.negative_ != divisor.negative_);
  r.negative_ = !r.is_zero() && dividend.negative_;
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
}

BigInt& BigInt::operator/=(const BigInt& other) {
  BigInt quotient;
  DivMod(*this, other, &quotient, nullptr);
  *this = std::move(quotient);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& other) {
  BigInt remainder;
  DivMod(*this, other, nullptr, &remainder);
  *this = std::move(remainder);
  return *this;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt remainder;
    DivMod(a, b, nullptr, &remainder);
    a = std::move(b);
    b = std::move(remainder);
    b.negative_ = false;
  }
  return a;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeatedly divide the magnitude by 10^9 to extract decimal chunks.
  std::vector<std::uint32_t> magnitude = limbs_;
  std::string digits;
  constexpr std::uint64_t kChunk = 1000000000ULL;
  while (!magnitude.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = magnitude.size(); i-- > 0;) {
      std::uint64_t cur = (remainder << 32) | magnitude[i];
      magnitude[i] = static_cast<std::uint32_t>(cur / kChunk);
      remainder = cur % kChunk;
    }
    while (!magnitude.empty() && magnitude.back() == 0) magnitude.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() < 2) return true;
  if (limbs_.size() > 2) return false;
  std::uint64_t magnitude =
      (static_cast<std::uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (negative_) return magnitude <= (1ULL << 63);
  return magnitude < (1ULL << 63);
}

std::int64_t BigInt::ToInt64() const {
  FEATSEP_CHECK(FitsInt64()) << "BigInt does not fit in int64: " << ToString();
  std::uint64_t magnitude = 0;
  if (!limbs_.empty()) magnitude = limbs_[0];
  if (limbs_.size() == 2) {
    magnitude |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  }
  // Negate in unsigned space: -INT64_MIN is undefined in int64_t.
  return negative_ ? static_cast<std::int64_t>(~magnitude + 1)
                   : static_cast<std::int64_t>(magnitude);
}

double BigInt::ToDouble() const {
  double value = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = value * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -value : value;
}

std::size_t BigInt::Hash() const {
  std::size_t seed = negative_ ? 0x1234567ULL : 0;
  for (std::uint32_t limb : limbs_) HashCombine(seed, limb);
  return seed;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace featsep
