#ifndef FEATSEP_NUMERIC_BIGINT_H_
#define FEATSEP_NUMERIC_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace featsep {

/// Arbitrary-precision signed integer (sign + little-endian 32-bit limb
/// magnitude). Supports the arithmetic needed by the exact rational simplex
/// solver: addition, subtraction, multiplication, truncated division with
/// remainder, gcd, comparison, and decimal (de)serialization. All operations
/// use schoolbook algorithms; tableau entries in this library stay small
/// enough that asymptotically faster multiplication is not needed.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from a machine integer.
  BigInt(std::int64_t value);  // NOLINT: implicit by design, mirrors int.

  /// Parses a decimal string with optional leading '-'.
  static Result<BigInt> FromString(std::string_view text);

  BigInt(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt& operator=(BigInt&&) = default;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  /// -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt abs() const;

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other);
  BigInt& operator%=(const BigInt& other);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return !(a == b);
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) >= 0;
  }

  /// Three-way comparison: negative / zero / positive as a < b / a == b /
  /// a > b.
  static int Compare(const BigInt& a, const BigInt& b);

  /// Truncated division (C++ semantics: quotient rounds toward zero, the
  /// remainder has the sign of the dividend). `divisor` must be nonzero.
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  /// Greatest common divisor; always nonnegative.
  static BigInt Gcd(BigInt a, BigInt b);

  /// Decimal representation.
  std::string ToString() const;

  /// Value as int64 if it fits; used by callers that know their magnitudes.
  /// Checked programmer error on overflow.
  std::int64_t ToInt64() const;

  /// True if the value fits into int64.
  bool FitsInt64() const;

  /// Approximate conversion to double (for reporting only).
  double ToDouble() const;

  /// Hash compatible with equality.
  std::size_t Hash() const;

 private:
  /// Magnitude comparison ignoring signs.
  static int CompareMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b);
  static void AddMagnitude(std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b);
  /// Requires |a| >= |b|.
  static void SubMagnitude(std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b);
  void Normalize();

  bool negative_ = false;
  std::vector<std::uint32_t> limbs_;  // little-endian; empty means zero.
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace featsep

template <>
struct std::hash<featsep::BigInt> {
  std::size_t operator()(const featsep::BigInt& value) const {
    return value.Hash();
  }
};

#endif  // FEATSEP_NUMERIC_BIGINT_H_
