#ifndef FEATSEP_NUMERIC_RATIONAL_H_
#define FEATSEP_NUMERIC_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "numeric/bigint.h"

namespace featsep {

/// Exact rational number: normalized BigInt numerator/denominator with a
/// positive denominator and gcd(|num|, den) == 1. This is the scalar type of
/// the exact simplex solver (src/linsep), guaranteeing that linear
/// separability decisions are never corrupted by floating-point rounding.
class Rational {
 public:
  /// Zero.
  Rational() : numerator_(0), denominator_(1) {}

  /// Integer value.
  Rational(std::int64_t value)  // NOLINT: implicit by design.
      : numerator_(value), denominator_(1) {}

  /// num / den; `den` must be nonzero. Normalizes.
  Rational(BigInt numerator, BigInt denominator);

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool is_zero() const { return numerator_.is_zero(); }
  /// -1, 0, or +1.
  int sign() const { return numerator_.sign(); }

  Rational operator-() const;

  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.numerator_ == b.numerator_ && a.denominator_ == b.denominator_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const Rational& a, const Rational& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return Compare(a, b) >= 0;
  }

  /// Three-way comparison by cross-multiplication.
  static int Compare(const Rational& a, const Rational& b);

  /// "p/q" (or just "p" when q == 1).
  std::string ToString() const;

  /// Approximate double (for reporting only).
  double ToDouble() const;

 private:
  void Normalize();

  BigInt numerator_;
  BigInt denominator_;  // Always positive.
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace featsep

#endif  // FEATSEP_NUMERIC_RATIONAL_H_
