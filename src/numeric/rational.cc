#include "numeric/rational.h"

#include <ostream>
#include <utility>

#include "util/check.h"

namespace featsep {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  FEATSEP_CHECK(!denominator_.is_zero()) << "Rational with zero denominator";
  Normalize();
}

void Rational::Normalize() {
  if (denominator_.is_negative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  if (gcd != BigInt(1)) {
    numerator_ /= gcd;
    denominator_ /= gcd;
  }
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational& Rational::operator+=(const Rational& other) {
  numerator_ = numerator_ * other.denominator_ +
               other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  return *this += -other;
}

Rational& Rational::operator*=(const Rational& other) {
  numerator_ *= other.numerator_;
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  FEATSEP_CHECK(!other.is_zero()) << "Rational division by zero";
  numerator_ *= other.denominator_;
  denominator_ *= other.numerator_;
  Normalize();
  return *this;
}

int Rational::Compare(const Rational& a, const Rational& b) {
  // Denominators are positive, so cross-multiplication preserves order.
  return BigInt::Compare(a.numerator_ * b.denominator_,
                         b.numerator_ * a.denominator_);
}

std::string Rational::ToString() const {
  if (denominator_ == BigInt(1)) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

double Rational::ToDouble() const {
  return numerator_.ToDouble() / denominator_.ToDouble();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace featsep
