#include "cq/hom_nogoods.h"

namespace featsep {

std::uint64_t Luby(std::uint64_t i) {
  // luby(i) = 2^(k-1) when i = 2^k - 1; otherwise recurse on i - (2^k - 1)
  // for the largest k with 2^k - 1 <= i.
  for (;;) {
    std::uint64_t k = 1;
    while (((std::uint64_t{1} << (k + 1)) - 1) <= i) ++k;
    if (i == (std::uint64_t{1} << k) - 1) return std::uint64_t{1} << (k - 1);
    i -= (std::uint64_t{1} << k) - 1;
  }
}

bool NogoodStore::Record(const std::vector<NogoodPair>& pairs) {
  if (pairs.empty() || pairs.size() > kMaxPairs) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (num_pairs_ + pairs.size() > capacity_) return false;
  const NogoodPair& last = pairs.back();
  std::vector<NogoodPair> context(pairs.begin(), pairs.end() - 1);
  buckets_[Key(last.var, last.image)].push_back(std::move(context));
  ++num_nogoods_;
  num_pairs_ += pairs.size();
  return true;
}

bool NogoodStore::Forbidden(
    std::uint32_t var, std::uint32_t image,
    const std::vector<std::uint32_t>& assignment) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(Key(var, image));
  if (it == buckets_.end()) return false;
  for (const std::vector<NogoodPair>& context : it->second) {
    bool satisfied = true;
    for (const NogoodPair& pair : context) {
      if (assignment[pair.var] != pair.image) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return true;
  }
  return false;
}

std::size_t NogoodStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_nogoods_;
}

std::size_t NogoodStore::total_pairs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_pairs_;
}

}  // namespace featsep
