#ifndef FEATSEP_CQ_HOM_NOGOODS_H_
#define FEATSEP_CQ_HOM_NOGOODS_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace featsep {

/// The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
/// (1-indexed). Restart worker w's k-th run explores at most
/// Luby(k) * restart_base search nodes before restarting; the sequence's
/// unbounded growth is what makes restart search complete in the limit.
std::uint64_t Luby(std::uint64_t i);

/// One (variable, image) pair of a nogood, both as dense indices of the
/// homomorphism CSP: `var` indexes dom(from), `image` indexes dom(to).
struct NogoodPair {
  std::uint32_t var;
  std::uint32_t image;

  friend bool operator==(const NogoodPair& a, const NogoodPair& b) {
    return a.var == b.var && a.image == b.image;
  }
};

/// Thread-safe store of restart nogoods for one FindHomomorphism call.
///
/// A nogood is a set of (var, image) pairs with the semantics "no
/// homomorphism maps every listed var to its listed image simultaneously".
/// The parallel restart workers record negative-last-decision nogoods when
/// they restart: for a decision prefix d₁…d₍ᵢ₋₁₎ and a value u whose subtree
/// at level i was exhausted, the set {d₁, …, d₍ᵢ₋₁₎, (varᵢ, u)} is a valid
/// nogood — the subtree search *proved* no solution extends it. Such sets
/// are statements about solutions, not about any worker's search order, so
/// they are sound to share across workers with different value orders and
/// remain sound for proving non-existence (skipping a forbidden value never
/// hides a homomorphism).
///
/// Lookup is keyed by the final (deepest-decision) pair: Forbidden(var, v,
/// assignment) scans the bucket of (var, v) and reports whether some stored
/// nogood has all its *other* pairs satisfied by the current assignment.
/// Buckets stay short because only nogoods of at most kMaxPairs pairs are
/// retained (long nogoods almost never fire and bloat the scan), and the
/// store drops new nogoods beyond `capacity` pairs total (soundness is
/// unaffected — a dropped nogood only costs re-exploration).
///
/// Thread safety: Record and Forbidden are safe from any thread; a plain
/// mutex suffices because lookups happen once per candidate value at a
/// search node, not inside the word-level bit loops.
class NogoodStore {
 public:
  /// Longest nogood retained (in pairs, including the final one).
  static constexpr std::size_t kMaxPairs = 8;
  /// Default total-pair capacity.
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit NogoodStore(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  NogoodStore(const NogoodStore&) = delete;
  NogoodStore& operator=(const NogoodStore&) = delete;

  /// Records {pairs[0..n-2], pairs[n-1]} keyed by the final pair. Returns
  /// false when dropped: empty, longer than kMaxPairs, or over capacity.
  bool Record(const std::vector<NogoodPair>& pairs);

  /// True iff some recorded nogood keyed (var, image) has every other pair
  /// (w, u) satisfied by the current assignment (`assignment[w] == u`).
  /// `assignment` maps var index -> assigned image index, with
  /// `kUnassigned` for unassigned variables.
  bool Forbidden(std::uint32_t var, std::uint32_t image,
                 const std::vector<std::uint32_t>& assignment) const;

  static constexpr std::uint32_t kUnassigned = static_cast<std::uint32_t>(-1);

  /// Number of recorded nogoods.
  std::size_t size() const;
  /// Total pairs stored (the capacity unit).
  std::size_t total_pairs() const;

 private:
  static std::uint64_t Key(std::uint32_t var, std::uint32_t image) {
    return (static_cast<std::uint64_t>(var) << 32) | image;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Bucket per final pair: each entry is the nogood's context (the pairs
  /// other than the key pair; possibly empty = unconditional prune).
  std::unordered_map<std::uint64_t, std::vector<std::vector<NogoodPair>>>
      buckets_;
  std::size_t num_nogoods_ = 0;
  std::size_t num_pairs_ = 0;
};

}  // namespace featsep

#endif  // FEATSEP_CQ_HOM_NOGOODS_H_
