#include "cq/containment.h"

#include <utility>

#include "cq/homomorphism.h"
#include "util/check.h"

namespace featsep {

bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  FEATSEP_CHECK(q1.schema() == q2.schema());
  FEATSEP_CHECK_EQ(q1.free_variables().size(), q2.free_variables().size())
      << "containment requires queries of equal arity";
  auto [db1, vars1] = q1.CanonicalDatabase();
  auto [db2, vars2] = q2.CanonicalDatabase();
  std::vector<Value> tuple1 = ConjunctiveQuery::FreeTuple(q1, vars1);
  std::vector<Value> tuple2 = ConjunctiveQuery::FreeTuple(q2, vars2);
  std::vector<std::pair<Value, Value>> seed;
  for (std::size_t i = 0; i < tuple1.size(); ++i) {
    seed.emplace_back(tuple2[i], tuple1[i]);
  }
  return HomomorphismExists(db2, db1, seed);
}

bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return IsContainedIn(q1, q2) && IsContainedIn(q2, q1);
}

}  // namespace featsep
