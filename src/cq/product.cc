#include "cq/product.h"

#include <string>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace featsep {

namespace {

/// Interns the product value for a tuple of factor values, memoized.
class ProductValueTable {
 public:
  ProductValueTable(const std::vector<const Database*>& factors,
                    Database* product)
      : factors_(factors), product_(product) {}

  Value Get(const std::vector<Value>& tuple) {
    auto it = table_.find(tuple);
    if (it != table_.end()) return it->second;
    std::string name;
    for (std::size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) name += "|";
      name += factors_[i]->value_name(tuple[i]);
    }
    Value value = product_->Intern(name);
    table_.emplace(tuple, value);
    return value;
  }

 private:
  const std::vector<const Database*>& factors_;
  Database* product_;
  std::unordered_map<std::vector<Value>, Value, VectorHash<Value>> table_;
};

}  // namespace

std::optional<ProductResult> DirectProduct(
    const std::vector<const Database*>& factors,
    const std::vector<std::vector<Value>>& distinguished,
    std::size_t max_facts) {
  FEATSEP_CHECK(!factors.empty());
  FEATSEP_CHECK_EQ(factors.size(), distinguished.size());
  const Schema& schema = factors[0]->schema();
  for (const Database* factor : factors) {
    FEATSEP_CHECK(factor->schema() == schema)
        << "product factors must share a schema";
  }
  std::size_t tuple_len = distinguished[0].size();
  for (const std::vector<Value>& tuple : distinguished) {
    FEATSEP_CHECK_EQ(tuple.size(), tuple_len)
        << "distinguished tuples must have equal length";
  }

  // Fact-count guard before materializing anything.
  if (max_facts != 0) {
    std::size_t total = 0;
    for (RelationId rel = 0; rel < schema.size(); ++rel) {
      std::size_t combinations = 1;
      for (const Database* factor : factors) {
        std::size_t count = factor->FactsOf(rel).size();
        if (count == 0) {
          combinations = 0;
          break;
        }
        if (combinations > max_facts / count) {
          return std::nullopt;  // Would overflow the budget (or size_t).
        }
        combinations *= count;
      }
      total += combinations;
      if (total > max_facts) return std::nullopt;
    }
  }

  ProductResult result{Database(factors[0]->schema_ptr()), {}};
  ProductValueTable values(factors, &result.db);

  // For each relation, enumerate the cartesian product of its fact lists.
  for (RelationId rel = 0; rel < schema.size(); ++rel) {
    std::size_t arity = schema.arity(rel);
    bool empty = false;
    for (const Database* factor : factors) {
      if (factor->FactsOf(rel).empty()) {
        empty = true;
        break;
      }
    }
    if (empty) continue;

    std::vector<std::size_t> cursor(factors.size(), 0);
    while (true) {
      std::vector<Value> args(arity);
      std::vector<Value> component(factors.size());
      for (std::size_t pos = 0; pos < arity; ++pos) {
        for (std::size_t i = 0; i < factors.size(); ++i) {
          FactIndex fi = factors[i]->FactsOf(rel)[cursor[i]];
          component[i] = factors[i]->fact(fi).args[pos];
        }
        args[pos] = values.Get(component);
      }
      result.db.AddFact(rel, std::move(args));

      // Advance the multi-index cursor.
      std::size_t i = 0;
      while (i < factors.size()) {
        if (++cursor[i] < factors[i]->FactsOf(rel).size()) break;
        cursor[i] = 0;
        ++i;
      }
      if (i == factors.size()) break;
    }
  }

  // Distinguished tuple.
  result.tuple.reserve(tuple_len);
  std::vector<Value> component(factors.size());
  for (std::size_t pos = 0; pos < tuple_len; ++pos) {
    for (std::size_t i = 0; i < factors.size(); ++i) {
      component[i] = distinguished[i][pos];
    }
    result.tuple.push_back(values.Get(component));
  }
  return result;
}

}  // namespace featsep
