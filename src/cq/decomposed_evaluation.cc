#include "cq/decomposed_evaluation.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace featsep {

std::optional<DecomposedEvaluator> DecomposedEvaluator::Create(
    const ConjunctiveQuery& query, std::size_t max_width,
    const GhwOptions& options) {
  FEATSEP_CHECK(query.IsUnary())
      << "DecomposedEvaluator supports unary feature queries";

  std::vector<Variable> vertex_to_variable;
  Hypergraph hypergraph = QueryHypergraph(query, &vertex_to_variable);
  std::optional<TreeDecomposition> td =
      DecideGhwAtMost(hypergraph, max_width, options);
  if (!td.has_value()) return std::nullopt;

  DecomposedEvaluator evaluator(query, 0);
  Variable x = query.free_variable();

  // Mirror the decomposition tree as plan nodes.
  evaluator.plan_.resize(td->nodes.size());
  evaluator.root_ = td->root;
  for (std::size_t i = 0; i < td->nodes.size(); ++i) {
    PlanNode& node = evaluator.plan_[i];
    node.children = td->nodes[i].children;
    for (HVertex v : td->nodes[i].bag) {
      node.bag.push_back(vertex_to_variable[v]);
    }
    std::sort(node.bag.begin(), node.bag.end());
    std::optional<std::vector<HEdge>> cover =
        hypergraph.FindMinimumEdgeCover(td->nodes[i].bag);
    FEATSEP_CHECK(cover.has_value()) << "decomposition bag not coverable";
    FEATSEP_CHECK_LE(cover->size(), max_width);
    node.cover.assign(cover->begin(), cover->end());
    evaluator.width_ = std::max(evaluator.width_, cover->size());
  }

  // Assign every atom to a node whose bag contains its existential
  // variables; atoms over {x} alone are ground checks.
  RelationId eta = query.schema().has_entity_relation()
                       ? query.schema().entity_relation()
                       : kNoRelation;
  for (std::size_t a = 0; a < query.atoms().size(); ++a) {
    const CqAtom& atom = query.atoms()[a];
    std::vector<Variable> existential;
    for (Variable v : atom.args) {
      if (v != x) existential.push_back(v);
    }
    std::sort(existential.begin(), existential.end());
    existential.erase(std::unique(existential.begin(), existential.end()),
                      existential.end());
    if (existential.empty()) {
      evaluator.ground_atoms_.push_back(a);
      if (atom.relation == eta && atom.args.size() == 1 &&
          atom.args[0] == x) {
        evaluator.has_entity_atom_ = true;
      }
      continue;
    }
    bool placed = false;
    for (PlanNode& node : evaluator.plan_) {
      if (std::includes(node.bag.begin(), node.bag.end(),
                        existential.begin(), existential.end())) {
        node.assigned.push_back(a);
        placed = true;
        break;
      }
    }
    FEATSEP_CHECK(placed) << "atom not covered by any decomposition bag";
  }
  return evaluator;
}

std::vector<std::vector<Value>> DecomposedEvaluator::NodeRelation(
    const Database& db, Value entity, const PlanNode& node) const {
  Variable x = query_.free_variable();
  std::vector<std::vector<Value>> relation;
  if (node.bag.empty()) {
    relation.push_back({});
    return relation;
  }

  auto bag_index = [&](Variable v) -> std::size_t {
    auto it = std::lower_bound(node.bag.begin(), node.bag.end(), v);
    if (it == node.bag.end() || *it != v) return static_cast<std::size_t>(-1);
    return static_cast<std::size_t>(it - node.bag.begin());
  };

  std::vector<Value> assignment(node.bag.size(), kNoValue);
  std::unordered_set<std::vector<Value>, VectorHash<Value>> dedup;

  // Backtracking over the covering atoms, choosing a database fact each;
  // only bag variables and x constrain the choice (out-of-bag positions
  // are projected away — see the soundness note in the header).
  auto recurse = [&](auto&& self, std::size_t cover_pos) -> void {
    if (cover_pos == node.cover.size()) {
      // Filter by the atoms assigned to this node.
      for (std::size_t a : node.assigned) {
        const CqAtom& atom = query_.atoms()[a];
        std::vector<Value> args;
        args.reserve(atom.args.size());
        for (Variable v : atom.args) {
          if (v == x) {
            args.push_back(entity);
          } else {
            std::size_t idx = bag_index(v);
            FEATSEP_CHECK_NE(idx, static_cast<std::size_t>(-1));
            args.push_back(assignment[idx]);
          }
        }
        if (!db.ContainsFact(Fact{atom.relation, std::move(args)})) return;
      }
      if (dedup.insert(assignment).second) relation.push_back(assignment);
      return;
    }
    const CqAtom& atom = query_.atoms()[node.cover[cover_pos]];
    for (FactIndex fi : db.FactsOf(atom.relation)) {
      const Fact& fact = db.fact(fi);
      std::vector<std::pair<std::size_t, Value>> bound;
      bool ok = true;
      for (std::size_t pos = 0; ok && pos < atom.args.size(); ++pos) {
        Variable v = atom.args[pos];
        if (v == x) {
          ok = fact.args[pos] == entity;
          continue;
        }
        std::size_t idx = bag_index(v);
        if (idx == static_cast<std::size_t>(-1)) continue;  // Out of bag.
        if (assignment[idx] == kNoValue) {
          assignment[idx] = fact.args[pos];
          bound.emplace_back(idx, fact.args[pos]);
        } else if (assignment[idx] != fact.args[pos]) {
          ok = false;
        }
      }
      if (ok) self(self, cover_pos + 1);
      for (const auto& [idx, value] : bound) {
        (void)value;
        assignment[idx] = kNoValue;
      }
    }
  };
  recurse(recurse, 0);
  return relation;
}

namespace {

/// Positions of `shared` (sorted) within sorted `bag`.
std::vector<std::size_t> SharedIndexes(const std::vector<Variable>& shared,
                                       const std::vector<Variable>& bag) {
  std::vector<std::size_t> indexes;
  for (Variable v : shared) {
    auto it = std::lower_bound(bag.begin(), bag.end(), v);
    FEATSEP_CHECK(it != bag.end() && *it == v);
    indexes.push_back(static_cast<std::size_t>(it - bag.begin()));
  }
  return indexes;
}

}  // namespace

bool DecomposedEvaluator::Satisfiable(const Database& db, Value entity,
                                      std::size_t node_index) const {
  // Bottom-up semijoin reduction; a node is satisfiable if its relation,
  // semijoined against every child's reduced relation, stays nonempty.
  struct ReduceResult {
    bool ok;
    std::vector<std::vector<Value>> relation;
  };
  auto reduce = [&](auto&& self, std::size_t index) -> ReduceResult {
    const PlanNode& node = plan_[index];
    std::vector<std::vector<Value>> relation =
        NodeRelation(db, entity, node);
    if (relation.empty()) return {false, {}};
    for (std::size_t child_index : node.children) {
      ReduceResult child = self(self, child_index);
      if (!child.ok) return {false, {}};
      const PlanNode& child_node = plan_[child_index];
      std::vector<Variable> shared;
      std::set_intersection(node.bag.begin(), node.bag.end(),
                            child_node.bag.begin(), child_node.bag.end(),
                            std::back_inserter(shared));
      if (shared.empty()) continue;  // Child nonempty is all we need.
      std::vector<std::size_t> own_idx = SharedIndexes(shared, node.bag);
      std::vector<std::size_t> child_idx =
          SharedIndexes(shared, child_node.bag);
      std::unordered_set<std::vector<Value>, VectorHash<Value>> keys;
      for (const std::vector<Value>& tuple : child.relation) {
        std::vector<Value> key;
        key.reserve(child_idx.size());
        for (std::size_t i : child_idx) key.push_back(tuple[i]);
        keys.insert(std::move(key));
      }
      std::erase_if(relation, [&](const std::vector<Value>& tuple) {
        std::vector<Value> key;
        key.reserve(own_idx.size());
        for (std::size_t i : own_idx) key.push_back(tuple[i]);
        return keys.count(key) == 0;
      });
      if (relation.empty()) return {false, {}};
    }
    return {true, std::move(relation)};
  };
  return reduce(reduce, node_index).ok;
}

bool DecomposedEvaluator::SelectsEntity(const Database& db,
                                        Value entity) const {
  FEATSEP_CHECK(query_.schema() == db.schema());
  Variable x = query_.free_variable();
  // Ground atoms (variables ⊆ {x}).
  for (std::size_t a : ground_atoms_) {
    const CqAtom& atom = query_.atoms()[a];
    std::vector<Value> args(atom.args.size(), entity);
    (void)x;
    if (!db.ContainsFact(Fact{atom.relation, std::move(args)})) return false;
  }
  return Satisfiable(db, entity, root_);
}

std::vector<Value> DecomposedEvaluator::Evaluate(const Database& db) const {
  std::vector<Value> candidates =
      has_entity_atom_ ? db.Entities() : db.domain();
  std::vector<Value> selected;
  for (Value candidate : candidates) {
    if (SelectsEntity(db, candidate)) selected.push_back(candidate);
  }
  return selected;
}

}  // namespace featsep
