#ifndef FEATSEP_CQ_CORE_H_
#define FEATSEP_CQ_CORE_H_

#include <vector>

#include "cq/cq.h"
#include "relational/database.h"

namespace featsep {

/// Computes the core of the pointed database (db, frozen): the smallest
/// retract under endomorphisms fixing the frozen values pointwise. The
/// result's facts are a subset (up to renaming) of the input's; value ids
/// carry over. Exponential worst case (relies on homomorphism search);
/// intended for minimizing generated feature queries.
Database CoreOf(const Database& db, const std::vector<Value>& frozen);

/// Minimizes a CQ to an equivalent one with the fewest atoms (its core).
/// Free variables are preserved.
ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& query);

}  // namespace featsep

#endif  // FEATSEP_CQ_CORE_H_
