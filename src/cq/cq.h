#ifndef FEATSEP_CQ_CQ_H_
#define FEATSEP_CQ_CQ_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace featsep {

/// A query variable, contiguous within a ConjunctiveQuery.
using Variable = std::uint32_t;

/// One atom R(x̄) of a conjunctive query.
struct CqAtom {
  RelationId relation = kNoRelation;
  std::vector<Variable> args;

  friend bool operator==(const CqAtom& a, const CqAtom& b) {
    return a.relation == b.relation && a.args == b.args;
  }
  friend bool operator<(const CqAtom& a, const CqAtom& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.args < b.args;
  }
};

/// A conjunctive query without constants (paper, Section 2):
///   q(x̄) = ∃ȳ (R₁(x̄₁) ∧ … ∧ Rₙ(x̄ₙ))
/// represented by its atom list and the sequence of free variables; all
/// other variables are implicitly existentially quantified.
///
/// Feature queries (paper, Section 3) are unary CQs q(x) over an entity
/// schema that contain the atom η(x); `MakeFeatureQuery` enforces this.
class ConjunctiveQuery {
 public:
  explicit ConjunctiveQuery(std::shared_ptr<const Schema> schema);

  /// Creates a unary feature query with free variable x and atom η(x).
  /// The schema must designate an entity relation.
  static ConjunctiveQuery MakeFeatureQuery(
      std::shared_ptr<const Schema> schema);

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }

  /// Introduces a fresh variable. `name` is for printing only; if empty a
  /// default name is generated.
  Variable NewVariable(std::string name = "");

  std::size_t num_variables() const { return variable_names_.size(); }
  const std::string& variable_name(Variable v) const;

  /// Appends atom relation(args); duplicate atoms are kept out (a CQ is a
  /// set of atoms). Returns true if the atom is new.
  bool AddAtom(RelationId relation, std::vector<Variable> args);

  const std::vector<CqAtom>& atoms() const { return atoms_; }

  /// Marks `v` as a free (answer) variable, appending it to the free tuple.
  void AddFreeVariable(Variable v);

  const std::vector<Variable>& free_variables() const {
    return free_variables_;
  }

  /// True for a unary query (exactly one free variable).
  bool IsUnary() const { return free_variables_.size() == 1; }

  /// The single free variable of a unary query.
  Variable free_variable() const;

  /// Number of atoms. If the schema designates an entity relation η and
  /// `count_entity_atom` is false, atoms of the form η(x) on the free
  /// variable are not counted — the paper's CQ[m] convention.
  std::size_t NumAtoms(bool count_entity_atom = true) const;

  /// Maximum number of occurrences of any single variable across all atoms
  /// (the paper's parameter p in CQ[m,p]).
  std::size_t MaxVariableOccurrences() const;

  /// The canonical database D_q: one constant per variable, one fact per
  /// atom. The returned pair gives the database and, for each variable, the
  /// value representing it (indexable by Variable).
  std::pair<Database, std::vector<Value>> CanonicalDatabase() const;

  /// Values of the free variables inside the canonical database (the tuple
  /// x̄ of (D_q, x̄)); same order as free_variables().
  static std::vector<Value> FreeTuple(const ConjunctiveQuery& q,
                                      const std::vector<Value>& var_to_value);

  /// Human-readable rendering, e.g. "q(x) :- Eta(x), R(x, y)".
  std::string ToString() const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<std::string> variable_names_;
  std::vector<CqAtom> atoms_;
  std::vector<Variable> free_variables_;
};

}  // namespace featsep

#endif  // FEATSEP_CQ_CQ_H_
