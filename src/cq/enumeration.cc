#include "cq/enumeration.h"

#include <utility>

#include "util/check.h"

namespace featsep {

namespace {

/// Atom under construction: relation id + argument variable ids, ordered
/// lexicographically to canonicalize atom-list permutations.
struct ProtoAtom {
  RelationId relation;
  std::vector<std::size_t> args;

  friend bool operator<(const ProtoAtom& a, const ProtoAtom& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.args < b.args;
  }
};

class Enumerator {
 public:
  Enumerator(std::shared_ptr<const Schema> schema, std::size_t m,
             const EnumerationOptions& options)
      : schema_(std::move(schema)), m_(m), options_(options) {
    FEATSEP_CHECK(schema_->has_entity_relation())
        << "feature enumeration requires an entity schema";
  }

  std::vector<ConjunctiveQuery> Run() {
    occurrences_.assign(1 + m_ * schema_->max_arity(), 0);
    Emit();                 // The bare query q(x) :- Eta(x).
    ExtendAtoms();
    return std::move(results_);
  }

 private:
  /// Appends the query built from the current `atoms_` to the results.
  void Emit() {
    ConjunctiveQuery q = ConjunctiveQuery::MakeFeatureQuery(schema_);
    // Variable 0 is the free x created by MakeFeatureQuery.
    std::vector<Variable> vars = {q.free_variable()};
    for (std::size_t v = 1; v < next_var_; ++v) {
      vars.push_back(q.NewVariable("y" + std::to_string(v)));
    }
    for (const ProtoAtom& atom : atoms_) {
      std::vector<Variable> args;
      args.reserve(atom.args.size());
      for (std::size_t a : atom.args) args.push_back(vars[a]);
      q.AddAtom(atom.relation, std::move(args));
    }
    FEATSEP_CHECK_LT(results_.size(), options_.max_queries)
        << "CQ[m] enumeration exceeded max_queries";
    results_.push_back(std::move(q));
  }

  /// Recursively appends further atoms (each lexicographically greater than
  /// the previous one), emitting every intermediate query.
  void ExtendAtoms() {
    if (atoms_.size() == m_) return;
    for (RelationId rel = 0; rel < schema_->size(); ++rel) {
      current_.relation = rel;
      current_.args.clear();
      FillArgs(rel, schema_->arity(rel));
    }
  }

  /// Fills the next argument slot of `current_` with every admissible
  /// variable; on completion checks canonical order and recurses.
  void FillArgs(RelationId rel, std::size_t remaining) {
    if (remaining == 0) {
      if (!atoms_.empty() && !(atoms_.back() < current_)) return;
      // η(x) is already present in every feature query; generating it as an
      // extra atom would duplicate existing queries under set semantics.
      if (current_.relation == schema_->entity_relation() &&
          current_.args == std::vector<std::size_t>{0}) {
        return;
      }
      atoms_.push_back(current_);
      std::size_t saved_next = next_var_;
      // Commit first-use ordering: args may have introduced new variables.
      Emit();
      ProtoAtom saved_current = current_;
      ExtendAtoms();
      current_ = std::move(saved_current);
      atoms_.pop_back();
      next_var_ = saved_next;
      return;
    }
    // Candidates: every existing variable, or the single next fresh one.
    std::size_t limit = next_var_ + 1;
    for (std::size_t v = 0; v < limit && v < occurrences_.size(); ++v) {
      if (options_.max_variable_occurrences != 0 &&
          occurrences_[v] >= options_.max_variable_occurrences) {
        continue;
      }
      bool fresh = v == next_var_;
      if (fresh) ++next_var_;
      ++occurrences_[v];
      current_.args.push_back(v);
      FillArgs(rel, remaining - 1);
      current_.args.pop_back();
      --occurrences_[v];
      if (fresh) --next_var_;
    }
  }

  std::shared_ptr<const Schema> schema_;
  std::size_t m_;
  EnumerationOptions options_;

  std::vector<ProtoAtom> atoms_;
  ProtoAtom current_;
  std::size_t next_var_ = 1;  // Variable 0 is the free variable x.
  std::vector<std::size_t> occurrences_;
  std::vector<ConjunctiveQuery> results_;
};

}  // namespace

std::vector<ConjunctiveQuery> EnumerateFeatureQueries(
    const std::shared_ptr<const Schema>& schema, std::size_t m,
    const EnumerationOptions& options) {
  Enumerator enumerator(schema, m, options);
  std::vector<ConjunctiveQuery> queries = enumerator.Run();
  if (!options.include_disconnected) {
    // Keep only queries whose atoms are all reachable from x through shared
    // variables.
    std::vector<ConjunctiveQuery> connected;
    for (ConjunctiveQuery& q : queries) {
      std::vector<bool> reachable(q.num_variables(), false);
      reachable[q.free_variable()] = true;
      bool changed = true;
      while (changed) {
        changed = false;
        for (const CqAtom& atom : q.atoms()) {
          bool touches = false;
          for (Variable v : atom.args) touches = touches || reachable[v];
          if (!touches) continue;
          for (Variable v : atom.args) {
            if (!reachable[v]) {
              reachable[v] = true;
              changed = true;
            }
          }
        }
      }
      bool all = true;
      for (Variable v = 0; v < q.num_variables(); ++v) {
        all = all && reachable[v];
      }
      if (all) connected.push_back(std::move(q));
    }
    return connected;
  }
  return queries;
}

std::size_t CountFeatureQueries(const std::shared_ptr<const Schema>& schema,
                                std::size_t m,
                                const EnumerationOptions& options) {
  return EnumerateFeatureQueries(schema, m, options).size();
}

}  // namespace featsep
