#include "cq/evaluation.h"

#include <utility>

#include "util/check.h"

namespace featsep {

CqEvaluator::CqEvaluator(const ConjunctiveQuery& query)
    : query_(query), canonical_(query.schema_ptr()) {
  auto [db, var_to_value] = query_.CanonicalDatabase();
  canonical_ = std::move(db);
  var_to_value_ = std::move(var_to_value);
  free_tuple_ = ConjunctiveQuery::FreeTuple(query_, var_to_value_);
  if (query_.schema().has_entity_relation() && query_.IsUnary()) {
    RelationId eta = query_.schema().entity_relation();
    Variable x = query_.free_variable();
    for (const CqAtom& atom : query_.atoms()) {
      if (atom.relation == eta && atom.args.size() == 1 &&
          atom.args[0] == x) {
        has_entity_atom_ = true;
        break;
      }
    }
  }
}

bool CqEvaluator::Selects(const Database& db, const std::vector<Value>& tuple,
                          const HomOptions& options) const {
  FEATSEP_CHECK(query_.schema() == db.schema())
      << "query and database schemas differ";
  FEATSEP_CHECK_EQ(tuple.size(), free_tuple_.size());
  std::vector<std::pair<Value, Value>> seed;
  seed.reserve(tuple.size());
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    seed.emplace_back(free_tuple_[i], tuple[i]);
  }
  return HomomorphismExists(canonical_, db, seed, options);
}

bool CqEvaluator::SelectsEntity(const Database& db, Value entity,
                                const HomOptions& options) const {
  FEATSEP_CHECK(query_.IsUnary());
  return Selects(db, {entity}, options);
}

std::optional<bool> CqEvaluator::TrySelectsEntity(
    const Database& db, Value entity, ExecutionBudget* budget) const {
  FEATSEP_CHECK(query_.IsUnary());
  FEATSEP_CHECK(query_.schema() == db.schema())
      << "query and database schemas differ";
  std::vector<std::pair<Value, Value>> seed;
  seed.emplace_back(free_tuple_[0], entity);
  HomOptions options;
  options.budget = budget;
  HomResult result = FindHomomorphism(canonical_, db, seed, options);
  if (result.status == HomStatus::kExhausted) return std::nullopt;
  return result.status == HomStatus::kFound;
}

std::vector<Value> CqEvaluator::Evaluate(const Database& db,
                                         const HomOptions& options) const {
  FEATSEP_CHECK(query_.IsUnary())
      << "Evaluate supports unary queries; use Selects for general tuples";
  std::vector<Value> candidates =
      has_entity_atom_ ? db.Entities() : db.domain();
  std::vector<Value> result;
  for (Value candidate : candidates) {
    if (SelectsEntity(db, candidate, options)) result.push_back(candidate);
  }
  return result;
}

bool CqSelects(const ConjunctiveQuery& query, const Database& db,
               Value entity) {
  return CqEvaluator(query).SelectsEntity(db, entity);
}

std::vector<Value> EvaluateUnaryCq(const ConjunctiveQuery& query,
                                   const Database& db) {
  return CqEvaluator(query).Evaluate(db);
}

ConjunctiveQuery CqFromDatabase(const Database& db,
                                const std::vector<Value>& distinguished) {
  ConjunctiveQuery query(db.schema_ptr());
  // One variable per domain value (plus distinguished values, which are in
  // the domain whenever they appear in facts; tolerate isolated ones too).
  std::vector<Variable> var_of(db.num_values(),
                               static_cast<Variable>(kNoValue));
  auto var_for = [&](Value v) -> Variable {
    if (var_of[v] == static_cast<Variable>(kNoValue)) {
      var_of[v] = query.NewVariable(db.value_name(v));
    }
    return var_of[v];
  };
  for (Value v : distinguished) {
    query.AddFreeVariable(var_for(v));
  }
  for (const Fact& fact : db.facts()) {
    std::vector<Variable> args;
    args.reserve(fact.args.size());
    for (Value v : fact.args) args.push_back(var_for(v));
    query.AddAtom(fact.relation, std::move(args));
  }
  return query;
}

}  // namespace featsep
