#ifndef FEATSEP_CQ_CONTAINMENT_H_
#define FEATSEP_CQ_CONTAINMENT_H_

#include "cq/cq.h"

namespace featsep {

/// True iff q1 ⊆ q2 (q1(D) ⊆ q2(D) on every database). By the
/// Chandra–Merlin theorem this holds iff there is a homomorphism from the
/// canonical database of q2 to that of q1 mapping the free tuple of q2 onto
/// the free tuple of q1. NP-complete in general.
bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// True iff q1 and q2 are equivalent (mutual containment).
bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

}  // namespace featsep

#endif  // FEATSEP_CQ_CONTAINMENT_H_
