#ifndef FEATSEP_CQ_EVALUATION_H_
#define FEATSEP_CQ_EVALUATION_H_

#include <optional>
#include <vector>

#include "cq/cq.h"
#include "cq/homomorphism.h"
#include "relational/database.h"
#include "util/budget.h"

namespace featsep {

/// Evaluates a CQ over a database via homomorphisms from its canonical
/// database (paper, Section 2). Builds the canonical database once and
/// reuses it across probes; create one evaluator per (query, workload).
class CqEvaluator {
 public:
  /// The query's schema must equal the schema of the databases it will be
  /// evaluated on (compared structurally).
  explicit CqEvaluator(const ConjunctiveQuery& query);

  const ConjunctiveQuery& query() const { return query_; }

  /// True iff ā ∈ q(D), i.e., (D_q, x̄) → (D, ā).
  bool Selects(const Database& db, const std::vector<Value>& tuple,
               const HomOptions& options = {}) const;

  /// For unary queries: true iff e ∈ q(D).
  bool SelectsEntity(const Database& db, Value entity,
                     const HomOptions& options = {}) const;

  /// Budgeted probe: nullopt when `budget` interrupted the underlying hom
  /// search before it decided (never read nullopt as "not selected");
  /// otherwise the definitive membership answer. nullptr = unbounded.
  std::optional<bool> TrySelectsEntity(const Database& db, Value entity,
                                       ExecutionBudget* budget) const;

  /// For unary queries: q(D) as a set of entities, in the order of
  /// db.Entities(). If the query lacks an η(x) atom, candidates are all of
  /// dom(D) instead (q(D) ⊆ dom(D)).
  std::vector<Value> Evaluate(const Database& db,
                              const HomOptions& options = {}) const;

 private:
  ConjunctiveQuery query_;
  Database canonical_;
  std::vector<Value> var_to_value_;
  std::vector<Value> free_tuple_;
  bool has_entity_atom_ = false;
};

/// One-shot helpers.
bool CqSelects(const ConjunctiveQuery& query, const Database& db,
               Value entity);
std::vector<Value> EvaluateUnaryCq(const ConjunctiveQuery& query,
                                   const Database& db);

/// Converts a pointed database (D, ā) into the CQ whose canonical database
/// is D with free variables at ā — the inverse of CanonicalDatabase(). This
/// is how canonical QBE explanations and product queries become CQs.
ConjunctiveQuery CqFromDatabase(const Database& db,
                                const std::vector<Value>& distinguished);

}  // namespace featsep

#endif  // FEATSEP_CQ_EVALUATION_H_
