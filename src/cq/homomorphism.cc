#include "cq/homomorphism.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace featsep {

namespace {

/// Search state for one FindHomomorphism call.
class HomSearch {
 public:
  HomSearch(const Database& from, const Database& to,
            const HomOptions& options)
      : from_(from), to_(to), options_(options) {}

  HomResult Run(const std::vector<std::pair<Value, Value>>& seed);

 private:
  /// Index of a variable (a dom(from) element) in vars_.
  using VarIndex = std::size_t;
  static constexpr VarIndex kNoVar = static_cast<VarIndex>(-1);

  bool InitializeDomains();
  /// Filters every variable's domain through the unary constraints induced
  /// by its (relation, position) occurrences in `from_`.
  bool ApplyUnaryConstraints();
  /// Recursive backtracking. Returns kFound/kNone/kExhausted.
  HomStatus Search();
  /// Assigns var := image, then forward-checks all facts containing var,
  /// pruning neighbor domains. Returns false on wipe-out. Records undo
  /// information at trail marker `mark`.
  bool Assign(VarIndex var, Value image);
  /// Forward checking for one fact given the current partial assignment.
  /// Shrinks the domains of the fact's unassigned variables; false on
  /// wipe-out or if the fact can no longer be matched.
  bool CheckFact(FactIndex fact_index);

  void SaveDomain(VarIndex var);
  void UndoTo(std::size_t mark);

  const Database& from_;
  const Database& to_;
  const HomOptions& options_;

  std::vector<Value> vars_;                      // dom(from) elements.
  std::unordered_map<Value, VarIndex> var_of_;   // value -> variable index.
  std::vector<std::vector<Value>> domains_;      // candidate images.
  std::vector<Value> assignment_;                // kNoValue if unassigned.
  std::size_t unassigned_ = 0;

  // Trail of saved domains for backtracking.
  std::vector<std::pair<VarIndex, std::vector<Value>>> trail_;

  std::uint64_t nodes_ = 0;
  bool exhausted_ = false;
};

HomResult HomSearch::Run(const std::vector<std::pair<Value, Value>>& seed) {
  HomResult result;

  // Variables are the domain elements of `from_`.
  vars_ = from_.domain();
  var_of_.reserve(vars_.size());
  for (VarIndex i = 0; i < vars_.size(); ++i) var_of_[vars_[i]] = i;
  assignment_.assign(vars_.size(), kNoValue);
  unassigned_ = vars_.size();

  if (!InitializeDomains() || !ApplyUnaryConstraints()) {
    result.status = HomStatus::kNone;
    return result;
  }

  // Apply the seed as forced assignments.
  std::vector<std::pair<Value, Value>> free_seeds;  // outside dom(from).
  for (const auto& [source, image] : seed) {
    auto it = var_of_.find(source);
    if (it == var_of_.end()) {
      free_seeds.emplace_back(source, image);
      continue;
    }
    VarIndex var = it->second;
    if (assignment_[var] != kNoValue) {
      if (assignment_[var] != image) {
        result.status = HomStatus::kNone;
        result.nodes = nodes_;
        return result;
      }
      continue;
    }
    const std::vector<Value>& domain = domains_[var];
    if (std::find(domain.begin(), domain.end(), image) == domain.end() ||
        !Assign(var, image)) {
      result.status = HomStatus::kNone;
      result.nodes = nodes_;
      return result;
    }
  }

  result.status = Search();
  result.nodes = nodes_;
  if (result.status == HomStatus::kFound) {
    // Mapping indexed by value id over all interned values of `from_`.
    result.mapping.assign(from_.num_values(), kNoValue);
    for (VarIndex i = 0; i < vars_.size(); ++i) {
      result.mapping[vars_[i]] = assignment_[i];
    }
    for (const auto& [source, image] : free_seeds) {
      if (source < result.mapping.size()) result.mapping[source] = image;
    }
  }
  return result;
}

bool HomSearch::InitializeDomains() {
  domains_.assign(vars_.size(), to_.domain());
  for (const std::vector<Value>& domain : domains_) {
    if (domain.empty() && !vars_.empty()) return false;
  }
  return true;
}

bool HomSearch::ApplyUnaryConstraints() {
  // allowed[(relation, pos)] = set of `to_` values occurring there.
  // Computed lazily per (relation, pos) actually used in `from_`.
  std::unordered_map<std::uint64_t, std::vector<Value>> allowed_cache;
  auto allowed_at = [&](RelationId rel,
                        std::size_t pos) -> const std::vector<Value>& {
    std::uint64_t key = (static_cast<std::uint64_t>(rel) << 32) | pos;
    auto it = allowed_cache.find(key);
    if (it != allowed_cache.end()) return it->second;
    std::unordered_set<Value> set;
    for (FactIndex fi : to_.FactsOf(rel)) {
      set.insert(to_.fact(fi).args[pos]);
    }
    std::vector<Value> sorted(set.begin(), set.end());
    std::sort(sorted.begin(), sorted.end());
    return allowed_cache.emplace(key, std::move(sorted)).first->second;
  };

  for (const Fact& fact : from_.facts()) {
    for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
      VarIndex var = var_of_.at(fact.args[pos]);
      const std::vector<Value>& allowed = allowed_at(fact.relation, pos);
      std::vector<Value>& domain = domains_[var];
      std::vector<Value> filtered;
      filtered.reserve(domain.size());
      for (Value v : domain) {
        if (std::binary_search(allowed.begin(), allowed.end(), v)) {
          filtered.push_back(v);
        }
      }
      domain = std::move(filtered);
      if (domain.empty()) return false;
    }
  }
  return true;
}

HomStatus HomSearch::Search() {
  if (unassigned_ == 0) return HomStatus::kFound;

  // Minimum-remaining-values variable selection.
  auto select = [&]() {
    VarIndex best = kNoVar;
    std::size_t best_size = 0;
    for (VarIndex i = 0; i < vars_.size(); ++i) {
      if (assignment_[i] != kNoValue) continue;
      std::size_t size = domains_[i].size();
      if (best == kNoVar || size < best_size) {
        best = i;
        best_size = size;
        if (size <= 1) break;
      }
    }
    FEATSEP_CHECK_NE(best, kNoVar);
    return best;
  };

  // Iterative backtracking with an explicit frame stack: sources can have
  // tens of thousands of variables (e.g., QBE products), far beyond safe
  // call-stack recursion depth. Candidates are copied per frame because
  // Assign() may shrink the live domain via a neighbor's forward check.
  struct Frame {
    VarIndex var;
    std::vector<Value> candidates;
    std::size_t next = 0;
    std::size_t mark = 0;     // Trail mark taken before the last Assign.
    bool assigned = false;    // An Assign from this frame is in effect.
  };
  std::vector<Frame> stack;
  VarIndex first = select();
  stack.push_back(Frame{first, domains_[first], 0, 0, false});

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.assigned) {
      // Control returned to this frame: undo its assignment's effects.
      UndoTo(frame.mark);
      assignment_[frame.var] = kNoValue;
      ++unassigned_;
      frame.assigned = false;
    }
    if (options_.max_nodes != 0 && nodes_ >= options_.max_nodes) {
      return HomStatus::kExhausted;
    }
    if (frame.next >= frame.candidates.size()) {
      stack.pop_back();
      continue;
    }
    Value image = frame.candidates[frame.next++];
    ++nodes_;
    frame.mark = trail_.size();
    frame.assigned = true;
    if (Assign(frame.var, image)) {
      if (unassigned_ == 0) return HomStatus::kFound;
      VarIndex next_var = select();
      stack.push_back(Frame{next_var, domains_[next_var], 0, 0, false});
    }
    // On Assign failure the loop retries this frame (undo happens above).
  }
  return HomStatus::kNone;
}

bool HomSearch::Assign(VarIndex var, Value image) {
  assignment_[var] = image;
  --unassigned_;
  for (FactIndex fi : from_.FactsContaining(vars_[var])) {
    if (!CheckFact(fi)) return false;
  }
  return true;
}

bool HomSearch::CheckFact(FactIndex fact_index) {
  const Fact& fact = from_.fact(fact_index);

  // Find the assigned position whose (relation, pos, image) candidate list
  // in `to_` is smallest.
  std::size_t pivot = static_cast<std::size_t>(-1);
  std::size_t pivot_size = 0;
  for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
    Value image = assignment_[var_of_.at(fact.args[pos])];
    if (image == kNoValue) continue;
    std::size_t size = to_.FactsWith(fact.relation, pos, image).size();
    if (pivot == static_cast<std::size_t>(-1) || size < pivot_size) {
      pivot = pos;
      pivot_size = size;
    }
  }

  const std::vector<FactIndex>& candidates =
      pivot == static_cast<std::size_t>(-1)
          ? to_.FactsOf(fact.relation)
          : to_.FactsWith(fact.relation, pivot,
                          assignment_[var_of_.at(fact.args[pivot])]);

  // Collect, per fact position, the values supported by some compatible
  // target fact; also honor repeated variables within the fact. Without
  // forward checking we stop at the first compatible fact.
  std::vector<std::unordered_set<Value>> support(fact.args.size());
  bool any_compatible = false;
  for (FactIndex ci : candidates) {
    if (any_compatible && !options_.forward_checking) break;
    const Fact& target = to_.fact(ci);
    bool compatible = true;
    for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
      Value image = assignment_[var_of_.at(fact.args[pos])];
      if (image != kNoValue && target.args[pos] != image) {
        compatible = false;
        break;
      }
    }
    if (!compatible) continue;
    // Repeated source variables must receive equal images.
    for (std::size_t p1 = 0; compatible && p1 < fact.args.size(); ++p1) {
      for (std::size_t p2 = p1 + 1; p2 < fact.args.size(); ++p2) {
        if (fact.args[p1] == fact.args[p2] &&
            target.args[p1] != target.args[p2]) {
          compatible = false;
          break;
        }
      }
    }
    if (!compatible) continue;
    any_compatible = true;
    for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
      support[pos].insert(target.args[pos]);
    }
  }
  if (!any_compatible) return false;
  if (!options_.forward_checking) return true;

  // Prune the domains of unassigned variables of this fact.
  for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
    VarIndex var = var_of_.at(fact.args[pos]);
    if (assignment_[var] != kNoValue) continue;
    std::vector<Value>& domain = domains_[var];
    std::vector<Value> filtered;
    filtered.reserve(domain.size());
    for (Value v : domain) {
      if (support[pos].count(v) > 0) filtered.push_back(v);
    }
    if (filtered.size() != domain.size()) {
      SaveDomain(var);
      domains_[var] = std::move(filtered);
      if (domains_[var].empty()) return false;
    }
  }
  return true;
}

void HomSearch::SaveDomain(VarIndex var) {
  trail_.emplace_back(var, domains_[var]);
}

void HomSearch::UndoTo(std::size_t mark) {
  while (trail_.size() > mark) {
    auto& [var, domain] = trail_.back();
    domains_[var] = std::move(domain);
    trail_.pop_back();
  }
}

}  // namespace

HomResult FindHomomorphism(const Database& from, const Database& to,
                           const std::vector<std::pair<Value, Value>>& seed,
                           const HomOptions& options) {
  HomSearch search(from, to, options);
  return search.Run(seed);
}

bool HomomorphismExists(const Database& from, const Database& to,
                        const std::vector<std::pair<Value, Value>>& seed,
                        const HomOptions& options) {
  HomResult result = FindHomomorphism(from, to, seed, options);
  FEATSEP_CHECK(result.status != HomStatus::kExhausted)
      << "homomorphism search budget exhausted";
  return result.status == HomStatus::kFound;
}

bool HomEquivalent(const Database& from, const std::vector<Value>& from_tuple,
                   const Database& to, const std::vector<Value>& to_tuple) {
  FEATSEP_CHECK_EQ(from_tuple.size(), to_tuple.size());
  std::vector<std::pair<Value, Value>> forward;
  std::vector<std::pair<Value, Value>> backward;
  for (std::size_t i = 0; i < from_tuple.size(); ++i) {
    forward.emplace_back(from_tuple[i], to_tuple[i]);
    backward.emplace_back(to_tuple[i], from_tuple[i]);
  }
  return HomomorphismExists(from, to, forward) &&
         HomomorphismExists(to, from, backward);
}

}  // namespace featsep
