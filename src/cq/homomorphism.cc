#include "cq/homomorphism.h"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "testing/coverage.h"
#include "testing/faults.h"
#include "util/budget.h"
#include "util/check.h"
#include "util/svo_bitset.h"

namespace featsep {

namespace {

/// Search state for one FindHomomorphism call.
///
/// The CSP is solved over dense indices on both sides: variables are
/// positions into dom(from), candidate images are positions into dom(to),
/// and every domain is an SvoBitset over the 0..|dom(to)|-1 universe. All
/// per-fact structure (variable indices per position, repeated-variable
/// position pairs) and all per-(relation, position[, value]) target indexes
/// (allowed-value and support bitsets) are computed once per search and
/// reused at every node, so the inner loops are word-wise bit operations.
class HomSearch {
 public:
  HomSearch(const Database& from, const Database& to,
            const HomOptions& options)
      : from_(from), to_(to), options_(options) {}

  HomResult Run(const std::vector<std::pair<Value, Value>>& seed);

 private:
  /// Index of a variable (a dom(from) element) in vars_.
  using VarIndex = std::uint32_t;
  static constexpr VarIndex kNoVar = static_cast<VarIndex>(-1);
  /// Index of a candidate image in dom(to) (a position in to_.domain()).
  using DomIndex = std::uint32_t;
  static constexpr DomIndex kNoDomIndex = Database::kNoDomainIndex;

  /// Precomputed structure of one `from_` fact.
  struct FactInfo {
    std::vector<VarIndex> vars;  // Variable index per argument position.
    // Position pairs (p1 < p2) carrying the same variable; targets must
    // agree on them. Hoisted out of the per-candidate loops.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> rep_pairs;
  };

  void BuildStructures();
  /// Filters every variable's domain through the unary constraints induced
  /// by its (relation, position) occurrences in `from_`.
  bool ApplyUnaryConstraints();
  /// Iterative backtracking. Returns kFound/kNone/kExhausted.
  HomStatus Search();
  /// Assigns var := the dom(to) element at `image`, then forward-checks all
  /// facts containing var, pruning neighbor domains. Returns false on
  /// wipe-out. Opens a new trail epoch (copy-on-first-write granularity).
  bool Assign(VarIndex var, DomIndex image);
  /// Forward checking for one fact given the current partial assignment.
  /// Shrinks the domains of the fact's unassigned variables; false on
  /// wipe-out or if the fact can no longer be matched.
  bool CheckFact(FactIndex fact_index);
  /// Intersects var's domain with `mask`, saving the old domain on the
  /// trail at most once per epoch. False on wipe-out.
  bool PruneDomain(VarIndex var, const SvoBitset& mask);
  /// Minimum-remaining-values selection with a static-degree tie-break.
  VarIndex SelectVar() const;

  std::uint32_t RelPosId(RelationId relation, std::size_t pos) const {
    return relpos_base_[relation] + static_cast<std::uint32_t>(pos);
  }
  /// Bitset of dom(to) positions of values occurring at (relation, pos) in
  /// `to_`. Built lazily, once per (relation, pos).
  const SvoBitset& Allowed(RelationId relation, std::size_t pos);
  /// Per-position support bitsets of (relation, pos, image): entry p is the
  /// set of dom(to) positions of values at argument p among the `to_` facts
  /// of `relation` carrying `image` at `pos`. Built lazily, once per key.
  const std::vector<SvoBitset>& Support(RelationId relation, std::size_t pos,
                                        DomIndex image_index, Value image);

  void SaveDomain(VarIndex var);
  void UndoTo(std::size_t mark);

  const Database& from_;
  const Database& to_;
  const HomOptions& options_;

  std::vector<Value> vars_;          // var index -> dom(from) element.
  std::vector<VarIndex> var_of_;     // from-value id -> var index (dense).
  const std::vector<Value>* to_dom_ = nullptr;          // index -> to-value.
  const std::vector<std::uint32_t>* to_index_ = nullptr;  // to-value -> index.
  std::size_t ndom_ = 0;             // |dom(to)|.

  std::vector<FactInfo> fact_info_;  // Indexed by FactIndex of from_.
  std::vector<std::uint32_t> degree_;  // Facts containing each variable.
  std::vector<std::uint32_t> relpos_base_;  // relation -> (rel, pos) id base.

  std::vector<SvoBitset> domains_;
  std::vector<std::uint32_t> domain_size_;  // Cached domain popcounts.
  std::vector<Value> assigned_value_;       // kNoValue if unassigned.
  std::vector<DomIndex> assigned_index_;    // Dense twin of assigned_value_.
  std::size_t unassigned_ = 0;

  std::vector<SvoBitset> allowed_;          // Indexed by (rel, pos) id.
  std::vector<bool> allowed_valid_;
  // (rel, pos) id << 32 | image index -> per-position support bitsets.
  std::unordered_map<std::uint64_t, std::vector<SvoBitset>> support_cache_;

  std::vector<DomIndex> prefer_;     // Per-var preferred image, or kNoDomIndex.

  // Trail of saved (domain, popcount) snapshots; at most one per variable
  // per epoch (= Assign call), so undo cost tracks actual pruning.
  struct TrailEntry {
    VarIndex var;
    SvoBitset saved;
    std::uint32_t saved_size;
  };
  std::vector<TrailEntry> trail_;
  std::vector<std::uint64_t> saved_epoch_;  // Last epoch each var was saved.
  std::uint64_t epoch_ = 0;

  // Scratch bitsets reused across CheckFact calls (general path).
  std::vector<SvoBitset> scratch_;
  SvoBitset tmp_;

  std::uint64_t nodes_ = 0;
};

HomResult HomSearch::Run(const std::vector<std::pair<Value, Value>>& seed) {
  HomResult result;

  // A zero/expired/cancelled budget at entry: return undecided before any
  // setup work, so abandoned requests cost nothing.
  if (!RecheckBudget(options_.budget)) {
    result.status = HomStatus::kExhausted;
    result.outcome = options_.budget->outcome();
    return result;
  }

  // Variables are the domain elements of `from_`.
  vars_ = from_.domain();
  var_of_.assign(from_.num_values(), kNoVar);
  for (VarIndex i = 0; i < vars_.size(); ++i) var_of_[vars_[i]] = i;
  to_dom_ = &to_.domain();
  to_index_ = &to_.domain_index();
  ndom_ = to_dom_->size();
  assigned_value_.assign(vars_.size(), kNoValue);
  assigned_index_.assign(vars_.size(), kNoDomIndex);
  unassigned_ = vars_.size();

  if (!vars_.empty() && ndom_ == 0) {
    result.status = HomStatus::kNone;
    result.nodes = nodes_;
    return result;
  }

  BuildStructures();

  if (!ApplyUnaryConstraints()) {
    FEATSEP_COVERAGE(kHomUnaryWipeout);
    result.status = HomStatus::kNone;
    result.nodes = nodes_;
    return result;
  }

  prefer_.assign(vars_.size(), kNoDomIndex);
  for (const auto& [source, image] : options_.prefer) {
    if (source >= var_of_.size() || var_of_[source] == kNoVar) continue;
    if (image >= to_index_->size()) continue;
    DomIndex index = (*to_index_)[image];
    if (index != kNoDomIndex) prefer_[var_of_[source]] = index;
  }

  // Apply the seed as forced assignments.
  std::vector<std::pair<Value, Value>> free_seeds;  // outside dom(from).
  for (const auto& [source, image] : seed) {
    VarIndex var = source < var_of_.size() ? var_of_[source] : kNoVar;
    if (var == kNoVar) {
      free_seeds.emplace_back(source, image);
      continue;
    }
    if (assigned_value_[var] != kNoValue) {
      if (assigned_value_[var] != image) {
        FEATSEP_COVERAGE(kHomSeedReject);
        result.status = HomStatus::kNone;
        result.nodes = nodes_;
        return result;
      }
      continue;
    }
    DomIndex index =
        image < to_index_->size() ? (*to_index_)[image] : kNoDomIndex;
    if (index == kNoDomIndex || !domains_[var].test(index) ||
        !Assign(var, index)) {
      FEATSEP_COVERAGE(kHomSeedReject);
      result.status = HomStatus::kNone;
      result.nodes = nodes_;
      return result;
    }
  }

  result.status = Search();
  result.nodes = nodes_;
  if (result.status == HomStatus::kExhausted) {
    result.outcome =
        options_.budget != nullptr && options_.budget->Interrupted()
            ? options_.budget->outcome()
            : BudgetOutcome::kBudgetExhausted;  // Legacy max_nodes knob.
  }
  if (result.status == HomStatus::kFound) {
    // Mapping indexed by value id over all interned values of `from_`.
    result.mapping.assign(from_.num_values(), kNoValue);
    for (VarIndex i = 0; i < vars_.size(); ++i) {
      result.mapping[vars_[i]] = assigned_value_[i];
    }
    for (const auto& [source, image] : free_seeds) {
      if (source < result.mapping.size()) result.mapping[source] = image;
    }
  }
  return result;
}

void HomSearch::BuildStructures() {
  const Schema& schema = from_.schema();
  relpos_base_.resize(schema.size());
  std::uint32_t base = 0;
  for (RelationId r = 0; r < schema.size(); ++r) {
    relpos_base_[r] = base;
    base += static_cast<std::uint32_t>(schema.arity(r));
  }
  allowed_.resize(base);
  allowed_valid_.assign(base, false);

  fact_info_.resize(from_.facts().size());
  for (FactIndex fi = 0; fi < from_.facts().size(); ++fi) {
    const Fact& fact = from_.fact(fi);
    FactInfo& info = fact_info_[fi];
    info.vars.reserve(fact.args.size());
    for (Value v : fact.args) info.vars.push_back(var_of_[v]);
    for (std::uint32_t p1 = 0; p1 < fact.args.size(); ++p1) {
      for (std::uint32_t p2 = p1 + 1; p2 < fact.args.size(); ++p2) {
        if (fact.args[p1] == fact.args[p2]) info.rep_pairs.emplace_back(p1, p2);
      }
    }
  }

  degree_.resize(vars_.size());
  for (VarIndex i = 0; i < vars_.size(); ++i) {
    degree_[i] =
        static_cast<std::uint32_t>(from_.FactsContaining(vars_[i]).size());
  }

  domains_.clear();
  domains_.reserve(vars_.size());
  for (VarIndex i = 0; i < vars_.size(); ++i) {
    domains_.emplace_back(ndom_, true);
  }
  domain_size_.assign(vars_.size(), static_cast<std::uint32_t>(ndom_));
  saved_epoch_.assign(vars_.size(), 0);
  tmp_ = SvoBitset(ndom_);
}

const SvoBitset& HomSearch::Allowed(RelationId relation, std::size_t pos) {
  std::uint32_t id = RelPosId(relation, pos);
  if (!allowed_valid_[id]) {
    SvoBitset bits(ndom_);
    for (FactIndex fi : to_.FactsOf(relation)) {
      bits.set((*to_index_)[to_.fact(fi).args[pos]]);
    }
    allowed_[id] = std::move(bits);
    allowed_valid_[id] = true;
  }
  return allowed_[id];
}

const std::vector<SvoBitset>& HomSearch::Support(RelationId relation,
                                                 std::size_t pos,
                                                 DomIndex image_index,
                                                 Value image) {
  std::uint64_t key =
      (static_cast<std::uint64_t>(RelPosId(relation, pos)) << 32) |
      image_index;
  auto it = support_cache_.find(key);
  if (it != support_cache_.end()) return it->second;
  std::size_t arity = to_.schema().arity(relation);
  std::vector<SvoBitset> support;
  support.reserve(arity);
  for (std::size_t p = 0; p < arity; ++p) support.emplace_back(ndom_);
  for (FactIndex fi : to_.FactsWith(relation, pos, image)) {
    const Fact& target = to_.fact(fi);
    for (std::size_t p = 0; p < arity; ++p) {
      support[p].set((*to_index_)[target.args[p]]);
    }
  }
  return support_cache_.emplace(key, std::move(support)).first->second;
}

bool HomSearch::ApplyUnaryConstraints() {
  for (FactIndex fi = 0; fi < from_.facts().size(); ++fi) {
    const Fact& fact = from_.fact(fi);
    const FactInfo& info = fact_info_[fi];
    for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
      domains_[info.vars[pos]].intersect_with(Allowed(fact.relation, pos));
    }
  }
  for (VarIndex i = 0; i < vars_.size(); ++i) {
    domain_size_[i] = static_cast<std::uint32_t>(domains_[i].count());
    if (domain_size_[i] == 0) return false;
  }
  return true;
}

HomSearch::VarIndex HomSearch::SelectVar() const {
  VarIndex best = kNoVar;
  std::uint32_t best_size = 0;
  for (VarIndex i = 0; i < vars_.size(); ++i) {
    if (assigned_value_[i] != kNoValue) continue;
    std::uint32_t size = domain_size_[i];
    if (best == kNoVar || size < best_size ||
        (size == best_size && degree_[i] > degree_[best])) {
      best = i;
      best_size = size;
      if (size <= 1) break;
    }
  }
  FEATSEP_CHECK_NE(best, kNoVar);
  return best;
}

HomStatus HomSearch::Search() {
  if (unassigned_ == 0) {
    FEATSEP_COVERAGE(kHomFound);
    return HomStatus::kFound;
  }

  // Iterative backtracking with an explicit frame stack: sources can have
  // tens of thousands of variables (e.g., QBE products), far beyond safe
  // call-stack recursion depth. Candidates are copied per frame because
  // Assign() may shrink the live domain via a neighbor's forward check.
  struct Frame {
    VarIndex var;
    SvoBitset candidates;
    std::size_t cursor = 0;       // Next candidate bit to scan.
    DomIndex pref = kNoDomIndex;  // Preferred image, tried before the scan.
    std::size_t mark = 0;         // Trail mark taken before the last Assign.
    bool assigned = false;        // An Assign from this frame is in effect.
  };
  auto make_frame = [&](VarIndex var) {
    Frame frame;
    frame.var = var;
    frame.candidates = domains_[var];
    DomIndex pref = prefer_[var];
    if (pref != kNoDomIndex && frame.candidates.test(pref)) {
      frame.candidates.reset(pref);  // Consumed through the pref slot.
      frame.pref = pref;
    }
    return frame;
  };

  std::vector<Frame> stack;
  stack.push_back(make_frame(SelectVar()));

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.assigned) {
      // Control returned to this frame: undo its assignment's effects.
      UndoTo(frame.mark);
      assigned_value_[frame.var] = kNoValue;
      assigned_index_[frame.var] = kNoDomIndex;
      ++unassigned_;
      frame.assigned = false;
    }
    if (options_.max_nodes != 0 && nodes_ >= options_.max_nodes) {
      FEATSEP_COVERAGE(kHomExhausted);
      return HomStatus::kExhausted;
    }
    DomIndex image;
    if (frame.pref != kNoDomIndex) {
      FEATSEP_COVERAGE(kHomPreferHit);
      image = frame.pref;
      frame.pref = kNoDomIndex;
    } else {
      std::size_t bit = frame.candidates.find_next(frame.cursor);
      if (bit == SvoBitset::kNoBit) {
        FEATSEP_COVERAGE(kHomBacktrack);
        FEATSEP_FAULT_POINT(kHomBacktrack);
        stack.pop_back();
        continue;
      }
      image = static_cast<DomIndex>(bit);
      frame.cursor = bit + 1;
    }
    ++nodes_;
    FEATSEP_COVERAGE(kHomNode);
    FEATSEP_FAULT_POINT(kHomNode);
    if (!ChargeBudget(options_.budget)) {
      FEATSEP_COVERAGE(kHomExhausted);
      return HomStatus::kExhausted;
    }
    frame.mark = trail_.size();
    frame.assigned = true;
    if (Assign(frame.var, image)) {
      if (unassigned_ == 0) {
        FEATSEP_COVERAGE(kHomFound);
        return HomStatus::kFound;
      }
      stack.push_back(make_frame(SelectVar()));
    }
    // On Assign failure the loop retries this frame (undo happens above).
  }
  FEATSEP_COVERAGE(kHomNone);
  return HomStatus::kNone;
}

bool HomSearch::Assign(VarIndex var, DomIndex image) {
  ++epoch_;
  assigned_index_[var] = image;
  assigned_value_[var] = (*to_dom_)[image];
  --unassigned_;
  for (FactIndex fi : from_.FactsContaining(vars_[var])) {
    if (!CheckFact(fi)) return false;
  }
  return true;
}

bool HomSearch::CheckFact(FactIndex fact_index) {
  const Fact& fact = from_.fact(fact_index);
  const FactInfo& info = fact_info_[fact_index];
  const std::size_t arity = fact.args.size();

  // Find the assigned position whose (relation, pos, image) candidate list
  // in `to_` is smallest.
  std::size_t assigned_count = 0;
  std::size_t pivot = static_cast<std::size_t>(-1);
  std::size_t pivot_size = 0;
  for (std::size_t pos = 0; pos < arity; ++pos) {
    Value image = assigned_value_[info.vars[pos]];
    if (image == kNoValue) continue;
    ++assigned_count;
    std::size_t size = to_.FactsWith(fact.relation, pos, image).size();
    if (pivot == static_cast<std::size_t>(-1) || size < pivot_size) {
      pivot = pos;
      pivot_size = size;
    }
  }

  // Fast path: one assigned position and no repeated variables. Every fact
  // in the pivot's candidate list is compatible, so the per-position
  // supports are exactly the precomputed support bitsets — forward checking
  // degenerates to one word-wise AND per unassigned position.
  if (assigned_count == 1 && info.rep_pairs.empty()) {
    FEATSEP_COVERAGE(kHomFastCheck);
    if (pivot_size == 0) {
      FEATSEP_COVERAGE(kHomDeadFact);
      return false;
    }
    if (!options_.forward_checking) return true;
    VarIndex pivot_var = info.vars[pivot];
    const std::vector<SvoBitset>& support =
        Support(fact.relation, pivot, assigned_index_[pivot_var],
                assigned_value_[pivot_var]);
    for (std::size_t pos = 0; pos < arity; ++pos) {
      if (pos == pivot) continue;
      if (!PruneDomain(info.vars[pos], support[pos])) return false;
    }
    return true;
  }

  // General path: several assigned positions or repeated variables. A
  // target fact must agree with *all* assigned positions simultaneously
  // (pairwise support is not enough at arity ≥ 3), so scan the pivot's
  // candidate list and accumulate per-position supports in scratch bitsets.
  FEATSEP_COVERAGE(kHomGeneralCheck);
  const std::vector<FactIndex>& candidates =
      pivot == static_cast<std::size_t>(-1)
          ? to_.FactsOf(fact.relation)
          : to_.FactsWith(fact.relation, pivot,
                          assigned_value_[info.vars[pivot]]);

  if (options_.forward_checking) {
    if (scratch_.size() < arity) scratch_.resize(arity);
    for (std::size_t pos = 0; pos < arity; ++pos) {
      if (assigned_value_[info.vars[pos]] != kNoValue) continue;
      if (scratch_[pos].size() != ndom_) scratch_[pos] = SvoBitset(ndom_);
      scratch_[pos].reset_all();
    }
  }

  bool any_compatible = false;
  for (FactIndex ci : candidates) {
    const Fact& target = to_.fact(ci);
    bool compatible = true;
    for (std::size_t pos = 0; pos < arity; ++pos) {
      Value image = assigned_value_[info.vars[pos]];
      if (image != kNoValue && target.args[pos] != image) {
        compatible = false;
        break;
      }
    }
    if (!compatible) continue;
    // Repeated source variables must receive equal images.
    for (const auto& [p1, p2] : info.rep_pairs) {
      if (target.args[p1] != target.args[p2]) {
        compatible = false;
        break;
      }
    }
    if (!compatible) continue;
    any_compatible = true;
    // Without forward checking we stop at the first compatible fact.
    if (!options_.forward_checking) return true;
    for (std::size_t pos = 0; pos < arity; ++pos) {
      if (assigned_value_[info.vars[pos]] != kNoValue) continue;
      scratch_[pos].set((*to_index_)[target.args[pos]]);
    }
  }
  if (!any_compatible) {
    FEATSEP_COVERAGE(kHomDeadFact);
    return false;
  }

  // Prune the domains of unassigned variables of this fact.
  for (std::size_t pos = 0; pos < arity; ++pos) {
    VarIndex var = info.vars[pos];
    if (assigned_value_[var] != kNoValue) continue;
    if (!PruneDomain(var, scratch_[pos])) return false;
  }
  return true;
}

bool HomSearch::PruneDomain(VarIndex var, const SvoBitset& mask) {
  tmp_ = domains_[var];
  tmp_.intersect_with(mask);
  std::uint32_t count = static_cast<std::uint32_t>(tmp_.count());
  // Intersections only shrink, so an equal popcount means an equal set.
  if (count == domain_size_[var]) return true;
  FEATSEP_COVERAGE(kHomPrune);
  SaveDomain(var);
  std::swap(domains_[var], tmp_);
  domain_size_[var] = count;
  if (count == 0) {
    FEATSEP_COVERAGE(kHomWipeout);
    return false;
  }
  return true;
}

void HomSearch::SaveDomain(VarIndex var) {
  if (saved_epoch_[var] == epoch_) return;  // Copy-on-first-write per epoch.
  saved_epoch_[var] = epoch_;
  trail_.push_back(TrailEntry{var, domains_[var], domain_size_[var]});
}

void HomSearch::UndoTo(std::size_t mark) {
  while (trail_.size() > mark) {
    TrailEntry& entry = trail_.back();
    domains_[entry.var] = std::move(entry.saved);
    domain_size_[entry.var] = entry.saved_size;
    trail_.pop_back();
  }
}

}  // namespace

HomResult FindHomomorphism(const Database& from, const Database& to,
                           const std::vector<std::pair<Value, Value>>& seed,
                           const HomOptions& options) {
  HomSearch search(from, to, options);
  return search.Run(seed);
}

bool HomomorphismExists(const Database& from, const Database& to,
                        const std::vector<std::pair<Value, Value>>& seed,
                        const HomOptions& options) {
  HomResult result = FindHomomorphism(from, to, seed, options);
  FEATSEP_CHECK(result.status != HomStatus::kExhausted)
      << "homomorphism search budget exhausted";
  return result.status == HomStatus::kFound;
}

bool HomEquivalent(const Database& from, const std::vector<Value>& from_tuple,
                   const Database& to, const std::vector<Value>& to_tuple) {
  std::optional<bool> result =
      TryHomEquivalent(from, from_tuple, to, to_tuple, nullptr);
  FEATSEP_CHECK(result.has_value());  // No budget, so never interrupted.
  return *result;
}

std::optional<bool> TryHomEquivalent(const Database& from,
                                     const std::vector<Value>& from_tuple,
                                     const Database& to,
                                     const std::vector<Value>& to_tuple,
                                     ExecutionBudget* budget) {
  FEATSEP_CHECK_EQ(from_tuple.size(), to_tuple.size());
  std::vector<std::pair<Value, Value>> forward;
  std::vector<std::pair<Value, Value>> backward;
  for (std::size_t i = 0; i < from_tuple.size(); ++i) {
    forward.emplace_back(from_tuple[i], to_tuple[i]);
    backward.emplace_back(to_tuple[i], from_tuple[i]);
  }
  HomOptions forward_options;
  forward_options.budget = budget;
  HomResult fwd = FindHomomorphism(from, to, forward, forward_options);
  if (fwd.status == HomStatus::kExhausted) return std::nullopt;
  if (fwd.status != HomStatus::kFound) return false;
  // Replay the forward witness as the backward search's value ordering: if
  // h maps v to w, try w -> v first. When h is close to invertible this
  // lets the backward search walk straight to a witness.
  HomOptions backward_options;
  backward_options.budget = budget;
  for (Value v : from.domain()) {
    Value w = fwd.mapping[v];
    if (w != kNoValue) backward_options.prefer.emplace_back(w, v);
  }
  HomResult bwd = FindHomomorphism(to, from, backward, backward_options);
  if (bwd.status == HomStatus::kExhausted) return std::nullopt;
  return bwd.status == HomStatus::kFound;
}

}  // namespace featsep
