#include "cq/homomorphism.h"

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cq/hom_nogoods.h"
#include "testing/coverage.h"
#include "testing/faults.h"
#include "util/budget.h"
#include "util/check.h"
#include "util/svo_bitset.h"

namespace featsep {

namespace {

/// splitmix64 step — the restart workers' value-order randomization stream.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// State shared by the workers of one parallel FindHomomorphism call. All
/// of it is call-local: nothing survives the call, so an interrupted or
/// cancelled run cannot poison any cross-call cache.
struct ParallelShared {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> nodes{0};     // Global node count (max_nodes).
  std::atomic<std::uint64_t> restarts{0};
  NogoodStore* store = nullptr;            // nullptr = nogoods disabled.
  std::mutex winner_mutex;
  bool has_winner = false;
  HomResult winner;
};

/// Per-worker search personality.
struct WorkerConfig {
  std::size_t worker_id = 0;
  /// Randomize value order by per-frame rotation offsets.
  bool randomize = false;
  /// Run under the Luby restart schedule (recording nogoods when a store
  /// is attached).
  bool restarts = false;
};

/// Search state for one FindHomomorphism worker.
///
/// The CSP is solved over dense indices on both sides: variables are
/// positions into dom(from), candidate images are positions into dom(to),
/// and every domain is an SvoBitset over the 0..|dom(to)|-1 universe. All
/// per-fact structure (variable indices per position, repeated-variable
/// position pairs) and all per-(relation, position[, value]) target indexes
/// (allowed-value bitsets, support bitsets, candidate counts, fact-index
/// bitsets) are computed once per search and reused at every node, so the
/// inner loops are word-wise bit operations.
///
/// Parallel calls run one HomSearch per worker: the lazy target indexes are
/// per-worker (never synchronized — they are read/written from the hot
/// path), while the nogood store, done flag, and node counter are shared.
class HomSearch {
 public:
  HomSearch(const Database& from, const Database& to,
            const HomOptions& options)
      : from_(from), to_(to), options_(options) {}

  HomResult Run(const std::vector<std::pair<Value, Value>>& seed,
                ParallelShared* shared, const WorkerConfig& worker);

 private:
  /// Index of a variable (a dom(from) element) in vars_.
  using VarIndex = std::uint32_t;
  static constexpr VarIndex kNoVar = static_cast<VarIndex>(-1);
  /// Index of a candidate image in dom(to) (a position in to_.domain()).
  using DomIndex = std::uint32_t;
  static constexpr DomIndex kNoDomIndex = Database::kNoDomainIndex;

  /// Precomputed structure of one `from_` fact.
  struct FactInfo {
    std::vector<VarIndex> vars;  // Variable index per argument position.
    // Position pairs (p1 < p2) carrying the same variable; targets must
    // agree on them. Hoisted out of the per-candidate loops.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> rep_pairs;
  };

  /// How one Search() run ended (superset of the public HomStatus: restart
  /// workers additionally stop at their node limit, and parallel workers
  /// abandon the run once a sibling has won).
  enum class SearchEnd { kFound, kNone, kExhausted, kAborted, kRestart };

  /// One backtracking frame. Candidates are copied because Assign() may
  /// shrink the live domain via a neighbor's forward check; randomized
  /// workers scan them from a per-frame rotation offset (wrapping once), so
  /// restarts explore genuinely different subtrees without allocation.
  struct Frame {
    VarIndex var;
    SvoBitset candidates;
    std::size_t cursor = 0;       // Next candidate bit to scan.
    std::size_t offset = 0;       // Rotation start (randomized workers).
    bool wrapped = false;         // Scan has wrapped past the end once.
    DomIndex pref = kNoDomIndex;  // Preferred image, tried before the scan.
    DomIndex image = kNoDomIndex; // Decision currently in effect.
    std::size_t mark = 0;         // Trail mark taken before the last Assign.
    bool assigned = false;        // An Assign from this frame is in effect.
    // Images whose subtrees were exhausted at this frame (only tracked when
    // nogoods are being recorded).
    std::vector<DomIndex> refuted;
  };

  void BuildStructures();
  /// Filters every variable's domain through the unary constraints induced
  /// by its (relation, position) occurrences in `from_`.
  bool ApplyUnaryConstraints();
  /// Runs Search under the worker's restart schedule (or once, for the
  /// classic sequential worker).
  SearchEnd RunSearchLoop();
  /// One backtracking run, stopping after `node_limit` nodes when nonzero.
  SearchEnd Search(std::uint64_t node_limit);
  Frame MakeFrame(VarIndex var);
  /// Next untried candidate of `frame`, or kNoDomIndex when exhausted.
  DomIndex NextCandidate(Frame& frame);
  /// Records negative-last-decision nogoods for the run's refuted subtrees.
  void RecordNogoods(const std::vector<Frame>& stack);
  /// Undoes every frame's assignment (back to the post-seed state).
  void Unwind(std::vector<Frame>& stack);
  /// Assigns var := the dom(to) element at `image`, then forward-checks all
  /// facts containing var, pruning neighbor domains. Returns false on
  /// wipe-out. Opens a new trail epoch (copy-on-first-write granularity).
  bool Assign(VarIndex var, DomIndex image);
  /// Forward checking for one fact given the current partial assignment.
  /// Shrinks the domains of the fact's unassigned variables; false on
  /// wipe-out or if the fact can no longer be matched.
  bool CheckFact(FactIndex fact_index);
  /// Intersects var's domain with `mask`, saving the old domain on the
  /// trail at most once per epoch. False on wipe-out.
  bool PruneDomain(VarIndex var, const SvoBitset& mask);
  /// Minimum-remaining-values selection with a static-degree tie-break.
  VarIndex SelectVar() const;

  std::uint32_t RelPosId(RelationId relation, std::size_t pos) const {
    return relpos_base_[relation] + static_cast<std::uint32_t>(pos);
  }
  /// Bitset of dom(to) positions of values occurring at (relation, pos) in
  /// `to_`. Built lazily, once per (relation, pos).
  const SvoBitset& Allowed(RelationId relation, std::size_t pos);
  /// Per-position support bitsets of (relation, pos, image): entry p is the
  /// set of dom(to) positions of values at argument p among the `to_` facts
  /// of `relation` carrying `image` at `pos`. Built lazily, once per key.
  const std::vector<SvoBitset>& Support(RelationId relation, std::size_t pos,
                                        DomIndex image_index, Value image);
  /// Fact-index bitset of (relation, pos, image): the facts of `relation`
  /// (as dense per-relation indices) carrying `image` at `pos`. Built
  /// lazily, once per key.
  const SvoBitset& FactBits(RelationId relation, std::size_t pos,
                            DomIndex image_index, Value image);
  /// Fact-index bitset of the `relation` facts whose arguments at p1 and p2
  /// are equal — the repeated-variable constraint as a word-wise AND.
  const SvoBitset& EqBits(RelationId relation, std::uint32_t p1,
                          std::uint32_t p2);
  /// Dense-fact-index -> dom index of argument `pos`, per (relation, pos).
  /// The support-accumulation table of the fact-bitset general path.
  const std::vector<HomSearch::DomIndex>& ArgIndex(RelationId relation,
                                                   std::size_t pos);

  void SaveDomain(VarIndex var);
  void UndoTo(std::size_t mark);

  /// Global node count for the max_nodes cap (shared across workers).
  std::uint64_t TotalNodes() const {
    return shared_ != nullptr
               ? shared_->nodes.load(std::memory_order_relaxed)
               : nodes_;
  }

  const Database& from_;
  const Database& to_;
  const HomOptions& options_;

  std::vector<Value> vars_;          // var index -> dom(from) element.
  std::vector<VarIndex> var_of_;     // from-value id -> var index (dense).
  const std::vector<Value>* to_dom_ = nullptr;          // index -> to-value.
  const std::vector<std::uint32_t>* to_index_ = nullptr;  // to-value -> index.
  std::size_t ndom_ = 0;             // |dom(to)|.

  std::vector<FactInfo> fact_info_;  // Indexed by FactIndex of from_.
  std::vector<std::uint32_t> degree_;  // Facts containing each variable.
  std::vector<std::uint32_t> relpos_base_;  // relation -> (rel, pos) id base.
  // FactIndex of to_ -> dense index within its relation's FactsOf list (the
  // fact-bitset universe of that relation). Built on the first FactBits
  // call: the table costs O(|facts(to_)|), which would dwarf the rest of the
  // per-call setup on searches that never leave the closed/single-assigned
  // fast paths.
  std::vector<std::uint32_t> fact_dense_id_;
  bool fact_dense_valid_ = false;

  std::vector<SvoBitset> domains_;
  std::vector<std::uint32_t> domain_size_;  // Cached domain popcounts.
  std::vector<Value> assigned_value_;       // kNoValue if unassigned.
  std::vector<DomIndex> assigned_index_;    // Dense twin of assigned_value_.
  std::size_t unassigned_ = 0;

  std::vector<SvoBitset> allowed_;          // Indexed by (rel, pos) id.
  std::vector<bool> allowed_valid_;
  // (rel, pos) id -> the to_ position index consulted for pivot sizes —
  // cached at setup so each probe is one hash find with no per-call
  // relation/pos navigation (and no O(|facts|) count-table builds).
  std::vector<const Database::PositionIndex*> pos_index_;
  // Indexed by (rel, pos); allocated on first ArgIndex call (general path
  // only), sized from relpos_total_.
  std::vector<std::vector<DomIndex>> arg_index_;
  std::vector<bool> arg_index_valid_;
  std::uint32_t relpos_total_ = 0;  // Number of (rel, pos) slots.
  // (rel, pos) id << 32 | image index -> per-position support bitsets.
  std::unordered_map<std::uint64_t, std::vector<SvoBitset>> support_cache_;
  // (rel, pos) id << 32 | image index -> fact-index bitset.
  std::unordered_map<std::uint64_t, SvoBitset> fact_bits_;
  // (rel, pos-pair) -> equal-argument fact-index bitset.
  std::unordered_map<std::uint64_t, SvoBitset> eq_bits_;

  std::vector<DomIndex> prefer_;     // Per-var preferred image, or kNoDomIndex.

  // Trail of saved (domain, popcount) snapshots; at most one per variable
  // per epoch (= Assign call), so undo cost tracks actual pruning.
  struct TrailEntry {
    VarIndex var;
    SvoBitset saved;
    std::uint32_t saved_size;
  };
  std::vector<TrailEntry> trail_;
  std::vector<std::uint64_t> saved_epoch_;  // Last epoch each var was saved.
  std::uint64_t epoch_ = 0;

  // Scratch bitsets reused across CheckFact calls (general path).
  std::vector<SvoBitset> scratch_;
  SvoBitset fact_scratch_;  // Compatible-fact accumulator (general path).
  Fact probe_;              // Reused tuple for all-assigned lookups.

  // Worker personality (parallel / restart searches).
  ParallelShared* shared_ = nullptr;
  WorkerConfig worker_;
  bool record_nogoods_ = false;
  bool consume_nogoods_ = false;
  std::uint64_t rng_state_ = 0;

  std::uint64_t nodes_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t nogoods_recorded_ = 0;
};

HomResult HomSearch::Run(const std::vector<std::pair<Value, Value>>& seed,
                         ParallelShared* shared, const WorkerConfig& worker) {
  HomResult result;
  shared_ = shared;
  worker_ = worker;
  NogoodStore* store = shared_ != nullptr ? shared_->store : nullptr;
  record_nogoods_ = worker_.restarts && store != nullptr;
  consume_nogoods_ = store != nullptr;

  // A zero/expired/cancelled budget at entry: return undecided before any
  // setup work, so abandoned requests cost nothing.
  if (!RecheckBudget(options_.budget)) {
    result.status = HomStatus::kExhausted;
    result.outcome = options_.budget->outcome();
    return result;
  }

  // Variables are the domain elements of `from_`.
  vars_ = from_.domain();
  var_of_.assign(from_.num_values(), kNoVar);
  for (VarIndex i = 0; i < vars_.size(); ++i) var_of_[vars_[i]] = i;
  to_dom_ = &to_.domain();
  to_index_ = &to_.domain_index();
  ndom_ = to_dom_->size();
  assigned_value_.assign(vars_.size(), kNoValue);
  assigned_index_.assign(vars_.size(), kNoDomIndex);
  unassigned_ = vars_.size();

  if (!vars_.empty() && ndom_ == 0) {
    result.status = HomStatus::kNone;
    result.nodes = nodes_;
    return result;
  }

  BuildStructures();

  if (!ApplyUnaryConstraints()) {
    FEATSEP_COVERAGE(kHomUnaryWipeout);
    result.status = HomStatus::kNone;
    result.nodes = nodes_;
    return result;
  }

  prefer_.assign(vars_.size(), kNoDomIndex);
  for (const auto& [source, image] : options_.prefer) {
    if (source >= var_of_.size() || var_of_[source] == kNoVar) continue;
    if (image >= to_index_->size()) continue;
    DomIndex index = (*to_index_)[image];
    if (index != kNoDomIndex) prefer_[var_of_[source]] = index;
  }

  // Apply the seed as forced assignments.
  std::vector<std::pair<Value, Value>> free_seeds;  // outside dom(from).
  for (const auto& [source, image] : seed) {
    VarIndex var = source < var_of_.size() ? var_of_[source] : kNoVar;
    if (var == kNoVar) {
      free_seeds.emplace_back(source, image);
      continue;
    }
    if (assigned_value_[var] != kNoValue) {
      if (assigned_value_[var] != image) {
        FEATSEP_COVERAGE(kHomSeedReject);
        result.status = HomStatus::kNone;
        result.nodes = nodes_;
        return result;
      }
      continue;
    }
    DomIndex index =
        image < to_index_->size() ? (*to_index_)[image] : kNoDomIndex;
    if (index == kNoDomIndex || !domains_[var].test(index) ||
        !Assign(var, index)) {
      FEATSEP_COVERAGE(kHomSeedReject);
      result.status = HomStatus::kNone;
      result.nodes = nodes_;
      return result;
    }
  }

  switch (RunSearchLoop()) {
    case SearchEnd::kFound:
      result.status = HomStatus::kFound;
      break;
    case SearchEnd::kNone:
      result.status = HomStatus::kNone;
      break;
    case SearchEnd::kExhausted:
    case SearchEnd::kAborted:
    case SearchEnd::kRestart:  // Unreachable: RunSearchLoop resumes.
      result.status = HomStatus::kExhausted;
      break;
  }
  result.nodes = nodes_;
  result.restarts = restarts_;
  result.nogoods_recorded = nogoods_recorded_;
  if (result.status == HomStatus::kExhausted) {
    result.outcome =
        options_.budget != nullptr && options_.budget->Interrupted()
            ? options_.budget->outcome()
            : BudgetOutcome::kBudgetExhausted;  // max_nodes / sibling won.
  }
  if (result.status == HomStatus::kFound) {
    // Mapping indexed by value id over all interned values of `from_`.
    result.mapping.assign(from_.num_values(), kNoValue);
    for (VarIndex i = 0; i < vars_.size(); ++i) {
      result.mapping[vars_[i]] = assigned_value_[i];
    }
    for (const auto& [source, image] : free_seeds) {
      if (source < result.mapping.size()) result.mapping[source] = image;
    }
  }
  return result;
}

void HomSearch::BuildStructures() {
  const Schema& schema = from_.schema();
  relpos_base_.resize(schema.size());
  std::uint32_t base = 0;
  for (RelationId r = 0; r < schema.size(); ++r) {
    relpos_base_[r] = base;
    base += static_cast<std::uint32_t>(schema.arity(r));
  }
  allowed_.resize(base);
  allowed_valid_.assign(base, false);
  pos_index_.resize(base);
  for (RelationId r = 0; r < schema.size(); ++r) {
    for (std::size_t p = 0; p < schema.arity(r); ++p) {
      pos_index_[relpos_base_[r] + p] = &to_.PositionIndexOf(r, p);
    }
  }
  relpos_total_ = base;  // arg_index_ tables allocate lazily off this.

  fact_info_.resize(from_.facts().size());
  for (FactIndex fi = 0; fi < from_.facts().size(); ++fi) {
    const Fact& fact = from_.fact(fi);
    FactInfo& info = fact_info_[fi];
    info.vars.reserve(fact.args.size());
    for (Value v : fact.args) info.vars.push_back(var_of_[v]);
    for (std::uint32_t p1 = 0; p1 < fact.args.size(); ++p1) {
      for (std::uint32_t p2 = p1 + 1; p2 < fact.args.size(); ++p2) {
        if (fact.args[p1] == fact.args[p2]) info.rep_pairs.emplace_back(p1, p2);
      }
    }
  }

  degree_.resize(vars_.size());
  for (VarIndex i = 0; i < vars_.size(); ++i) {
    degree_[i] =
        static_cast<std::uint32_t>(from_.FactsContaining(vars_[i]).size());
  }

  domains_.clear();
  domains_.reserve(vars_.size());
  for (VarIndex i = 0; i < vars_.size(); ++i) {
    domains_.emplace_back(ndom_, true);
  }
  domain_size_.assign(vars_.size(), static_cast<std::uint32_t>(ndom_));
  saved_epoch_.assign(vars_.size(), 0);
}

const SvoBitset& HomSearch::Allowed(RelationId relation, std::size_t pos) {
  std::uint32_t id = RelPosId(relation, pos);
  if (!allowed_valid_[id]) {
    SvoBitset bits(ndom_);
    for (FactIndex fi : to_.FactsOf(relation)) {
      bits.set((*to_index_)[to_.fact(fi).args[pos]]);
    }
    allowed_[id] = std::move(bits);
    allowed_valid_[id] = true;
  }
  return allowed_[id];
}

const std::vector<SvoBitset>& HomSearch::Support(RelationId relation,
                                                 std::size_t pos,
                                                 DomIndex image_index,
                                                 Value image) {
  std::uint64_t key =
      (static_cast<std::uint64_t>(RelPosId(relation, pos)) << 32) |
      image_index;
  auto it = support_cache_.find(key);
  if (it != support_cache_.end()) return it->second;
  std::size_t arity = to_.schema().arity(relation);
  std::vector<SvoBitset> support;
  support.reserve(arity);
  for (std::size_t p = 0; p < arity; ++p) support.emplace_back(ndom_);
  for (FactIndex fi : to_.FactsWith(relation, pos, image)) {
    const Fact& target = to_.fact(fi);
    for (std::size_t p = 0; p < arity; ++p) {
      support[p].set((*to_index_)[target.args[p]]);
    }
  }
  return support_cache_.emplace(key, std::move(support)).first->second;
}

const SvoBitset& HomSearch::FactBits(RelationId relation, std::size_t pos,
                                     DomIndex image_index, Value image) {
  std::uint64_t key =
      (static_cast<std::uint64_t>(RelPosId(relation, pos)) << 32) |
      image_index;
  auto it = fact_bits_.find(key);
  if (it != fact_bits_.end()) return it->second;
  if (!fact_dense_valid_) {
    fact_dense_valid_ = true;
    fact_dense_id_.resize(to_.facts().size());
    for (RelationId r = 0; r < to_.schema().size(); ++r) {
      const std::vector<FactIndex>& of = to_.FactsOf(r);
      for (std::uint32_t j = 0; j < of.size(); ++j) fact_dense_id_[of[j]] = j;
    }
  }
  SvoBitset bits(to_.FactsOf(relation).size());
  for (FactIndex fi : to_.FactsWith(relation, pos, image)) {
    bits.set(fact_dense_id_[fi]);
  }
  return fact_bits_.emplace(key, std::move(bits)).first->second;
}

const SvoBitset& HomSearch::EqBits(RelationId relation, std::uint32_t p1,
                                   std::uint32_t p2) {
  // Arity ≤ 2^12 keeps the packed key unambiguous (schemas are tiny).
  std::uint64_t key = (static_cast<std::uint64_t>(relation) << 24) |
                      (static_cast<std::uint64_t>(p1) << 12) | p2;
  auto it = eq_bits_.find(key);
  if (it != eq_bits_.end()) return it->second;
  const std::vector<FactIndex>& of = to_.FactsOf(relation);
  SvoBitset bits(of.size());
  for (std::uint32_t j = 0; j < of.size(); ++j) {
    const Fact& target = to_.fact(of[j]);
    if (target.args[p1] == target.args[p2]) bits.set(j);
  }
  return eq_bits_.emplace(key, std::move(bits)).first->second;
}

const std::vector<HomSearch::DomIndex>& HomSearch::ArgIndex(
    RelationId relation, std::size_t pos) {
  std::uint32_t id = RelPosId(relation, pos);
  if (arg_index_.empty()) {
    arg_index_.resize(relpos_total_);
    arg_index_valid_.assign(relpos_total_, false);
  }
  if (!arg_index_valid_[id]) {
    const std::vector<FactIndex>& of = to_.FactsOf(relation);
    std::vector<DomIndex> index(of.size());
    for (std::uint32_t j = 0; j < of.size(); ++j) {
      index[j] = (*to_index_)[to_.fact(of[j]).args[pos]];
    }
    arg_index_[id] = std::move(index);
    arg_index_valid_[id] = true;
  }
  return arg_index_[id];
}

bool HomSearch::ApplyUnaryConstraints() {
  for (FactIndex fi = 0; fi < from_.facts().size(); ++fi) {
    const Fact& fact = from_.fact(fi);
    const FactInfo& info = fact_info_[fi];
    for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
      domains_[info.vars[pos]].intersect_with(Allowed(fact.relation, pos));
    }
  }
  for (VarIndex i = 0; i < vars_.size(); ++i) {
    domain_size_[i] = static_cast<std::uint32_t>(domains_[i].count());
    if (domain_size_[i] == 0) return false;
  }
  return true;
}

HomSearch::VarIndex HomSearch::SelectVar() const {
  VarIndex best = kNoVar;
  std::uint32_t best_size = 0;
  for (VarIndex i = 0; i < vars_.size(); ++i) {
    if (assigned_value_[i] != kNoValue) continue;
    std::uint32_t size = domain_size_[i];
    if (best == kNoVar || size < best_size ||
        (size == best_size && degree_[i] > degree_[best])) {
      best = i;
      best_size = size;
      if (size <= 1) break;
    }
  }
  FEATSEP_CHECK_NE(best, kNoVar);
  return best;
}

HomSearch::SearchEnd HomSearch::RunSearchLoop() {
  if (!worker_.restarts) return Search(0);
  // Luby-restart worker: run k is capped at Luby(k) * restart_base nodes.
  // The schedule's unbounded growth guarantees termination — some run's
  // limit eventually exceeds the whole tree — and each restart reseeds the
  // rotation stream, so runs explore genuinely different value orders while
  // the recorded nogoods keep shrinking the effective tree.
  std::uint64_t base = options_.restart_base == 0 ? 1 : options_.restart_base;
  for (std::uint64_t k = 1;; ++k) {
    rng_state_ = options_.rng_seed ^
                 (0x517cc1b727220a95ULL * (worker_.worker_id + 1)) ^
                 (0x2545f4914f6cdd1dULL * k);
    SearchEnd end = Search(Luby(k) * base);
    if (end != SearchEnd::kRestart) return end;
    ++restarts_;
    if (shared_ != nullptr) {
      shared_->restarts.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

HomSearch::Frame HomSearch::MakeFrame(VarIndex var) {
  Frame frame;
  frame.var = var;
  frame.candidates = domains_[var];
  if (worker_.randomize && ndom_ > 1) {
    frame.offset = static_cast<std::size_t>(SplitMix64(rng_state_) % ndom_);
    frame.cursor = frame.offset;
  }
  DomIndex pref = prefer_[var];
  if (pref != kNoDomIndex && frame.candidates.test(pref)) {
    frame.candidates.reset(pref);  // Consumed through the pref slot.
    frame.pref = pref;
  }
  return frame;
}

HomSearch::DomIndex HomSearch::NextCandidate(Frame& frame) {
  if (frame.pref != kNoDomIndex) {
    FEATSEP_COVERAGE(kHomPreferHit);
    DomIndex image = frame.pref;
    frame.pref = kNoDomIndex;
    return image;
  }
  for (;;) {
    std::size_t bit = frame.candidates.find_next(frame.cursor);
    if (!frame.wrapped) {
      if (bit == SvoBitset::kNoBit) {
        if (frame.offset == 0) return kNoDomIndex;  // Nothing to wrap onto.
        frame.wrapped = true;
        frame.cursor = 0;
        continue;
      }
      frame.cursor = bit + 1;
      return static_cast<DomIndex>(bit);
    }
    if (bit == SvoBitset::kNoBit || bit >= frame.offset) return kNoDomIndex;
    frame.cursor = bit + 1;
    return static_cast<DomIndex>(bit);
  }
}

void HomSearch::RecordNogoods(const std::vector<Frame>& stack) {
  NogoodStore* store = shared_->store;
  // The decision prefix grows frame by frame; refuted values at frame i
  // yield nogoods {d₁, …, d₍ᵢ₋₁₎, (varᵢ, u)}. Beyond kMaxPairs the store
  // would drop them anyway, so stop extending the prefix there.
  std::vector<NogoodPair> pairs;
  for (const Frame& frame : stack) {
    if (pairs.size() + 1 > NogoodStore::kMaxPairs) break;
    for (DomIndex u : frame.refuted) {
      pairs.push_back(NogoodPair{frame.var, u});
      if (store->Record(pairs)) ++nogoods_recorded_;
      pairs.pop_back();
    }
    if (!frame.assigned) break;  // Deeper frames have no decision in effect.
    pairs.push_back(NogoodPair{frame.var, frame.image});
  }
}

void HomSearch::Unwind(std::vector<Frame>& stack) {
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.assigned) {
      UndoTo(frame.mark);
      assigned_value_[frame.var] = kNoValue;
      assigned_index_[frame.var] = kNoDomIndex;
      ++unassigned_;
    }
    stack.pop_back();
  }
}

HomSearch::SearchEnd HomSearch::Search(std::uint64_t node_limit) {
  if (unassigned_ == 0) {
    FEATSEP_COVERAGE(kHomFound);
    return SearchEnd::kFound;
  }

  // Iterative backtracking with an explicit frame stack: sources can have
  // tens of thousands of variables (e.g., QBE products), far beyond safe
  // call-stack recursion depth.
  std::vector<Frame> stack;
  stack.push_back(MakeFrame(SelectVar()));
  std::uint64_t run_nodes = 0;

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.assigned) {
      // Control returned to this frame: undo its assignment's effects. The
      // popped subtree was fully explored, so the image is refuted here.
      UndoTo(frame.mark);
      assigned_value_[frame.var] = kNoValue;
      assigned_index_[frame.var] = kNoDomIndex;
      ++unassigned_;
      frame.assigned = false;
      if (record_nogoods_) frame.refuted.push_back(frame.image);
    }
    if (options_.max_nodes != 0 && TotalNodes() >= options_.max_nodes) {
      FEATSEP_COVERAGE(kHomExhausted);
      Unwind(stack);
      return SearchEnd::kExhausted;
    }
    if (shared_ != nullptr &&
        shared_->done.load(std::memory_order_relaxed)) {
      Unwind(stack);
      return SearchEnd::kAborted;
    }
    if (node_limit != 0 && run_nodes >= node_limit) {
      if (record_nogoods_) RecordNogoods(stack);
      Unwind(stack);
      return SearchEnd::kRestart;
    }
    DomIndex image = NextCandidate(frame);
    if (image == kNoDomIndex) {
      FEATSEP_COVERAGE(kHomBacktrack);
      FEATSEP_FAULT_POINT(kHomBacktrack);
      stack.pop_back();
      continue;
    }
    if (consume_nogoods_ &&
        shared_->store->Forbidden(frame.var, image, assigned_index_)) {
      // A recorded nogood proves no solution extends the current assignment
      // with this image — skip it; that is itself a refutation here.
      if (record_nogoods_) frame.refuted.push_back(image);
      continue;
    }
    ++nodes_;
    ++run_nodes;
    if (shared_ != nullptr) {
      shared_->nodes.fetch_add(1, std::memory_order_relaxed);
    }
    FEATSEP_COVERAGE(kHomNode);
    FEATSEP_FAULT_POINT(kHomNode);
    if (!ChargeBudget(options_.budget)) {
      FEATSEP_COVERAGE(kHomExhausted);
      Unwind(stack);
      return SearchEnd::kExhausted;
    }
    frame.mark = trail_.size();
    frame.assigned = true;
    frame.image = image;
    if (Assign(frame.var, image)) {
      if (unassigned_ == 0) {
        FEATSEP_COVERAGE(kHomFound);
        return SearchEnd::kFound;
      }
      stack.push_back(MakeFrame(SelectVar()));
    }
    // On Assign failure the loop retries this frame (undo happens above).
  }
  FEATSEP_COVERAGE(kHomNone);
  return SearchEnd::kNone;
}

bool HomSearch::Assign(VarIndex var, DomIndex image) {
  ++epoch_;
  assigned_index_[var] = image;
  assigned_value_[var] = (*to_dom_)[image];
  --unassigned_;
  for (FactIndex fi : from_.FactsContaining(vars_[var])) {
    if (!CheckFact(fi)) return false;
  }
  return true;
}

bool HomSearch::CheckFact(FactIndex fact_index) {
  const Fact& fact = from_.fact(fact_index);
  const FactInfo& info = fact_info_[fact_index];
  const std::size_t arity = fact.args.size();

  std::size_t assigned_count = 0;
  for (std::size_t pos = 0; pos < arity; ++pos) {
    if (assigned_value_[info.vars[pos]] != kNoValue) ++assigned_count;
  }

  // Closed fast path: every position is assigned, so the constraint reduces
  // to "does the mapped tuple exist in `to_`?" — one hash lookup, no bitsets
  // and nothing left to prune. Repeated-variable equalities hold trivially
  // because the same assignment feeds both positions.
  if (assigned_count == arity) {
    FEATSEP_COVERAGE(kHomClosedCheck);
    probe_.relation = fact.relation;
    probe_.args.resize(arity);
    for (std::size_t pos = 0; pos < arity; ++pos) {
      probe_.args[pos] = assigned_value_[info.vars[pos]];
    }
    return to_.ContainsFact(probe_);
  }

  // Find the assigned position whose (relation, pos, image) candidate list
  // in `to_` is smallest, through the position-index pointers cached at
  // setup (one hash find per assigned position, no per-call navigation).
  const std::uint32_t rel_base = relpos_base_[fact.relation];
  std::size_t pivot = static_cast<std::size_t>(-1);
  std::uint32_t pivot_size = 0;
  for (std::size_t pos = 0; pos < arity; ++pos) {
    VarIndex var = info.vars[pos];
    if (assigned_value_[var] == kNoValue) continue;
    const Database::PositionIndex& index = *pos_index_[rel_base + pos];
    auto it = index.find(assigned_value_[var]);
    std::uint32_t size =
        it == index.end() ? 0 : static_cast<std::uint32_t>(it->second.size());
    if (pivot == static_cast<std::size_t>(-1) || size < pivot_size) {
      pivot = pos;
      pivot_size = size;
    }
  }

  // Fast path: one assigned position and no repeated variables. Every fact
  // in the pivot's candidate list is compatible, so the per-position
  // supports are exactly the precomputed support bitsets — forward checking
  // degenerates to one word-wise AND per unassigned position.
  if (assigned_count == 1 && info.rep_pairs.empty()) {
    FEATSEP_COVERAGE(kHomFastCheck);
    if (pivot_size == 0) {
      FEATSEP_COVERAGE(kHomDeadFact);
      return false;
    }
    if (!options_.forward_checking) return true;
    VarIndex pivot_var = info.vars[pivot];
    const std::vector<SvoBitset>& support =
        Support(fact.relation, pivot, assigned_index_[pivot_var],
                assigned_value_[pivot_var]);
    for (std::size_t pos = 0; pos < arity; ++pos) {
      if (pos == pivot) continue;
      if (!PruneDomain(info.vars[pos], support[pos])) return false;
    }
    return true;
  }

  // General path: several assigned positions or repeated variables. A
  // target fact must agree with *all* assigned positions simultaneously
  // (pairwise support is not enough at arity ≥ 3). Intersect the
  // per-(relation, pos, image) fact-index bitsets — plus the equal-argument
  // bitsets for repeated source variables — so the compatible-candidate set
  // falls out of a few word-wise ANDs instead of a scalar scan over the
  // pivot's candidate list.
  FEATSEP_COVERAGE(kHomGeneralCheck);
  const std::vector<FactIndex>& rel_facts = to_.FactsOf(fact.relation);
  const std::size_t nfacts = rel_facts.size();
  if (nfacts == 0 ||
      (pivot != static_cast<std::size_t>(-1) && pivot_size == 0)) {
    FEATSEP_COVERAGE(kHomDeadFact);
    return false;
  }

  std::size_t live;
  if (pivot != static_cast<std::size_t>(-1)) {
    VarIndex pivot_var = info.vars[pivot];
    fact_scratch_ = FactBits(fact.relation, pivot, assigned_index_[pivot_var],
                             assigned_value_[pivot_var]);
    live = pivot_size;
  } else {
    if (fact_scratch_.size() != nfacts) fact_scratch_ = SvoBitset(nfacts);
    fact_scratch_.set_all();
    live = nfacts;
  }
  for (std::size_t pos = 0; pos < arity && live != 0; ++pos) {
    if (pos == pivot) continue;
    VarIndex var = info.vars[pos];
    if (assigned_value_[var] == kNoValue) continue;
    live = fact_scratch_.intersect_with_count(
        FactBits(fact.relation, pos, assigned_index_[var],
                 assigned_value_[var]));
  }
  for (const auto& [p1, p2] : info.rep_pairs) {
    if (live == 0) break;
    live = fact_scratch_.intersect_with_count(EqBits(fact.relation, p1, p2));
  }
  if (live == 0) {
    FEATSEP_COVERAGE(kHomDeadFact);
    return false;
  }
  if (!options_.forward_checking) return true;

  // Accumulate per-position supports of the compatible facts, then prune
  // the domains of this fact's unassigned variables.
  if (scratch_.size() < arity) scratch_.resize(arity);
  for (std::size_t pos = 0; pos < arity; ++pos) {
    if (assigned_value_[info.vars[pos]] != kNoValue) continue;
    if (scratch_[pos].size() != ndom_) scratch_[pos] = SvoBitset(ndom_);
    scratch_[pos].reset_all();
    const std::vector<DomIndex>& args = ArgIndex(fact.relation, pos);
    fact_scratch_.for_each(
        [&](std::size_t dense) { scratch_[pos].set(args[dense]); });
  }
  for (std::size_t pos = 0; pos < arity; ++pos) {
    VarIndex var = info.vars[pos];
    if (assigned_value_[var] != kNoValue) continue;
    if (!PruneDomain(var, scratch_[pos])) return false;
  }
  return true;
}

bool HomSearch::PruneDomain(VarIndex var, const SvoBitset& mask) {
  // Fused read-only probe first: the common no-shrink case costs one pass
  // and no copy at all.
  std::uint32_t count =
      static_cast<std::uint32_t>(domains_[var].and_count(mask));
  // Intersections only shrink, so an equal popcount means an equal set.
  if (count == domain_size_[var]) return true;
  FEATSEP_COVERAGE(kHomPrune);
  SaveDomain(var);
  domains_[var].intersect_with(mask);
  domain_size_[var] = count;
  if (count == 0) {
    FEATSEP_COVERAGE(kHomWipeout);
    return false;
  }
  return true;
}

void HomSearch::SaveDomain(VarIndex var) {
  if (saved_epoch_[var] == epoch_) return;  // Copy-on-first-write per epoch.
  saved_epoch_[var] = epoch_;
  trail_.push_back(TrailEntry{var, domains_[var], domain_size_[var]});
}

void HomSearch::UndoTo(std::size_t mark) {
  while (trail_.size() > mark) {
    TrailEntry& entry = trail_.back();
    domains_[entry.var] = std::move(entry.saved);
    domain_size_[entry.var] = entry.saved_size;
    trail_.pop_back();
  }
}

}  // namespace

HomResult FindHomomorphism(const Database& from, const Database& to,
                           const std::vector<std::pair<Value, Value>>& seed,
                           const HomOptions& options) {
  std::size_t threads = options.num_threads;
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads <= 1) {
    // The classic sequential search — or, with sequential_restarts, a
    // single deterministic Luby-restart worker (the restart/nogood
    // machinery's reproducible mode). Nogoods need a store even without
    // sharing, so hang a private one off a local ParallelShared.
    HomSearch search(from, to, options);
    if (!options.sequential_restarts) {
      return search.Run(seed, nullptr, WorkerConfig{0, false, false});
    }
    ParallelShared shared;
    NogoodStore store;
    if (options.use_nogoods) shared.store = &store;
    return search.Run(seed, &shared, WorkerConfig{0, true, true});
  }

  // Intra-instance parallel search: worker 0 runs the deterministic
  // sequential order (guaranteeing the call terminates exactly when the
  // sequential search does), workers 1.. run Luby-restart searches over
  // randomized value orders, all sharing one nogood store. The first
  // definitive answer wins; found witnesses are verified before they are
  // reported, so any-time soundness never rests on worker scheduling.
  ParallelShared shared;
  NogoodStore store;
  if (options.use_nogoods) shared.store = &store;

  BudgetOutcome worker_outcome = BudgetOutcome::kCompleted;
  std::mutex outcome_mutex;
  std::exception_ptr worker_error;
  auto run_worker = [&](std::size_t w) {
    // An exception escaping a std::thread is std::terminate — capture it
    // (e.g., the fault harness's injected bad_alloc) and rethrow it from
    // the joining thread so parallel calls fail exactly like sequential
    // ones. A captured error also cancels the siblings via `done`.
    try {
      HomSearch search(from, to, options);
      HomResult result =
          search.Run(seed, &shared, WorkerConfig{w, w != 0, w != 0});
      if (result.status == HomStatus::kFound ||
          result.status == HomStatus::kNone) {
        if (result.status == HomStatus::kFound) {
          FEATSEP_CHECK(VerifyHomomorphism(from, to, result.mapping))
              << "parallel homomorphism worker produced an invalid witness";
        }
        std::lock_guard<std::mutex> lock(shared.winner_mutex);
        if (!shared.has_winner) {
          shared.has_winner = true;
          shared.winner = std::move(result);
        }
        shared.done.store(true, std::memory_order_release);
      } else {
        std::lock_guard<std::mutex> lock(outcome_mutex);
        if (worker_outcome == BudgetOutcome::kCompleted) {
          worker_outcome = result.outcome;
        }
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(outcome_mutex);
        if (worker_error == nullptr) worker_error = std::current_exception();
      }
      shared.done.store(true, std::memory_order_release);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t w = 1; w < threads; ++w) {
    pool.emplace_back(run_worker, w);
  }
  run_worker(0);
  for (std::thread& t : pool) t.join();
  if (worker_error != nullptr) std::rethrow_exception(worker_error);

  std::uint64_t total_nodes = shared.nodes.load(std::memory_order_relaxed);
  std::uint64_t total_restarts =
      shared.restarts.load(std::memory_order_relaxed);
  if (shared.has_winner) {
    HomResult result = std::move(shared.winner);
    result.nodes = total_nodes;
    result.restarts = total_restarts;
    result.nogoods_recorded = store.size();
    result.outcome = BudgetOutcome::kCompleted;
    return result;
  }
  // Every worker was interrupted (budget, cancellation, or max_nodes).
  HomResult result;
  result.status = HomStatus::kExhausted;
  result.nodes = total_nodes;
  result.restarts = total_restarts;
  result.nogoods_recorded = store.size();
  result.outcome = options.budget != nullptr && options.budget->Interrupted()
                       ? options.budget->outcome()
                       : (worker_outcome != BudgetOutcome::kCompleted
                              ? worker_outcome
                              : BudgetOutcome::kBudgetExhausted);
  return result;
}

bool HomomorphismExists(const Database& from, const Database& to,
                        const std::vector<std::pair<Value, Value>>& seed,
                        const HomOptions& options) {
  HomResult result = FindHomomorphism(from, to, seed, options);
  FEATSEP_CHECK(result.status != HomStatus::kExhausted)
      << "homomorphism search budget exhausted";
  return result.status == HomStatus::kFound;
}

bool VerifyHomomorphism(const Database& from, const Database& to,
                        const std::vector<Value>& mapping) {
  for (Value v : from.domain()) {
    if (v >= mapping.size() || mapping[v] == kNoValue) return false;
  }
  std::vector<Value> image_args;
  for (const Fact& fact : from.facts()) {
    image_args.clear();
    image_args.reserve(fact.args.size());
    for (Value v : fact.args) image_args.push_back(mapping[v]);
    if (!to.ContainsFact(Fact{fact.relation, image_args})) return false;
  }
  return true;
}

bool HomEquivalent(const Database& from, const std::vector<Value>& from_tuple,
                   const Database& to, const std::vector<Value>& to_tuple) {
  std::optional<bool> result =
      TryHomEquivalent(from, from_tuple, to, to_tuple, nullptr);
  FEATSEP_CHECK(result.has_value());  // No budget, so never interrupted.
  return *result;
}

std::optional<bool> TryHomEquivalent(const Database& from,
                                     const std::vector<Value>& from_tuple,
                                     const Database& to,
                                     const std::vector<Value>& to_tuple,
                                     ExecutionBudget* budget,
                                     const HomOptions& base) {
  FEATSEP_CHECK_EQ(from_tuple.size(), to_tuple.size());
  std::vector<std::pair<Value, Value>> forward;
  std::vector<std::pair<Value, Value>> backward;
  for (std::size_t i = 0; i < from_tuple.size(); ++i) {
    forward.emplace_back(from_tuple[i], to_tuple[i]);
    backward.emplace_back(to_tuple[i], from_tuple[i]);
  }
  HomOptions forward_options = base;
  forward_options.prefer.clear();
  forward_options.budget = budget;
  HomResult fwd = FindHomomorphism(from, to, forward, forward_options);
  if (fwd.status == HomStatus::kExhausted) return std::nullopt;
  if (fwd.status != HomStatus::kFound) return false;
  // Replay the forward witness as the backward search's value ordering: if
  // h maps v to w, try w -> v first. When h is close to invertible this
  // lets the backward search walk straight to a witness.
  HomOptions backward_options = base;
  backward_options.prefer.clear();
  backward_options.budget = budget;
  for (Value v : from.domain()) {
    Value w = fwd.mapping[v];
    if (w != kNoValue) backward_options.prefer.emplace_back(w, v);
  }
  HomResult bwd = FindHomomorphism(to, from, backward, backward_options);
  if (bwd.status == HomStatus::kExhausted) return std::nullopt;
  return bwd.status == HomStatus::kFound;
}

}  // namespace featsep
