#ifndef FEATSEP_CQ_PRODUCT_H_
#define FEATSEP_CQ_PRODUCT_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "relational/database.h"

namespace featsep {

/// The direct product of pointed databases, the canonical object behind
/// query-by-example (ten Cate–Dalmau): a CQ q satisfies
/// (q, x̄) → (∏ᵢ Dᵢ, (ā₁⊗…⊗āₙ)) iff (q, x̄) → (Dᵢ, āᵢ) for every i.
///
/// Values of the product are tuples of factor values; facts are the
/// positionwise products of same-relation facts. The product has
/// ∏ᵢ |Dᵢ| facts, i.e., it is exponential in the number of factors — this
/// is exactly the blowup behind the coNEXPTIME-hardness of CQ-SEP[ℓ]
/// (paper, Theorem 6.6).
struct ProductResult {
  Database db;
  /// The distinguished tuple (ā₁⊗…⊗āₙ) inside the product.
  std::vector<Value> tuple;
};

/// Computes ∏ᵢ (factors[i], distinguished[i]). All factors must share one
/// schema, and all distinguished tuples must have equal length. If
/// `max_facts` is nonzero and the product would exceed it, returns
/// std::nullopt (budget guard for the exponential blowup).
std::optional<ProductResult> DirectProduct(
    const std::vector<const Database*>& factors,
    const std::vector<std::vector<Value>>& distinguished,
    std::size_t max_facts = 0);

}  // namespace featsep

#endif  // FEATSEP_CQ_PRODUCT_H_
