#ifndef FEATSEP_CQ_ENUMERATION_H_
#define FEATSEP_CQ_ENUMERATION_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "cq/cq.h"
#include "relational/schema.h"

namespace featsep {

/// Options for feature enumeration.
struct EnumerationOptions {
  /// Maximum number of occurrences of any variable (the paper's p in
  /// CQ[m,p]); 0 means unrestricted.
  std::size_t max_variable_occurrences = 0;
  /// Hard cap on the number of generated queries (CHECK-failure beyond it;
  /// the count is exponential in m · max-arity, see Prop 4.1).
  std::size_t max_queries = 5000000;
  /// If true, every free-variable-disconnected query is kept (such features
  /// express Boolean conditions about D and are legitimate CQ[m] features).
  bool include_disconnected = true;
};

/// Enumerates the feature queries of CQ[m] over an entity schema: all unary
/// CQs q(x) containing the atom η(x) plus at most `m` further atoms over the
/// schema's relations, up to renaming of variables (each equivalence class
/// of the renaming relation is produced at least once; syntactic duplicates
/// under a canonical variable order are removed). This realizes the
/// statistic Π of Proposition 4.1: (D, λ) is CQ[m]-separable iff it is
/// separable by the statistic consisting of all of these queries.
///
/// The count is bounded by r^m · 2^{p(k)} for r relations of maximal arity
/// k (Prop 4.1) — exponential in m·k, so keep m and the arity small.
std::vector<ConjunctiveQuery> EnumerateFeatureQueries(
    const std::shared_ptr<const Schema>& schema, std::size_t m,
    const EnumerationOptions& options = {});

/// Number of queries EnumerateFeatureQueries would return (same cost; it
/// enumerates and counts).
std::size_t CountFeatureQueries(const std::shared_ptr<const Schema>& schema,
                                std::size_t m,
                                const EnumerationOptions& options = {});

}  // namespace featsep

#endif  // FEATSEP_CQ_ENUMERATION_H_
