#include "cq/core.h"

#include <unordered_set>
#include <utility>

#include "cq/evaluation.h"
#include "cq/homomorphism.h"
#include "relational/database_ops.h"
#include "util/check.h"

namespace featsep {

Database CoreOf(const Database& db, const std::vector<Value>& frozen) {
  Database current = Copy(db);
  std::unordered_set<Value> frozen_set(frozen.begin(), frozen.end());

  bool changed = true;
  while (changed) {
    changed = false;
    for (Value victim : current.domain()) {
      if (frozen_set.count(victim) > 0) continue;
      // Try to retract `current` into its sub-database avoiding `victim`.
      std::unordered_set<Value> keep;
      for (Value v : current.domain()) {
        if (v != victim) keep.insert(v);
      }
      Database target = InducedSubdatabase(current, keep);
      std::vector<std::pair<Value, Value>> seed;
      seed.reserve(frozen.size());
      for (Value f : frozen) seed.emplace_back(f, f);
      HomResult hom = FindHomomorphism(current, target, seed);
      // Audit guard: an interrupted search must never be read as "this
      // retraction is impossible" — skipping a retraction on kExhausted
      // would silently return a non-core database as the core. CoreOf runs
      // unbudgeted, so this cannot trip today; it fails loudly if a budget
      // is ever threaded in without restructuring this loop.
      FEATSEP_CHECK(hom.status != HomStatus::kExhausted)
          << "CoreOf cannot tolerate an interrupted homomorphism search";
      if (hom.status != HomStatus::kFound) continue;
      // Fold `current` along the retraction: facts become their images.
      current = MapDatabase(current, hom.mapping);
      changed = true;
      break;  // Domains changed; restart the victim scan.
    }
  }
  return current;
}

ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& query) {
  auto [db, var_to_value] = query.CanonicalDatabase();
  std::vector<Value> frozen = ConjunctiveQuery::FreeTuple(query, var_to_value);
  Database core = CoreOf(db, frozen);
  return CqFromDatabase(core, frozen);
}

}  // namespace featsep
