#include "cq/cq.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace featsep {

ConjunctiveQuery::ConjunctiveQuery(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  FEATSEP_CHECK(schema_ != nullptr);
}

ConjunctiveQuery ConjunctiveQuery::MakeFeatureQuery(
    std::shared_ptr<const Schema> schema) {
  FEATSEP_CHECK(schema->has_entity_relation())
      << "feature queries require an entity schema";
  ConjunctiveQuery q(schema);
  Variable x = q.NewVariable("x");
  q.AddFreeVariable(x);
  q.AddAtom(q.schema().entity_relation(), {x});
  return q;
}

Variable ConjunctiveQuery::NewVariable(std::string name) {
  Variable v = static_cast<Variable>(variable_names_.size());
  if (name.empty()) name = "v" + std::to_string(v);
  variable_names_.push_back(std::move(name));
  return v;
}

const std::string& ConjunctiveQuery::variable_name(Variable v) const {
  FEATSEP_CHECK_LT(v, variable_names_.size());
  return variable_names_[v];
}

bool ConjunctiveQuery::AddAtom(RelationId relation,
                               std::vector<Variable> args) {
  FEATSEP_CHECK_LT(relation, schema_->size());
  FEATSEP_CHECK_EQ(args.size(), schema_->arity(relation))
      << "arity mismatch for relation " << schema_->name(relation);
  for (Variable v : args) FEATSEP_CHECK_LT(v, variable_names_.size());
  CqAtom atom{relation, std::move(args)};
  if (std::find(atoms_.begin(), atoms_.end(), atom) != atoms_.end()) {
    return false;
  }
  atoms_.push_back(std::move(atom));
  return true;
}

void ConjunctiveQuery::AddFreeVariable(Variable v) {
  FEATSEP_CHECK_LT(v, variable_names_.size());
  FEATSEP_CHECK(std::find(free_variables_.begin(), free_variables_.end(),
                          v) == free_variables_.end())
      << "variable already free";
  free_variables_.push_back(v);
}

Variable ConjunctiveQuery::free_variable() const {
  FEATSEP_CHECK(IsUnary()) << "free_variable() requires a unary query";
  return free_variables_[0];
}

std::size_t ConjunctiveQuery::NumAtoms(bool count_entity_atom) const {
  if (count_entity_atom || !schema_->has_entity_relation() || !IsUnary()) {
    return atoms_.size();
  }
  RelationId eta = schema_->entity_relation();
  Variable x = free_variable();
  std::size_t count = 0;
  for (const CqAtom& atom : atoms_) {
    if (atom.relation == eta && atom.args.size() == 1 && atom.args[0] == x) {
      continue;
    }
    ++count;
  }
  return count;
}

std::size_t ConjunctiveQuery::MaxVariableOccurrences() const {
  std::vector<std::size_t> counts(variable_names_.size(), 0);
  for (const CqAtom& atom : atoms_) {
    for (Variable v : atom.args) ++counts[v];
  }
  std::size_t result = 0;
  for (std::size_t c : counts) result = std::max(result, c);
  return result;
}

std::pair<Database, std::vector<Value>> ConjunctiveQuery::CanonicalDatabase()
    const {
  Database db(schema_);
  std::vector<Value> var_to_value(variable_names_.size(), kNoValue);
  for (Variable v = 0; v < variable_names_.size(); ++v) {
    var_to_value[v] = db.Intern(variable_names_[v]);
  }
  for (const CqAtom& atom : atoms_) {
    std::vector<Value> args;
    args.reserve(atom.args.size());
    for (Variable v : atom.args) args.push_back(var_to_value[v]);
    db.AddFact(atom.relation, std::move(args));
  }
  return {std::move(db), std::move(var_to_value)};
}

std::vector<Value> ConjunctiveQuery::FreeTuple(
    const ConjunctiveQuery& q, const std::vector<Value>& var_to_value) {
  std::vector<Value> tuple;
  tuple.reserve(q.free_variables().size());
  for (Variable v : q.free_variables()) {
    FEATSEP_CHECK_LT(v, var_to_value.size());
    tuple.push_back(var_to_value[v]);
  }
  return tuple;
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream out;
  out << "q(";
  for (std::size_t i = 0; i < free_variables_.size(); ++i) {
    if (i > 0) out << ", ";
    out << variable_names_[free_variables_[i]];
  }
  out << ") :- ";
  if (atoms_.empty()) out << "true";
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out << ", ";
    const CqAtom& atom = atoms_[i];
    out << schema_->name(atom.relation) << "(";
    for (std::size_t j = 0; j < atom.args.size(); ++j) {
      if (j > 0) out << ", ";
      out << variable_names_[atom.args[j]];
    }
    out << ")";
  }
  return out.str();
}

}  // namespace featsep
