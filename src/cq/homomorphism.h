#ifndef FEATSEP_CQ_HOMOMORPHISM_H_
#define FEATSEP_CQ_HOMOMORPHISM_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "relational/database.h"
#include "util/budget.h"

namespace featsep {

/// Options for the homomorphism search.
struct HomOptions {
  /// Maximum number of search-tree nodes (variable assignments) to explore;
  /// 0 means unbounded. Deciding homomorphism existence is NP-complete, so
  /// callers probing hard instances should set a budget.
  std::uint64_t max_nodes = 0;
  /// Cooperative execution budget (deadline / step limit / cancellation),
  /// charged one step per search-tree node; nullptr = unbounded. An
  /// interrupted search returns kExhausted with the budget's outcome —
  /// never a definitive kNone.
  ExecutionBudget* budget = nullptr;
  /// Prune neighbor domains on every assignment (forward checking). With
  /// this off, the search only verifies that each touched fact still has a
  /// compatible target fact — an ablation knob for bench_ablation; leave on
  /// for real use.
  bool forward_checking = true;
  /// Optional value-ordering hint: when the search branches on a pair's
  /// source value, the paired image is tried first if still in the domain
  /// (later pairs for the same source win). Affects only exploration order,
  /// never the decision. HomEquivalent uses this to replay the forward
  /// witness mapping as the candidate ordering of the backward search.
  std::vector<std::pair<Value, Value>> prefer;
  /// Intra-instance search workers: 1 = the classic sequential search (the
  /// default — node counts and exploration order are exactly the historical
  /// ones), 0 = hardware concurrency, n > 1 = n workers. With several
  /// workers, worker 0 runs the deterministic sequential order while the
  /// rest run Luby-restart searches over randomized value orders, sharing
  /// restart nogoods; the first definitive answer wins. The *decision*
  /// (kFound/kNone) is identical to the sequential search for every thread
  /// count, and any returned witness is verified before it is reported;
  /// `HomResult::nodes` and which witness is found become schedule-dependent.
  /// With a budget or max_nodes, which runs end kExhausted may also vary —
  /// but a definitive answer found before the limit always wins.
  std::size_t num_threads = 1;
  /// Record and consume restart nogoods in the parallel / restart workers.
  /// Off is an ablation knob (restarts then re-explore refuted prefixes).
  bool use_nogoods = true;
  /// Run the single-threaded search as one Luby-restart worker (randomized
  /// value order, nogood recording) instead of the classic static order.
  /// Fully deterministic given `rng_seed` — the restart/nogood machinery's
  /// unit-test and fuzzing mode. Ignored when num_threads resolves > 1.
  bool sequential_restarts = false;
  /// Search nodes per Luby unit: restart worker runs are capped at
  /// Luby(k) * restart_base nodes for k = 1, 2, ….
  std::uint64_t restart_base = 128;
  /// Seed for the restart workers' value-order randomization. Two runs with
  /// equal options and sequential execution explore identically.
  std::uint64_t rng_seed = 0;
};

/// Outcome of a homomorphism search.
enum class HomStatus {
  kFound,      ///< A homomorphism exists; `mapping` is a witness.
  kNone,       ///< No homomorphism exists.
  kExhausted,  ///< Interrupted (node budget or ExecutionBudget) — undecided.
};

/// Result of a homomorphism search.
struct HomResult {
  HomStatus status = HomStatus::kNone;
  /// For kFound: image of every value of `from`, indexed by value id
  /// (kNoValue for values outside dom(from)).
  std::vector<Value> mapping;
  /// Search-tree nodes explored (summed over workers when num_threads > 1).
  std::uint64_t nodes = 0;
  /// Restarts taken by Luby-restart workers (0 on the sequential path).
  std::uint64_t restarts = 0;
  /// Nogoods recorded into the per-call store (0 when nogoods are off).
  std::uint64_t nogoods_recorded = 0;
  /// Why the search stopped. kCompleted iff `status` is definitive
  /// (kFound/kNone); any other value accompanies kExhausted and names the
  /// tripped limit (kBudgetExhausted for the legacy max_nodes knob).
  BudgetOutcome outcome = BudgetOutcome::kCompleted;
};

/// Searches for a homomorphism h from `from` to `to` — a map on dom(from)
/// with R(h(ā)) ∈ to for every fact R(ā) ∈ from — such that h extends the
/// partial map `seed` (pairs of (source value, target value)). Seed sources
/// outside dom(from) are unconstrained and simply copied into the mapping.
///
/// The search is backtracking over bitset domains indexed by dom(to)
/// positions, with unary-constraint domain initialization, fact-granularity
/// forward checking against precomputed (relation, position, value) support
/// bitsets, and minimum-remaining-values variable selection with a degree
/// tie-break. Worst-case exponential (the problem is NP-complete).
HomResult FindHomomorphism(
    const Database& from, const Database& to,
    const std::vector<std::pair<Value, Value>>& seed = {},
    const HomOptions& options = {});

/// Convenience wrapper: true iff a homomorphism extending `seed` exists.
/// Checked programmer error if a node budget is set and exhausted.
bool HomomorphismExists(const Database& from, const Database& to,
                        const std::vector<std::pair<Value, Value>>& seed = {},
                        const HomOptions& options = {});

/// True iff `mapping` (indexed by value id of `from`, kNoValue = undefined)
/// is a homomorphism from → to: every value of dom(from) has an image and
/// every fact maps to a fact of `to`. O(|from| · arity) via the target's
/// fact-set index. The parallel search verifies every candidate witness
/// through this before reporting kFound (any-time soundness); exposed for
/// tests and callers that persist witnesses.
bool VerifyHomomorphism(const Database& from, const Database& to,
                        const std::vector<Value>& mapping);

/// True iff (from, ā) → (to, b̄) and (to, b̄) → (from, ā): the two pointed
/// databases are homomorphically equivalent. This is the paper's CQ
/// indistinguishability test for entities (Kimelfeld–Ré; see Theorem 3.2).
bool HomEquivalent(const Database& from, const std::vector<Value>& from_tuple,
                   const Database& to, const std::vector<Value>& to_tuple);

/// Budgeted HomEquivalent: nullopt when `budget` interrupted either
/// direction before it was decided (the caller must not read nullopt as
/// "not equivalent"); otherwise the definitive answer. `budget` may be
/// nullptr (then the result is always engaged). `base` carries search knobs
/// (num_threads, nogoods, restart tuning) applied to both directions; its
/// budget/seed-related fields are overridden internally.
std::optional<bool> TryHomEquivalent(const Database& from,
                                     const std::vector<Value>& from_tuple,
                                     const Database& to,
                                     const std::vector<Value>& to_tuple,
                                     ExecutionBudget* budget,
                                     const HomOptions& base = {});

}  // namespace featsep

#endif  // FEATSEP_CQ_HOMOMORPHISM_H_
