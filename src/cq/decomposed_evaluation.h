#ifndef FEATSEP_CQ_DECOMPOSED_EVALUATION_H_
#define FEATSEP_CQ_DECOMPOSED_EVALUATION_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "cq/cq.h"
#include "hypertree/decomposition.h"
#include "hypertree/ghw.h"
#include "relational/database.h"

namespace featsep {

/// Decomposition-guided evaluation of unary CQs of bounded generalized
/// hypertree width — the polynomial-time GHW(k) evaluation the paper's
/// Section 5 relies on ([12]; "the evaluation problem for CQs in GHW(k)
/// can be solved in polynomial time").
///
/// Construction: compute a width-k tree decomposition of the query's
/// existential variables (Chen–Dalmau convention; the free variable x is
/// excluded) and a ≤k-atom cover per bag. Evaluation of q(e) then runs
/// Yannakakis-style: each node materializes the relation of bag
/// assignments consistent with its covering atoms and with every atom
/// whose existential variables fit in the bag (x bound to e), and a
/// bottom-up semijoin sweep decides satisfiability — O(|D|^k · |q|) per
/// entity instead of the backtracking engine's worst-case exponential.
///
/// Note: finding the decomposition is itself exponential in the query
/// (NP-hard for fixed k ≥ 2), but it is computed once per query and the
/// queries are small; evaluation over the (large) data is the polynomial
/// part — exactly the paper's regularization rationale.
class DecomposedEvaluator {
 public:
  /// Builds the evaluation plan. Returns nullopt if ghw(q) > max_width.
  /// The query must be unary.
  static std::optional<DecomposedEvaluator> Create(
      const ConjunctiveQuery& query, std::size_t max_width,
      const GhwOptions& options = {});

  /// True iff e ∈ q(D).
  bool SelectsEntity(const Database& db, Value entity) const;

  /// q(D) over the database's entities (or all of dom(D) when the query
  /// lacks an η(x) atom), in the candidate order.
  std::vector<Value> Evaluate(const Database& db) const;

  /// The decomposition's width actually used.
  std::size_t width() const { return width_; }

  const ConjunctiveQuery& query() const { return query_; }

 private:
  struct PlanNode {
    std::vector<Variable> bag;          // Existential variables, sorted.
    std::vector<std::size_t> cover;     // Atom indexes covering the bag.
    std::vector<std::size_t> assigned;  // Atom indexes checked at this node.
    std::vector<std::size_t> children;  // Indexes into plan_.
  };

  DecomposedEvaluator(ConjunctiveQuery query, std::size_t width)
      : query_(std::move(query)), width_(width) {}

  /// Materializes the node's relation over `bag` given x = entity;
  /// assignments are vectors aligned with the sorted bag.
  std::vector<std::vector<Value>> NodeRelation(const Database& db,
                                               Value entity,
                                               const PlanNode& node) const;

  /// Bottom-up satisfiability check of the plan tree rooted at `node`.
  bool Satisfiable(const Database& db, Value entity,
                   std::size_t node) const;

  ConjunctiveQuery query_;
  std::size_t width_;
  std::vector<PlanNode> plan_;
  std::size_t root_ = 0;
  /// Atoms whose variables are all free (⊆ {x}): checked directly.
  std::vector<std::size_t> ground_atoms_;
  bool has_entity_atom_ = false;
};

}  // namespace featsep

#endif  // FEATSEP_CQ_DECOMPOSED_EVALUATION_H_
