#include "qbe/qbe.h"

#include <atomic>
#include <optional>
#include <utility>

#include "covergame/cover_game.h"
#include "cq/core.h"
#include "cq/enumeration.h"
#include "cq/evaluation.h"
#include "cq/homomorphism.h"
#include "cq/product.h"
#include "serve/eval_service.h"
#include "util/budget.h"
#include "util/check.h"
#include "util/parallel.h"

namespace featsep {

namespace {

/// Materializes ∏_{e∈S⁺}(D, e); CHECK-fails when over budget.
ProductResult BuildPositiveProduct(const QbeInstance& instance,
                                   const QbeOptions& options) {
  FEATSEP_CHECK(instance.db != nullptr);
  FEATSEP_CHECK(!instance.positives.empty())
      << "QBE requires a nonempty positive set";
  std::vector<const Database*> factors(instance.positives.size(),
                                       instance.db);
  std::vector<std::vector<Value>> tuples;
  tuples.reserve(instance.positives.size());
  for (Value e : instance.positives) tuples.push_back({e});
  auto product = DirectProduct(factors, tuples, options.max_product_facts);
  FEATSEP_CHECK(product.has_value())
      << "QBE positive product exceeds max_product_facts (coNEXPTIME-sized "
         "instance; raise the budget or shrink S+)";
  return std::move(*product);
}

}  // namespace

QbeResult SolveCqQbe(const QbeInstance& instance, const QbeOptions& options) {
  QbeResult result;
  if (!RecheckBudget(options.budget)) {
    result.outcome = options.budget->outcome();
    return result;
  }
  ProductResult product = BuildPositiveProduct(instance, options);
  result.product_facts = product.db.size();
  result.exists = true;
  // The per-negative refutation checks are independent NP searches; fan
  // them out and stop at the first negative the product maps into. (The
  // databases' lazy caches are internally synchronized — no warm-up step.)
  // An interrupted search contributes "no refutation found here"; the
  // outcome recorded below marks such an all-clear as undecided.
  std::size_t hit = ParallelFindFirst(
      options.num_threads, instance.negatives.size(), [&](std::size_t i) {
        HomOptions hom_options;
        hom_options.budget = options.budget;
        hom_options.num_threads = options.hom_threads;
        HomResult hom = FindHomomorphism(
            product.db, *instance.db,
            {{product.tuple[0], instance.negatives[i]}}, hom_options);
        return hom.status == HomStatus::kFound;
      });
  result.outcome = OutcomeOf(options.budget);
  if (hit < instance.negatives.size()) {
    // The refuting homomorphism was fully verified, so "no explanation" is
    // sound even when the sweep was interrupted elsewhere.
    result.exists = false;
    return result;
  }
  if (result.outcome != BudgetOutcome::kCompleted) {
    result.exists = false;  // Undecided; see result.outcome.
    return result;
  }
  // The canonical product query is itself an explanation: it selects every
  // positive (projections are homomorphisms) and, as just verified, no
  // negative.
  Database canonical = options.minimize_explanation
                           ? CoreOf(product.db, {product.tuple[0]})
                           : std::move(product.db);
  result.explanation = CqFromDatabase(canonical, {product.tuple[0]});
  return result;
}

QbeResult SolveGhwQbe(const QbeInstance& instance, std::size_t k,
                      const QbeOptions& options) {
  QbeResult result;
  if (!RecheckBudget(options.budget)) {
    result.outcome = options.budget->outcome();
    return result;
  }
  ProductResult product = BuildPositiveProduct(instance, options);
  result.product_facts = product.db.size();
  result.exists = true;
  CoverGameSolver solver(product.db, *instance.db, k, options.budget);
  for (Value b : instance.negatives) {
    Budgeted<bool> win = solver.TryDecide({product.tuple[0]}, {b});
    if (!win.ok()) {
      result.exists = false;  // Undecided; see result.outcome.
      result.outcome = win.outcome;
      return result;
    }
    if (win.value) {
      // A verified Duplicator win onto a negative soundly refutes every
      // GHW(k) explanation.
      result.exists = false;
      return result;
    }
  }
  return result;
}

QbeResult SolveCqmQbe(const QbeInstance& instance, std::size_t m,
                      std::size_t max_variable_occurrences,
                      const QbeOptions& options) {
  FEATSEP_CHECK(instance.db != nullptr);
  FEATSEP_CHECK(!instance.positives.empty())
      << "QBE requires a nonempty positive set";
  const Database& db = *instance.db;
  FEATSEP_CHECK(db.schema().has_entity_relation());
  for (Value e : instance.positives) {
    FEATSEP_CHECK(db.IsEntity(e)) << "positive example is not an entity";
  }

  EnumerationOptions enum_options;
  enum_options.max_variable_occurrences = max_variable_occurrences;
  std::vector<ConjunctiveQuery> candidates =
      EnumerateFeatureQueries(db.schema_ptr(), m, enum_options);

  QbeResult result;
  FEATSEP_CHECK_LE(options.first_candidate, candidates.size())
      << "QBE resume point past the candidate family";
  result.candidates_screened = options.first_candidate;
  if (!RecheckBudget(options.budget)) {
    result.outcome = options.budget->outcome();
    return result;
  }

  // Each candidate query is screened independently; fan the screens out
  // and return the first explanation in enumeration order (among indices ≥
  // first_candidate). The serve path walks candidates serially but
  // computes (and caches) each candidate's full answer set on the
  // service's sharded pool — repeated sweeps over the same database
  // content then screen from the cache alone.
  //
  // candidates_screened tracking makes interrupted sweeps resumable: it
  // counts the longest prefix of *definitively rejected* candidates, so a
  // re-run starting there re-screens nothing that was already decided and
  // the resumed answer matches the uninterrupted one.
  const std::size_t first = options.first_candidate;
  const std::size_t pending = candidates.size() - first;
  std::size_t hit = candidates.size();
  if (options.service != nullptr) {
    for (std::size_t index = first; index < candidates.size(); ++index) {
      std::shared_ptr<const serve::FeatureAnswer> answer =
          options.service->TryResolve({candidates[index]}, db,
                                      options.budget)[0];
      if (answer == nullptr) {
        // Interrupted mid-candidate: the prefix ends here.
        result.outcome = OutcomeOf(options.budget);
        return result;
      }
      auto screens = [&] {
        for (Value e : instance.positives) {
          if (!answer->Selects(db, e)) return false;
        }
        for (Value b : instance.negatives) {
          if (answer->Selects(db, b)) return false;
        }
        return true;
      };
      if (screens()) {
        hit = index;
        break;
      }
      result.candidates_screened = index + 1;
    }
  } else {
    // Parallel sweep: per-candidate "definitively rejected" flags let us
    // recover the rejected prefix even when some screens were interrupted
    // out of order. C++20 value-initializes the atomics.
    std::vector<std::atomic<char>> rejected(pending);
    std::size_t relative = ParallelFindFirst(
        options.num_threads, pending, [&](std::size_t i) {
          const std::size_t index = first + i;
          CqEvaluator evaluator(candidates[index]);
          for (Value e : instance.positives) {
            std::optional<bool> selects =
                evaluator.TrySelectsEntity(db, e, options.budget);
            if (!selects.has_value()) return false;  // Undecided.
            if (!*selects) {
              rejected[i].store(1, std::memory_order_relaxed);
              return false;
            }
          }
          for (Value b : instance.negatives) {
            std::optional<bool> selects =
                evaluator.TrySelectsEntity(db, b, options.budget);
            if (!selects.has_value()) return false;  // Undecided.
            if (*selects) {
              rejected[i].store(1, std::memory_order_relaxed);
              return false;
            }
          }
          return true;
        });
    hit = relative < pending ? first + relative : candidates.size();
    for (std::size_t i = 0; first + i < hit; ++i) {
      if (rejected[i].load(std::memory_order_relaxed) == 0) break;
      result.candidates_screened = first + i + 1;
    }
  }
  result.outcome = OutcomeOf(options.budget);
  if (hit < candidates.size()) {
    // The accepted candidate's screen ran to completion, so the
    // explanation is sound even if other screens were interrupted (though
    // only a completed sweep guarantees it is the first in enumeration
    // order).
    result.exists = true;
    result.explanation = std::move(candidates[hit]);
    return result;
  }
  if (result.outcome == BudgetOutcome::kCompleted) {
    result.candidates_screened = candidates.size();
  }
  result.exists = false;
  return result;
}

}  // namespace featsep
