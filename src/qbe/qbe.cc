#include "qbe/qbe.h"

#include <utility>

#include "covergame/cover_game.h"
#include "cq/core.h"
#include "cq/enumeration.h"
#include "cq/evaluation.h"
#include "cq/homomorphism.h"
#include "cq/product.h"
#include "serve/eval_service.h"
#include "util/check.h"
#include "util/parallel.h"

namespace featsep {

namespace {

/// Materializes ∏_{e∈S⁺}(D, e); CHECK-fails when over budget.
ProductResult BuildPositiveProduct(const QbeInstance& instance,
                                   const QbeOptions& options) {
  FEATSEP_CHECK(instance.db != nullptr);
  FEATSEP_CHECK(!instance.positives.empty())
      << "QBE requires a nonempty positive set";
  std::vector<const Database*> factors(instance.positives.size(),
                                       instance.db);
  std::vector<std::vector<Value>> tuples;
  tuples.reserve(instance.positives.size());
  for (Value e : instance.positives) tuples.push_back({e});
  auto product = DirectProduct(factors, tuples, options.max_product_facts);
  FEATSEP_CHECK(product.has_value())
      << "QBE positive product exceeds max_product_facts (coNEXPTIME-sized "
         "instance; raise the budget or shrink S+)";
  return std::move(*product);
}

}  // namespace

QbeResult SolveCqQbe(const QbeInstance& instance, const QbeOptions& options) {
  ProductResult product = BuildPositiveProduct(instance, options);
  QbeResult result;
  result.product_facts = product.db.size();
  result.exists = true;
  // The per-negative refutation checks are independent NP searches; fan
  // them out and stop at the first negative the product maps into. (The
  // databases' lazy caches are internally synchronized — no warm-up step.)
  std::size_t hit = ParallelFindFirst(
      options.num_threads, instance.negatives.size(), [&](std::size_t i) {
        return HomomorphismExists(product.db, *instance.db,
                                  {{product.tuple[0], instance.negatives[i]}});
      });
  if (hit < instance.negatives.size()) {
    result.exists = false;
    return result;
  }
  // The canonical product query is itself an explanation: it selects every
  // positive (projections are homomorphisms) and, as just verified, no
  // negative.
  Database canonical = options.minimize_explanation
                           ? CoreOf(product.db, {product.tuple[0]})
                           : std::move(product.db);
  result.explanation = CqFromDatabase(canonical, {product.tuple[0]});
  return result;
}

QbeResult SolveGhwQbe(const QbeInstance& instance, std::size_t k,
                      const QbeOptions& options) {
  ProductResult product = BuildPositiveProduct(instance, options);
  QbeResult result;
  result.product_facts = product.db.size();
  result.exists = true;
  CoverGameSolver solver(product.db, *instance.db, k);
  for (Value b : instance.negatives) {
    if (solver.Decide({product.tuple[0]}, {b})) {
      result.exists = false;
      return result;
    }
  }
  return result;
}

QbeResult SolveCqmQbe(const QbeInstance& instance, std::size_t m,
                      std::size_t max_variable_occurrences,
                      const QbeOptions& options) {
  FEATSEP_CHECK(instance.db != nullptr);
  FEATSEP_CHECK(!instance.positives.empty())
      << "QBE requires a nonempty positive set";
  const Database& db = *instance.db;
  FEATSEP_CHECK(db.schema().has_entity_relation());
  for (Value e : instance.positives) {
    FEATSEP_CHECK(db.IsEntity(e)) << "positive example is not an entity";
  }

  EnumerationOptions enum_options;
  enum_options.max_variable_occurrences = max_variable_occurrences;
  std::vector<ConjunctiveQuery> candidates =
      EnumerateFeatureQueries(db.schema_ptr(), m, enum_options);

  // Each candidate query is screened independently; fan the screens out
  // and return the first explanation in enumeration order. The serve path
  // walks candidates serially but computes (and caches) each candidate's
  // full answer set on the service's sharded pool — repeated sweeps over
  // the same database content then screen from the cache alone.
  QbeResult result;
  std::size_t hit = candidates.size();
  if (options.service != nullptr) {
    for (std::size_t index = 0; index < candidates.size(); ++index) {
      std::shared_ptr<const serve::FeatureAnswer> answer =
          options.service->Answer(candidates[index], db);
      auto screens = [&] {
        for (Value e : instance.positives) {
          if (!answer->Selects(db, e)) return false;
        }
        for (Value b : instance.negatives) {
          if (answer->Selects(db, b)) return false;
        }
        return true;
      };
      if (screens()) {
        hit = index;
        break;
      }
    }
  } else {
    hit = ParallelFindFirst(
        options.num_threads, candidates.size(), [&](std::size_t index) {
          CqEvaluator evaluator(candidates[index]);
          for (Value e : instance.positives) {
            if (!evaluator.SelectsEntity(db, e)) return false;
          }
          for (Value b : instance.negatives) {
            if (evaluator.SelectsEntity(db, b)) return false;
          }
          return true;
        });
  }
  if (hit < candidates.size()) {
    result.exists = true;
    result.explanation = std::move(candidates[hit]);
    return result;
  }
  result.exists = false;
  return result;
}

}  // namespace featsep
