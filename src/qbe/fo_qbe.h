#ifndef FEATSEP_QBE_FO_QBE_H_
#define FEATSEP_QBE_FO_QBE_H_

#include "qbe/qbe.h"

namespace featsep {

/// FO-QBE (paper, Section 8): does a first-order query q exist with
/// S⁺ ⊆ q(D) and q(D) ∩ S⁻ = ∅?
///
/// On a finite database, the FO-definable unary sets are exactly the
/// unions of automorphism orbits: every FO query output is closed under
/// automorphisms of D, and conversely each orbit is FO-definable (a finite
/// structure is axiomatizable up to isomorphism). Hence an FO explanation
/// exists iff no positive example shares an orbit with a negative one,
/// i.e., iff (D, p) ≇ (D, n) for all p ∈ S⁺, n ∈ S⁻. The pairwise checks
/// are isomorphism tests — this is the GI-completeness of FO-QBE
/// (Arenas–Díaz), and by the dimension collapse (Prop 8.1) the same test
/// decides FO-SEP[ℓ] for every ℓ.
QbeResult SolveFoQbe(const QbeInstance& instance);

}  // namespace featsep

#endif  // FEATSEP_QBE_FO_QBE_H_
