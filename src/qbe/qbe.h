#ifndef FEATSEP_QBE_QBE_H_
#define FEATSEP_QBE_QBE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "cq/cq.h"
#include "relational/database.h"
#include "util/budget.h"

namespace featsep {

namespace serve {
class EvalService;
}  // namespace serve

/// A query-by-example instance (paper, Section 6.1): a database together
/// with unary positive and negative example sets. An L-explanation is a
/// unary query q ∈ L with S⁺ ⊆ q(D) and q(D) ∩ S⁻ = ∅.
struct QbeInstance {
  const Database* db = nullptr;
  std::vector<Value> positives;  ///< S⁺ (must be nonempty).
  std::vector<Value> negatives;  ///< S⁻.
};

/// Options controlling the product-based solvers.
struct QbeOptions {
  /// Budget on the direct-product size; 0 = unbounded. CQ-QBE is
  /// coNEXPTIME-complete (Theorem 6.1) and the canonical product has
  /// |D|^{|S⁺|} facts, so real instances need this guard.
  std::size_t max_product_facts = 2000000;
  /// If true, SolveCqQbe minimizes the returned explanation to its core
  /// (exponential extra work, much smaller query).
  bool minimize_explanation = false;
  /// Worker threads fanning out the independent per-negative homomorphism
  /// checks (SolveCqQbe) and per-candidate evaluations (SolveCqmQbe):
  /// 0 = hardware concurrency, 1 = serial (the historical behavior).
  /// Results are identical for every setting.
  std::size_t num_threads = 0;
  /// Workers *inside* each per-negative homomorphism search of SolveCqQbe
  /// (HomOptions::num_threads): 1 = the classic sequential kernel (default),
  /// 0 = hardware concurrency. Useful when S⁻ is small but the product is
  /// hard; multiplies with `num_threads`, so keep the product of the two
  /// near the core count. The decision is identical for every setting.
  std::size_t hom_threads = 1;
  /// When non-null, SolveCqmQbe screens candidates through the batched
  /// serve layer: each candidate's full answer set is computed once on the
  /// service's sharded pool and cached by (database digest, candidate), so
  /// repeated sweeps over the same database — e.g. QBE with an evolving
  /// example set — reuse prior evaluations instead of re-running the
  /// kernel. The returned explanation is identical (first in enumeration
  /// order); `num_threads` is ignored on this path (the service shards).
  serve::EvalService* service = nullptr;
  /// Cooperative budget threaded into every homomorphism search, cover
  /// game, and candidate screen; nullptr = unbounded. Interrupted runs
  /// report their outcome in QbeResult::outcome.
  ExecutionBudget* budget = nullptr;
  /// SolveCqmQbe resume point: screening starts at this candidate index,
  /// treating all earlier candidates as definitively rejected by a previous
  /// (interrupted) run — pass the prior result's `candidates_screened`.
  /// Resuming an interrupted sweep to completion yields the same answer as
  /// one uninterrupted run.
  std::size_t first_candidate = 0;
};

/// Result of a QBE solver call.
struct QbeResult {
  bool exists = false;
  /// Witness explanation when one was requested and exists (CQ solvers).
  std::optional<ConjunctiveQuery> explanation;
  /// Facts in the materialized canonical product (diagnostics; drives the
  /// Theorem 6.7 blowup measurements).
  std::size_t product_facts = 0;
  /// kCompleted: `exists`/`explanation` are definitive. When interrupted, a
  /// *negative* answer backed by a verified witness (a homomorphism or a
  /// Duplicator win onto some b ∈ S⁻) is still sound, as is a returned
  /// explanation that screened clean; `exists == false` with no such
  /// witness is UNDECIDED.
  BudgetOutcome outcome = BudgetOutcome::kCompleted;
  /// SolveCqmQbe only: length of the definitively-rejected candidate
  /// prefix (in enumeration order, counting from 0 and including any
  /// `first_candidate` head start). Feed back as
  /// QbeOptions::first_candidate to resume an interrupted sweep.
  std::size_t candidates_screened = 0;
};

/// CQ-QBE via the product homomorphism method (ten Cate–Dalmau): the
/// canonical explanation is the direct product P = ∏_{e∈S⁺}(D, e); an
/// explanation exists iff (P, ē) ↛ (D, b) for every b ∈ S⁻. If an
/// explanation exists, `explanation` carries the canonical product query.
/// CHECK-fails if the product exceeds the budget.
QbeResult SolveCqQbe(const QbeInstance& instance,
                     const QbeOptions& options = {});

/// GHW(k)-QBE: an explanation of generalized hypertree width ≤ k exists iff
/// (P, ē) ↛_k (D, b) for every b ∈ S⁻ (Proposition 5.2 plus closure of
/// GHW(k) under conjunction) — decided with the existential cover game on
/// the product, EXPTIME overall (Theorem 6.1). No explanation query is
/// materialized (they can be exponentially large; see Theorem 5.7).
QbeResult SolveGhwQbe(const QbeInstance& instance, std::size_t k,
                      const QbeOptions& options = {});

/// CQ[m]-QBE by enumeration of all feature queries with at most m atoms
/// (requires an entity schema whose η holds on all of S⁺ ∪ S⁻; the
/// enumerated features contain η(x) per the paper's convention).
/// NP-complete even for m = 1 in the input schema's size (Prop 6.11), so
/// the cost is driven by the schema. Returns the first explanation found
/// (in enumeration order, regardless of `options.num_threads`).
QbeResult SolveCqmQbe(const QbeInstance& instance, std::size_t m,
                      std::size_t max_variable_occurrences = 0,
                      const QbeOptions& options = {});

}  // namespace featsep

#endif  // FEATSEP_QBE_QBE_H_
