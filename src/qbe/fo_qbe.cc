#include "qbe/fo_qbe.h"

#include "fo/iso.h"
#include "util/check.h"

namespace featsep {

QbeResult SolveFoQbe(const QbeInstance& instance) {
  FEATSEP_CHECK(instance.db != nullptr);
  QbeResult result;
  result.exists = true;
  for (Value p : instance.positives) {
    for (Value n : instance.negatives) {
      if (AreIsomorphic(*instance.db, {p}, *instance.db, {n})) {
        result.exists = false;
        return result;
      }
    }
  }
  return result;
}

}  // namespace featsep
