#ifndef FEATSEP_COVERGAME_COVER_GAME_H_
#define FEATSEP_COVERGAME_COVER_GAME_H_

#include <cstddef>
#include <vector>

#include "relational/database.h"
#include "util/budget.h"

namespace featsep {

/// Solver for the existential k-cover game of Chen and Dalmau (paper,
/// Section 5): decides the relation (D, ā) →_k (D', b̄), i.e., whether
/// Duplicator has a winning strategy. By Proposition 5.2, this holds iff
/// every CQ of generalized hypertree width ≤ k that selects ā over D also
/// selects b̄ over D' — the engine behind GHW(k)-SEP, GHW(k)-CLS
/// (Algorithm 1) and GHW(k)-ApxSep (Algorithm 2).
///
/// Implementation: positional (history-free) strategies suffice because the
/// winning condition is a safety condition. Game positions are the element
/// sets coverable by at most k facts of D, represented canonically (one
/// position per distinct element set). For each position S the solver
/// enumerates all partial homomorphisms h : S → dom(D') that, together with
/// the fixed pebbles ā → b̄, preserve every fact of D whose elements lie in
/// S ∪ set(ā). A greatest fixpoint then deletes every h that Spoiler can
/// defeat: h ∈ F(S) survives iff for every position S' some h' ∈ F(S')
/// agrees with h on S ∩ S'. Duplicator wins iff the fixpoint leaves the
/// empty position nonempty.
///
/// Complexity: O(|D|^k) positions with O(|D'|^k) candidate strategies each;
/// polynomial for every fixed k (Proposition 5.1), with the exponent growing
/// in k as the theory predicts.
///
/// The solver precomputes the ā-independent part (positions and
/// fact-preserving maps) once per (D, D', k), so probing many pebble pairs —
/// as the separability preorder does — amortizes the enumeration.
class CoverGameSolver {
 public:
  /// Prepares positions and candidate strategies for games from `from` to
  /// `to` with cover bound `k` (k ≥ 1). Both databases must outlive the
  /// solver and share a schema. `budget` (nullptr = unbounded) must outlive
  /// the solver too; it is charged per enumerated position/strategy during
  /// construction and per filter/fixpoint step in TryDecide. A budget that
  /// trips during construction leaves the solver permanently interrupted —
  /// every TryDecide then reports the budget outcome.
  CoverGameSolver(const Database& from, const Database& to, std::size_t k,
                  ExecutionBudget* budget = nullptr);

  /// Decides (from, ā) →_k (to, b̄). The tuples must have equal length;
  /// repeated values in ā must pair with equal values in b̄ (otherwise the
  /// pebbled tuples admit no partial homomorphism and the answer is false).
  /// CHECK-fails if the budget trips; use TryDecide for interruptible runs.
  bool Decide(const std::vector<Value>& a_tuple,
              const std::vector<Value>& b_tuple) const;

  /// Budgeted Decide: `value` is meaningful only when ok() — an interrupted
  /// fixpoint is UNDECIDED, not a loss.
  Budgeted<bool> TryDecide(const std::vector<Value>& a_tuple,
                           const std::vector<Value>& b_tuple) const;

  /// Number of game positions (distinct ≤k-fact-coverable element sets).
  std::size_t num_positions() const { return positions_.size(); }

  /// Total candidate strategies enumerated across positions (before any
  /// per-query filtering); a measure of the game's size.
  std::size_t num_candidate_strategies() const;

 private:
  struct Position {
    std::vector<Value> elements;  // Sorted.
    /// Indexes (into from_) of the facts of `from` whose elements all lie in
    /// `elements` — the facts any strategy at this position must preserve.
    std::vector<FactIndex> covered_facts;
    /// Candidate strategies: image vectors aligned with `elements`, each
    /// preserving all `covered_facts`. Deduplicated.
    std::vector<std::vector<Value>> maps;
  };

  void EnumeratePositions();
  void EnumerateMaps(Position* position);

  const Database& from_;
  const Database& to_;
  std::size_t k_;
  ExecutionBudget* budget_;
  /// Set when the budget trips during construction: the position/strategy
  /// tables are incomplete and no game can be decided from them.
  bool interrupted_ = false;
  std::vector<Position> positions_;
};

/// Convenience wrapper: (from, ā) →_k (to, b̄).
bool CoverGameWins(const Database& from, const std::vector<Value>& a_tuple,
                   const Database& to, const std::vector<Value>& b_tuple,
                   std::size_t k);

/// The full →_k preorder over the given elements of a single database:
/// result[i][j] = ( (db, elements[i]) →_k (db, elements[j]) ).
/// Shares one CoverGameSolver across all pairs.
std::vector<std::vector<bool>> CoverPreorder(
    const Database& db, const std::vector<Value>& elements, std::size_t k);

}  // namespace featsep

#endif  // FEATSEP_COVERGAME_COVER_GAME_H_
