#include "covergame/cover_game.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "testing/coverage.h"
#include "testing/faults.h"
#include "util/budget.h"
#include "util/check.h"
#include "util/hash.h"

namespace featsep {

namespace {

/// Sorted intersection of two sorted vectors.
std::vector<Value> Intersect(const std::vector<Value>& a,
                             const std::vector<Value>& b) {
  std::vector<Value> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Positions (indices) of the elements of `subset` within sorted `set`.
std::vector<std::size_t> IndicesIn(const std::vector<Value>& subset,
                                   const std::vector<Value>& set) {
  std::vector<std::size_t> indices;
  indices.reserve(subset.size());
  for (Value v : subset) {
    auto it = std::lower_bound(set.begin(), set.end(), v);
    FEATSEP_CHECK(it != set.end() && *it == v);
    indices.push_back(static_cast<std::size_t>(it - set.begin()));
  }
  return indices;
}

}  // namespace

CoverGameSolver::CoverGameSolver(const Database& from, const Database& to,
                                 std::size_t k, ExecutionBudget* budget)
    : from_(from), to_(to), k_(k), budget_(budget) {
  FEATSEP_CHECK_GE(k, 1u) << "cover game requires k >= 1";
  FEATSEP_CHECK(from.schema() == to.schema())
      << "cover game requires equal schemas";
  if (!RecheckBudget(budget_)) {
    interrupted_ = true;
    return;
  }
  EnumeratePositions();
  for (Position& position : positions_) {
    if (interrupted_) return;
    EnumerateMaps(&position);
  }
}

void CoverGameSolver::EnumeratePositions() {
  // Enumerate all subsets of at most k facts; canonicalize by element set.
  std::unordered_set<std::vector<Value>, VectorHash<Value>> seen;
  std::vector<FactIndex> chosen;

  auto add_position = [&](const std::vector<Value>& elements) {
    if (interrupted_) return;
    if (!ChargeBudget(budget_)) {
      interrupted_ = true;
      return;
    }
    if (!seen.insert(elements).second) return;
    Position position;
    position.elements = elements;
    // Facts of `from_` whose elements all lie in `elements`.
    std::unordered_set<FactIndex> covered;
    for (Value v : elements) {
      for (FactIndex fi : from_.FactsContaining(v)) {
        if (covered.count(fi) > 0) continue;
        const Fact& fact = from_.fact(fi);
        bool inside = true;
        for (Value arg : fact.args) {
          if (!std::binary_search(elements.begin(), elements.end(), arg)) {
            inside = false;
            break;
          }
        }
        if (inside) covered.insert(fi);
      }
    }
    position.covered_facts.assign(covered.begin(), covered.end());
    std::sort(position.covered_facts.begin(), position.covered_facts.end());
    FEATSEP_COVERAGE(kCoverPosition);
    positions_.push_back(std::move(position));
  };

  // The empty position (Spoiler holding no pebbles).
  add_position({});

  // Recursive enumeration of fact subsets of size 1..k.
  auto recurse = [&](auto&& self, FactIndex next) -> void {
    if (interrupted_) return;
    if (!chosen.empty()) {
      std::vector<Value> elements;
      for (FactIndex fi : chosen) {
        for (Value v : from_.fact(fi).args) elements.push_back(v);
      }
      std::sort(elements.begin(), elements.end());
      elements.erase(std::unique(elements.begin(), elements.end()),
                     elements.end());
      add_position(elements);
    }
    if (chosen.size() == k_) return;
    for (FactIndex fi = next; fi < from_.size(); ++fi) {
      chosen.push_back(fi);
      self(self, fi + 1);
      chosen.pop_back();
    }
  };
  recurse(recurse, 0);
}

void CoverGameSolver::EnumerateMaps(Position* position) {
  const std::vector<Value>& elements = position->elements;
  if (elements.empty()) {
    position->maps.push_back({});
    return;
  }

  // Backtracking over the covered facts, choosing an image fact in `to_`
  // for each; the element map must stay consistent. Every element of the
  // position occurs in some covered fact (positions are unions of facts),
  // so a full choice determines the whole map.
  std::unordered_map<Value, std::size_t> index_of;
  for (std::size_t i = 0; i < elements.size(); ++i) index_of[elements[i]] = i;

  std::vector<Value> image(elements.size(), kNoValue);
  std::unordered_set<std::vector<Value>, VectorHash<Value>> dedup;

  auto recurse = [&](auto&& self, std::size_t fact_pos) -> void {
    if (interrupted_) return;
    if (!ChargeBudget(budget_)) {
      interrupted_ = true;
      return;
    }
    if (fact_pos == position->covered_facts.size()) {
      // All elements are determined (every element is in a covered fact).
      if (dedup.insert(image).second) {
        FEATSEP_COVERAGE(kCoverMap);
        position->maps.push_back(image);
      }
      return;
    }
    const Fact& fact = from_.fact(position->covered_facts[fact_pos]);
    for (FactIndex ti : to_.FactsOf(fact.relation)) {
      const Fact& target = to_.fact(ti);
      // Try to unify: each source arg must map to the target arg.
      std::vector<std::pair<std::size_t, Value>> assigned;
      bool ok = true;
      for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
        std::size_t idx = index_of.at(fact.args[pos]);
        if (image[idx] == kNoValue) {
          image[idx] = target.args[pos];
          assigned.emplace_back(idx, target.args[pos]);
        } else if (image[idx] != target.args[pos]) {
          ok = false;
          break;
        }
      }
      if (ok) self(self, fact_pos + 1);
      for (const auto& [idx, value] : assigned) {
        (void)value;
        image[idx] = kNoValue;
      }
    }
  };
  recurse(recurse, 0);
}

std::size_t CoverGameSolver::num_candidate_strategies() const {
  std::size_t total = 0;
  for (const Position& position : positions_) total += position.maps.size();
  return total;
}

bool CoverGameSolver::Decide(const std::vector<Value>& a_tuple,
                             const std::vector<Value>& b_tuple) const {
  Budgeted<bool> result = TryDecide(a_tuple, b_tuple);
  FEATSEP_CHECK(result.ok())
      << "unbudgeted cover-game entry point interrupted; use TryDecide";
  return result.value;
}

Budgeted<bool> CoverGameSolver::TryDecide(
    const std::vector<Value>& a_tuple,
    const std::vector<Value>& b_tuple) const {
  FEATSEP_CHECK_EQ(a_tuple.size(), b_tuple.size());
  Budgeted<bool> result;
  result.value = false;
  // A solver whose tables were truncated by the budget, or a budget already
  // tripped at entry, cannot decide anything.
  if (interrupted_ || !RecheckBudget(budget_)) {
    result.outcome = OutcomeOf(budget_);
    return result;
  }

  // Base map ā → b̄; must be functional.
  std::unordered_map<Value, Value> base;
  for (std::size_t i = 0; i < a_tuple.size(); ++i) {
    auto [it, inserted] = base.emplace(a_tuple[i], b_tuple[i]);
    if (!inserted && it->second != b_tuple[i]) {
      FEATSEP_COVERAGE(kCoverBaseReject);
      return result;
    }
  }

  // Facts touching ā (candidates for the mixed / pure-ā checks).
  std::unordered_set<FactIndex> touching_a;
  for (const auto& [a, b] : base) {
    (void)b;
    if (a < from_.num_values()) {
      for (FactIndex fi : from_.FactsContaining(a)) touching_a.insert(fi);
    }
  }

  // Pure-ā facts must be preserved by the base map alone.
  for (FactIndex fi : touching_a) {
    const Fact& fact = from_.fact(fi);
    bool pure = true;
    std::vector<Value> args;
    args.reserve(fact.args.size());
    for (Value v : fact.args) {
      auto it = base.find(v);
      if (it == base.end()) {
        pure = false;
        break;
      }
      args.push_back(it->second);
    }
    if (pure && !to_.ContainsFact(Fact{fact.relation, std::move(args)})) {
      FEATSEP_COVERAGE(kCoverBaseReject);
      return result;
    }
  }

  // Per-position filtered strategy sets.
  std::vector<std::vector<std::vector<Value>>> live(positions_.size());
  for (std::size_t p = 0; p < positions_.size(); ++p) {
    const Position& position = positions_[p];
    const std::vector<Value>& elements = position.elements;

    // Mixed facts: touch ā, lie inside S ∪ set(ā), and use ≥1 element of
    // S \ set(ā) (pure-ā facts were already checked above).
    std::vector<FactIndex> mixed;
    for (FactIndex fi : touching_a) {
      const Fact& fact = from_.fact(fi);
      bool inside = true;
      bool uses_s_only_element = false;
      for (Value v : fact.args) {
        bool in_a = base.count(v) > 0;
        bool in_s = std::binary_search(elements.begin(), elements.end(), v);
        if (!in_a && !in_s) {
          inside = false;
          break;
        }
        if (!in_a && in_s) uses_s_only_element = true;
      }
      if (inside && uses_s_only_element) mixed.push_back(fi);
    }

    for (const std::vector<Value>& map : position.maps) {
      if (!ChargeBudget(budget_)) {
        result.outcome = OutcomeOf(budget_);
        return result;
      }
      // (a) Agreement with the base map on S ∩ set(ā).
      bool ok = true;
      for (std::size_t i = 0; ok && i < elements.size(); ++i) {
        auto it = base.find(elements[i]);
        if (it != base.end() && it->second != map[i]) ok = false;
      }
      // (b) Preservation of mixed facts under base ∪ map.
      for (std::size_t m = 0; ok && m < mixed.size(); ++m) {
        const Fact& fact = from_.fact(mixed[m]);
        std::vector<Value> args;
        args.reserve(fact.args.size());
        for (Value v : fact.args) {
          auto it = base.find(v);
          if (it != base.end()) {
            args.push_back(it->second);
          } else {
            auto pos = std::lower_bound(elements.begin(), elements.end(), v);
            args.push_back(map[static_cast<std::size_t>(
                pos - elements.begin())]);
          }
        }
        if (!to_.ContainsFact(Fact{fact.relation, std::move(args)})) {
          ok = false;
        }
      }
      if (ok) live[p].push_back(map);
    }
    if (live[p].empty()) {
      FEATSEP_COVERAGE(kCoverPositionDead);
      return result;
    }
  }

  // Greatest fixpoint: delete h ∈ live[i] unless, for every position j,
  // some h' ∈ live[j] agrees with h on S_i ∩ S_j.
  bool changed = true;
  while (changed) {
    FEATSEP_COVERAGE(kCoverFixpointRound);
    FEATSEP_FAULT_POINT(kCoverFixpointRound);
    changed = false;
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      for (std::size_t j = 0; j < positions_.size(); ++j) {
        if (i == j) continue;
        if (!ChargeBudget(budget_)) {
          result.outcome = OutcomeOf(budget_);
          return result;
        }
        std::vector<Value> overlap =
            Intersect(positions_[i].elements, positions_[j].elements);
        if (overlap.empty()) continue;  // live[j] nonempty suffices.
        std::vector<std::size_t> idx_i =
            IndicesIn(overlap, positions_[i].elements);
        std::vector<std::size_t> idx_j =
            IndicesIn(overlap, positions_[j].elements);

        std::unordered_set<std::vector<Value>, VectorHash<Value>> keys;
        keys.reserve(live[j].size());
        for (const std::vector<Value>& h : live[j]) {
          std::vector<Value> key;
          key.reserve(idx_j.size());
          for (std::size_t idx : idx_j) key.push_back(h[idx]);
          keys.insert(std::move(key));
        }

        std::size_t before = live[i].size();
        std::erase_if(live[i], [&](const std::vector<Value>& h) {
          std::vector<Value> key;
          key.reserve(idx_i.size());
          for (std::size_t idx : idx_i) key.push_back(h[idx]);
          return keys.count(key) == 0;
        });
        if (live[i].size() != before) {
          FEATSEP_COVERAGE(kCoverStrategyDeleted);
          changed = true;
          if (live[i].empty()) {
            FEATSEP_COVERAGE(kCoverLose);
            return result;
          }
        }
      }
    }
  }
  FEATSEP_COVERAGE(kCoverWin);
  result.value = true;
  return result;
}

bool CoverGameWins(const Database& from, const std::vector<Value>& a_tuple,
                   const Database& to, const std::vector<Value>& b_tuple,
                   std::size_t k) {
  CoverGameSolver solver(from, to, k);
  return solver.Decide(a_tuple, b_tuple);
}

std::vector<std::vector<bool>> CoverPreorder(
    const Database& db, const std::vector<Value>& elements, std::size_t k) {
  CoverGameSolver solver(db, db, k);
  std::size_t n = elements.size();
  std::vector<std::vector<bool>> result(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      result[i][j] =
          i == j || solver.Decide({elements[i]}, {elements[j]});
    }
  }
  return result;
}

}  // namespace featsep
