#ifndef FEATSEP_TESTING_RANDOM_INSTANCE_H_
#define FEATSEP_TESTING_RANDOM_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cq/cq.h"
#include "relational/database.h"
#include "relational/training_database.h"
#include "workload/generators.h"

namespace featsep {
namespace testing {

/// Seeded, deterministic random-instance generators for the differential
/// fuzz harness (extends `src/workload/generators`: those build *structured*
/// workloads with planted features; these sample the instance space broadly
/// with tunable arity/size/density). All randomness flows through the
/// caller's WorkloadRng, so one seed pins the whole instance.

/// Parameters for random schema generation.
struct RandomSchemaParams {
  /// Relation symbols besides the entity relation (when present).
  std::size_t num_relations = 2;
  std::size_t max_arity = 3;
  /// If true the schema additionally gets a designated unary η ("Eta").
  bool entity_schema = true;
};

std::shared_ptr<const Schema> RandomSchema(const RandomSchemaParams& params,
                                           WorkloadRng& rng);

/// Parameters for random database generation.
struct RandomDatabaseParams {
  /// Interned constants facts draw their arguments from.
  std::size_t num_values = 6;
  /// Fact insertions attempted (duplicates collapse: databases are sets, so
  /// the density knob is attempts per value, not an exact fact count).
  std::size_t num_facts = 12;
  /// With an entity schema: probability each value is declared an entity.
  double entity_fraction = 0.4;
};

Database RandomDatabase(std::shared_ptr<const Schema> schema,
                        const RandomDatabaseParams& params, WorkloadRng& rng);

/// Parameters for random CQ generation.
struct RandomCqParams {
  /// Atoms besides the η(x) atom of feature queries.
  std::size_t num_atoms = 3;
  /// Probability of minting a fresh variable per argument position (the
  /// complement reuses a pooled variable, biasing toward connectedness).
  double fresh_variable_chance = 1.0 / 3;
};

/// A random unary query over `schema`: a feature query q(x) ⊇ {η(x)} when
/// the schema designates an entity relation, else a unary CQ whose free
/// variable is seeded into the pool (and, if no atom picked it up, attached
/// to a final forced atom so the query stays safe to evaluate).
ConjunctiveQuery RandomUnaryCq(std::shared_ptr<const Schema> schema,
                               const RandomCqParams& params, WorkloadRng& rng);

/// A random labeled training database: RandomDatabase plus a ±1 label on
/// every entity. Requires an entity schema.
std::shared_ptr<TrainingDatabase> RandomTrainingDatabase(
    std::shared_ptr<const Schema> schema, const RandomDatabaseParams& params,
    WorkloadRng& rng);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_RANDOM_INSTANCE_H_
