#include "testing/corpus.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/cq_parser.h"
#include "io/reader.h"
#include "io/writer.h"
#include "util/hash.h"

namespace featsep {
namespace testing {

namespace {

/// A value reference: the interned name, or "#<id>" for ids outside the
/// database (the generator's stale-seed probe).
std::string ValueRef(const Database& db, Value value) {
  if (value < db.num_values()) return db.value_name(value);
  return "#" + std::to_string(value);
}

void WriteValueList(const Database& db, const char* key,
                    const std::vector<Value>& values,
                    std::ostringstream& out) {
  if (values.empty()) return;
  out << key;
  for (Value v : values) out << " " << ValueRef(db, v);
  out << "\n";
}

void WriteDbSection(const char* name, const Database& db,
                    std::ostringstream& out) {
  out << "[" << name << "]\n" << WriteDatabase(db) << "[end]\n";
}

struct Parser {
  std::istringstream in;
  std::string line;
  std::size_t line_number = 0;

  explicit Parser(std::string_view text) : in(std::string(text)) {}

  bool NextLine() {
    while (std::getline(in, line)) {
      ++line_number;
      // Trim trailing CR from files that crossed a Windows checkout.
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      return true;
    }
    return false;
  }

  Error At(const std::string& message) const {
    return Error("corpus line " + std::to_string(line_number) + ": " +
                 message);
  }
};

Result<Database> ParseDbSection(Parser& parser) {
  std::ostringstream body;
  while (true) {
    if (!std::getline(parser.in, parser.line)) {
      return parser.At("unterminated database section");
    }
    ++parser.line_number;
    if (!parser.line.empty() && parser.line.back() == '\r') {
      parser.line.pop_back();
    }
    if (parser.line == "[end]") break;
    body << parser.line << "\n";
  }
  Result<std::shared_ptr<Database>> db = ReadDatabase(body.str());
  if (!db.ok()) return parser.At(db.error().message());
  return Database(*db.value());
}

Result<Value> ParseValueRef(Parser& parser, const Database& db,
                            const std::string& token) {
  if (!token.empty() && token[0] == '#') {
    return static_cast<Value>(std::stoull(token.substr(1)));
  }
  Value value = db.FindValue(token);
  if (value == kNoValue) {
    return parser.At("unknown value name '" + token + "'");
  }
  return value;
}

Result<Label> ParseLabelToken(Parser& parser, const std::string& token) {
  if (token == "+" || token == "+1" || token == "1") return kPositive;
  if (token == "-" || token == "-1") return kNegative;
  return parser.At("bad label '" + token + "'");
}

Result<Rational> ParseRational(Parser& parser, const std::string& token) {
  try {
    std::size_t slash = token.find('/');
    if (slash == std::string::npos) {
      return Rational(static_cast<std::int64_t>(std::stoll(token)));
    }
    std::int64_t num = std::stoll(token.substr(0, slash));
    std::int64_t den = std::stoll(token.substr(slash + 1));
    if (den == 0) return parser.At("zero denominator in '" + token + "'");
    return Rational(num) / Rational(den);
  } catch (const std::exception&) {
    return parser.At("bad rational '" + token + "'");
  }
}

std::vector<std::string> Tokens(const std::string& rest) {
  std::istringstream in(rest);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

}  // namespace

std::string SerializeFuzzInstance(const FuzzInstance& instance) {
  std::ostringstream out;
  out << "config " << FuzzConfigName(instance.config) << "\n";
  if (instance.config == FuzzConfig::kServe ||
      instance.config == FuzzConfig::kIncremental ||
      instance.config == FuzzConfig::kCrashIo) {
    out << "k " << instance.k << "\n";
    out << "m " << instance.m << "\n";
  }
  if (instance.config == FuzzConfig::kCoverGame) {
    out << "k " << instance.k << "\n";
  }
  if (instance.config == FuzzConfig::kQbe) out << "m " << instance.m << "\n";
  if (instance.config == FuzzConfig::kDimension) {
    out << "ell " << instance.ell << "\n";
  }
  if (instance.config == FuzzConfig::kFaults) {
    out << "fault " << instance.fault_site << " "
        << static_cast<unsigned>(instance.fault_kind) << " "
        << instance.fault_visit << "\n";
  }
  if (instance.db_a.has_value()) WriteDbSection("db_a", *instance.db_a, out);
  if (instance.db_b.has_value()) WriteDbSection("db_b", *instance.db_b, out);
  if (instance.db_c.has_value()) WriteDbSection("db_c", *instance.db_c, out);
  if (instance.query.has_value()) {
    out << "query " << instance.query->ToString() << "\n";
  }
  if (instance.query2.has_value()) {
    out << "query2 " << instance.query2->ToString() << "\n";
  }
  if (instance.db_a.has_value() && instance.db_b.has_value()) {
    for (const auto& [source, image] : instance.hom_seed) {
      out << "seed " << ValueRef(*instance.db_a, source) << " "
          << ValueRef(*instance.db_b, image) << "\n";
    }
  }
  if (instance.db_a.has_value()) {
    WriteValueList(*instance.db_a, "frozen", instance.frozen, out);
    WriteValueList(*instance.db_a, "positives", instance.positives, out);
    WriteValueList(*instance.db_a, "negatives", instance.negatives, out);
    for (const auto& [value, label] : instance.labels) {
      out << "label " << ValueRef(*instance.db_a, value) << " "
          << (label > 0 ? "+1" : "-1") << "\n";
    }
  }
  for (std::size_t i = 0; i < instance.features.size(); ++i) {
    out << "example";
    for (int f : instance.features[i]) out << " " << (f > 0 ? "+1" : "-1");
    Label label = i < instance.feature_labels.size()
                      ? instance.feature_labels[i]
                      : kPositive;
    out << " : " << (label > 0 ? "+1" : "-1") << "\n";
  }
  for (std::size_t i = 0; i < instance.lp.a.size(); ++i) {
    out << "lp_row";
    for (const Rational& c : instance.lp.a[i]) out << " " << c.ToString();
    out << " <= " << instance.lp.b[i].ToString() << "\n";
  }
  if (!instance.lp.c.empty()) {
    out << "lp_obj";
    for (const Rational& c : instance.lp.c) out << " " << c.ToString();
    out << "\n";
  }
  return out.str();
}

Result<FuzzInstance> DeserializeFuzzInstance(std::string_view text) {
  Parser parser(text);
  if (!parser.NextLine() || parser.line.rfind("config ", 0) != 0) {
    return parser.At("expected 'config <name>' first");
  }
  std::optional<FuzzConfig> config = ParseFuzzConfig(parser.line.substr(7));
  if (!config.has_value() || *config == FuzzConfig::kMixed) {
    return parser.At("bad config '" + parser.line.substr(7) + "'");
  }
  FuzzInstance instance;
  instance.config = *config;

  auto require_db_a = [&]() -> Result<bool> {
    if (!instance.db_a.has_value()) {
      return parser.At("directive needs a [db_a] section first");
    }
    return true;
  };

  while (parser.NextLine()) {
    const std::string& line = parser.line;
    auto starts = [&](const char* prefix) {
      return line.rfind(prefix, 0) == 0;
    };
    if (line == "[db_a]" || line == "[db_b]" || line == "[db_c]") {
      // ParseDbSection overwrites parser.line (and thus `line`), so pin the
      // section name first.
      const std::string section = line;
      Result<Database> db = ParseDbSection(parser);
      if (!db.ok()) return db.error();
      if (section == "[db_a]") {
        instance.db_a = std::move(db.value());
        instance.schema = instance.db_a->schema_ptr();
      } else if (section == "[db_b]") {
        instance.db_b = std::move(db.value());
      } else {
        instance.db_c = std::move(db.value());
      }
    } else if (starts("query2 ") || starts("query ")) {
      bool second = starts("query2 ");
      Result<bool> ok = require_db_a();
      if (!ok.ok()) return ok.error();
      Result<ConjunctiveQuery> query = ParseCq(
          instance.db_a->schema_ptr(), line.substr(second ? 7 : 6));
      if (!query.ok()) return parser.At(query.error().message());
      (second ? instance.query2 : instance.query) = std::move(query.value());
    } else if (starts("seed ")) {
      if (!instance.db_a.has_value() || !instance.db_b.has_value()) {
        return parser.At("seed needs [db_a] and [db_b] first");
      }
      std::vector<std::string> tokens = Tokens(line.substr(5));
      if (tokens.size() != 2) return parser.At("seed wants two values");
      // A name that did not survive the database round trip (isolated
      // values appear in no fact) degrades to a stale id, matching the
      // generator's stale-seed probe.
      auto seed_ref = [&](const Database& db,
                          const std::string& token) -> Result<Value> {
        if (!token.empty() && token[0] != '#' &&
            db.FindValue(token) == kNoValue) {
          return static_cast<Value>(db.num_values());
        }
        return ParseValueRef(parser, db, token);
      };
      Result<Value> source = seed_ref(*instance.db_a, tokens[0]);
      if (!source.ok()) return source.error();
      Result<Value> image = seed_ref(*instance.db_b, tokens[1]);
      if (!image.ok()) return image.error();
      instance.hom_seed.emplace_back(source.value(), image.value());
    } else if (starts("frozen ") || starts("positives ") ||
               starts("negatives ")) {
      Result<bool> ok = require_db_a();
      if (!ok.ok()) return ok.error();
      std::size_t space = line.find(' ');
      std::vector<Value>* target =
          starts("frozen ") ? &instance.frozen
          : starts("positives ") ? &instance.positives
                                 : &instance.negatives;
      for (const std::string& token : Tokens(line.substr(space + 1))) {
        // Isolated values appear in no fact and so do not survive the
        // database round trip; sanitize would drop them anyway.
        if (!token.empty() && token[0] != '#' &&
            instance.db_a->FindValue(token) == kNoValue) {
          continue;
        }
        Result<Value> value = ParseValueRef(parser, *instance.db_a, token);
        if (!value.ok()) return value.error();
        target->push_back(value.value());
      }
    } else if (starts("label ")) {
      Result<bool> ok = require_db_a();
      if (!ok.ok()) return ok.error();
      std::vector<std::string> tokens = Tokens(line.substr(6));
      if (tokens.size() != 2) return parser.At("label wants value and sign");
      if (!tokens[0].empty() && tokens[0][0] != '#' &&
          instance.db_a->FindValue(tokens[0]) == kNoValue) {
        continue;  // Label of a value that did not survive the round trip.
      }
      Result<Value> value = ParseValueRef(parser, *instance.db_a, tokens[0]);
      if (!value.ok()) return value.error();
      Result<Label> label = ParseLabelToken(parser, tokens[1]);
      if (!label.ok()) return label.error();
      instance.labels.emplace_back(value.value(), label.value());
    } else if (starts("example ")) {
      std::vector<std::string> tokens = Tokens(line.substr(8));
      if (tokens.size() < 2 || tokens[tokens.size() - 2] != ":") {
        return parser.At("example wants 'example f1 ... : label'");
      }
      FeatureVector features;
      for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        Result<Label> f = ParseLabelToken(parser, tokens[i]);
        if (!f.ok()) return f.error();
        features.push_back(f.value());
      }
      Result<Label> label = ParseLabelToken(parser, tokens.back());
      if (!label.ok()) return label.error();
      instance.features.push_back(std::move(features));
      instance.feature_labels.push_back(label.value());
    } else if (starts("lp_row ")) {
      std::vector<std::string> tokens = Tokens(line.substr(7));
      if (tokens.size() < 3 || tokens[tokens.size() - 2] != "<=") {
        return parser.At("lp_row wants 'lp_row c1 ... <= b'");
      }
      std::vector<Rational> row;
      for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        Result<Rational> c = ParseRational(parser, tokens[i]);
        if (!c.ok()) return c.error();
        row.push_back(c.value());
      }
      Result<Rational> bound = ParseRational(parser, tokens.back());
      if (!bound.ok()) return bound.error();
      instance.lp.a.push_back(std::move(row));
      instance.lp.b.push_back(bound.value());
    } else if (starts("lp_obj ")) {
      for (const std::string& token : Tokens(line.substr(7))) {
        Result<Rational> c = ParseRational(parser, token);
        if (!c.ok()) return c.error();
        instance.lp.c.push_back(c.value());
      }
    } else if (starts("fault ")) {
      std::vector<std::string> tokens = Tokens(line.substr(6));
      if (tokens.size() != 3) {
        return parser.At("fault wants '<site> <kind> <visit>'");
      }
      try {
        instance.fault_site =
            static_cast<std::uint16_t>(std::stoul(tokens[0]));
        instance.fault_kind =
            static_cast<std::uint8_t>(std::stoul(tokens[1]));
        instance.fault_visit = std::stoull(tokens[2]);
      } catch (const std::exception&) {
        return parser.At("bad fault spec '" + line + "'");
      }
    } else if (starts("k ") || starts("m ") || starts("ell ")) {
      std::vector<std::string> tokens = Tokens(line);
      if (tokens.size() != 2) return parser.At("bad '" + tokens[0] + "'");
      std::size_t value = 0;
      try {
        value = static_cast<std::size_t>(std::stoull(tokens[1]));
      } catch (const std::exception&) {
        return parser.At("bad count '" + tokens[1] + "'");
      }
      if (tokens[0] == "k") instance.k = value;
      if (tokens[0] == "m") instance.m = value;
      if (tokens[0] == "ell") instance.ell = value;
    } else {
      return parser.At("unrecognized directive '" + line + "'");
    }
  }

  // LP rows must agree with the objective width for the simplex; sanitize
  // normalizes row lengths and every budget cap.
  SanitizeFuzzInstance(&instance);
  return instance;
}

std::string FuzzInstanceFileName(std::string_view serialized) {
  std::ostringstream out;
  out << std::hex;
  out.width(16);
  out.fill('0');
  out << Fnv1a64(serialized);
  return out.str() + ".fz";
}

Result<std::string> WriteFuzzInstanceFile(const std::string& dir,
                                          const FuzzInstance& instance) {
  std::string serialized = SerializeFuzzInstance(instance);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Error("cannot create corpus dir " + dir + ": " +
                       ec.message());
  std::filesystem::path path =
      std::filesystem::path(dir) / FuzzInstanceFileName(serialized);
  std::ofstream out(path);
  out << serialized;
  if (!out.good()) return Error("cannot write " + path.string());
  return path.string();
}

Corpus::Corpus(std::string dir) : dir_(std::move(dir)) {}

std::size_t Corpus::Load(std::vector<std::string>* errors) {
  if (dir_.empty()) return 0;
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".fz") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::size_t loaded = 0;
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file);
    std::ostringstream text;
    text << in.rdbuf();
    Result<FuzzInstance> instance = DeserializeFuzzInstance(text.str());
    if (!instance.ok()) {
      if (errors != nullptr) {
        errors->push_back(file.string() + ": " + instance.error().message());
      }
      continue;
    }
    instances_.push_back(std::move(instance.value()));
    paths_.push_back(file.string());
    ++loaded;
  }
  return loaded;
}

Result<std::size_t> Corpus::Add(const FuzzInstance& instance) {
  std::size_t index = instances_.size();
  instances_.push_back(instance);
  paths_.emplace_back();
  if (dir_.empty()) return index;
  Result<std::string> path = WriteFuzzInstanceFile(dir_, instance);
  if (!path.ok()) return path.error();
  paths_.back() = std::move(path.value());
  return index;
}

}  // namespace testing
}  // namespace featsep
