#ifndef FEATSEP_TESTING_INSTANCE_H_
#define FEATSEP_TESTING_INSTANCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cq/cq.h"
#include "linsep/simplex.h"
#include "relational/database.h"
#include "testing/fuzz.h"
#include "testing/properties.h"

namespace featsep {
namespace testing {

/// A materialized fuzz input: the instance a property driver runs on,
/// decoupled from the seed stream that generated it so it can also be
/// mutated (mutate.h) and persisted to a corpus (corpus.h).
///
/// Which fields are meaningful depends on `config`:
///   kHom          db_a → db_b (+ optional hom_seed, optional db_c for the
///                 composition law)
///   kEval         query over db_a
///   kContainment  query vs query2, semantic check on db_a
///   kCore         db_a with `frozen`, plus MinimizeCq laws on `query`
///   kGhw          query (db_a carries the schema and is otherwise empty)
///   kSep          db_a labeled by `labels`
///   kQbe          db_a with positives/negatives and CQ[m] bound `m`
///   kCoverGame    db_a → db_b at pebble count `k`
///   kDimension    db_a labeled by `labels`, dimension bound `ell`
///   kLinsep       `features`/`feature_labels` training collection and
///                 LP `lp` (db-free; schema/db_a unused)
///   kFaults       db_a labeled by `labels` plus a fault spec
///                 (`fault_site`/`fault_kind`/`fault_visit`) injected into
///                 the budgeted decision procedures
///   kServe        entity database db_a; `k` seeds the async request
///                 interleaving, `m` is the operation count
///   kIncremental  entity database db_a (the starting state); `k` seeds the
///                 mutation trace, `m` is the number of
///                 insert/remove/relabel steps
///
/// `config` is never kMixed — mixed resolves to a concrete config before an
/// instance exists.
struct FuzzInstance {
  FuzzConfig config = FuzzConfig::kHom;
  std::shared_ptr<const Schema> schema;
  std::optional<Database> db_a;
  std::optional<Database> db_b;
  std::optional<Database> db_c;
  std::optional<ConjunctiveQuery> query;
  std::optional<ConjunctiveQuery> query2;
  std::vector<std::pair<Value, Value>> hom_seed;
  std::vector<Value> frozen;
  std::vector<Value> positives;
  std::vector<Value> negatives;
  std::vector<std::pair<Value, Label>> labels;
  std::size_t m = 1;
  std::size_t k = 1;
  std::size_t ell = 1;
  std::vector<FeatureVector> features;
  std::vector<Label> feature_labels;
  LpProblem lp;
  /// kFaults only: which FEATSEP_FAULT_POINT site to trip (CoverageSite
  /// value), what to inject there (FaultKind value), and on which 1-based
  /// probe visit.
  std::uint16_t fault_site = 0;
  std::uint8_t fault_kind = 0;
  std::uint64_t fault_visit = 1;
};

/// Generates the instance for (config, instance_seed). Deterministic: the
/// stream depends only on the two arguments, so a failure replays with
/// `--config <config> --seed <instance_seed> --iters 1`. kMixed resolves to
/// a concrete config by the seed first.
FuzzInstance GenerateFuzzInstance(FuzzConfig config,
                                  std::uint64_t instance_seed);

/// Runs the property drivers matching `instance.config`. nullopt when every
/// law holds (including on vacuous instances, e.g. QBE with no entities).
PropertyCheck CheckFuzzInstance(const FuzzInstance& instance);

/// True when the query is range-restricted: nonempty, with every free
/// variable occurring in some atom. The engines assume safe queries;
/// sanitize drops queries that mutation made unsafe.
bool QueryIsSafe(const ConjunctiveQuery& query);

/// Clamps a (possibly mutated or deserialized) instance back into the
/// reference-oracle budget: trims databases, prunes dangling value
/// references, and caps k/m/ell and the LP dimensions. Generation always
/// produces sanitized instances; mutation and corpus loading call this.
void SanitizeFuzzInstance(FuzzInstance* instance);

/// Greedily minimizes `instance` while `still_failing` holds, reusing the
/// structural shrinkers (shrink.h) on whichever fields the config reads.
/// Candidates are sanitized before the predicate sees them.
FuzzInstance ShrinkFuzzInstance(
    FuzzInstance instance,
    const std::function<bool(const FuzzInstance&)>& still_failing);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_INSTANCE_H_
