#include "testing/reference_hom.h"

#include <utility>

#include "util/check.h"

namespace featsep {
namespace testing {

namespace {

/// True iff the fact image under `mapping` (defined wherever it matters)
/// occurs in `to`, by linear scan — intentionally index-free.
bool ImageFactInTo(const Fact& fact, const std::vector<Value>& mapping,
                   const Database& to) {
  for (const Fact& target : to.facts()) {
    if (target.relation != fact.relation) continue;
    bool same = true;
    for (std::size_t p = 0; p < fact.args.size(); ++p) {
      if (target.args[p] != mapping[fact.args[p]]) {
        same = false;
        break;
      }
    }
    if (same) return true;
  }
  return false;
}

/// Recursive backtracking over the variables `vars` (dom(from) order),
/// trying every element of dom(to) in order. After each assignment, every
/// fully-assigned fact containing the variable is checked by linear scan.
bool Extend(std::size_t next_var, const std::vector<Value>& vars,
            const Database& from, const Database& to,
            std::vector<Value>& mapping) {
  if (next_var == vars.size()) return true;
  Value var = vars[next_var];
  if (mapping[var] != kNoValue) {
    // Pre-assigned by the seed; just validate its facts and recurse.
    for (FactIndex fi : from.FactsContaining(var)) {
      const Fact& fact = from.fact(fi);
      bool complete = true;
      for (Value arg : fact.args) {
        if (mapping[arg] == kNoValue) {
          complete = false;
          break;
        }
      }
      if (complete && !ImageFactInTo(fact, mapping, to)) return false;
    }
    return Extend(next_var + 1, vars, from, to, mapping);
  }
  for (Value image : to.domain()) {
    mapping[var] = image;
    bool consistent = true;
    for (FactIndex fi : from.FactsContaining(var)) {
      const Fact& fact = from.fact(fi);
      bool complete = true;
      for (Value arg : fact.args) {
        if (mapping[arg] == kNoValue) {
          complete = false;
          break;
        }
      }
      if (complete && !ImageFactInTo(fact, mapping, to)) {
        consistent = false;
        break;
      }
    }
    if (consistent && Extend(next_var + 1, vars, from, to, mapping)) {
      return true;
    }
  }
  mapping[var] = kNoValue;
  return false;
}

}  // namespace

std::optional<std::vector<Value>> RefFindHomomorphism(
    const Database& from, const Database& to,
    const std::vector<std::pair<Value, Value>>& seed) {
  const std::vector<Value>& vars = from.domain();
  std::vector<Value> mapping(from.num_values(), kNoValue);
  std::vector<std::pair<Value, Value>> free_seeds;
  for (const auto& [source, image] : seed) {
    if (source >= from.num_values() || !from.InDomain(source)) {
      free_seeds.emplace_back(source, image);
      continue;
    }
    if (mapping[source] != kNoValue && mapping[source] != image) {
      return std::nullopt;  // Contradictory seed.
    }
    // A value of dom(from) occurs in a fact, so its image must lie in
    // dom(to) for that fact to have an image; reject stale images early.
    if (!to.InDomain(image)) return std::nullopt;
    mapping[source] = image;
  }
  if (!Extend(0, vars, from, to, mapping)) return std::nullopt;
  for (const auto& [source, image] : free_seeds) {
    if (source < mapping.size()) mapping[source] = image;
  }
  return mapping;
}

bool RefHomomorphismExists(const Database& from, const Database& to,
                           const std::vector<std::pair<Value, Value>>& seed) {
  return RefFindHomomorphism(from, to, seed).has_value();
}

bool RefIsHomomorphism(const Database& from, const Database& to,
                       const std::vector<Value>& mapping) {
  if (mapping.size() < from.num_values()) return false;
  for (Value v : from.domain()) {
    if (mapping[v] == kNoValue) return false;
  }
  for (const Fact& fact : from.facts()) {
    if (!ImageFactInTo(fact, mapping, to)) return false;
  }
  return true;
}

bool RefHomEquivalent(const Database& from,
                      const std::vector<Value>& from_tuple,
                      const Database& to,
                      const std::vector<Value>& to_tuple) {
  FEATSEP_CHECK_EQ(from_tuple.size(), to_tuple.size());
  std::vector<std::pair<Value, Value>> forward;
  std::vector<std::pair<Value, Value>> backward;
  for (std::size_t i = 0; i < from_tuple.size(); ++i) {
    forward.emplace_back(from_tuple[i], to_tuple[i]);
    backward.emplace_back(to_tuple[i], from_tuple[i]);
  }
  return RefHomomorphismExists(from, to, forward) &&
         RefHomomorphismExists(to, from, backward);
}

std::vector<Value> RefEvaluateUnaryCq(const ConjunctiveQuery& query,
                                      const Database& db) {
  FEATSEP_CHECK(query.IsUnary());
  auto [canonical, var_to_value] = query.CanonicalDatabase();
  Value free_value = var_to_value[query.free_variable()];
  bool has_entity_atom = false;
  if (query.schema().has_entity_relation()) {
    RelationId eta = query.schema().entity_relation();
    for (const CqAtom& atom : query.atoms()) {
      if (atom.relation == eta && atom.args.size() == 1 &&
          atom.args[0] == query.free_variable()) {
        has_entity_atom = true;
        break;
      }
    }
  }
  std::vector<Value> candidates =
      has_entity_atom ? db.Entities() : db.domain();
  std::vector<Value> result;
  for (Value candidate : candidates) {
    if (RefHomomorphismExists(canonical, db, {{free_value, candidate}})) {
      result.push_back(candidate);
    }
  }
  return result;
}

bool RefIsContainedIn(const ConjunctiveQuery& q1,
                      const ConjunctiveQuery& q2) {
  FEATSEP_CHECK(q1.schema() == q2.schema());
  FEATSEP_CHECK_EQ(q1.free_variables().size(), q2.free_variables().size());
  auto [db1, vars1] = q1.CanonicalDatabase();
  auto [db2, vars2] = q2.CanonicalDatabase();
  std::vector<Value> tuple1 = ConjunctiveQuery::FreeTuple(q1, vars1);
  std::vector<Value> tuple2 = ConjunctiveQuery::FreeTuple(q2, vars2);
  std::vector<std::pair<Value, Value>> seed;
  for (std::size_t i = 0; i < tuple1.size(); ++i) {
    seed.emplace_back(tuple2[i], tuple1[i]);
  }
  return RefHomomorphismExists(db2, db1, seed);
}

}  // namespace testing
}  // namespace featsep
