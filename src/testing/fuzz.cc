#include "testing/fuzz.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "testing/corpus.h"
#include "testing/coverage.h"
#include "testing/instance.h"
#include "testing/mutate.h"
#include "util/budget.h"
#include "util/check.h"
#include "workload/generators.h"

namespace featsep {
namespace testing {

namespace {

std::string Reproduce(FuzzConfig config, std::uint64_t instance_seed) {
  std::ostringstream out;
  out << "featsep_fuzz --config " << FuzzConfigName(config) << " --seed "
      << instance_seed << " --iters 1";
  return out.str();
}

std::string ReproduceReplay(const std::string& path) {
  return "featsep_fuzz --replay " + path;
}

constexpr std::size_t kEdgeSpace =
    coverage_internal::kNumCoverageSites *
    coverage_internal::kBucketsPerSite;

/// Shared state of one coverage-guided run.
struct Scheduler {
  CoverageMap map;
  /// Inputs (not probe hits) that produced each edge; the energy
  /// denominator.
  std::vector<std::uint64_t> edge_freq = std::vector<std::uint64_t>(
      kEdgeSpace, 0);
  /// The edges each corpus entry produced when admitted or loaded.
  std::vector<std::vector<CoverageEdge>> entry_edges;

  void Observe(const std::vector<CoverageEdge>& edges) {
    for (CoverageEdge edge : edges) ++edge_freq[edge];
  }

  /// Energy-weighted corpus pick: an entry's weight is the summed rarity
  /// (1 / input frequency) of its edges, so inputs reaching rare behavior
  /// get mutated more.
  std::size_t PickEntry(const std::vector<std::size_t>& pool,
                        WorkloadRng& rng) const {
    FEATSEP_CHECK(!pool.empty());
    std::vector<double> weights;
    double total = 0;
    for (std::size_t index : pool) {
      double weight = 1e-6;
      for (CoverageEdge edge : entry_edges[index]) {
        weight += 1.0 / static_cast<double>(
                            std::max<std::uint64_t>(edge_freq[edge], 1));
      }
      weights.push_back(weight);
      total += weight;
    }
    double target = rng.Uniform() * total;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      target -= weights[i];
      if (target <= 0) return pool[i];
    }
    return pool.back();
  }
};

/// Runs the property check with the coverage probes bracketed around it
/// (when wanted) and returns the violation plus the input's edge set.
std::pair<PropertyCheck, std::vector<CoverageEdge>> CheckWithCoverage(
    const FuzzInstance& instance, bool want_coverage) {
  if (!want_coverage) return {CheckFuzzInstance(instance), {}};
  ResetCoverage();
  SetCoverageEnabled(true);
  PropertyCheck violation = CheckFuzzInstance(instance);
  SetCoverageEnabled(false);
  return {std::move(violation), CoverageEdges(SnapshotCoverage())};
}

/// Shrinks a failing instance (coverage off — only the failure matters)
/// and restates the discrepancy on the result.
std::pair<FuzzInstance, std::string> ShrinkFailure(FuzzInstance instance) {
  FuzzInstance shrunk = ShrinkFuzzInstance(
      std::move(instance), [](const FuzzInstance& candidate) {
        return CheckFuzzInstance(candidate).has_value();
      });
  PropertyCheck again = CheckFuzzInstance(shrunk);
  std::string report;
  if (again.has_value()) report = again->detail;
  return {std::move(shrunk), std::move(report)};
}

void StreamFailure(const FuzzFailure& failure, std::ostream* progress) {
  if (progress == nullptr) return;
  *progress << "FAIL [" << failure.config << "/" << failure.property
            << "] iteration " << failure.iteration << "\n"
            << failure.detail << "\n";
  if (!failure.shrunk.empty()) {
    *progress << "shrunk counterexample:\n" << failure.shrunk << "\n";
  }
  *progress << "reproduce: " << failure.reproduce << "\n";
}

FuzzReport RunReplay(const FuzzOptions& options, std::ostream* progress) {
  FuzzReport report;
  for (const std::string& path : options.replay_paths) {
    if (!RecheckBudget(options.budget)) break;
    ++report.iterations;
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    FuzzFailure failure;
    failure.iteration = report.iterations - 1;
    failure.reproduce = ReproduceReplay(path);
    if (!in.good() && text.str().empty()) {
      failure.config = "replay";
      failure.property = "corpus/unreadable";
      failure.detail = "cannot read " + path;
      StreamFailure(failure, progress);
      report.failures.push_back(std::move(failure));
      continue;
    }
    Result<FuzzInstance> instance = DeserializeFuzzInstance(text.str());
    if (!instance.ok()) {
      failure.config = "replay";
      failure.property = "corpus/unparseable";
      failure.detail = path + ": " + instance.error().message();
      StreamFailure(failure, progress);
      report.failures.push_back(std::move(failure));
      continue;
    }
    auto [violation, edges] =
        CheckWithCoverage(instance.value(), options.coverage_stats);
    if (!violation.has_value()) continue;
    failure.config = FuzzConfigName(instance.value().config);
    failure.property = violation->property;
    failure.detail = violation->detail;
    if (options.shrink) {
      failure.shrunk = ShrinkFailure(std::move(instance.value())).second;
    }
    StreamFailure(failure, progress);
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace

const char* FuzzConfigName(FuzzConfig config) {
  switch (config) {
    case FuzzConfig::kHom: return "hom";
    case FuzzConfig::kEval: return "eval";
    case FuzzConfig::kContainment: return "containment";
    case FuzzConfig::kCore: return "core";
    case FuzzConfig::kGhw: return "ghw";
    case FuzzConfig::kSep: return "sep";
    case FuzzConfig::kQbe: return "qbe";
    case FuzzConfig::kCoverGame: return "covergame";
    case FuzzConfig::kDimension: return "dimension";
    case FuzzConfig::kLinsep: return "linsep";
    case FuzzConfig::kFaults: return "faults";
    case FuzzConfig::kServe: return "serve";
    case FuzzConfig::kIncremental: return "incremental";
    case FuzzConfig::kCrashIo: return "crashio";
    case FuzzConfig::kMixed: return "mixed";
  }
  return "unknown";
}

std::optional<FuzzConfig> ParseFuzzConfig(std::string_view name) {
  for (FuzzConfig config :
       {FuzzConfig::kHom, FuzzConfig::kEval, FuzzConfig::kContainment,
        FuzzConfig::kCore, FuzzConfig::kGhw, FuzzConfig::kSep,
        FuzzConfig::kQbe, FuzzConfig::kCoverGame, FuzzConfig::kDimension,
        FuzzConfig::kLinsep, FuzzConfig::kFaults, FuzzConfig::kServe,
        FuzzConfig::kIncremental, FuzzConfig::kCrashIo, FuzzConfig::kMixed}) {
    if (name == FuzzConfigName(config)) return config;
  }
  return std::nullopt;
}

FuzzReport RunFuzz(const FuzzOptions& options, std::ostream* progress) {
  if (!options.replay_paths.empty()) return RunReplay(options, progress);

  FuzzReport report;
  const bool guided = options.mutate || !options.corpus_dir.empty();
  const bool want_coverage = guided || options.coverage_stats;
  Scheduler scheduler;
  Corpus corpus(options.corpus_dir);
  /// Corpus indexes eligible for mutation under the requested config.
  std::vector<std::size_t> pool;
  /// Scheduler decisions (fresh-vs-mutate, entry picks, mutations) draw
  /// from their own stream so fresh-instance generation stays a pure
  /// function of (config, options.seed + i).
  WorkloadRng scheduler_rng(options.seed ^ 0xc0ffee5eedf00dULL);

  auto admissible = [&](const FuzzInstance& instance) {
    return options.config == FuzzConfig::kMixed ||
           instance.config == options.config;
  };

  if (guided) {
    std::vector<std::string> load_errors;
    corpus.Load(&load_errors);
    if (progress != nullptr) {
      for (const std::string& error : load_errors) {
        *progress << "corpus: skipping " << error << "\n";
      }
    }
    // Seed coverage by replaying the corpus; a regressed entry is a
    // failure, reproducible straight from its file.
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (!RecheckBudget(options.budget)) break;
      auto [violation, edges] =
          CheckWithCoverage(corpus.instance(i), /*want_coverage=*/true);
      scheduler.map.MergeNew(SnapshotCoverage());
      scheduler.Observe(edges);
      scheduler.entry_edges.push_back(std::move(edges));
      if (admissible(corpus.instance(i))) pool.push_back(i);
      if (violation.has_value()) {
        FuzzFailure failure;
        failure.config = FuzzConfigName(corpus.instance(i).config);
        failure.property = violation->property;
        failure.detail = violation->detail;
        failure.reproduce = corpus.path(i).empty()
                                ? "corpus entry " + std::to_string(i)
                                : ReproduceReplay(corpus.path(i));
        StreamFailure(failure, progress);
        report.failures.push_back(std::move(failure));
      }
    }
  }

  for (std::size_t i = 0; i < options.iterations; ++i) {
    if (!RecheckBudget(options.budget)) break;
    std::uint64_t instance_seed = options.seed + i;
    bool mutated = guided && !pool.empty() && !scheduler_rng.Chance(0.3);
    FuzzInstance instance =
        mutated
            ? MutateFuzzInstance(
                  corpus.instance(scheduler.PickEntry(pool, scheduler_rng)),
                  scheduler_rng)
            : GenerateFuzzInstance(options.config, instance_seed);

    auto [violation, edges] = CheckWithCoverage(instance, want_coverage);
    CoverageSnapshot snapshot = want_coverage ? SnapshotCoverage()
                                              : CoverageSnapshot{};
    ++report.iterations;
    scheduler.Observe(edges);

    if (violation.has_value()) {
      FuzzFailure failure;
      failure.iteration = i;
      failure.config = FuzzConfigName(instance.config);
      failure.property = violation->property;
      failure.detail = violation->detail;
      FuzzInstance reported = instance;
      if (options.shrink) {
        auto [shrunk, shrunk_report] = ShrinkFailure(std::move(instance));
        failure.shrunk = std::move(shrunk_report);
        if (!failure.shrunk.empty()) reported = std::move(shrunk);
      }
      if (mutated) {
        // Mutation chains are not replayable from a seed; persist the
        // (shrunk) crasher next to the corpus instead.
        if (!options.corpus_dir.empty()) {
          Result<std::string> path = WriteFuzzInstanceFile(
              options.corpus_dir + "/crashes", reported);
          failure.reproduce = path.ok()
                                  ? ReproduceReplay(path.value())
                                  : "crash write failed: " +
                                        path.error().message();
        } else {
          failure.reproduce =
              "serialized crasher:\n" + SerializeFuzzInstance(reported);
        }
      } else {
        failure.instance_seed = instance_seed;
        failure.reproduce = Reproduce(reported.config, instance_seed);
      }
      StreamFailure(failure, progress);
      report.failures.push_back(std::move(failure));
      continue;
    }

    if (!want_coverage) continue;
    std::vector<CoverageEdge> fresh = scheduler.map.MergeNew(snapshot);
    if (!guided || fresh.empty()) continue;
    // New coverage: minimize while the instance still passes AND still
    // reaches every newly discovered edge, then admit to the corpus.
    FuzzInstance minimized = ShrinkFuzzInstance(
        std::move(instance), [&](const FuzzInstance& candidate) {
          auto [candidate_violation, candidate_edges] =
              CheckWithCoverage(candidate, /*want_coverage=*/true);
          return !candidate_violation.has_value() &&
                 std::includes(candidate_edges.begin(),
                               candidate_edges.end(), fresh.begin(),
                               fresh.end());
        });
    auto [final_violation, final_edges] =
        CheckWithCoverage(minimized, /*want_coverage=*/true);
    if (final_violation.has_value() ||
        !std::includes(final_edges.begin(), final_edges.end(),
                       fresh.begin(), fresh.end())) {
      // Nondeterministic coverage (parallel sweeps) pulled the edges out
      // from under the minimizer; keep the original admission candidate
      // out rather than corrupt the corpus.
      continue;
    }
    Result<std::size_t> index = corpus.Add(minimized);
    if (!index.ok()) {
      if (progress != nullptr) {
        *progress << "corpus: " << index.error().message() << "\n";
      }
      continue;
    }
    scheduler.entry_edges.push_back(final_edges);
    scheduler.Observe(final_edges);
    if (admissible(minimized)) pool.push_back(index.value());
    ++report.corpus_added;
  }

  report.corpus_size = corpus.size();
  report.coverage_edges = scheduler.map.num_edges();
  if (options.coverage_stats) {
    for (CoverageEdge edge = 0; edge < kEdgeSpace; ++edge) {
      if (scheduler.edge_freq[edge] == 0) continue;
      report.coverage_lines.push_back(
          CoverageEdgeName(edge) + " " +
          std::to_string(scheduler.edge_freq[edge]));
    }
  }
  return report;
}

}  // namespace testing
}  // namespace featsep
