#include "testing/fuzz.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "io/writer.h"
#include "relational/database_ops.h"
#include "relational/training_database.h"
#include "testing/properties.h"
#include "testing/random_instance.h"
#include "testing/shrink.h"
#include "util/check.h"
#include "workload/generators.h"

namespace featsep {
namespace testing {

namespace {

/// Cap on |dom(to)|^|dom(from)| (resp. |dom(D)|^|vars(q)|): the reference
/// oracle is brute force, so instance sizes are chosen to keep its search
/// space bounded regardless of how unlucky a seed is.
constexpr double kOracleBudget = 2e5;

/// Largest value count in [2, hi] whose `exponent`-th power stays within
/// the oracle budget.
std::size_t BoundedValues(std::size_t exponent, std::size_t hi) {
  std::size_t v = hi;
  while (v > 2 &&
         std::pow(static_cast<double>(v), static_cast<double>(exponent)) >
             kOracleBudget) {
    --v;
  }
  return v;
}

/// Largest exponent in [2, hi] with base^exponent within the oracle budget.
std::size_t BoundedExponent(std::size_t base, std::size_t hi) {
  std::size_t e = hi;
  while (e > 2 &&
         std::pow(static_cast<double>(base), static_cast<double>(e)) >
             kOracleBudget) {
    --e;
  }
  return e;
}

std::shared_ptr<const Schema> PickSchema(WorkloadRng& rng,
                                         std::size_t max_arity,
                                         bool need_entity) {
  if (!need_entity && rng.Chance(0.25)) {
    RandomSchemaParams params;
    params.num_relations = rng.Range(1, 3);
    params.max_arity = max_arity;
    params.entity_schema = false;
    return RandomSchema(params, rng);
  }
  if (rng.Chance(0.5)) return GraphWorkloadSchema();
  RandomSchemaParams params;
  params.num_relations = rng.Range(1, 3);
  params.max_arity = max_arity;
  params.entity_schema = true;
  return RandomSchema(params, rng);
}

Database PickDatabase(std::shared_ptr<const Schema> schema, WorkloadRng& rng,
                      std::size_t max_values, std::size_t max_facts) {
  RandomDatabaseParams params;
  params.num_values = rng.Range(2, max_values);
  params.num_facts = rng.Range(max_facts / 2, max_facts);
  params.entity_fraction = 0.2 + 0.4 * rng.Uniform();
  return RandomDatabase(std::move(schema), params, rng);
}

std::string Reproduce(FuzzConfig config, std::uint64_t instance_seed) {
  std::ostringstream out;
  out << "featsep_fuzz --config " << FuzzConfigName(config) << " --seed "
      << instance_seed << " --iters 1";
  return out.str();
}

/// One fuzz iteration: generate per `config`, check, shrink on failure.
/// Returns nullopt when all properties hold.
std::optional<FuzzFailure> RunIteration(FuzzConfig config,
                                        std::uint64_t instance_seed,
                                        bool shrink) {
  if (config == FuzzConfig::kMixed) {
    constexpr FuzzConfig kAll[] = {FuzzConfig::kHom,  FuzzConfig::kEval,
                                   FuzzConfig::kContainment,
                                   FuzzConfig::kCore, FuzzConfig::kGhw,
                                   FuzzConfig::kSep,  FuzzConfig::kQbe};
    WorkloadRng selector(instance_seed);
    config = kAll[selector.Below(7)];
  }
  // The generation stream depends only on (instance_seed, resolved config),
  // so `--config <resolved> --seed S --iters 1` replays an instance found
  // under `--config mixed` exactly.
  WorkloadRng rng(instance_seed ^
                  (0x9e3779b97f4a7c15ULL *
                   (static_cast<std::uint64_t>(config) + 1)));

  PropertyCheck violation;
  std::string shrunk_report;

  switch (config) {
    case FuzzConfig::kHom: {
      auto schema = PickSchema(rng, 3, /*need_entity=*/false);
      Database to = PickDatabase(schema, rng, 5, 12);
      std::size_t from_values = BoundedExponent(
          std::max<std::size_t>(to.domain().size(), 2), 7);
      Database from = PickDatabase(schema, rng, from_values, 12);
      std::vector<std::pair<Value, Value>> seed;
      if (rng.Chance(0.3) && !from.domain().empty() && !to.domain().empty()) {
        // Mostly well-formed seed pairs, sometimes stale ids to exercise
        // the free-seed and out-of-domain paths.
        Value source = rng.Chance(0.8)
                           ? from.domain()[rng.Below(from.domain().size())]
                           : static_cast<Value>(from.num_values() +
                                                rng.Below(3));
        Value image = rng.Chance(0.8)
                          ? to.domain()[rng.Below(to.domain().size())]
                          : static_cast<Value>(to.num_values() + rng.Below(3));
        seed.emplace_back(source, image);
      }
      violation = CheckHomAgainstReference(from, to, seed);
      if (!violation.has_value() && rng.Chance(0.25)) {
        Database third = PickDatabase(schema, rng, 5, 10);
        violation = CheckHomComposition(from, to, third);
        if (violation.has_value()) shrink = false;  // Triple; report as-is.
      }
      if (violation.has_value() && shrink) {
        auto [sf, st] = ShrinkHomPair(
            std::move(from), std::move(to),
            [&](const Database& f, const Database& t) {
              return CheckHomAgainstReference(f, t, seed).has_value();
            });
        PropertyCheck again = CheckHomAgainstReference(sf, st, seed);
        if (again.has_value()) shrunk_report = again->detail;
      }
      break;
    }
    case FuzzConfig::kEval: {
      auto schema = PickSchema(rng, 2, /*need_entity=*/false);
      RandomCqParams cq_params;
      cq_params.num_atoms = rng.Range(1, 4);
      ConjunctiveQuery query = RandomUnaryCq(schema, cq_params, rng);
      std::size_t max_values = BoundedValues(query.num_variables(), 6);
      Database db = PickDatabase(schema, rng, max_values, 12);
      violation = CheckEvaluationAgainstReference(query, db);
      if (violation.has_value() && shrink) {
        auto [sq, sdb] = ShrinkCqInstance(
            std::move(query), std::move(db),
            [](const ConjunctiveQuery& q, const Database& d) {
              return CheckEvaluationAgainstReference(q, d).has_value();
            });
        PropertyCheck again = CheckEvaluationAgainstReference(sq, sdb);
        if (again.has_value()) shrunk_report = again->detail;
      }
      break;
    }
    case FuzzConfig::kContainment: {
      auto schema = PickSchema(rng, 2, /*need_entity=*/false);
      RandomCqParams cq_params;
      cq_params.num_atoms = rng.Range(1, 3);
      ConjunctiveQuery q1 = RandomUnaryCq(schema, cq_params, rng);
      cq_params.num_atoms = rng.Range(1, 3);
      ConjunctiveQuery q2 = RandomUnaryCq(schema, cq_params, rng);
      std::size_t max_values = BoundedValues(
          std::max(q1.num_variables(), q2.num_variables()), 5);
      Database db = PickDatabase(schema, rng, max_values, 10);
      violation = CheckContainmentAgainstReference(q1, q2, db);
      if (violation.has_value() && shrink) {
        // Alternate single-atom removals on either query, then shrink the
        // data, as long as the discrepancy persists.
        bool changed = true;
        while (changed) {
          changed = false;
          for (std::size_t i = 0; i < q1.atoms().size(); ++i) {
            ConjunctiveQuery candidate = WithoutAtom(q1, i);
            if (CheckContainmentAgainstReference(candidate, q2, db)
                    .has_value()) {
              q1 = std::move(candidate);
              changed = true;
              break;
            }
          }
          if (changed) continue;
          for (std::size_t i = 0; i < q2.atoms().size(); ++i) {
            ConjunctiveQuery candidate = WithoutAtom(q2, i);
            if (CheckContainmentAgainstReference(q1, candidate, db)
                    .has_value()) {
              q2 = std::move(candidate);
              changed = true;
              break;
            }
          }
          if (changed) continue;
          std::size_t before = db.size();
          db = ShrinkDatabase(std::move(db), [&](const Database& d) {
            return CheckContainmentAgainstReference(q1, q2, d).has_value();
          });
          changed = db.size() != before;
        }
        PropertyCheck again = CheckContainmentAgainstReference(q1, q2, db);
        if (again.has_value()) shrunk_report = again->detail;
      }
      break;
    }
    case FuzzConfig::kCore: {
      auto schema = PickSchema(rng, 3, /*need_entity=*/false);
      Database db = PickDatabase(schema, rng, 6, 10);
      std::vector<Value> frozen;
      if (!db.domain().empty()) {
        for (std::size_t i = rng.Below(3); i > 0; --i) {
          frozen.push_back(db.domain()[rng.Below(db.domain().size())]);
        }
      }
      violation = CheckCoreProperties(db, frozen);
      if (violation.has_value() && shrink) {
        Database shrunk =
            ShrinkDatabase(std::move(db), [&](const Database& d) {
              return CheckCoreProperties(d, frozen).has_value();
            });
        PropertyCheck again = CheckCoreProperties(shrunk, frozen);
        if (again.has_value()) shrunk_report = again->detail;
      }
      break;
    }
    case FuzzConfig::kGhw: {
      auto schema = PickSchema(rng, 3, /*need_entity=*/false);
      RandomCqParams cq_params;
      cq_params.num_atoms = rng.Range(2, 5);
      ConjunctiveQuery query = RandomUnaryCq(schema, cq_params, rng);
      violation = CheckGhwProperties(query);
      if (violation.has_value() && shrink) {
        bool changed = true;
        while (changed) {
          changed = false;
          for (std::size_t i = 0; i < query.atoms().size(); ++i) {
            ConjunctiveQuery candidate = WithoutAtom(query, i);
            if (CheckGhwProperties(candidate).has_value()) {
              query = std::move(candidate);
              changed = true;
              break;
            }
          }
        }
        PropertyCheck again = CheckGhwProperties(query);
        if (again.has_value()) shrunk_report = again->detail;
      }
      break;
    }
    case FuzzConfig::kSep: {
      auto schema = PickSchema(rng, 3, /*need_entity=*/true);
      RandomDatabaseParams params;
      params.num_values = rng.Range(3, 6);
      params.num_facts = rng.Range(5, 12);
      params.entity_fraction = 0.3 + 0.4 * rng.Uniform();
      std::shared_ptr<TrainingDatabase> training =
          RandomTrainingDatabase(schema, params, rng);
      violation = CheckSepThreadDeterminism(*training);
      if (violation.has_value() && shrink) {
        // Shrink the underlying database; surviving entities keep their
        // original labels (label ids are stable under the removal edits).
        const Labeling labels = training->labeling();
        auto rebuild = [&](const Database& d) {
          auto shrunk_db = std::make_shared<Database>(Copy(d));
          TrainingDatabase t(shrunk_db);
          for (Value e : shrunk_db->Entities()) {
            t.SetLabel(e, labels.Get(e));
          }
          return t;
        };
        Database shrunk = ShrinkDatabase(
            Copy(training->database()), [&](const Database& d) {
              return CheckSepThreadDeterminism(rebuild(d)).has_value();
            });
        PropertyCheck again = CheckSepThreadDeterminism(rebuild(shrunk));
        if (again.has_value()) shrunk_report = again->detail;
      }
      break;
    }
    case FuzzConfig::kQbe: {
      // Tiny entity databases: the canonical product has |D|^|S⁺| facts and
      // the CQ[m] check reference-evaluates the explanation, so |S⁺| ≤ 2,
      // arity ≤ 2, and m ≤ 2 keep every oracle fuzz-sized.
      auto schema = PickSchema(rng, 2, /*need_entity=*/true);
      Database db = PickDatabase(schema, rng, 5, 10);
      std::vector<Value> entities = db.Entities();
      if (entities.empty()) break;  // Vacuous: QBE needs a nonempty S⁺.
      for (std::size_t i = entities.size() - 1; i > 0; --i) {
        std::swap(entities[i], entities[rng.Below(i + 1)]);
      }
      std::size_t num_positives =
          (entities.size() > 1 && rng.Chance(0.4)) ? 2 : 1;
      std::vector<Value> positives(entities.begin(),
                                   entities.begin() + num_positives);
      std::size_t num_negatives =
          std::min(entities.size() - num_positives,
                   static_cast<std::size_t>(rng.Below(3)));
      std::vector<Value> negatives(
          entities.begin() + num_positives,
          entities.begin() + num_positives + num_negatives);
      std::size_t m = rng.Chance(0.7) ? 1 : 2;
      violation = CheckQbeProperties(db, positives, negatives, m);
      if (violation.has_value() && shrink) {
        // Value ids are stable under the removal edits; examples filter to
        // the surviving entities (S⁺ must stay nonempty).
        auto filter = [](const Database& d, const std::vector<Value>& vs) {
          std::vector<Value> kept;
          for (Value v : vs) {
            if (v < d.num_values() && d.IsEntity(v)) kept.push_back(v);
          }
          return kept;
        };
        Database shrunk =
            ShrinkDatabase(std::move(db), [&](const Database& d) {
              std::vector<Value> p = filter(d, positives);
              if (p.empty()) return false;
              return CheckQbeProperties(d, p, filter(d, negatives), m)
                  .has_value();
            });
        PropertyCheck again =
            CheckQbeProperties(shrunk, filter(shrunk, positives),
                               filter(shrunk, negatives), m);
        if (again.has_value()) shrunk_report = again->detail;
      }
      break;
    }
    case FuzzConfig::kMixed:
      FEATSEP_CHECK(false) << "mixed resolved above";
  }

  if (!violation.has_value()) return std::nullopt;
  FuzzFailure failure;
  failure.instance_seed = instance_seed;
  failure.config = FuzzConfigName(config);
  failure.property = violation->property;
  failure.detail = violation->detail;
  failure.shrunk = shrunk_report;
  failure.reproduce = Reproduce(config, instance_seed);
  return failure;
}

}  // namespace

const char* FuzzConfigName(FuzzConfig config) {
  switch (config) {
    case FuzzConfig::kHom: return "hom";
    case FuzzConfig::kEval: return "eval";
    case FuzzConfig::kContainment: return "containment";
    case FuzzConfig::kCore: return "core";
    case FuzzConfig::kGhw: return "ghw";
    case FuzzConfig::kSep: return "sep";
    case FuzzConfig::kQbe: return "qbe";
    case FuzzConfig::kMixed: return "mixed";
  }
  return "unknown";
}

std::optional<FuzzConfig> ParseFuzzConfig(std::string_view name) {
  for (FuzzConfig config :
       {FuzzConfig::kHom, FuzzConfig::kEval, FuzzConfig::kContainment,
        FuzzConfig::kCore, FuzzConfig::kGhw, FuzzConfig::kSep,
        FuzzConfig::kQbe, FuzzConfig::kMixed}) {
    if (name == FuzzConfigName(config)) return config;
  }
  return std::nullopt;
}

FuzzReport RunFuzz(const FuzzOptions& options, std::ostream* progress) {
  FuzzReport report;
  for (std::size_t i = 0; i < options.iterations; ++i) {
    std::uint64_t instance_seed = options.seed + i;
    std::optional<FuzzFailure> failure =
        RunIteration(options.config, instance_seed, options.shrink);
    ++report.iterations;
    if (!failure.has_value()) continue;
    failure->iteration = i;
    if (progress != nullptr) {
      *progress << "FAIL [" << failure->config << "/" << failure->property
                << "] iteration " << i << "\n"
                << failure->detail << "\n";
      if (!failure->shrunk.empty()) {
        *progress << "shrunk counterexample:\n" << failure->shrunk << "\n";
      }
      *progress << "reproduce: " << failure->reproduce << "\n";
    }
    report.failures.push_back(std::move(*failure));
  }
  return report;
}

}  // namespace testing
}  // namespace featsep
