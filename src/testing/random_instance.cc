#include "testing/random_instance.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"

namespace featsep {
namespace testing {

std::shared_ptr<const Schema> RandomSchema(const RandomSchemaParams& params,
                                           WorkloadRng& rng) {
  FEATSEP_CHECK_GE(params.max_arity, 1u);
  FEATSEP_CHECK(params.entity_schema || params.num_relations > 0)
      << "a schema needs at least one relation";
  Schema schema;
  if (params.entity_schema) {
    schema.set_entity_relation(schema.AddRelation("Eta", 1));
  }
  for (std::size_t i = 0; i < params.num_relations; ++i) {
    schema.AddRelation("R" + std::to_string(i),
                       rng.Range(1, params.max_arity));
  }
  return std::make_shared<const Schema>(std::move(schema));
}

Database RandomDatabase(std::shared_ptr<const Schema> schema,
                        const RandomDatabaseParams& params, WorkloadRng& rng) {
  FEATSEP_CHECK_GE(params.num_values, 1u);
  Database db(schema);
  std::vector<Value> values;
  for (std::size_t i = 0; i < params.num_values; ++i) {
    values.push_back(db.Intern("v" + std::to_string(i)));
  }

  // Relations facts are drawn from; η membership is decided separately so
  // `entity_fraction` controls it directly.
  std::vector<RelationId> fact_relations;
  for (RelationId r = 0; r < schema->size(); ++r) {
    if (schema->has_entity_relation() && r == schema->entity_relation()) {
      continue;
    }
    fact_relations.push_back(r);
  }

  if (schema->has_entity_relation()) {
    RelationId eta = schema->entity_relation();
    bool any_entity = false;
    for (Value v : values) {
      if (rng.Chance(params.entity_fraction)) {
        db.AddFact(eta, {v});
        any_entity = true;
      }
    }
    // Degenerate labelings/evaluations are uninteresting; guarantee at
    // least one entity.
    if (!any_entity) db.AddFact(eta, {values[rng.Below(values.size())]});
  }

  for (std::size_t i = 0; i < params.num_facts && !fact_relations.empty();
       ++i) {
    RelationId rel = fact_relations[rng.Below(fact_relations.size())];
    std::vector<Value> args;
    for (std::size_t pos = 0; pos < schema->arity(rel); ++pos) {
      args.push_back(values[rng.Below(values.size())]);
    }
    db.AddFact(rel, std::move(args));
  }
  return db;
}

ConjunctiveQuery RandomUnaryCq(std::shared_ptr<const Schema> schema,
                               const RandomCqParams& params,
                               WorkloadRng& rng) {
  ConjunctiveQuery q(schema);
  std::vector<Variable> pool;
  if (schema->has_entity_relation()) {
    q = ConjunctiveQuery::MakeFeatureQuery(schema);
  } else {
    Variable x = q.NewVariable("x");
    q.AddFreeVariable(x);
  }
  pool.push_back(q.free_variable());
  for (std::size_t i = 0; i < params.num_atoms; ++i) {
    RelationId rel = static_cast<RelationId>(rng.Below(schema->size()));
    std::vector<Variable> args;
    for (std::size_t pos = 0; pos < schema->arity(rel); ++pos) {
      if (rng.Chance(params.fresh_variable_chance)) {
        pool.push_back(q.NewVariable());
        args.push_back(pool.back());
      } else {
        args.push_back(pool[rng.Below(pool.size())]);
      }
    }
    q.AddAtom(rel, std::move(args));
  }
  // Without an η(x) atom the free variable may have ended up in no atom;
  // force one so the query constrains x and evaluation stays meaningful.
  if (!schema->has_entity_relation()) {
    Variable x = q.free_variable();
    bool x_used = false;
    for (const CqAtom& atom : q.atoms()) {
      if (std::find(atom.args.begin(), atom.args.end(), x) !=
          atom.args.end()) {
        x_used = true;
        break;
      }
    }
    if (!x_used) {
      RelationId rel = static_cast<RelationId>(rng.Below(schema->size()));
      std::vector<Variable> args(schema->arity(rel), x);
      q.AddAtom(rel, std::move(args));
    }
  }
  return q;
}

std::shared_ptr<TrainingDatabase> RandomTrainingDatabase(
    std::shared_ptr<const Schema> schema, const RandomDatabaseParams& params,
    WorkloadRng& rng) {
  FEATSEP_CHECK(schema->has_entity_relation());
  auto db = std::make_shared<Database>(
      RandomDatabase(schema, params, rng));
  auto training = std::make_shared<TrainingDatabase>(db);
  for (Value entity : db->Entities()) {
    training->SetLabel(entity, rng.Chance(0.5) ? kPositive : kNegative);
  }
  return training;
}

}  // namespace testing
}  // namespace featsep
