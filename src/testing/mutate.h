#ifndef FEATSEP_TESTING_MUTATE_H_
#define FEATSEP_TESTING_MUTATE_H_

#include "testing/instance.h"
#include "workload/generators.h"

namespace featsep {
namespace testing {

/// Structure-aware mutation for the coverage-guided fuzzer: applies one to
/// three random edits to a copy of `instance`, picked from the operators
/// applicable to its config —
///   - databases: add/remove a fact, redirect one argument, merge two
///     constants, introduce a fresh constant;
///   - queries: add/remove an atom, merge two variables, deepen an
///     existential chain R(x, fresh), always keeping the query safe;
///   - schema: widen — append a fresh relation of arity max+1 (≤ 4) and a
///     first fact of it, rebuilding every database/query over the widened
///     schema (relation ids are append-stable);
///   - examples: flip labels, move values between S⁺/S⁻, grow/shrink the
///     frozen set;
///   - scalars: bump k/m/ℓ;
///   - LP/features: perturb coefficients and bounds by ±1, add/drop
///     rows/examples/columns, flip feature signs.
///
/// The result is sanitized (SanitizeFuzzInstance), so mutation chains can
/// never escape the reference-oracle budget. Deterministic in (instance,
/// rng state).
FuzzInstance MutateFuzzInstance(const FuzzInstance& instance,
                                WorkloadRng& rng);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_MUTATE_H_
