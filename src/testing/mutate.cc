#include "testing/mutate.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "relational/schema.h"
#include "testing/coverage.h"
#include "testing/shrink.h"

namespace featsep {
namespace testing {

namespace {

/// Rebuilds `db` with every fact passed through `rewrite` (return false to
/// drop a fact). Re-interns every constant name first, so value ids carry
/// over and the instance's value references stay meaningful.
template <typename Rewrite>
Database RewriteFacts(const Database& db, Rewrite rewrite) {
  Database out(db.schema_ptr());
  for (Value v = 0; v < db.num_values(); ++v) out.Intern(db.value_name(v));
  for (std::size_t i = 0; i < db.size(); ++i) {
    Fact fact = db.fact(i);
    if (rewrite(i, &fact)) out.AddFact(fact.relation, std::move(fact.args));
  }
  return out;
}

/// Interns a constant name not yet present in `db`.
Value FreshValue(Database* db) {
  for (std::size_t i = db->num_values();; ++i) {
    std::string name = "m" + std::to_string(i);
    if (db->FindValue(name) == kNoValue) return db->Intern(name);
  }
}

/// A random existing value id, or a freshly interned one when the database
/// has no values (or with `fresh_chance`).
Value PickValue(Database* db, WorkloadRng& rng, double fresh_chance) {
  if (db->num_values() == 0 || rng.Chance(fresh_chance)) {
    return FreshValue(db);
  }
  return static_cast<Value>(rng.Below(db->num_values()));
}

void AddRandomFact(Database* db, WorkloadRng& rng) {
  if (db->schema().size() == 0) return;
  RelationId relation =
      static_cast<RelationId>(rng.Below(db->schema().size()));
  std::vector<Value> args;
  for (std::size_t i = 0; i < db->schema().arity(relation); ++i) {
    args.push_back(PickValue(db, rng, 0.2));
  }
  db->AddFact(relation, std::move(args));
}

void RemoveRandomFact(Database* db, WorkloadRng& rng) {
  if (db->size() == 0) return;
  std::size_t victim = rng.Below(db->size());
  *db = RewriteFacts(*db, [&](std::size_t i, Fact*) { return i != victim; });
}

void MergeRandomValues(Database* db, WorkloadRng& rng) {
  if (db->num_values() < 2) return;
  Value keep = static_cast<Value>(rng.Below(db->num_values()));
  Value gone = static_cast<Value>(rng.Below(db->num_values()));
  if (keep == gone) return;
  *db = RewriteFacts(*db, [&](std::size_t, Fact* fact) {
    for (Value& v : fact->args) {
      if (v == gone) v = keep;
    }
    return true;
  });
}

void RedirectRandomArg(Database* db, WorkloadRng& rng) {
  if (db->size() == 0 || db->num_values() == 0) return;
  std::size_t victim = rng.Below(db->size());
  std::size_t pos = rng.Below(db->fact(victim).args.size());
  Value target = static_cast<Value>(rng.Below(db->num_values()));
  *db = RewriteFacts(*db, [&](std::size_t i, Fact* fact) {
    if (i == victim) fact->args[pos] = target;
    return true;
  });
}

/// Rebuilds `query` over `schema` (same relation ids) with variables passed
/// through `subst`.
ConjunctiveQuery RewriteQuery(const ConjunctiveQuery& query,
                              std::shared_ptr<const Schema> schema,
                              const std::vector<Variable>& subst) {
  ConjunctiveQuery out(std::move(schema));
  for (Variable v = 0; v < query.num_variables(); ++v) {
    out.NewVariable(query.variable_name(v));
  }
  for (const CqAtom& atom : query.atoms()) {
    std::vector<Variable> args;
    for (Variable v : atom.args) args.push_back(subst[v]);
    out.AddAtom(atom.relation, std::move(args));
  }
  for (Variable v : query.free_variables()) out.AddFreeVariable(subst[v]);
  return out;
}

std::vector<Variable> IdentitySubst(const ConjunctiveQuery& query) {
  std::vector<Variable> subst(query.num_variables());
  for (Variable v = 0; v < query.num_variables(); ++v) subst[v] = v;
  return subst;
}

void AddRandomAtom(ConjunctiveQuery* query, WorkloadRng& rng) {
  const Schema& schema = query->schema();
  if (schema.size() == 0) return;
  RelationId relation = static_cast<RelationId>(rng.Below(schema.size()));
  std::vector<Variable> args;
  for (std::size_t i = 0; i < schema.arity(relation); ++i) {
    if (query->num_variables() > 0 && !rng.Chance(0.3)) {
      args.push_back(
          static_cast<Variable>(rng.Below(query->num_variables())));
    } else {
      args.push_back(query->NewVariable());
    }
  }
  query->AddAtom(relation, std::move(args));
}

void RemoveRandomAtom(ConjunctiveQuery* query, WorkloadRng& rng) {
  if (query->atoms().size() < 2) return;
  ConjunctiveQuery candidate =
      WithoutAtom(*query, rng.Below(query->atoms().size()));
  if (QueryIsSafe(candidate)) *query = std::move(candidate);
}

void MergeRandomVariables(ConjunctiveQuery* query, WorkloadRng& rng) {
  if (query->num_variables() < 2) return;
  Variable keep = static_cast<Variable>(rng.Below(query->num_variables()));
  Variable gone = static_cast<Variable>(rng.Below(query->num_variables()));
  const std::vector<Variable>& free = query->free_variables();
  // Never merge a free variable away; collapsing *onto* one is fine.
  if (std::find(free.begin(), free.end(), gone) != free.end()) {
    std::swap(keep, gone);
  }
  if (keep == gone ||
      std::find(free.begin(), free.end(), gone) != free.end()) {
    return;
  }
  std::vector<Variable> subst = IdentitySubst(*query);
  subst[gone] = keep;
  ConjunctiveQuery candidate =
      RewriteQuery(*query, query->schema_ptr(), subst);
  if (QueryIsSafe(candidate)) *query = std::move(candidate);
}

void DeepenChain(ConjunctiveQuery* query, WorkloadRng& rng) {
  const Schema& schema = query->schema();
  RelationId relation = kNoRelation;
  for (RelationId r = 0; r < schema.size(); ++r) {
    if (schema.arity(r) >= 2 &&
        (relation == kNoRelation || rng.Chance(0.5))) {
      relation = r;
    }
  }
  if (relation == kNoRelation || query->num_variables() == 0) return;
  std::vector<Variable> args;
  args.push_back(static_cast<Variable>(rng.Below(query->num_variables())));
  for (std::size_t i = 1; i < schema.arity(relation); ++i) {
    args.push_back(query->NewVariable());
  }
  query->AddAtom(relation, std::move(args));
}

/// Appends a fresh relation of arity max+1 (≤ 4) and rebuilds every
/// database and query of the instance over the widened schema — appended
/// relations keep all existing relation ids valid. The mutated target
/// database receives a first fact of the new relation.
void WidenSchema(FuzzInstance* instance, WorkloadRng& rng) {
  if (!instance->db_a.has_value()) return;
  const Schema& old_schema = instance->db_a->schema();
  std::size_t arity = std::min<std::size_t>(old_schema.max_arity() + 1, 4);
  if (arity == 0) arity = 1;
  Schema widened = old_schema;
  std::string name;
  for (std::size_t i = widened.size();; ++i) {
    name = "W" + std::to_string(i);
    if (widened.FindRelation(name) == kNoRelation) break;
  }
  RelationId fresh = widened.AddRelation(name, arity);
  std::shared_ptr<const Schema> schema = MakeSharedSchema(std::move(widened));

  auto rebuild_db = [&](std::optional<Database>* db) {
    if (!db->has_value()) return;
    Database out(schema);
    for (Value v = 0; v < (*db)->num_values(); ++v) {
      out.Intern((*db)->value_name(v));
    }
    for (const Fact& fact : (*db)->facts()) out.AddFact(fact.relation, fact.args);
    *db = std::move(out);
  };
  rebuild_db(&instance->db_a);
  rebuild_db(&instance->db_b);
  rebuild_db(&instance->db_c);
  if (instance->query.has_value()) {
    instance->query =
        RewriteQuery(*instance->query, schema, IdentitySubst(*instance->query));
  }
  if (instance->query2.has_value()) {
    instance->query2 = RewriteQuery(*instance->query2, schema,
                                    IdentitySubst(*instance->query2));
  }
  instance->schema = schema;

  std::vector<Value> args;
  for (std::size_t i = 0; i < arity; ++i) {
    args.push_back(PickValue(&*instance->db_a, rng, 0.2));
  }
  instance->db_a->AddFact(fresh, std::move(args));
}

}  // namespace

FuzzInstance MutateFuzzInstance(const FuzzInstance& original,
                                WorkloadRng& rng) {
  FuzzInstance instance = original;
  std::size_t edits = rng.Range(1, 3);
  for (std::size_t edit = 0; edit < edits; ++edit) {
    // Operators applicable to the instance's current shape. Rebuilt every
    // round: an edit can change which operators make sense.
    std::vector<std::function<void()>> ops;
    auto db_ops = [&](std::optional<Database>* db) {
      if (!db->has_value()) return;
      Database* target = &**db;
      ops.push_back([target, &rng] { AddRandomFact(target, rng); });
      ops.push_back([target, &rng] { RemoveRandomFact(target, rng); });
      ops.push_back([target, &rng] { MergeRandomValues(target, rng); });
      ops.push_back([target, &rng] { RedirectRandomArg(target, rng); });
    };
    db_ops(&instance.db_a);
    db_ops(&instance.db_b);
    db_ops(&instance.db_c);
    auto query_ops = [&](std::optional<ConjunctiveQuery>* query) {
      if (!query->has_value()) return;
      ConjunctiveQuery* target = &**query;
      ops.push_back([target, &rng] { AddRandomAtom(target, rng); });
      ops.push_back([target, &rng] { RemoveRandomAtom(target, rng); });
      ops.push_back([target, &rng] { MergeRandomVariables(target, rng); });
      ops.push_back([target, &rng] { DeepenChain(target, rng); });
    };
    query_ops(&instance.query);
    query_ops(&instance.query2);
    if (instance.db_a.has_value() && instance.config != FuzzConfig::kLinsep) {
      ops.push_back([&] { WidenSchema(&instance, rng); });
    }
    if (!instance.labels.empty()) {
      ops.push_back([&] {
        auto& [value, label] = instance.labels[rng.Below(
            instance.labels.size())];
        label = -label;
      });
    }
    if (instance.config == FuzzConfig::kQbe && instance.db_a.has_value()) {
      ops.push_back([&] {
        // Move an entity between S⁺, S⁻, and unlabeled.
        std::vector<Value> entities = instance.db_a->Entities();
        if (entities.empty()) return;
        Value e = entities[rng.Below(entities.size())];
        auto drop = [&](std::vector<Value>* set) {
          set->erase(std::remove(set->begin(), set->end(), e), set->end());
        };
        drop(&instance.positives);
        drop(&instance.negatives);
        switch (rng.Below(3)) {
          case 0: instance.positives.push_back(e); break;
          case 1: instance.negatives.push_back(e); break;
          default: break;
        }
      });
      ops.push_back([&] { instance.m = instance.m == 1 ? 2 : 1; });
    }
    if (instance.config == FuzzConfig::kCore &&
        instance.db_a.has_value()) {
      ops.push_back([&] {
        if (!instance.frozen.empty() && rng.Chance(0.5)) {
          instance.frozen.erase(instance.frozen.begin() +
                                rng.Below(instance.frozen.size()));
        } else if (!instance.db_a->domain().empty()) {
          const std::vector<Value>& domain = instance.db_a->domain();
          instance.frozen.push_back(domain[rng.Below(domain.size())]);
        }
      });
    }
    if (instance.config == FuzzConfig::kCoverGame) {
      ops.push_back([&] { instance.k = instance.k == 1 ? 2 : 1; });
    }
    if (instance.config == FuzzConfig::kFaults) {
      ops.push_back([&] {
        constexpr CoverageSite kFaultSites[] = {
            CoverageSite::kHomNode, CoverageSite::kHomBacktrack,
            CoverageSite::kSimplexPivot, CoverageSite::kGhwSubproblemSolved,
            CoverageSite::kCoverFixpointRound};
        instance.fault_site =
            static_cast<std::uint16_t>(kFaultSites[rng.Below(5)]);
      });
      ops.push_back([&] {
        instance.fault_kind =
            static_cast<std::uint8_t>((instance.fault_kind + 1) % 3);
      });
      ops.push_back([&] {
        instance.fault_visit =
            rng.Chance(0.5) ? instance.fault_visit + 1 + rng.Below(8)
                            : std::max<std::uint64_t>(
                                  instance.fault_visit / 2, 1);
      });
    }
    if (instance.config == FuzzConfig::kDimension) {
      ops.push_back([&] { instance.ell = instance.ell == 1 ? 2 : 1; });
    }
    if (instance.config == FuzzConfig::kServe ||
        instance.config == FuzzConfig::kIncremental ||
        instance.config == FuzzConfig::kCrashIo) {
      // Reseed the interleaving / mutation / fault trace, or grow/shrink
      // the op schedule.
      ops.push_back([&] { instance.k = rng.Next() >> 1; });
      ops.push_back([&] {
        instance.m = rng.Chance(0.5)
                         ? instance.m + 1 + rng.Below(8)
                         : std::max<std::size_t>(instance.m / 2, 1);
      });
    }
    if (instance.config == FuzzConfig::kLinsep) {
      ops.push_back([&] {
        if (instance.features.empty()) return;
        FeatureVector& row =
            instance.features[rng.Below(instance.features.size())];
        if (!row.empty()) {
          int& f = row[rng.Below(row.size())];
          f = -f;
        }
      });
      ops.push_back([&] {
        if (instance.feature_labels.empty()) return;
        Label& label =
            instance.feature_labels[rng.Below(instance.feature_labels.size())];
        label = -label;
      });
      ops.push_back([&] {
        // Add an example (clone-and-flip when one exists).
        FeatureVector row;
        std::size_t width =
            instance.features.empty() ? rng.Range(1, 3)
                                      : instance.features[0].size();
        for (std::size_t i = 0; i < width; ++i) {
          row.push_back(rng.Chance(0.5) ? 1 : -1);
        }
        instance.features.push_back(std::move(row));
        instance.feature_labels.push_back(rng.Chance(0.5) ? kPositive
                                                          : kNegative);
      });
      ops.push_back([&] {
        if (instance.features.empty()) return;
        std::size_t i = rng.Below(instance.features.size());
        instance.features.erase(instance.features.begin() + i);
        instance.feature_labels.erase(instance.feature_labels.begin() + i);
      });
      ops.push_back([&] {
        if (instance.lp.a.empty()) return;
        std::size_t i = rng.Below(instance.lp.a.size());
        if (!instance.lp.a[i].empty() && rng.Chance(0.7)) {
          std::size_t j = rng.Below(instance.lp.a[i].size());
          instance.lp.a[i][j] =
              instance.lp.a[i][j] + Rational(rng.Chance(0.5) ? 1 : -1);
        } else {
          instance.lp.b[i] =
              instance.lp.b[i] + Rational(rng.Chance(0.5) ? 1 : -1);
        }
      });
      ops.push_back([&] {
        if (instance.lp.c.empty()) return;
        std::size_t j = rng.Below(instance.lp.c.size());
        instance.lp.c[j] =
            instance.lp.c[j] + Rational(rng.Chance(0.5) ? 1 : -1);
      });
      ops.push_back([&] {
        // Add a constraint row.
        std::vector<Rational> row;
        for (std::size_t j = 0; j < instance.lp.c.size(); ++j) {
          row.emplace_back(static_cast<std::int64_t>(rng.Below(7)) - 3);
        }
        instance.lp.a.push_back(std::move(row));
        instance.lp.b.emplace_back(static_cast<std::int64_t>(rng.Below(7)) -
                                   2);
      });
      ops.push_back([&] {
        if (instance.lp.a.empty()) return;
        std::size_t i = rng.Below(instance.lp.a.size());
        instance.lp.a.erase(instance.lp.a.begin() + i);
        instance.lp.b.erase(instance.lp.b.begin() + i);
      });
    }
    if (ops.empty()) break;
    ops[rng.Below(ops.size())]();
  }
  SanitizeFuzzInstance(&instance);
  return instance;
}

}  // namespace testing
}  // namespace featsep
