#ifndef FEATSEP_TESTING_FUZZ_H_
#define FEATSEP_TESTING_FUZZ_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace featsep {

class ExecutionBudget;

namespace testing {

/// Differential fuzz loop: generate a random instance, run the matching
/// property driver (properties.h), and greedily shrink any instance the
/// driver rejects. Deterministic: iteration i uses instance seed
/// `options.seed + i`, so every failure prints a `--seed S --iters 1`
/// command that regenerates the identical instance.
///
/// Two search modes share the loop:
///   - blind: every iteration generates a fresh instance from its seed;
///   - coverage-guided (corpus_dir set or mutate on): the instrumented
///     kernels (coverage.h) are bracketed around each check, instances
///     whose edge signature adds to the accumulated CoverageMap are
///     minimized and admitted to the corpus, and most iterations mutate a
///     corpus entry (mutate.h) picked with energy proportional to how rare
///     its edges are, instead of generating from scratch.

enum class FuzzConfig {
  kHom,          ///< FindHomomorphism vs reference (+ composition closure).
  kEval,         ///< CqEvaluator / DecomposedEvaluator vs reference.
  kContainment,  ///< IsContainedIn vs canonical-database criterion.
  kCore,         ///< CoreOf laws + MinimizeCq oracle laws.
  kGhw,          ///< GHW witness/monotonicity laws.
  kSep,          ///< DecideCqSep determinism + Theorem 3.2 oracle.
  kQbe,          ///< QBE solver laws (thread determinism, screening,
                 ///< serve-vs-serial SolveCqmQbe agreement).
  kCoverGame,    ///< Existential k-cover game metamorphic laws.
  kDimension,    ///< Sep[ℓ] monotonicity + Theorem 3.2 agreement + witness.
  kLinsep,       ///< Simplex / separability LP vs Fourier–Motzkin reference.
  kFaults,       ///< Fault-injection robustness: cancellation/timeout/OOM at
                 ///< a chosen kernel event must never poison a cache or change
                 ///< the answer of a completed or resumed run.
  kServe,        ///< Async serve front-end: seeded random interleavings of
                 ///< Submit/poll/cancel/pause against the serial evaluation
                 ///< path as oracle — every completed answer bit-identical.
  kIncremental,  ///< Delta maintenance: seeded random insert/delete/relabel
                 ///< traces on a live (Database, EvalService,
                 ///< IncrementalMaintainer) stack, cross-checked at every
                 ///< step against a permanently-naive full-recompute oracle
                 ///< (fresh database + cold service) for matrices, digests,
                 ///< and separability verdicts.
  kCrashIo,      ///< Crash-recovery fuzzing of the durable tier: seeded
                 ///< filesystem fault schedules (EIO/ENOSPC, torn writes,
                 ///< partial scans, kill-at-a-random-I/O-point then recover)
                 ///< against the disk cache, the breaker-gated EvalService,
                 ///< and the shard protocol. Corrupt or torn entries are
                 ///< never trusted, completed answers stay bit-identical to
                 ///< the serial oracle, no shard job is lost, and serving
                 ///< keeps working (degraded) while the disk is sick.
  kMixed,        ///< Per-iteration uniform choice among the above (kFaults,
                 ///< kServe, kIncremental, and kCrashIo excluded — they
                 ///< re-run the engines several times per instance / spin up
                 ///< dispatcher threads / touch the real filesystem, and are
                 ///< smoke-tested separately).
};

const char* FuzzConfigName(FuzzConfig config);
std::optional<FuzzConfig> ParseFuzzConfig(std::string_view name);

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 100;
  FuzzConfig config = FuzzConfig::kMixed;
  /// Greedily minimize failing instances before reporting.
  bool shrink = true;
  /// Corpus directory: entries are loaded (and replayed) up front and new
  /// coverage-earning inputs are persisted back. Empty: in-memory corpus
  /// only (still coverage-guided when `mutate` is set).
  std::string corpus_dir;
  /// Mutate corpus entries instead of always generating fresh instances.
  /// Implied on when corpus_dir is set.
  bool mutate = false;
  /// Collect per-edge statistics into FuzzReport::coverage_lines.
  bool coverage_stats = false;
  /// Replay-only mode: check exactly these serialized instances (no
  /// generation, no mutation). Used by the corpus regression test.
  std::vector<std::string> replay_paths;
  /// Cooperative budget on the whole run (nullptr = unbounded): checked
  /// between iterations and between corpus-replay entries, so a caller can
  /// deadline or cancel a long campaign; the in-flight property check
  /// finishes first (individual checks are not budget-threaded — they time
  /// the engines' own budget handling).
  ExecutionBudget* budget = nullptr;
};

struct FuzzFailure {
  std::size_t iteration = 0;
  /// Reproduce with `featsep_fuzz --config <config> --seed <instance_seed>
  /// --iters 1` (also spelled out in `reproduce`). Zero for failures found
  /// by mutation or replay, which reproduce from a serialized file instead.
  std::uint64_t instance_seed = 0;
  std::string config;
  std::string property;
  /// Discrepancy on the instance as generated.
  std::string detail;
  /// Discrepancy restated on the shrunk instance (empty when !shrink).
  std::string shrunk;
  std::string reproduce;
};

struct FuzzReport {
  std::size_t iterations = 0;
  std::vector<FuzzFailure> failures;
  /// Coverage-guided runs: corpus size after the run, how many entries this
  /// run added, and the number of distinct (site, bucket) edges seen.
  std::size_t corpus_size = 0;
  std::size_t corpus_added = 0;
  std::size_t coverage_edges = 0;
  /// "edge-name count" lines when FuzzOptions::coverage_stats is set.
  std::vector<std::string> coverage_lines;
  bool ok() const { return failures.empty(); }
};

/// Runs the loop. When `progress` is non-null, failures are streamed to it
/// as they are found (the report carries them regardless).
FuzzReport RunFuzz(const FuzzOptions& options, std::ostream* progress = nullptr);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_FUZZ_H_
