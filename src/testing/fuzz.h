#ifndef FEATSEP_TESTING_FUZZ_H_
#define FEATSEP_TESTING_FUZZ_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace featsep {
namespace testing {

/// Differential fuzz loop: generate a random instance, run the matching
/// property driver (properties.h), and greedily shrink any instance the
/// driver rejects. Deterministic: iteration i uses instance seed
/// `options.seed + i`, so every failure prints a `--seed S --iters 1`
/// command that regenerates the identical instance.

enum class FuzzConfig {
  kHom,          ///< FindHomomorphism vs reference (+ composition closure).
  kEval,         ///< CqEvaluator / DecomposedEvaluator vs reference.
  kContainment,  ///< IsContainedIn vs canonical-database criterion.
  kCore,         ///< CoreOf laws.
  kGhw,          ///< GHW witness/monotonicity laws.
  kSep,          ///< DecideCqSep determinism + Theorem 3.2 oracle.
  kQbe,          ///< QBE solver laws (thread determinism, screening,
                 ///< serve-vs-serial SolveCqmQbe agreement).
  kMixed,        ///< Per-iteration uniform choice among the above.
};

const char* FuzzConfigName(FuzzConfig config);
std::optional<FuzzConfig> ParseFuzzConfig(std::string_view name);

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 100;
  FuzzConfig config = FuzzConfig::kMixed;
  /// Greedily minimize failing instances before reporting.
  bool shrink = true;
};

struct FuzzFailure {
  std::size_t iteration = 0;
  /// Reproduce with `featsep_fuzz --config <config> --seed <instance_seed>
  /// --iters 1` (also spelled out in `reproduce`).
  std::uint64_t instance_seed = 0;
  std::string config;
  std::string property;
  /// Discrepancy on the instance as generated.
  std::string detail;
  /// Discrepancy restated on the shrunk instance (empty when !shrink).
  std::string shrunk;
  std::string reproduce;
};

struct FuzzReport {
  std::size_t iterations = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Runs the loop. When `progress` is non-null, failures are streamed to it
/// as they are found (the report carries them regardless).
FuzzReport RunFuzz(const FuzzOptions& options, std::ostream* progress = nullptr);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_FUZZ_H_
