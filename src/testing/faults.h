#ifndef FEATSEP_TESTING_FAULTS_H_
#define FEATSEP_TESTING_FAULTS_H_

#include <atomic>
#include <cstdint>

#include "testing/coverage.h"
#include "util/budget.h"

namespace featsep {
namespace testing {

/// Deterministic fault injection for the robustness fuzzer and tests.
///
/// The harness piggybacks on the coverage-site registry (coverage.h): the
/// budget-relevant kernel events additionally carry a FEATSEP_FAULT_POINT
/// probe, and an armed fault fires at the N-th visit of a chosen site —
/// "cancel the request at the 37th hom node", "run out of memory at the 3rd
/// simplex pivot". Visits are counted with one global atomic, so exactly one
/// thread observes the trigger visit even when the instrumented kernel runs
/// inside a parallel sweep, and the (site, visit) pair makes the injection
/// reproducible whenever the underlying work is deterministic.
///
/// Cost model mirrors FEATSEP_COVERAGE: a disarmed probe is one relaxed
/// atomic load and a predictable branch, and -DFEATSEP_NO_COVERAGE removes
/// the probes entirely. At most one fault is armed at a time (the fuzz
/// driver's model); arming and disarming must not race with instrumented
/// kernels still running.
enum class FaultKind : std::uint8_t {
  kCancel = 0,  ///< Calls Cancel() on the armed budget.
  kTimeout,     ///< Forces kTimedOut on the armed budget (deadline expiry).
  kBadAlloc,    ///< Throws std::bad_alloc out of the kernel event.
};

const char* FaultKindName(FaultKind kind);

/// Where and when to fire: the `trigger_visit`-th (1-based) execution of a
/// FEATSEP_FAULT_POINT(site) probe.
struct FaultSpec {
  CoverageSite site = CoverageSite::kHomNode;
  FaultKind kind = FaultKind::kCancel;
  std::uint64_t trigger_visit = 1;
};

/// Arms `spec`, resetting the visit and fire counters. `budget` is the
/// budget the kCancel/kTimeout kinds act on (may be nullptr, in which case
/// those kinds fire as no-ops but still count).
void ArmFault(const FaultSpec& spec, ExecutionBudget* budget);

/// Disarms; the fire/visit counters survive for inspection until re-armed.
void DisarmFaults();

bool FaultArmed();

/// Times the armed fault actually fired (0 or 1 in practice).
std::uint64_t FaultFireCount();

/// Probe visits of the armed site since ArmFault().
std::uint64_t FaultSiteVisits();

/// RAII arm/disarm, exception-safe against the kBadAlloc kind unwinding
/// through the caller.
class ScopedFault {
 public:
  ScopedFault(const FaultSpec& spec, ExecutionBudget* budget) {
    ArmFault(spec, budget);
  }
  ~ScopedFault() { DisarmFaults(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

namespace faults_internal {

inline std::atomic<bool> g_fault_armed{false};

/// Slow path behind FEATSEP_FAULT_POINT; only called while armed.
void OnFaultPoint(CoverageSite site);

}  // namespace faults_internal
}  // namespace testing
}  // namespace featsep

/// Fault probe: a no-op unless a fault is armed. Placed beside the
/// FEATSEP_COVERAGE probe of the same site at the budget-relevant kernel
/// events (hom nodes/backtracks, GHW subproblems, cover-game fixpoint
/// rounds, simplex pivots).
#ifdef FEATSEP_NO_COVERAGE
#define FEATSEP_FAULT_POINT(site) \
  do {                            \
  } while (0)
#else
#define FEATSEP_FAULT_POINT(site)                                     \
  do {                                                                \
    if (::featsep::testing::faults_internal::g_fault_armed.load(      \
            std::memory_order_relaxed)) {                             \
      ::featsep::testing::faults_internal::OnFaultPoint(              \
          ::featsep::testing::CoverageSite::site);                    \
    }                                                                 \
  } while (0)
#endif  // FEATSEP_NO_COVERAGE

#endif  // FEATSEP_TESTING_FAULTS_H_
