#ifndef FEATSEP_TESTING_COVERAGE_H_
#define FEATSEP_TESTING_COVERAGE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace featsep {
namespace testing {

/// Structural-coverage map for the coverage-guided fuzzer (fuzz.h).
///
/// The hot decision procedures — the bitset homomorphism kernel (src/cq),
/// the detkdecomp-style GHW search (src/hypertree), the cover-game fixpoint
/// (src/covergame), and the exact simplex (src/linsep) — carry
/// FEATSEP_COVERAGE(site) probes at their branch points. Each probe bumps a
/// per-site counter; an input's *signature* is the set of (site, bucket)
/// edges where bucket is the AFL-style log₂ class of the hit count, so "the
/// search backtracked 1000 times" and "the search backtracked once" are
/// different edges even though they pass the same branches. The fuzz
/// scheduler admits an input to the corpus when its signature contains an
/// edge no earlier input produced.
///
/// Cost model: coverage is process-global and OFF by default. A disabled
/// probe is one relaxed atomic bool load and a predictable branch — within
/// measurement noise on the hom/serve benches (EXPERIMENTS.md E16). Probes
/// are placed at search *events* (node expansions, wipeouts, fixpoint
/// rounds, pivots), never inside word-level bit loops. Counters are relaxed
/// atomics because several property drivers run the instrumented kernels
/// from parallel sweeps; totals stay deterministic when the underlying work
/// is, but early-exit parallel searches may hit probes a thread-schedule-
/// dependent number of times (the same caveat any coverage-guided fuzzer
/// has — admission then errs toward keeping the input).
enum class CoverageSite : std::uint16_t {
  // Homomorphism kernel (src/cq/homomorphism.cc).
  kHomNode = 0,        ///< Search-tree node expanded (one Assign attempt).
  kHomBacktrack,       ///< A frame exhausted its candidates and popped.
  kHomFastCheck,       ///< CheckFact took the single-assigned fast path.
  kHomGeneralCheck,    ///< CheckFact scanned a candidate list.
  kHomClosedCheck,     ///< CheckFact resolved an all-assigned fact by lookup.
  kHomDeadFact,        ///< CheckFact found no compatible target fact.
  kHomPrune,           ///< PruneDomain strictly shrank a domain.
  kHomWipeout,         ///< PruneDomain emptied a domain.
  kHomUnaryWipeout,    ///< A variable died during unary-constraint setup.
  kHomPreferHit,       ///< A prefer hint was consumed at a frame.
  kHomSeedReject,      ///< A seed pair was unsatisfiable up front.
  kHomFound,           ///< Search ended kFound.
  kHomNone,            ///< Search ended kNone.
  kHomExhausted,       ///< Search ended kExhausted (budget).
  // GHW decision search (src/hypertree/ghw.cc).
  kGhwBagConnectorReject,  ///< Candidate bag missed the connector.
  kGhwBagProgressReject,   ///< Candidate bag made no progress.
  kGhwChildUnsolved,       ///< A child subproblem came back unsolvable.
  kGhwSubproblemSolved,    ///< A subproblem was solved and memoized.
  kGhwSubproblemFailed,    ///< A subproblem exhausted every bag.
  kGhwMemoHit,             ///< Memo lookup short-circuited a subproblem.
  // Cover-game solver (src/covergame/cover_game.cc).
  kCoverPosition,        ///< A game position was enumerated.
  kCoverMap,             ///< A candidate strategy map was recorded.
  kCoverBaseReject,      ///< Pebble map non-functional or pure-ā fact broken.
  kCoverPositionDead,    ///< A position lost all live strategies.
  kCoverFixpointRound,   ///< One greatest-fixpoint sweep over all positions.
  kCoverStrategyDeleted, ///< The fixpoint deleted ≥1 strategy of a position.
  kCoverWin,             ///< Decide returned true.
  kCoverLose,            ///< Decide returned false (post-filter).
  // Exact simplex (src/linsep/simplex.cc).
  kSimplexPivot,        ///< One pivot (phase 1 or 2).
  kSimplexPhase1,       ///< The LP needed artificials (phase 1 ran).
  kSimplexInfeasible,   ///< Phase 1 ended with a positive artificial sum.
  kSimplexUnbounded,    ///< Phase 2 found an unbounded ray.
  kSimplexOptimal,      ///< A finite optimum was reached.
  kSimplexDegenerate,   ///< A redundant row kept an artificial basic.
  kNumSites,  // Sentinel; keep last.
};

/// Short stable name of a site ("hom/node", "simplex/pivot", ...).
const char* CoverageSiteName(CoverageSite site);

namespace coverage_internal {

inline constexpr std::size_t kNumCoverageSites =
    static_cast<std::size_t>(CoverageSite::kNumSites);

/// Hit-count buckets per site: 1, 2, 3, 4-7, 8-15, 16-31, 32-63, 64-127,
/// 128-255, 256-511, 512-1023, 1024-4095, 4096-16383, 16384-65535, 64K-1M,
/// > 1M. Sixteen buckets keep the edge space small (sites × 16) while still
/// separating shallow from deep searches.
inline constexpr std::size_t kBucketsPerSite = 16;

inline std::atomic<bool> g_coverage_enabled{false};
inline std::array<std::atomic<std::uint64_t>, kNumCoverageSites>
    g_coverage_counters{};

}  // namespace coverage_internal

/// The per-input hit counters, frozen at snapshot time.
struct CoverageSnapshot {
  std::array<std::uint64_t, coverage_internal::kNumCoverageSites> counts{};

  /// Total probes hit.
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts) sum += c;
    return sum;
  }
};

/// Turns the probes on or off (process-global). Off by default; the fuzz
/// scheduler brackets each property check with enable/reset/snapshot.
void SetCoverageEnabled(bool enabled);
bool CoverageEnabled();

/// Zeroes the per-input counters.
void ResetCoverage();

/// Reads the current counters.
CoverageSnapshot SnapshotCoverage();

/// An edge id: site * kBucketsPerSite + bucket(count). Only sites with a
/// nonzero count produce edges.
using CoverageEdge = std::uint32_t;

/// The log₂-bucket of a nonzero hit count (0..kBucketsPerSite-1).
std::size_t CoverageBucket(std::uint64_t count);

/// The edges of a snapshot, ascending.
std::vector<CoverageEdge> CoverageEdges(const CoverageSnapshot& snapshot);

/// Renders an edge as "site/name:bucket-lo..hi" for --coverage-stats.
std::string CoverageEdgeName(CoverageEdge edge);

/// Accumulated edge set across all inputs of a fuzzing run.
class CoverageMap {
 public:
  CoverageMap();

  /// Merges a snapshot's edges; returns the edges not seen before (empty
  /// when the input found nothing new).
  std::vector<CoverageEdge> MergeNew(const CoverageSnapshot& snapshot);

  /// True iff every edge is already present.
  bool Covers(const std::vector<CoverageEdge>& edges) const;

  /// Distinct edges seen so far.
  std::size_t num_edges() const { return num_edges_; }

 private:
  std::vector<bool> seen_;
  std::size_t num_edges_ = 0;
};

}  // namespace testing
}  // namespace featsep

/// Coverage probe: a no-op unless SetCoverageEnabled(true) is in effect.
/// `site` is an unqualified CoverageSite enumerator name. Compiling with
/// -DFEATSEP_NO_COVERAGE removes the probes entirely (the runtime-disabled
/// cost is one relaxed load + predictable branch, within bench noise — see
/// EXPERIMENTS.md E16 — but embedders can opt out of even that).
#ifdef FEATSEP_NO_COVERAGE
#define FEATSEP_COVERAGE(site) \
  do {                         \
  } while (0)
#else
#define FEATSEP_COVERAGE(site)                                              \
  do {                                                                      \
    if (::featsep::testing::coverage_internal::g_coverage_enabled.load(     \
            std::memory_order_relaxed)) {                                   \
      ::featsep::testing::coverage_internal::g_coverage_counters            \
          [static_cast<std::size_t>(                                        \
               ::featsep::testing::CoverageSite::site)]                     \
              .fetch_add(1, std::memory_order_relaxed);                     \
    }                                                                       \
  } while (0)
#endif  // FEATSEP_NO_COVERAGE

#endif  // FEATSEP_TESTING_COVERAGE_H_
