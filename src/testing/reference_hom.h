#ifndef FEATSEP_TESTING_REFERENCE_HOM_H_
#define FEATSEP_TESTING_REFERENCE_HOM_H_

#include <optional>
#include <utility>
#include <vector>

#include "cq/cq.h"
#include "relational/database.h"

namespace featsep {
namespace testing {

/// Deliberately naive reference implementations of the homomorphism-based
/// semantics of Section 2: plain backtracking over `Value`s in domain order,
/// no bitsets, no indexes, no pruning, no variable ordering. These exist as
/// permanent independent oracles for the differential fuzz harness — the
/// optimized kernel in `src/cq/homomorphism.cc` is cross-checked against
/// them on random instances. DO NOT optimize or share code with the kernel;
/// slowness and independence are the point. Keep oracle instances small
/// (worst case O(|dom(to)|^|dom(from)| · |from| · |to|)).

/// Searches for a homomorphism h : dom(from) → dom(to) with R(h(ā)) ∈ to
/// for every R(ā) ∈ from, extending the partial map `seed`. Returns the
/// mapping indexed by value id of `from` (kNoValue outside dom(from)), or
/// nullopt if none exists. Seed sources outside dom(from) are unconstrained
/// and copied into the mapping, matching FindHomomorphism's contract.
std::optional<std::vector<Value>> RefFindHomomorphism(
    const Database& from, const Database& to,
    const std::vector<std::pair<Value, Value>>& seed = {});

/// True iff a homomorphism extending `seed` exists.
bool RefHomomorphismExists(const Database& from, const Database& to,
                           const std::vector<std::pair<Value, Value>>& seed =
                               {});

/// Validity checker: true iff `mapping` (indexed by value id of `from`) is
/// defined on all of dom(from) and maps every fact of `from` into `to`.
/// Used to vet witnesses returned by the optimized kernel.
bool RefIsHomomorphism(const Database& from, const Database& to,
                       const std::vector<Value>& mapping);

/// Reference pointed hom-equivalence: (from, ā) → (to, b̄) and back.
bool RefHomEquivalent(const Database& from,
                      const std::vector<Value>& from_tuple,
                      const Database& to, const std::vector<Value>& to_tuple);

/// Reference unary-CQ evaluation q(D) via canonical-database homomorphisms.
/// Candidates are db.Entities() when the query has an η(x) atom on its free
/// variable, else all of dom(D) — the same convention as CqEvaluator.
std::vector<Value> RefEvaluateUnaryCq(const ConjunctiveQuery& query,
                                      const Database& db);

/// Reference containment q1 ⊆ q2 by the Chandra–Merlin criterion: a
/// homomorphism from the canonical database of q2 to that of q1 mapping
/// free tuple onto free tuple.
bool RefIsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_REFERENCE_HOM_H_
