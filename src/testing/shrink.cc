#include "testing/shrink.h"

#include <unordered_set>
#include <vector>

#include "relational/database_ops.h"
#include "util/check.h"

namespace featsep {
namespace testing {

Database WithoutFact(const Database& db, FactIndex index) {
  FEATSEP_CHECK_LT(index, db.facts().size());
  Database result(db.schema_ptr());
  for (Value v = 0; v < db.num_values(); ++v) {
    result.Intern(db.value_name(v));
  }
  for (FactIndex fi = 0; fi < db.facts().size(); ++fi) {
    if (fi == index) continue;
    const Fact& fact = db.fact(fi);
    result.AddFact(fact.relation, fact.args);
  }
  return result;
}

Database WithoutValue(const Database& db, Value value) {
  std::unordered_set<Value> keep;
  for (Value v : db.domain()) {
    if (v != value) keep.insert(v);
  }
  return InducedSubdatabase(db, keep);
}

ConjunctiveQuery WithoutAtom(const ConjunctiveQuery& query,
                             std::size_t atom_index) {
  FEATSEP_CHECK_LT(atom_index, query.atoms().size());
  ConjunctiveQuery result(query.schema_ptr());
  for (Variable v = 0; v < query.num_variables(); ++v) {
    result.NewVariable(query.variable_name(v));
  }
  for (Variable v : query.free_variables()) {
    result.AddFreeVariable(v);
  }
  for (std::size_t i = 0; i < query.atoms().size(); ++i) {
    if (i == atom_index) continue;
    result.AddAtom(query.atoms()[i].relation, query.atoms()[i].args);
  }
  return result;
}

Database ShrinkDatabase(
    Database db,
    const std::function<bool(const Database&)>& still_failing) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (Value v : db.domain()) {
      Database candidate = WithoutValue(db, v);
      if (still_failing(candidate)) {
        db = std::move(candidate);
        changed = true;
        break;  // Domain changed; restart the scan.
      }
    }
    if (changed) continue;
    for (FactIndex fi = 0; fi < db.facts().size(); ++fi) {
      Database candidate = WithoutFact(db, fi);
      if (still_failing(candidate)) {
        db = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return db;
}

std::pair<Database, Database> ShrinkHomPair(
    Database from, Database to,
    const std::function<bool(const Database&, const Database&)>&
        still_failing) {
  bool changed = true;
  while (changed) {
    std::size_t from_size = from.size();
    std::size_t to_size = to.size();
    from = ShrinkDatabase(std::move(from), [&](const Database& candidate) {
      return still_failing(candidate, to);
    });
    to = ShrinkDatabase(std::move(to), [&](const Database& candidate) {
      return still_failing(from, candidate);
    });
    changed = from.size() != from_size || to.size() != to_size;
  }
  return {std::move(from), std::move(to)};
}

std::pair<ConjunctiveQuery, Database> ShrinkCqInstance(
    ConjunctiveQuery query, Database db,
    const std::function<bool(const ConjunctiveQuery&, const Database&)>&
        still_failing) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < query.atoms().size(); ++i) {
      ConjunctiveQuery candidate = WithoutAtom(query, i);
      if (still_failing(candidate, db)) {
        query = std::move(candidate);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    std::size_t db_size = db.size();
    db = ShrinkDatabase(std::move(db), [&](const Database& candidate) {
      return still_failing(query, candidate);
    });
    changed = db.size() != db_size;
  }
  return {std::move(query), std::move(db)};
}

}  // namespace testing
}  // namespace featsep
