#include "testing/reference_lp.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.h"

namespace featsep {
namespace testing {

namespace {

/// One inequality Σⱼ coefs[j]·xⱼ ≤ bound.
struct Inequality {
  std::vector<Rational> coefs;
  Rational bound;
};

bool SameInequality(const Inequality& a, const Inequality& b) {
  return a.bound == b.bound && a.coefs == b.coefs;
}

/// Scales so the first nonzero coefficient is ±1 (canonical form for
/// deduplication; scaling by a positive factor preserves the inequality).
void Normalize(Inequality* ineq) {
  for (const Rational& c : ineq->coefs) {
    if (c.sign() != 0) {
      Rational scale = c.sign() > 0 ? c : -c;
      for (Rational& d : ineq->coefs) d /= scale;
      ineq->bound /= scale;
      return;
    }
  }
}

/// Eliminates variable `var` from the system. Returns false if a constant
/// contradiction (0 ≤ negative) surfaces, which proves infeasibility of the
/// projected — hence the original — system.
bool Eliminate(std::vector<Inequality>* system, std::size_t var) {
  std::vector<Inequality> zero, pos, neg;
  for (Inequality& ineq : *system) {
    int sign = ineq.coefs[var].sign();
    if (sign == 0) {
      zero.push_back(std::move(ineq));
    } else if (sign > 0) {
      pos.push_back(std::move(ineq));
    } else {
      neg.push_back(std::move(ineq));
    }
  }

  std::vector<Inequality> next = std::move(zero);
  for (const Inequality& p : pos) {
    for (const Inequality& n : neg) {
      // p/p_var gives xⱼ ≤ …, n/(-n_var) gives xⱼ ≥ …; their sum drops xⱼ.
      Rational ps = p.coefs[var];
      Rational ns = -n.coefs[var];
      Inequality combined;
      combined.coefs.resize(p.coefs.size());
      for (std::size_t j = 0; j < p.coefs.size(); ++j) {
        combined.coefs[j] = p.coefs[j] / ps + n.coefs[j] / ns;
      }
      combined.coefs[var] = Rational(0);
      combined.bound = p.bound / ps + n.bound / ns;
      Normalize(&combined);
      bool constant = true;
      for (const Rational& c : combined.coefs) {
        if (c.sign() != 0) {
          constant = false;
          break;
        }
      }
      if (constant) {
        if (combined.bound.sign() < 0) return false;
        continue;  // 0 ≤ nonneg: vacuous.
      }
      bool duplicate = false;
      for (const Inequality& seen : next) {
        if (SameInequality(seen, combined)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) next.push_back(std::move(combined));
    }
  }
  *system = std::move(next);
  return true;
}

/// Feasibility of the system by eliminating every variable.
bool Feasible(std::vector<Inequality> system, std::size_t num_vars) {
  for (Inequality& ineq : system) Normalize(&ineq);
  for (std::size_t var = 0; var < num_vars; ++var) {
    if (!Eliminate(&system, var)) return false;
  }
  for (const Inequality& ineq : system) {
    if (ineq.bound.sign() < 0) return false;
  }
  return true;
}

}  // namespace

RefLpOutcome RefSolveLpValue(const LpProblem& problem) {
  std::size_t m = problem.a.size();
  std::size_t n = problem.c.size();
  FEATSEP_CHECK_EQ(problem.b.size(), m);

  // Variables x₀..x_{n-1} and z at index n; constraints Ax ≤ b, −x ≤ 0,
  // z − c·x ≤ 0. The projection of the system onto z is exactly
  // {z : ∃ feasible x with z ≤ c·x} = (−∞, sup c·x], so after eliminating
  // x the surviving upper bounds on z carry the optimum. z's coefficient
  // starts at +1 in its single row and pairwise combinations use positive
  // multipliers, so no lower bound on z can ever appear.
  std::vector<Inequality> system;
  for (std::size_t i = 0; i < m; ++i) {
    Inequality ineq;
    ineq.coefs.assign(problem.a[i].begin(), problem.a[i].end());
    ineq.coefs.push_back(Rational(0));
    ineq.bound = problem.b[i];
    system.push_back(std::move(ineq));
  }
  for (std::size_t j = 0; j < n; ++j) {
    Inequality ineq;
    ineq.coefs.assign(n + 1, Rational(0));
    ineq.coefs[j] = Rational(-1);
    ineq.bound = Rational(0);
    system.push_back(std::move(ineq));
  }
  {
    Inequality ineq;
    ineq.coefs.assign(n + 1, Rational(0));
    for (std::size_t j = 0; j < n; ++j) ineq.coefs[j] = -problem.c[j];
    ineq.coefs[n] = Rational(1);
    ineq.bound = Rational(0);
    system.push_back(std::move(ineq));
  }

  for (Inequality& ineq : system) Normalize(&ineq);
  RefLpOutcome outcome;
  for (std::size_t var = 0; var < n; ++var) {
    if (!Eliminate(&system, var)) {
      outcome.status = LpStatus::kInfeasible;
      return outcome;
    }
  }

  bool has_upper = false;
  Rational best;
  for (const Inequality& ineq : system) {
    int sign = ineq.coefs[n].sign();
    if (sign == 0) {
      if (ineq.bound.sign() < 0) {
        outcome.status = LpStatus::kInfeasible;
        return outcome;
      }
      continue;
    }
    FEATSEP_CHECK_GT(sign, 0) << "lower bound on the objective variable";
    Rational upper = ineq.bound / ineq.coefs[n];
    if (!has_upper || upper < best) {
      has_upper = true;
      best = upper;
    }
  }
  if (!has_upper) {
    outcome.status = LpStatus::kUnbounded;
    return outcome;
  }
  outcome.status = LpStatus::kOptimal;
  outcome.objective = best;
  return outcome;
}

bool RefIsLinearlySeparable(const TrainingCollection& examples) {
  if (examples.empty()) return true;
  std::size_t n = examples[0].first.size();
  // Variables: w₀ (index 0) and w₁..wₙ, all free.
  std::vector<Inequality> system;
  for (const auto& [features, label] : examples) {
    FEATSEP_CHECK_EQ(features.size(), n);
    Inequality ineq;
    ineq.coefs.assign(n + 1, Rational(0));
    if (label > 0) {
      // Σ wⱼbⱼ − w₀ ≥ 0  ⇔  w₀ − Σ wⱼbⱼ ≤ 0.
      ineq.coefs[0] = Rational(1);
      for (std::size_t j = 0; j < n; ++j) {
        ineq.coefs[j + 1] = Rational(-features[j]);
      }
      ineq.bound = Rational(0);
    } else {
      // Σ wⱼbⱼ − w₀ ≤ −1.
      ineq.coefs[0] = Rational(-1);
      for (std::size_t j = 0; j < n; ++j) {
        ineq.coefs[j + 1] = Rational(features[j]);
      }
      ineq.bound = Rational(-1);
    }
    system.push_back(std::move(ineq));
  }
  return Feasible(std::move(system), n + 1);
}

}  // namespace testing
}  // namespace featsep
