#ifndef FEATSEP_TESTING_REFERENCE_GHW_H_
#define FEATSEP_TESTING_REFERENCE_GHW_H_

#include <cstddef>
#include <string>
#include <vector>

#include "hypertree/decomposition.h"
#include "hypertree/hypergraph.h"

namespace featsep {
namespace testing {

/// Brute-force re-implementations of the tree-decomposition validity
/// conditions, cross-checking hypertree/decomposition.h's
/// ValidateDecomposition (ROADMAP: "the validator itself is cross-checked").
/// Like reference_hom.h these share no logic with the checked code on
/// purpose: covers are found by exhaustive subset enumeration rather than
/// branch-and-bound, and connectivity by explicit per-vertex BFS over an
/// adjacency list rebuilt from scratch. Exponential in the edge count; keep
/// instances fuzz-sized (≤ ~20 edges).

/// Minimum number of edges of `graph` covering `vertices`, by enumerating
/// all edge subsets in increasing size order. Returns num_edges() + 1 when
/// some vertex lies in no edge. Checked programmer error above 20 edges.
std::size_t RefEdgeCoverNumber(const Hypergraph& graph,
                               const std::vector<HVertex>& vertices);

/// Independent validity check of `td` as a width-≤ k tree decomposition of
/// `graph`: (1) the node/children arrays form a tree rooted at td.root,
/// (2) every edge's vertex set is contained in some bag, (3) every
/// vertex's occurrence set induces a connected subtree, (4) every bag has
/// RefEdgeCoverNumber ≤ k. On failure, stores a reason in `error` when
/// non-null.
bool RefValidateDecomposition(const Hypergraph& graph,
                              const TreeDecomposition& td, std::size_t k,
                              std::string* error = nullptr);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_REFERENCE_GHW_H_
