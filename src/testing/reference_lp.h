#ifndef FEATSEP_TESTING_REFERENCE_LP_H_
#define FEATSEP_TESTING_REFERENCE_LP_H_

#include "linsep/separability_lp.h"
#include "linsep/simplex.h"

namespace featsep {
namespace testing {

/// Deliberately naive reference implementations of the LP layer, built on
/// Fourier–Motzkin elimination over exact rationals: project variables out
/// one by one by combining every (positive, negative) coefficient pair.
/// Doubly exponential in the number of variables, but completely
/// independent of the simplex under test — no pivoting, no tableau, no
/// basis bookkeeping. DO NOT optimize or share code with src/linsep;
/// slowness and independence are the point. Keep instances tiny (≤ 4
/// variables, ≤ 8 constraints).

/// The optimal value of `problem` (max c·x s.t. Ax ≤ b, x ≥ 0) without a
/// witness point: eliminate x from {Ax ≤ b, x ≥ 0, z ≤ c·x} and read the
/// bounds left on z. `objective` is valid only for kOptimal.
struct RefLpOutcome {
  LpStatus status = LpStatus::kInfeasible;
  Rational objective;
};

RefLpOutcome RefSolveLpValue(const LpProblem& problem);

/// Reference linear separability of a ±1 training collection: feasibility
/// (by Fourier–Motzkin, with the weights as free variables) of the same
/// margin-rescaled system FindSeparator solves,
///   Σⱼ wⱼ·bᵢⱼ − w₀ ≥ 0   for yᵢ = +1,
///   Σⱼ wⱼ·bᵢⱼ − w₀ ≤ −1  for yᵢ = −1.
bool RefIsLinearlySeparable(const TrainingCollection& examples);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_REFERENCE_LP_H_
