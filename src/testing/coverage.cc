#include "testing/coverage.h"

#include <sstream>

#include "util/check.h"

namespace featsep {
namespace testing {

using coverage_internal::g_coverage_counters;
using coverage_internal::g_coverage_enabled;
using coverage_internal::kBucketsPerSite;
using coverage_internal::kNumCoverageSites;

const char* CoverageSiteName(CoverageSite site) {
  switch (site) {
    case CoverageSite::kHomNode: return "hom/node";
    case CoverageSite::kHomBacktrack: return "hom/backtrack";
    case CoverageSite::kHomFastCheck: return "hom/fast-check";
    case CoverageSite::kHomGeneralCheck: return "hom/general-check";
    case CoverageSite::kHomClosedCheck: return "hom/closed-check";
    case CoverageSite::kHomDeadFact: return "hom/dead-fact";
    case CoverageSite::kHomPrune: return "hom/prune";
    case CoverageSite::kHomWipeout: return "hom/wipeout";
    case CoverageSite::kHomUnaryWipeout: return "hom/unary-wipeout";
    case CoverageSite::kHomPreferHit: return "hom/prefer-hit";
    case CoverageSite::kHomSeedReject: return "hom/seed-reject";
    case CoverageSite::kHomFound: return "hom/found";
    case CoverageSite::kHomNone: return "hom/none";
    case CoverageSite::kHomExhausted: return "hom/exhausted";
    case CoverageSite::kGhwBagConnectorReject:
      return "ghw/bag-connector-reject";
    case CoverageSite::kGhwBagProgressReject: return "ghw/bag-progress-reject";
    case CoverageSite::kGhwChildUnsolved: return "ghw/child-unsolved";
    case CoverageSite::kGhwSubproblemSolved: return "ghw/subproblem-solved";
    case CoverageSite::kGhwSubproblemFailed: return "ghw/subproblem-failed";
    case CoverageSite::kGhwMemoHit: return "ghw/memo-hit";
    case CoverageSite::kCoverPosition: return "covergame/position";
    case CoverageSite::kCoverMap: return "covergame/map";
    case CoverageSite::kCoverBaseReject: return "covergame/base-reject";
    case CoverageSite::kCoverPositionDead: return "covergame/position-dead";
    case CoverageSite::kCoverFixpointRound: return "covergame/fixpoint-round";
    case CoverageSite::kCoverStrategyDeleted:
      return "covergame/strategy-deleted";
    case CoverageSite::kCoverWin: return "covergame/win";
    case CoverageSite::kCoverLose: return "covergame/lose";
    case CoverageSite::kSimplexPivot: return "simplex/pivot";
    case CoverageSite::kSimplexPhase1: return "simplex/phase1";
    case CoverageSite::kSimplexInfeasible: return "simplex/infeasible";
    case CoverageSite::kSimplexUnbounded: return "simplex/unbounded";
    case CoverageSite::kSimplexOptimal: return "simplex/optimal";
    case CoverageSite::kSimplexDegenerate: return "simplex/degenerate";
    case CoverageSite::kNumSites: break;
  }
  return "unknown";
}

void SetCoverageEnabled(bool enabled) {
  g_coverage_enabled.store(enabled, std::memory_order_relaxed);
}

bool CoverageEnabled() {
  return g_coverage_enabled.load(std::memory_order_relaxed);
}

void ResetCoverage() {
  for (auto& counter : g_coverage_counters) {
    counter.store(0, std::memory_order_relaxed);
  }
}

CoverageSnapshot SnapshotCoverage() {
  CoverageSnapshot snapshot;
  for (std::size_t i = 0; i < kNumCoverageSites; ++i) {
    snapshot.counts[i] = g_coverage_counters[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

std::size_t CoverageBucket(std::uint64_t count) {
  FEATSEP_CHECK_GT(count, 0u);
  // 1, 2, 3 get their own buckets; then log₂ classes, compressed above 2¹⁰
  // so the top of the range still fits the 16 buckets.
  if (count <= 3) return count - 1;
  std::size_t log2 = 0;
  for (std::uint64_t c = count; c > 1; c >>= 1) ++log2;
  // count in [4,7] -> log2 2 -> bucket 3 ... [512,1023] -> 9 -> bucket 10.
  if (log2 <= 9) return log2 + 1;
  if (log2 <= 11) return 11;  // 1024..4095
  if (log2 <= 13) return 12;  // 4096..16383
  if (log2 <= 15) return 13;  // 16384..65535
  if (log2 <= 19) return 14;  // 64K..1M
  return 15;
}

std::vector<CoverageEdge> CoverageEdges(const CoverageSnapshot& snapshot) {
  std::vector<CoverageEdge> edges;
  for (std::size_t i = 0; i < kNumCoverageSites; ++i) {
    if (snapshot.counts[i] == 0) continue;
    edges.push_back(static_cast<CoverageEdge>(
        i * kBucketsPerSite + CoverageBucket(snapshot.counts[i])));
  }
  return edges;
}

std::string CoverageEdgeName(CoverageEdge edge) {
  std::size_t site = edge / kBucketsPerSite;
  std::size_t bucket = edge % kBucketsPerSite;
  std::ostringstream out;
  out << CoverageSiteName(static_cast<CoverageSite>(site)) << ":b" << bucket;
  return out.str();
}

CoverageMap::CoverageMap()
    : seen_(kNumCoverageSites * kBucketsPerSite, false) {}

std::vector<CoverageEdge> CoverageMap::MergeNew(
    const CoverageSnapshot& snapshot) {
  std::vector<CoverageEdge> fresh;
  for (CoverageEdge edge : CoverageEdges(snapshot)) {
    if (!seen_[edge]) {
      seen_[edge] = true;
      ++num_edges_;
      fresh.push_back(edge);
    }
  }
  return fresh;
}

bool CoverageMap::Covers(const std::vector<CoverageEdge>& edges) const {
  for (CoverageEdge edge : edges) {
    if (!seen_[edge]) return false;
  }
  return true;
}

}  // namespace testing
}  // namespace featsep
