#include "testing/faults.h"

#include <new>

#include "util/check.h"

namespace featsep {
namespace testing {
namespace {

// The armed plan. Individual atomics (not a struct under a mutex) so the
// probe's slow path is lock-free and clean under TSan even if a caller
// misuses arm/disarm; the documented contract is still that arming does not
// race with instrumented kernels.
std::atomic<std::uint16_t> g_site{0};
std::atomic<std::uint8_t> g_kind{0};
std::atomic<std::uint64_t> g_trigger{1};
std::atomic<ExecutionBudget*> g_budget{nullptr};
std::atomic<std::uint64_t> g_visits{0};
std::atomic<std::uint64_t> g_fired{0};

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCancel:
      return "cancel";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kBadAlloc:
      return "bad-alloc";
  }
  return "unknown";
}

void ArmFault(const FaultSpec& spec, ExecutionBudget* budget) {
  FEATSEP_CHECK(spec.site < CoverageSite::kNumSites);
  FEATSEP_CHECK_GE(spec.trigger_visit, 1u) << "visits are 1-based";
  g_site.store(static_cast<std::uint16_t>(spec.site),
               std::memory_order_relaxed);
  g_kind.store(static_cast<std::uint8_t>(spec.kind), std::memory_order_relaxed);
  g_trigger.store(spec.trigger_visit, std::memory_order_relaxed);
  g_budget.store(budget, std::memory_order_relaxed);
  g_visits.store(0, std::memory_order_relaxed);
  g_fired.store(0, std::memory_order_relaxed);
  faults_internal::g_fault_armed.store(true, std::memory_order_release);
}

void DisarmFaults() {
  faults_internal::g_fault_armed.store(false, std::memory_order_release);
  g_budget.store(nullptr, std::memory_order_relaxed);
}

bool FaultArmed() {
  return faults_internal::g_fault_armed.load(std::memory_order_acquire);
}

std::uint64_t FaultFireCount() {
  return g_fired.load(std::memory_order_acquire);
}

std::uint64_t FaultSiteVisits() {
  return g_visits.load(std::memory_order_acquire);
}

namespace faults_internal {

void OnFaultPoint(CoverageSite site) {
  if (static_cast<std::uint16_t>(site) !=
      g_site.load(std::memory_order_relaxed)) {
    return;
  }
  std::uint64_t visit = g_visits.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (visit != g_trigger.load(std::memory_order_relaxed)) return;
  g_fired.fetch_add(1, std::memory_order_acq_rel);
  ExecutionBudget* budget = g_budget.load(std::memory_order_relaxed);
  switch (static_cast<FaultKind>(g_kind.load(std::memory_order_relaxed))) {
    case FaultKind::kCancel:
      if (budget != nullptr) budget->Cancel();
      break;
    case FaultKind::kTimeout:
      if (budget != nullptr) budget->ForceOutcome(BudgetOutcome::kTimedOut);
      break;
    case FaultKind::kBadAlloc:
      throw std::bad_alloc();
  }
}

}  // namespace faults_internal
}  // namespace testing
}  // namespace featsep
