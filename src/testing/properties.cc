#include "testing/properties.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <new>
#include <optional>
#include <sstream>
#include <unordered_map>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/dimension_bounded.h"
#include "core/separability.h"
#include "core/statistic.h"
#include "covergame/cover_game.h"
#include "cq/containment.h"
#include "cq/core.h"
#include "cq/decomposed_evaluation.h"
#include "cq/enumeration.h"
#include "cq/evaluation.h"
#include "cq/homomorphism.h"
#include "hypertree/decomposition.h"
#include "hypertree/ghw.h"
#include "io/writer.h"
#include "qbe/qbe.h"
#include "serve/async_service.h"
#include "serve/eval_service.h"
#include "serve/incremental.h"
#include "serve/shard_protocol.h"
#include "workload/generators.h"
#include "testing/reference_ghw.h"
#include "testing/reference_hom.h"
#include "testing/reference_lp.h"
#include "testing/shrink.h"
#include "util/check.h"

namespace featsep {
namespace testing {

namespace {

PropertyViolation Violation(std::string property, std::string detail) {
  return PropertyViolation{std::move(property), std::move(detail)};
}

std::string DescribeHomPair(const Database& from, const Database& to) {
  std::ostringstream out;
  out << "from:\n" << WriteDatabase(from) << "to:\n" << WriteDatabase(to);
  return out.str();
}

std::string DescribeValues(const Database& db,
                           const std::vector<Value>& values) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ", ";
    out << db.value_name(values[i]);
  }
  out << "]";
  return out.str();
}

}  // namespace

PropertyCheck CheckHomAgainstReference(
    const Database& from, const Database& to,
    const std::vector<std::pair<Value, Value>>& seed) {
  HomResult fast = FindHomomorphism(from, to, seed);
  if (fast.status == HomStatus::kExhausted) {
    return Violation("hom-vs-reference/status",
                     "kernel reported kExhausted with no node budget\n" +
                         DescribeHomPair(from, to));
  }
  std::optional<std::vector<Value>> ref = RefFindHomomorphism(from, to, seed);
  bool fast_found = fast.status == HomStatus::kFound;
  if (fast_found != ref.has_value()) {
    std::ostringstream detail;
    detail << "kernel says " << (fast_found ? "FOUND" : "NONE")
           << ", reference says " << (ref.has_value() ? "FOUND" : "NONE")
           << "\n"
           << DescribeHomPair(from, to);
    return Violation("hom-vs-reference/status", detail.str());
  }
  if (fast_found) {
    if (!RefIsHomomorphism(from, to, fast.mapping)) {
      return Violation("hom-vs-reference/witness",
                       "kernel witness is not a homomorphism\n" +
                           DescribeHomPair(from, to));
    }
    for (const auto& [source, image] : seed) {
      if (source < fast.mapping.size() && from.InDomain(source) &&
          fast.mapping[source] != image) {
        return Violation("hom-vs-reference/seed",
                         "kernel witness ignores a seed pair\n" +
                             DescribeHomPair(from, to));
      }
    }
  }

  HomOptions no_fc;
  no_fc.forward_checking = false;
  HomResult unpruned = FindHomomorphism(from, to, seed, no_fc);
  if ((unpruned.status == HomStatus::kFound) != fast_found) {
    return Violation("hom-vs-reference/forward-checking",
                     "decision differs with forward checking off\n" +
                         DescribeHomPair(from, to));
  }

  if (ref.has_value()) {
    // Seeding the reference witness as a value-ordering hint must affect
    // exploration order only, never the decision or witness validity.
    HomOptions preferred;
    for (Value v : from.domain()) {
      preferred.prefer.emplace_back(v, (*ref)[v]);
    }
    HomResult hinted = FindHomomorphism(from, to, seed, preferred);
    if (hinted.status != HomStatus::kFound ||
        !RefIsHomomorphism(from, to, hinted.mapping)) {
      return Violation("hom-vs-reference/prefer",
                       "witness-seeded prefer changed the decision or "
                       "produced an invalid witness\n" +
                           DescribeHomPair(from, to));
    }
  }

  // The deterministic single-worker restart mode: same decision, and two
  // identically-seeded runs must reproduce each other bit for bit.
  HomOptions restarting;
  restarting.sequential_restarts = true;
  restarting.restart_base = 8;  // Small, so real searches actually restart.
  restarting.rng_seed = 1;
  HomResult restarted = FindHomomorphism(from, to, seed, restarting);
  if ((restarted.status == HomStatus::kFound) != fast_found) {
    return Violation("hom-vs-reference/restarts",
                     "decision differs under sequential restart search\n" +
                         DescribeHomPair(from, to));
  }
  if (restarted.status == HomStatus::kFound &&
      !RefIsHomomorphism(from, to, restarted.mapping)) {
    return Violation("hom-vs-reference/restarts",
                     "restart search produced an invalid witness\n" +
                         DescribeHomPair(from, to));
  }
  HomResult replayed = FindHomomorphism(from, to, seed, restarting);
  if (replayed.status != restarted.status ||
      replayed.nodes != restarted.nodes ||
      replayed.restarts != restarted.restarts ||
      replayed.nogoods_recorded != restarted.nogoods_recorded) {
    return Violation("hom-vs-reference/restart-determinism",
                     "two identically-seeded restart runs diverged\n" +
                         DescribeHomPair(from, to));
  }

  // Parallel workers with and without nogood sharing: the decision is
  // schedule-independent and every witness must verify (the witness itself
  // may legitimately differ between runs).
  for (std::size_t threads : {2u, 8u}) {
    for (bool nogoods : {true, false}) {
      HomOptions parallel;
      parallel.num_threads = threads;
      parallel.use_nogoods = nogoods;
      parallel.restart_base = 8;
      parallel.rng_seed = 3;
      HomResult result = FindHomomorphism(from, to, seed, parallel);
      if ((result.status == HomStatus::kFound) != fast_found) {
        std::ostringstream detail;
        detail << "decision differs at " << threads << " threads (nogoods "
               << (nogoods ? "on" : "off") << ")\n"
               << DescribeHomPair(from, to);
        return Violation("hom-vs-reference/parallel", detail.str());
      }
      if (result.status == HomStatus::kFound &&
          !RefIsHomomorphism(from, to, result.mapping)) {
        std::ostringstream detail;
        detail << "invalid parallel witness at " << threads
               << " threads (nogoods " << (nogoods ? "on" : "off") << ")\n"
               << DescribeHomPair(from, to);
        return Violation("hom-vs-reference/parallel", detail.str());
      }
    }
  }
  return std::nullopt;
}

PropertyCheck CheckHomComposition(const Database& a, const Database& b,
                                  const Database& c) {
  HomResult f = FindHomomorphism(a, b);
  HomResult g = FindHomomorphism(b, c);
  if (f.status != HomStatus::kFound || g.status != HomStatus::kFound) {
    return std::nullopt;  // Vacuous for this triple.
  }
  std::vector<Value> composite(a.num_values(), kNoValue);
  for (Value v : a.domain()) {
    composite[v] = g.mapping[f.mapping[v]];
  }
  if (!RefIsHomomorphism(a, c, composite)) {
    return Violation("hom-composition/witness",
                     "g∘f is not a homomorphism a → c\n" +
                         DescribeHomPair(a, c));
  }
  if (!HomomorphismExists(a, c)) {
    return Violation("hom-composition/closure",
                     "a → b and b → c but kernel denies a → c\n" +
                         DescribeHomPair(a, c));
  }
  return std::nullopt;
}

PropertyCheck CheckEvaluationAgainstReference(const ConjunctiveQuery& query,
                                              const Database& db,
                                              std::size_t max_width) {
  std::vector<Value> fast = CqEvaluator(query).Evaluate(db);
  std::vector<Value> ref = RefEvaluateUnaryCq(query, db);
  if (fast != ref) {
    std::ostringstream detail;
    detail << query.ToString() << "\nkernel q(D) = " << DescribeValues(db, fast)
           << ", reference q(D) = " << DescribeValues(db, ref) << "\nD:\n"
           << WriteDatabase(db);
    return Violation("eval-vs-reference", detail.str());
  }
  std::optional<DecomposedEvaluator> plan =
      DecomposedEvaluator::Create(query, max_width);
  if (plan.has_value()) {
    std::vector<Value> decomposed = plan->Evaluate(db);
    if (decomposed != ref) {
      std::ostringstream detail;
      detail << query.ToString() << " (width " << plan->width()
             << ")\ndecomposed q(D) = " << DescribeValues(db, decomposed)
             << ", reference q(D) = " << DescribeValues(db, ref) << "\nD:\n"
             << WriteDatabase(db);
      return Violation("decomposed-eval-vs-reference", detail.str());
    }
  }
  return std::nullopt;
}

PropertyCheck CheckContainmentAgainstReference(const ConjunctiveQuery& q1,
                                               const ConjunctiveQuery& q2,
                                               const Database& db) {
  if (!IsContainedIn(q1, q1) || !IsContainedIn(q2, q2)) {
    return Violation("containment/reflexivity",
                     "q ⊈ q for " + q1.ToString() + " or " + q2.ToString());
  }
  bool fast12 = IsContainedIn(q1, q2);
  bool ref12 = RefIsContainedIn(q1, q2);
  bool fast21 = IsContainedIn(q2, q1);
  bool ref21 = RefIsContainedIn(q2, q1);
  if (fast12 != ref12 || fast21 != ref21) {
    std::ostringstream detail;
    detail << "q1 = " << q1.ToString() << "\nq2 = " << q2.ToString()
           << "\nkernel (q1⊆q2, q2⊆q1) = (" << fast12 << ", " << fast21
           << "), reference = (" << ref12 << ", " << ref21 << ")";
    return Violation("containment-vs-reference", detail.str());
  }
  if (fast12) {
    // Semantic soundness on data: q1 ⊆ q2 implies q1(D) ⊆ q2(D).
    std::vector<Value> eval1 = RefEvaluateUnaryCq(q1, db);
    std::vector<Value> eval2 = RefEvaluateUnaryCq(q2, db);
    for (Value e : eval1) {
      if (std::find(eval2.begin(), eval2.end(), e) == eval2.end()) {
        std::ostringstream detail;
        detail << "q1 ⊆ q2 but " << db.value_name(e)
               << " ∈ q1(D) \\ q2(D)\nq1 = " << q1.ToString()
               << "\nq2 = " << q2.ToString() << "\nD:\n" << WriteDatabase(db);
        return Violation("containment/semantics", detail.str());
      }
    }
  }
  return std::nullopt;
}

PropertyCheck CheckCoreProperties(const Database& db,
                                  const std::vector<Value>& frozen) {
  Database core = CoreOf(db, frozen);
  for (const Fact& fact : core.facts()) {
    if (!db.ContainsFact(fact)) {
      return Violation("core/subset",
                       "core contains a fact absent from the input\n" +
                           DescribeHomPair(db, core));
    }
  }
  if (!RefHomEquivalent(db, frozen, core, frozen)) {
    return Violation("core/hom-equivalence",
                     "core not hom-equivalent to its input (frozen " +
                         DescribeValues(db, frozen) + ")\n" +
                         DescribeHomPair(db, core));
  }
  Database core2 = CoreOf(core, frozen);
  bool same = core2.size() == core.size();
  if (same) {
    for (const Fact& fact : core2.facts()) {
      if (!core.ContainsFact(fact)) {
        same = false;
        break;
      }
    }
  }
  if (!same) {
    return Violation("core/idempotence",
                     "coring the core changed it\n" +
                         DescribeHomPair(core, core2));
  }
  return std::nullopt;
}

PropertyCheck CheckGhwProperties(const ConjunctiveQuery& query) {
  Hypergraph graph = QueryHypergraph(query);
  std::size_t width = QueryGhw(query);
  if (width >= 1) {
    std::optional<TreeDecomposition> td = DecideGhwAtMost(graph, width);
    if (!td.has_value()) {
      return Violation("ghw/witness",
                       "Ghw = " + std::to_string(width) +
                           " but DecideGhwAtMost(width) found nothing: " +
                           query.ToString());
    }
    std::string error;
    if (!ValidateDecomposition(graph, *td, width, &error)) {
      return Violation("ghw/witness-validity",
                       error + " for " + query.ToString());
    }
    // Cross-check the validator itself against the brute-force reference:
    // both must accept the witness at `width`, and (tightness permitting)
    // both must reject it at `width - 1`.
    std::string ref_error;
    if (!RefValidateDecomposition(graph, *td, width, &ref_error)) {
      return Violation("ghw/witness-validity-vs-reference",
                       "ValidateDecomposition accepts but the reference "
                       "rejects: " + ref_error + " for " + query.ToString());
    }
    if (width >= 2) {
      bool fast_below = ValidateDecomposition(graph, *td, width - 1);
      bool ref_below = RefValidateDecomposition(graph, *td, width - 1);
      if (fast_below != ref_below) {
        return Violation("ghw/validator-vs-reference",
                         "validators disagree on the witness at width - 1 "
                         "for " + query.ToString());
      }
    }
    if (width >= 2 && DecideGhwAtMost(graph, width - 1).has_value()) {
      return Violation("ghw/tightness",
                       "DecideGhwAtMost succeeded below Ghw for " +
                           query.ToString());
    }
  }
  if (!IsInGhw(query, width + 1)) {
    return Violation("ghw/monotonicity",
                     "q ∈ GHW(k) but q ∉ GHW(k+1) for " + query.ToString());
  }

  // Removing an atom whose existential variables are covered by another
  // atom's cannot increase the width: any bag cover using the removed
  // atom's edge can use the subsuming atom's edge instead.
  const std::vector<Variable>& free = query.free_variables();
  auto existential_vars = [&](const CqAtom& atom) {
    std::vector<Variable> vars;
    for (Variable v : atom.args) {
      if (std::find(free.begin(), free.end(), v) == free.end() &&
          std::find(vars.begin(), vars.end(), v) == vars.end()) {
        vars.push_back(v);
      }
    }
    std::sort(vars.begin(), vars.end());
    return vars;
  };
  const std::vector<CqAtom>& atoms = query.atoms();
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    std::vector<Variable> vi = existential_vars(atoms[i]);
    for (std::size_t j = 0; j < atoms.size(); ++j) {
      if (i == j) continue;
      std::vector<Variable> vj = existential_vars(atoms[j]);
      if (!std::includes(vj.begin(), vj.end(), vi.begin(), vi.end())) {
        continue;
      }
      ConjunctiveQuery reduced = WithoutAtom(query, i);
      std::size_t reduced_width = QueryGhw(reduced);
      if (reduced_width > width) {
        return Violation(
            "ghw/subsumed-atom-removal",
            "removing a subsumed atom raised ghw from " +
                std::to_string(width) + " to " +
                std::to_string(reduced_width) + " for " + query.ToString());
      }
      break;  // One subsumed pair per atom i is enough.
    }
  }
  return std::nullopt;
}

PropertyCheck CheckSepThreadDeterminism(const TrainingDatabase& training) {
  CqSepResult results[3];
  const std::size_t thread_counts[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    CqSepOptions options;
    options.num_threads = thread_counts[i];
    results[i] = DecideCqSep(training, options);
  }
  for (int i = 1; i < 3; ++i) {
    if (results[i].separable != results[0].separable ||
        results[i].conflict != results[0].conflict) {
      std::ostringstream detail;
      detail << "DecideCqSep differs between 1 and " << thread_counts[i]
             << " threads\n" << WriteTrainingDatabase(training);
      return Violation("sep/thread-determinism", detail.str());
    }
  }

  // Theorem 3.2 oracle: separable iff no differently-labeled pair of
  // entities is hom-equivalent as pointed databases.
  const Database& db = training.database();
  bool ref_separable = true;
  for (Value p : training.PositiveExamples()) {
    for (Value n : training.NegativeExamples()) {
      if (RefHomEquivalent(db, {p}, db, {n})) {
        ref_separable = false;
        break;
      }
    }
    if (!ref_separable) break;
  }
  if (results[0].separable != ref_separable) {
    std::ostringstream detail;
    detail << "DecideCqSep says " << results[0].separable
           << ", reference pairwise sweep says " << ref_separable << "\n"
           << WriteTrainingDatabase(training);
    return Violation("sep-vs-reference", detail.str());
  }
  if (!results[0].separable) {
    if (!results[0].conflict.has_value()) {
      return Violation("sep/conflict-missing",
                       "inseparable without a conflict pair\n" +
                           WriteTrainingDatabase(training));
    }
    auto [x, y] = *results[0].conflict;
    if (training.label(x) == training.label(y) ||
        !RefHomEquivalent(db, {x}, db, {y})) {
      return Violation("sep/conflict-invalid",
                       "reported conflict pair is not a differently-labeled "
                       "hom-equivalent pair\n" +
                           WriteTrainingDatabase(training));
    }
  }
  return std::nullopt;
}

PropertyCheck CheckQbeProperties(const Database& db,
                                 const std::vector<Value>& positives,
                                 const std::vector<Value>& negatives,
                                 std::size_t m) {
  QbeInstance instance;
  instance.db = &db;
  instance.positives = positives;
  instance.negatives = negatives;
  auto describe = [&] {
    std::ostringstream out;
    out << "S+ = " << DescribeValues(db, positives)
        << ", S- = " << DescribeValues(db, negatives) << ", m = " << m
        << "\nD:\n" << WriteDatabase(db);
    return out.str();
  };

  // SolveCqQbe: 1/2/8-thread determinism of decision and explanation.
  QbeResult results[3];
  const std::size_t thread_counts[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    QbeOptions options;
    options.num_threads = thread_counts[i];
    results[i] = SolveCqQbe(instance, options);
  }
  for (int i = 1; i < 3; ++i) {
    if (results[i].exists != results[0].exists ||
        results[i].explanation.has_value() !=
            results[0].explanation.has_value() ||
        (results[i].explanation.has_value() &&
         results[i].explanation->ToString() !=
             results[0].explanation->ToString())) {
      return Violation("qbe/thread-determinism",
                       "SolveCqQbe differs between 1 and " +
                           std::to_string(thread_counts[i]) + " threads\n" +
                           describe());
    }
  }
  const QbeResult& cq = results[0];

  // Screening law for the explanation, canonical and minimized alike:
  // selects every positive, no negative.
  QbeOptions minimize;
  minimize.minimize_explanation = true;
  QbeResult minimized = SolveCqQbe(instance, minimize);
  if (minimized.exists != cq.exists) {
    return Violation("qbe/minimize-decision",
                     "minimize_explanation changed the decision\n" +
                         describe());
  }
  for (const QbeResult* result :
       {&cq, static_cast<const QbeResult*>(&minimized)}) {
    if (!result->exists) continue;
    if (!result->explanation.has_value()) {
      return Violation("qbe/explanation-missing",
                       "explanation exists but none returned\n" + describe());
    }
    CqEvaluator evaluator(*result->explanation);
    for (Value e : positives) {
      if (!evaluator.Selects(db, {e})) {
        return Violation("qbe/explanation-screens",
                         "explanation misses positive " + db.value_name(e) +
                             "\n" + describe());
      }
    }
    for (Value b : negatives) {
      if (evaluator.Selects(db, {b})) {
        return Violation("qbe/explanation-screens",
                         "explanation selects negative " + db.value_name(b) +
                             "\n" + describe());
      }
    }
  }

  // Without negatives the canonical product query always explains.
  if (!cq.exists) {
    QbeInstance unconstrained = instance;
    unconstrained.negatives.clear();
    if (!SolveCqQbe(unconstrained).exists) {
      return Violation("qbe/negatives-removed",
                       "no explanation even with S- empty\n" + describe());
    }
  }

  // SolveCqmQbe: the serve path (cold cache, then warm) must reproduce the
  // unserved sweep bit-for-bit.
  QbeResult serial = SolveCqmQbe(instance, m);
  serve::ServeOptions serve_options;
  serve_options.num_shards = 2;
  serve::EvalService service(serve_options);
  QbeOptions with_service;
  with_service.service = &service;
  QbeResult served_cold = SolveCqmQbe(instance, m, 0, with_service);
  QbeResult served_warm = SolveCqmQbe(instance, m, 0, with_service);
  for (const auto& [label, served] :
       {std::pair<const char*, const QbeResult*>{"cold", &served_cold},
        std::pair<const char*, const QbeResult*>{"warm", &served_warm}}) {
    if (served->exists != serial.exists ||
        served->explanation.has_value() != serial.explanation.has_value() ||
        (served->explanation.has_value() &&
         served->explanation->ToString() !=
             serial.explanation->ToString())) {
      return Violation("qbe/serve-vs-serial",
                       std::string("SolveCqmQbe via EvalService (") + label +
                           " cache) differs from the unserved sweep\n" +
                           describe());
    }
  }

  if (serial.exists) {
    // The CQ[m] explanation screens under the *reference* evaluator...
    FEATSEP_CHECK(serial.explanation.has_value());
    std::vector<Value> answer = RefEvaluateUnaryCq(*serial.explanation, db);
    for (Value e : positives) {
      if (std::find(answer.begin(), answer.end(), e) == answer.end()) {
        return Violation("qbe/cqm-screens",
                         "CQ[m] explanation misses positive " +
                             db.value_name(e) + "\n" + describe());
      }
    }
    for (Value b : negatives) {
      if (std::find(answer.begin(), answer.end(), b) != answer.end()) {
        return Violation("qbe/cqm-screens",
                         "CQ[m] explanation selects negative " +
                             db.value_name(b) + "\n" + describe());
      }
    }
    // ... and CQ[m]-explainability implies CQ-explainability (CQ[m] ⊆ CQ).
    if (!cq.exists) {
      return Violation("qbe/cqm-implies-cq",
                       "a CQ[m] explanation exists but SolveCqQbe says no "
                       "CQ explanation does\n" + describe());
    }
  }
  return std::nullopt;
}

PropertyCheck CheckCoverGameProperties(const Database& from,
                                       const Database& to, std::size_t k) {
  FEATSEP_CHECK_GE(k, 1u);
  auto describe = [&](Value a, Value b) {
    std::ostringstream out;
    out << "pebbles " << from.value_name(a) << " -> " << to.value_name(b)
        << " at k=" << k << "\n" << DescribeHomPair(from, to);
    return out.str();
  };

  CoverGameSolver solver_k(from, to, k);
  CoverGameSolver solver_k1(from, to, k + 1);
  // Completeness check only when the position set of k = |from| stays tiny.
  std::optional<CoverGameSolver> solver_full;
  if (from.size() >= 1 && from.size() <= 3) {
    solver_full.emplace(from, to, from.size());
  }

  std::vector<Value> a_sample = from.domain();
  if (a_sample.size() > 3) a_sample.resize(3);
  std::vector<Value> b_sample = to.domain();
  if (b_sample.size() > 3) b_sample.resize(3);

  for (Value a : a_sample) {
    for (Value b : b_sample) {
      bool wins = solver_k.Decide({a}, {b});
      if (solver_k.Decide({a}, {b}) != wins) {
        return Violation("covergame/idempotent",
                         "Decide changed its answer on a second call\n" +
                             describe(a, b));
      }
      if (CoverGameWins(from, {a}, to, {b}, k) != wins) {
        return Violation("covergame/solver-reuse",
                         "a fresh solver disagrees with the shared one\n" +
                             describe(a, b));
      }
      if (solver_k1.Decide({a}, {b}) && !wins) {
        return Violation(
            "covergame/monotone-k",
            "(from, a) ->_{k+1} (to, b) holds but ->_k fails\n" +
                describe(a, b));
      }
      bool hom = RefHomomorphismExists(from, to, {{a, b}});
      if (hom && !wins) {
        return Violation(
            "covergame/hom-implies-win",
            "a full homomorphism extends the pebbles but Duplicator "
            "loses\n" + describe(a, b));
      }
      if (solver_full.has_value() && solver_full->Decide({a}, {b}) != hom) {
        return Violation(
            "covergame/full-k-is-hom",
            "->_{|from|} disagrees with pointed homomorphism existence\n" +
                describe(a, b));
      }
    }
  }

  // Two-pebble soundness: repeated or paired pebbles behave like a seed.
  if (a_sample.size() >= 2 && b_sample.size() >= 2) {
    std::vector<Value> a2 = {a_sample[0], a_sample[1]};
    std::vector<Value> b2 = {b_sample[0], b_sample[1]};
    if (RefHomomorphismExists(from, to, {{a2[0], b2[0]}, {a2[1], b2[1]}}) &&
        !solver_k.Decide(a2, b2)) {
      return Violation("covergame/hom-implies-win",
                       "a full homomorphism extends a pebble pair but "
                       "Duplicator loses\n" + DescribeHomPair(from, to));
    }
  }

  // Preorder laws over `from` alone.
  std::vector<Value> elements = from.domain();
  if (elements.size() > 4) elements.resize(4);
  if (!elements.empty()) {
    std::vector<std::vector<bool>> preorder =
        CoverPreorder(from, elements, k);
    std::size_t n = elements.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!preorder[i][i]) {
        return Violation("covergame/preorder-reflexive",
                         "element " + from.value_name(elements[i]) +
                             " does not cover itself\n" +
                             WriteDatabase(from));
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t l = 0; l < n; ++l) {
          if (preorder[i][j] && preorder[j][l] && !preorder[i][l]) {
            return Violation(
                "covergame/preorder-transitive",
                "->_k fails to compose through " +
                    from.value_name(elements[j]) + "\n" +
                    WriteDatabase(from));
          }
        }
      }
    }
    if (n >= 2 &&
        preorder[0][1] != CoverGameWins(from, {elements[0]}, from,
                                        {elements[1]}, k)) {
      return Violation("covergame/preorder-agrees",
                       "CoverPreorder disagrees with CoverGameWins\n" +
                           WriteDatabase(from));
    }
  }
  return std::nullopt;
}

PropertyCheck CheckSepDimProperties(const TrainingDatabase& training,
                                    std::size_t ell) {
  FEATSEP_CHECK_GE(ell, 1u);
  QbeOracle oracle = MakeCqQbeOracle();
  std::vector<Value> entities = training.Entities();
  auto describe = [&]() {
    std::ostringstream out;
    out << "ell=" << ell << "\n" << WriteTrainingDatabase(training);
    return out.str();
  };

  SepDimResult at_ell = DecideSepDim(training, ell, oracle);
  SepDimResult at_ell1 = DecideSepDim(training, ell + 1, oracle);
  if (at_ell.separable && !at_ell1.separable) {
    return Violation("dimension/monotone-ell",
                     "Sep[ell] holds but Sep[ell+1] fails\n" + describe());
  }

  if (!entities.empty() && entities.size() <= 4) {
    std::size_t ell_max = static_cast<std::size_t>(1)
                          << (entities.size() - 1);
    SepDimResult at_max = DecideSepDim(training, ell_max, oracle);
    bool cq_sep = DecideCqSep(training).separable;
    if (at_max.separable != cq_sep) {
      return Violation(
          "dimension/full-ell-is-cqsep",
          "Sep[2^{n-1}] disagrees with DecideCqSep (Theorem 3.2)\n" +
              describe());
    }
  }

  if (at_ell.separable) {
    if (at_ell.feature_positive_sets.size() > ell) {
      return Violation("dimension/witness-size",
                       "witness uses more than ell feature columns\n" +
                           describe());
    }
    std::vector<std::pair<FeatureVector, Label>> induced;
    for (Value e : entities) {
      FeatureVector features;
      for (const std::vector<Value>& positive_set :
           at_ell.feature_positive_sets) {
        bool in = std::find(positive_set.begin(), positive_set.end(), e) !=
                  positive_set.end();
        features.push_back(in ? 1 : -1);
      }
      induced.emplace_back(std::move(features), training.label(e));
    }
    if (!RefIsLinearlySeparable(induced)) {
      return Violation("dimension/witness-separates",
                       "the witness columns' induced vectors are not "
                       "linearly separable (FM reference)\n" + describe());
    }
    for (const std::vector<Value>& positive_set :
         at_ell.feature_positive_sets) {
      std::vector<Value> negatives;
      for (Value e : entities) {
        if (std::find(positive_set.begin(), positive_set.end(), e) ==
            positive_set.end()) {
          negatives.push_back(e);
        }
      }
      if (positive_set.empty()) continue;  // Constant column: no QBE query.
      QbeInstance instance;
      instance.db = &training.database();
      instance.positives = positive_set;
      instance.negatives = std::move(negatives);
      if (!oracle(instance)) {
        return Violation("dimension/witness-explainable",
                         "a witness bipartition fails the QBE oracle\n" +
                             describe());
      }
    }
  }
  return std::nullopt;
}

PropertyCheck CheckLinsepProperties(
    const std::vector<std::pair<FeatureVector, Label>>& examples,
    const LpProblem& lp) {
  auto describe_examples = [&]() {
    std::ostringstream out;
    for (const auto& [features, label] : examples) {
      for (int f : features) out << (f > 0 ? "+1 " : "-1 ");
      out << ": " << (label > 0 ? "+1" : "-1") << "\n";
    }
    return out.str();
  };

  bool ref_separable = RefIsLinearlySeparable(examples);
  std::optional<LinearClassifier> separator = FindSeparator(examples);
  if (separator.has_value() != ref_separable) {
    return Violation("linsep/separable-vs-fm",
                     std::string("FindSeparator says ") +
                         (separator.has_value() ? "separable" :
                                                  "inseparable") +
                         ", Fourier-Motzkin says the opposite\n" +
                         describe_examples());
  }
  if (IsLinearlySeparable(examples) != ref_separable) {
    return Violation("linsep/decide-vs-fm",
                     "IsLinearlySeparable disagrees with Fourier-Motzkin\n" +
                         describe_examples());
  }
  if (separator.has_value() && separator->CountErrors(examples) != 0) {
    return Violation("linsep/separator-errors",
                     "returned classifier misclassifies a training "
                     "example\n" + describe_examples());
  }

  auto describe_lp = [&]() {
    std::ostringstream out;
    for (std::size_t i = 0; i < lp.a.size(); ++i) {
      for (const Rational& c : lp.a[i]) out << c << " ";
      out << "<= " << lp.b[i] << "\n";
    }
    out << "max:";
    for (const Rational& c : lp.c) out << " " << c;
    out << "\n";
    return out.str();
  };

  if (!lp.c.empty()) {
    LpSolution solution = SolveLp(lp);
    RefLpOutcome reference = RefSolveLpValue(lp);
    if (solution.status != reference.status) {
      return Violation("linsep/lp-status", "SolveLp status disagrees with "
                       "the Fourier-Motzkin reference\n" + describe_lp());
    }
    if (solution.status == LpStatus::kOptimal) {
      if (solution.objective != reference.objective) {
        std::ostringstream out;
        out << "objectives differ: simplex " << solution.objective
            << " vs reference " << reference.objective << "\n"
            << describe_lp();
        return Violation("linsep/lp-objective", out.str());
      }
      Rational attained;
      for (std::size_t j = 0; j < lp.c.size(); ++j) {
        if (solution.x[j].sign() < 0) {
          return Violation("linsep/lp-feasible",
                           "optimal point has a negative coordinate\n" +
                               describe_lp());
        }
        attained += lp.c[j] * solution.x[j];
      }
      if (attained != solution.objective) {
        return Violation("linsep/lp-attains",
                         "c.x does not equal the reported objective\n" +
                             describe_lp());
      }
      for (std::size_t i = 0; i < lp.a.size(); ++i) {
        Rational row;
        for (std::size_t j = 0; j < lp.c.size(); ++j) {
          row += lp.a[i][j] * solution.x[j];
        }
        if (lp.b[i] < row) {
          return Violation("linsep/lp-feasible",
                           "optimal point violates a constraint\n" +
                               describe_lp());
        }
      }
    }
  }
  return std::nullopt;
}

PropertyCheck CheckMinimizeCq(const ConjunctiveQuery& query) {
  ConjunctiveQuery minimized = MinimizeCq(query);
  auto describe = [&]() {
    return "query: " + query.ToString() +
           "\nminimized: " + minimized.ToString() + "\n";
  };

  if (minimized.atoms().size() > query.atoms().size()) {
    return Violation("minimize-cq/no-growth",
                     "minimization added atoms\n" + describe());
  }
  if (minimized.free_variables().size() != query.free_variables().size()) {
    return Violation("minimize-cq/free-tuple",
                     "minimization changed the free tuple length\n" +
                         describe());
  }
  if (!RefIsContainedIn(query, minimized) ||
      !RefIsContainedIn(minimized, query)) {
    return Violation("minimize-cq/equivalent",
                     "MinimizeCq(q) is not equivalent to q\n" + describe());
  }

  // Minimality: dropping any atom must strictly weaken the query. Removing
  // atoms only enlarges answers, so candidate ⊆ minimized is the whole
  // equivalence; skip candidates whose free variables no longer occur
  // (unsafe queries are outside the law's domain).
  for (std::size_t i = 0; i < minimized.atoms().size(); ++i) {
    ConjunctiveQuery candidate = WithoutAtom(minimized, i);
    if (candidate.atoms().empty()) continue;
    bool free_used = true;
    for (Variable v : candidate.free_variables()) {
      bool occurs = false;
      for (const CqAtom& atom : candidate.atoms()) {
        if (std::find(atom.args.begin(), atom.args.end(), v) !=
            atom.args.end()) {
          occurs = true;
          break;
        }
      }
      if (!occurs) {
        free_used = false;
        break;
      }
    }
    if (!free_used) continue;
    if (RefIsContainedIn(candidate, minimized)) {
      std::ostringstream out;
      out << "atom " << i << " of the minimized query is removable\n"
          << describe();
      return Violation("minimize-cq/minimal", out.str());
    }
  }
  return std::nullopt;
}

namespace {

/// The budget outcome an injected fault must latch when it interrupts a run.
/// kBadAlloc never trips the budget — it unwinds as an exception instead.
BudgetOutcome ExpectedFaultOutcome(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCancel: return BudgetOutcome::kCancelled;
    case FaultKind::kTimeout: return BudgetOutcome::kTimedOut;
    case FaultKind::kBadAlloc: return BudgetOutcome::kCompleted;
  }
  return BudgetOutcome::kCompleted;
}

std::string DescribeFault(const TrainingDatabase& training, CoverageSite site,
                          FaultKind kind, std::uint64_t trigger_visit) {
  std::ostringstream out;
  out << "fault: " << FaultKindName(kind) << " at "
      << CoverageSiteName(site) << " visit " << trigger_visit << "\n"
      << "training database:\n" << WriteDatabase(training.database());
  return out.str();
}

}  // namespace

PropertyCheck CheckFaultInjectionProperties(const TrainingDatabase& training,
                                            CoverageSite site, FaultKind kind,
                                            std::uint64_t trigger_visit) {
  const Database& db = training.database();
  auto describe = [&] {
    return DescribeFault(training, site, kind, trigger_visit);
  };
  FaultSpec spec;
  spec.site = site;
  spec.kind = kind;
  spec.trigger_visit = trigger_visit;

  // --- CQ-SEP under fault -------------------------------------------------
  // Ground truth first: decision and conflict pair are deterministic across
  // thread counts (pairs_checked is not — parallel early exit).
  CqSepResult baseline = DecideCqSep(training);
  {
    ExecutionBudget budget;  // Unbounded: only the fault can trip it.
    CqSepOptions options;
    options.budget = &budget;
    bool bad_alloc = false;
    CqSepResult armed;
    {
      ScopedFault fault(spec, &budget);
      try {
        armed = DecideCqSep(training, options);
      } catch (const std::bad_alloc&) {
        bad_alloc = true;
      }
    }
    if (bad_alloc && kind != FaultKind::kBadAlloc) {
      return Violation("faults/sep-spurious-bad-alloc",
                       "std::bad_alloc escaped without a bad-alloc fault\n" +
                           describe());
    }
    if (!bad_alloc) {
      if (armed.outcome == BudgetOutcome::kCompleted) {
        // Completed with a fired timeout/bad-alloc is impossible (they latch
        // or unwind immediately); a fired cancel can be outrun when it lands
        // on the final kernel event, in which case the run is simply the
        // full uninterrupted computation. Either way the answer must match
        // the baseline bit for bit.
        if (kind != FaultKind::kCancel && FaultFireCount() != 0) {
          return Violation("faults/sep-fired-but-completed",
                           "fault fired yet the run reported kCompleted\n" +
                               describe());
        }
        if (armed.separable != baseline.separable ||
            armed.conflict != baseline.conflict) {
          return Violation("faults/sep-completed-mismatch",
                           "completed faulted run differs from baseline\n" +
                               describe());
        }
      } else {
        if (armed.outcome != ExpectedFaultOutcome(kind)) {
          std::ostringstream out;
          out << "interrupted outcome " << BudgetOutcomeName(armed.outcome)
              << " does not match the injected fault\n" << describe();
          return Violation("faults/sep-outcome-kind", out.str());
        }
        if (armed.separable) {
          return Violation("faults/sep-interrupted-separable",
                           "interrupted run claimed separable == true\n" +
                               describe());
        }
        if (armed.conflict.has_value()) {
          // An interrupted run may report a conflict only when it is a sound
          // inseparability witness.
          auto [a, b] = *armed.conflict;
          if (training.label(a) == training.label(b) ||
              !HomEquivalent(db, {a}, db, {b})) {
            return Violation("faults/sep-unsound-conflict",
                             "interrupted run reported an unsound conflict "
                             "pair\n" + describe());
          }
        }
      }
    }
    // Interrupt-then-resume determinism: with the fault disarmed, a fresh
    // run must be bit-identical to the baseline — the injection left no
    // residual state anywhere.
    CqSepResult rerun = DecideCqSep(training);
    if (rerun.separable != baseline.separable ||
        rerun.conflict != baseline.conflict ||
        rerun.outcome != BudgetOutcome::kCompleted) {
      return Violation("faults/sep-resume",
                       "disarmed rerun differs from the uninterrupted "
                       "baseline\n" + describe());
    }
  }

  // --- Served CQ[m]-SEP: a faulted batch must never poison the cache ------
  CqmSepResult m_baseline = DecideCqmSep(training, 1);
  {
    serve::ServeOptions serve_options;
    serve_options.num_shards = 2;
    serve::EvalService service(serve_options);
    ExecutionBudget budget;
    CqmSepOptions options;
    options.service = &service;
    options.budget = &budget;
    bool bad_alloc = false;
    CqmSepResult armed;
    {
      ScopedFault fault(spec, &budget);
      try {
        armed = DecideCqmSep(training, 1, options);
      } catch (const std::bad_alloc&) {
        bad_alloc = true;
      }
    }
    if (bad_alloc && kind != FaultKind::kBadAlloc) {
      return Violation("faults/cqm-spurious-bad-alloc",
                       "std::bad_alloc escaped without a bad-alloc fault\n" +
                           describe());
    }
    if (!bad_alloc && armed.outcome == BudgetOutcome::kCompleted &&
        armed.separable != m_baseline.separable) {
      return Violation("faults/cqm-completed-mismatch",
                       "completed faulted CQ[m] run differs from baseline\n" +
                           describe());
    }
    // Same service, disarmed: any cache entries the faulted batch left
    // behind must be complete and correct, so the warm run reproduces the
    // serial truth exactly.
    CqmSepOptions served;
    served.service = &service;
    CqmSepResult warm = DecideCqmSep(training, 1, served);
    if (warm.outcome != BudgetOutcome::kCompleted ||
        warm.separable != m_baseline.separable ||
        warm.features_enumerated != m_baseline.features_enumerated) {
      return Violation("faults/cache-poisoned",
                       "post-fault warm run through the same service "
                       "differs from the serial truth\n" + describe());
    }
  }

  // --- Partial-matrix validity --------------------------------------------
  // Every cell an interrupted TryMatrix marks valid must equal the
  // uninterrupted truth; a completed TryMatrix must equal it everywhere.
  {
    std::vector<ConjunctiveQuery> features =
        EnumerateFeatureQueries(db.schema_ptr(), 1);
    Statistic statistic(std::move(features));
    std::vector<FeatureVector> truth = statistic.Matrix(db);
    ExecutionBudget budget;
    bool bad_alloc = false;
    PartialMatrix partial;
    {
      ScopedFault fault(spec, &budget);
      try {
        partial = statistic.TryMatrix(db, &budget);
      } catch (const std::bad_alloc&) {
        bad_alloc = true;
      }
    }
    if (!bad_alloc) {
      if (partial.complete() &&
          (partial.rows != truth ||
           (kind != FaultKind::kCancel && FaultFireCount() != 0))) {
        return Violation("faults/matrix-completed-mismatch",
                         "completed TryMatrix differs from Matrix\n" +
                             describe());
      }
      for (std::size_t i = 0; i < partial.rows.size(); ++i) {
        for (std::size_t j = 0; j < partial.rows[i].size(); ++j) {
          if (partial.valid[i][j] && partial.rows[i][j] != truth[i][j]) {
            std::ostringstream out;
            out << "TryMatrix cell (" << i << ", " << j
                << ") is marked valid but wrong\n" << describe();
            return Violation("faults/matrix-invalid-cell", out.str());
          }
        }
      }
    }
  }
  return std::nullopt;
}

PropertyCheck CheckServeAsyncProperties(const Database& db,
                                        std::uint64_t interleaving_seed,
                                        std::size_t num_ops) {
  using serve::AsyncEvalService;
  using serve::RequestHandle;
  using serve::RequestPriority;
  using serve::RequestResult;
  using serve::RequestState;

  if (!db.schema().has_entity_relation()) return std::nullopt;
  std::vector<ConjunctiveQuery> features =
      EnumerateFeatureQueries(db.schema_ptr(), 1);
  if (features.empty()) return std::nullopt;
  if (features.size() > 12) {
    features.erase(features.begin() + 12, features.end());  // Bound work.
  }

  // The oracle: the serial evaluation path, one shard, no cache.
  serve::ServeOptions serial_options;
  serial_options.num_shards = 1;
  serial_options.cache_capacity = 0;
  serve::EvalService serial(serial_options);
  std::vector<std::shared_ptr<const serve::FeatureAnswer>> truth =
      serial.TryResolve(features, db, nullptr);

  auto matches_truth = [&](const serve::FeatureAnswer& answer,
                           std::size_t feature) {
    if (answer.size() != truth[feature]->size()) return false;
    for (Value e : db.Entities()) {
      if (answer.Selects(db, e) != truth[feature]->Selects(db, e)) {
        return false;
      }
    }
    return true;
  };
  auto describe = [&](std::uint64_t id, std::size_t feature,
                      const char* state) {
    std::ostringstream out;
    out << "request " << id << " (" << state << "), feature "
        << features[feature].ToString() << ", seed " << interleaving_seed
        << ", ops " << num_ops;
    return out.str();
  };

  WorkloadRng rng(interleaving_seed ^ 0xa5e53e59a11dULL);
  serve::AsyncServeOptions options;
  options.queue_capacity = rng.Range(1, 4);
  options.num_dispatchers = rng.Range(1, 2);
  options.serve.num_shards = rng.Range(1, 2);
  options.serve.entity_block = rng.Chance(0.5) ? 1 : 64;
  if (rng.Chance(0.2)) options.serve.cache_capacity = 0;
  auto shared_db = std::make_shared<const Database>(db);

  struct Submitted {
    RequestHandle handle;
    std::vector<std::size_t> subset;  ///< Feature indices this request asked.
  };
  std::vector<Submitted> submitted;

  AsyncEvalService service(options);
  for (std::size_t op = 0; op < num_ops; ++op) {
    const std::size_t pick = rng.Below(100);
    if (pick < 50 || submitted.empty()) {
      // Submit a random nonempty feature subset under a random priority and
      // budget: mostly unbounded, sometimes a tiny deterministic step limit
      // or an already-expired deadline.
      std::vector<std::size_t> subset;
      std::vector<ConjunctiveQuery> request_features;
      for (std::size_t i = 0; i < features.size(); ++i) {
        if (rng.Chance(0.5)) {
          subset.push_back(i);
          request_features.push_back(features[i]);
        }
      }
      if (subset.empty()) {
        subset.push_back(0);
        request_features.push_back(features[0]);
      }
      serve::SubmitOptions submit;
      submit.priority = rng.Chance(0.5) ? RequestPriority::kInteractive
                                        : RequestPriority::kBatch;
      const std::size_t budget_kind = rng.Below(10);
      if (budget_kind < 2) {
        submit.step_limit = 1 + rng.Below(60);
      } else if (budget_kind < 4) {
        submit.timeout = ExecutionBudget::Clock::duration::zero();
      }
      submitted.push_back({service.Submit(std::move(request_features),
                                          shared_db, submit),
                           std::move(subset)});
    } else if (pick < 70) {
      submitted[rng.Below(submitted.size())].handle.Poll();
    } else if (pick < 85) {
      submitted[rng.Below(submitted.size())].handle.Cancel();
    } else if (pick < 93) {
      service.PauseDispatch();
    } else {
      service.ResumeDispatch();
    }
  }

  // Drain: resume (Wait on a paused queue would hang) and settle everything.
  service.ResumeDispatch();
  for (const Submitted& entry : submitted) entry.handle.Wait();

  std::array<std::array<std::uint64_t, 4>, serve::kNumRequestPriorities>
      observed{};  // [class][completed, expired, cancelled, rejected]
  for (const Submitted& entry : submitted) {
    std::optional<RequestResult> polled = entry.handle.Poll();
    if (!polled.has_value()) {
      return Violation("serve/drain-incomplete",
                       "handle not terminal after Wait returned");
    }
    const RequestResult& result = *polled;
    const char* state = RequestStateName(result.state);
    const std::size_t cls = static_cast<std::size_t>(entry.handle.priority());
    switch (result.state) {
      case RequestState::kCompleted: observed[cls][0]++; break;
      case RequestState::kExpired: observed[cls][1]++; break;
      case RequestState::kCancelled: observed[cls][2]++; break;
      case RequestState::kRejected: observed[cls][3]++; break;
      default:
        return Violation("serve/non-terminal-state",
                         describe(entry.handle.id(), 0, state));
    }
    if (result.answers.size() != entry.subset.size()) {
      return Violation("serve/answer-arity",
                       describe(entry.handle.id(), 0, state));
    }
    for (std::size_t j = 0; j < entry.subset.size(); ++j) {
      if (result.answers[j] == nullptr) {
        if (result.state == RequestState::kCompleted) {
          return Violation(
              "serve/completed-with-hole",
              describe(entry.handle.id(), entry.subset[j], state));
        }
        continue;
      }
      if (result.state == RequestState::kRejected) {
        return Violation("serve/rejected-with-answer",
                         describe(entry.handle.id(), entry.subset[j], state));
      }
      // The determinism contract: any non-null answer, in any terminal
      // state, is bit-identical to the serial path.
      if (!matches_truth(*result.answers[j], entry.subset[j])) {
        return Violation("serve/async-vs-serial",
                         describe(entry.handle.id(), entry.subset[j], state));
      }
    }
    if (result.state == RequestState::kRejected && result.sequence != 0) {
      return Violation("serve/rejected-dispatched",
                       describe(entry.handle.id(), 0, state));
    }
  }

  const serve::AsyncServeStats stats = service.stats();
  for (std::size_t cls = 0; cls < serve::kNumRequestPriorities; ++cls) {
    const serve::RequestClassStats& counters = stats.classes[cls];
    std::ostringstream detail;
    detail << serve::RequestPriorityName(static_cast<RequestPriority>(cls))
           << ": submitted " << counters.submitted << " accepted "
           << counters.accepted << " rejected " << counters.rejected
           << " completed " << counters.completed << " expired "
           << counters.expired << " cancelled " << counters.cancelled
           << " observed " << observed[cls][0] << "/" << observed[cls][1]
           << "/" << observed[cls][2] << "/" << observed[cls][3] << ", seed "
           << interleaving_seed;
    if (counters.submitted != counters.accepted + counters.rejected ||
        counters.accepted !=
            counters.completed + counters.expired + counters.cancelled) {
      return Violation("serve/stats-unbalanced", detail.str());
    }
    if (counters.completed != observed[cls][0] ||
        counters.expired != observed[cls][1] ||
        counters.cancelled != observed[cls][2] ||
        counters.rejected != observed[cls][3]) {
      return Violation("serve/stats-vs-handles", detail.str());
    }
    if (counters.queue_high_water > options.queue_capacity) {
      return Violation("serve/high-water-over-capacity", detail.str());
    }
  }

  // No interrupted request may have poisoned the shared cache: a final
  // resolve through the same backend still produces the serial truth.
  std::vector<std::shared_ptr<const serve::FeatureAnswer>> final_answers =
      service.backend().TryResolve(features, db, nullptr);
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (final_answers[i] == nullptr || !matches_truth(*final_answers[i], i)) {
      return Violation("serve/cache-poisoned", describe(0, i, "final"));
    }
  }
  return std::nullopt;
}

PropertyCheck CheckIncrementalProperties(const Database& db,
                                         std::uint64_t trace_seed,
                                         std::size_t num_ops) {
  if (!db.schema().has_entity_relation()) return std::nullopt;
  std::vector<ConjunctiveQuery> features =
      EnumerateFeatureQueries(db.schema_ptr(), 1);
  if (features.empty()) return std::nullopt;
  if (features.size() > 8) {
    features.erase(features.begin() + 8, features.end());  // Bound work.
  }

  WorkloadRng rng(trace_seed ^ 0x1cc5e5a7a11dULL);

  // The live stack under test: one mutating database, one warm service the
  // maintainer re-keys across every mutation, one warm-started separability
  // decider. The drop policy rides the seed so both maintenance modes fuzz.
  Database live = db;
  serve::ServeOptions live_options;
  live_options.num_shards = 1;
  live_options.cache_capacity = 64;
  live_options.incremental = rng.Chance(0.75);
  serve::EvalService service(live_options);
  serve::IncrementalMaintainer maintainer(&service, features);
  serve::IncrementalSeparability isep(features);

  // Labels keyed by entity NAME: names survive the oracle's re-interning
  // and entity churn, value ids do not.
  std::unordered_map<std::string, Label> labels;
  for (Value e : live.Entities()) {
    labels.emplace(live.value_name(e),
                   rng.Chance(0.5) ? kPositive : kNegative);
  }

  const Schema& schema = live.schema();
  std::size_t fresh = 0;
  auto describe = [&](std::size_t op, const char* what) {
    std::ostringstream out;
    out << "op " << op << " (" << what << "), seed " << trace_seed << ", ops "
        << num_ops << "\ndb:\n" << WriteDatabase(live);
    return out.str();
  };

  service.Matrix(features, live);  // Warm the state the maintainer patches.

  for (std::size_t op = 0; op < num_ops; ++op) {
    const std::uint64_t digest_before = live.ContentDigest();
    std::optional<Delta> delta;
    const char* what = "recheck";
    const std::size_t pick = rng.Below(100);
    if (pick < 45) {
      // Insert a random fact; occasional fresh constants widen the domain.
      RelationId rel = static_cast<RelationId>(rng.Below(schema.size()));
      std::vector<Value> args;
      for (std::size_t i = 0; i < schema.arity(rel); ++i) {
        if (live.num_values() == 0 || rng.Chance(0.15)) {
          args.push_back(live.Intern("w" + std::to_string(fresh++)));
        } else {
          args.push_back(static_cast<Value>(rng.Below(live.num_values())));
        }
      }
      delta = live.InsertFact(rel, std::move(args));
      what = "insert";
    } else if (pick < 70 && live.size() > 0) {
      // Copy first: RemoveFact invalidates references into facts_.
      const Fact fact = live.fact(rng.Below(live.size()));
      delta = live.RemoveFact(fact.relation, fact.args);
      what = "remove";
    } else if (pick < 80) {
      // Forced no-op: a duplicate insert, or removing a fact that was
      // never there (its argument is a freshly interned constant).
      if (live.size() > 0 && rng.Chance(0.5)) {
        const Fact fact = live.fact(rng.Below(live.size()));
        delta = live.InsertFact(fact.relation, fact.args);
        what = "noop-insert";
      } else {
        RelationId rel = static_cast<RelationId>(rng.Below(schema.size()));
        std::vector<Value> args(schema.arity(rel),
                                live.Intern("w" + std::to_string(fresh++)));
        delta = live.RemoveFact(rel, args);
        what = "noop-remove";
      }
      if (delta->applied) {
        return Violation("incremental/noop-applied", describe(op, what));
      }
    } else if (pick < 90) {
      // Relabel a random entity — no Delta; Recheck must self-detect the
      // label diff.
      std::vector<Value> entities = live.Entities();
      if (!entities.empty()) {
        const std::string& name =
            live.value_name(entities[rng.Below(entities.size())]);
        labels[name] = labels[name] == kPositive ? kNegative : kPositive;
        what = "relabel";
      }
    }

    std::vector<std::string> changed;
    if (delta.has_value()) {
      if (delta->old_digest != digest_before) {
        return Violation("incremental/delta-old-digest", describe(op, what));
      }
      if (delta->new_digest != live.ContentDigest()) {
        return Violation("incremental/delta-new-digest", describe(op, what));
      }
      if (!delta->applied && delta->old_digest != delta->new_digest) {
        return Violation("incremental/noop-digest-moved", describe(op, what));
      }
      if (delta->applied && delta->entity_fact) {
        const std::string& name = live.value_name(delta->args[0]);
        const Label label = rng.Chance(0.5) ? kPositive : kNegative;
        if (delta->kind == Delta::Kind::kInsert) {
          labels.emplace(name, label);
        } else {
          labels.erase(name);
        }
      }
      serve::DeltaMaintenance maintenance =
          maintainer.ApplyDelta(live, *delta);
      changed = std::move(maintenance.changed_entities);
      // The instant the digest moved, no old-digest key may be resolvable
      // in any cache tier.
      if (delta->applied && delta->old_digest != delta->new_digest) {
        for (const ConjunctiveQuery& feature : features) {
          if (service.PeekCached(delta->old_digest, feature.ToString()) !=
              nullptr) {
            return Violation(
                "incremental/stale-key-survives",
                describe(op, what) + "\nfeature " + feature.ToString());
          }
        }
      }
    }

    // The permanently-naive oracle: a fresh database replaying the live
    // fact set (same interning and fact order, so entity order matches),
    // digested and evaluated completely cold.
    Database oracle(live.schema_ptr());
    for (std::size_t v = 0; v < live.num_values(); ++v) {
      oracle.Intern(live.value_name(static_cast<Value>(v)));
    }
    for (const Fact& fact : live.facts()) {
      oracle.AddFact(fact.relation, fact.args);
    }
    if (oracle.ContentDigest() != live.ContentDigest()) {
      return Violation("incremental/digest-vs-recompute", describe(op, what));
    }

    serve::ServeOptions cold_options;
    cold_options.num_shards = 1;
    cold_options.cache_capacity = 0;
    serve::EvalService cold(cold_options);
    const std::vector<FeatureVector> truth = cold.Matrix(features, oracle);
    const std::vector<FeatureVector> warm = service.Matrix(features, live);
    const std::vector<Value> live_entities = live.Entities();
    const std::vector<Value> oracle_entities = oracle.Entities();
    if (live_entities.size() != oracle_entities.size()) {
      return Violation("incremental/entity-set", describe(op, what));
    }
    for (std::size_t i = 0; i < live_entities.size(); ++i) {
      if (live.value_name(live_entities[i]) !=
          oracle.value_name(oracle_entities[i])) {
        return Violation("incremental/entity-order", describe(op, what));
      }
      if (warm[i] != truth[i]) {
        std::ostringstream out;
        out << describe(op, what) << "\nentity "
            << live.value_name(live_entities[i]) << " row differs";
        return Violation("incremental/matrix-vs-recompute", out.str());
      }
    }

    // Separability: incremental verdicts vs from-scratch decisions. The
    // copy keeps the digest memo warm, so Recheck's reuse path really runs.
    auto live_db = std::make_shared<Database>(live);
    TrainingDatabase training(live_db);
    for (Value e : live_db->Entities()) {
      training.SetLabel(e, labels.at(live_db->value_name(e)));
    }
    serve::IncrementalSeparability::Verdict verdict =
        isep.Recheck(training, &service, changed);

    TrainingCollection collection;
    collection.reserve(oracle_entities.size());
    for (std::size_t i = 0; i < oracle_entities.size(); ++i) {
      collection.emplace_back(
          truth[i], labels.at(oracle.value_name(oracle_entities[i])));
    }
    std::optional<LinearClassifier> cold_sep = FindSeparator(collection);
    if (verdict.lin_separable != cold_sep.has_value()) {
      return Violation("incremental/linsep-vs-recompute", describe(op, what));
    }
    if (verdict.lin_separable &&
        verdict.classifier->CountErrors(collection) != 0) {
      return Violation("incremental/linsep-classifier-errors",
                       describe(op, what));
    }

    auto oracle_db = std::make_shared<Database>(oracle);
    TrainingDatabase oracle_training(oracle_db);
    for (Value e : oracle_db->Entities()) {
      oracle_training.SetLabel(e, labels.at(oracle_db->value_name(e)));
    }
    const CqSepResult cold_cq = DecideCqSep(oracle_training);
    if (verdict.cq_sep.separable != cold_cq.separable) {
      return Violation("incremental/cqsep-vs-recompute", describe(op, what));
    }
    if (!verdict.cq_sep.separable) {
      if (!verdict.cq_sep.conflict.has_value()) {
        return Violation("incremental/cqsep-no-conflict", describe(op, what));
      }
      const auto [p, n] = *verdict.cq_sep.conflict;
      if (!training.labeling().Has(p) || !training.labeling().Has(n) ||
          training.labeling().Get(p) == training.labeling().Get(n) ||
          !HomEquivalent(*live_db, {p}, *live_db, {n})) {
        return Violation("incremental/cqsep-bad-witness", describe(op, what));
      }
    }
  }
  return std::nullopt;
}

PropertyCheck CheckCrashIoProperties(const Database& db,
                                     std::uint64_t fault_seed,
                                     std::size_t num_ops) {
  namespace fsys = std::filesystem;
  if (!db.schema().has_entity_relation()) return std::nullopt;
  std::vector<ConjunctiveQuery> features =
      EnumerateFeatureQueries(db.schema_ptr(), 1);
  if (features.empty()) return std::nullopt;
  if (features.size() > 8) {
    features.erase(features.begin() + 8, features.end());  // Bound work.
  }
  std::vector<std::string> feature_strings;
  for (const ConjunctiveQuery& feature : features) {
    feature_strings.push_back(feature.ToString());
  }
  const std::uint64_t digest = db.ContentDigest();
  const std::vector<Value> entities = db.Entities();

  // The oracle: the serial evaluation path, one shard, no caches, no disk.
  serve::ServeOptions serial_options;
  serial_options.num_shards = 1;
  serial_options.cache_capacity = 0;
  serve::EvalService serial(serial_options);
  std::vector<std::shared_ptr<const serve::FeatureAnswer>> truth =
      serial.TryResolve(features, db, nullptr);

  auto matches_truth = [&](const serve::FeatureAnswer& answer,
                           std::size_t feature) {
    if (answer.size() != truth[feature]->size()) return false;
    for (Value e : entities) {
      if (answer.Selects(db, e) != truth[feature]->Selects(db, e)) {
        return false;
      }
    }
    return true;
  };
  auto names_match_truth = [&](const std::vector<std::string>& names,
                               std::size_t feature) {
    if (names.size() != truth[feature]->size()) return false;
    for (const std::string& name : names) {
      if (!truth[feature]->SelectsName(name)) return false;
    }
    return true;
  };
  auto truth_names = [&](std::size_t feature) {
    return std::vector<std::string>(truth[feature]->names().begin(),
                                    truth[feature]->names().end());
  };
  auto describe = [&](const char* leg, const std::string& what) {
    std::ostringstream out;
    out << leg << ": " << what << ", fault seed " << fault_seed << ", ops "
        << num_ops;
    return out.str();
  };

  // Unique scratch root per check: seed alone is not enough (the corpus
  // regression test and a smoke run may replay the same instance
  // concurrently in different processes).
  static std::atomic<std::uint64_t> scratch_counter{0};
  std::ostringstream root_name;
  root_name << "featsep-crashio-";
#ifndef _WIN32
  root_name << ::getpid() << "-";
#endif
  root_name << scratch_counter.fetch_add(1) << "-" << fault_seed;
  const fsys::path root = fsys::temp_directory_path() / root_name.str();
  WorkloadRng rng(fault_seed ^ 0xc7a54107f5eedULL);

  auto run = [&]() -> PropertyCheck {
    // Leg A — disk cache under a seeded fault schedule with torn writes:
    // a hit is always the exact stored answer; once faults clear, every
    // store lands and serves back bit-identical.
    {
      FaultFsOptions fault_options;
      fault_options.seed = rng.Next() | 1;
      fault_options.fail_chance = 0.05 + 0.35 * rng.Uniform();
      fault_options.torn_write_chance = 0.5;
      FaultFsEnv env(fault_options);
      serve::DiskCacheOptions cache_options;
      cache_options.env = &env;
      cache_options.retry.max_attempts = 2;
      serve::DiskResultCache cache((root / "a").string(), cache_options);
      for (std::size_t op = 0; op < num_ops; ++op) {
        const std::size_t f = rng.Below(features.size());
        if (rng.Chance(0.5)) {
          cache.Store(digest, feature_strings[f], truth_names(f));
        } else {
          serve::DiskLoadResult loaded =
              cache.LoadEntry(digest, feature_strings[f]);
          if (loaded.hit() && !names_match_truth(loaded.selected, f)) {
            return Violation("crashio/disk-hit-mismatch",
                             describe("leg A", feature_strings[f]));
          }
        }
      }
      env.ClearFaults();
      for (std::size_t f = 0; f < features.size(); ++f) {
        if (!cache.Store(digest, feature_strings[f], truth_names(f))) {
          return Violation("crashio/disk-clean-store-failed",
                           describe("leg A", feature_strings[f]));
        }
        serve::DiskLoadResult loaded =
            cache.LoadEntry(digest, feature_strings[f]);
        if (!loaded.hit() || !names_match_truth(loaded.selected, f)) {
          return Violation("crashio/disk-clean-load-mismatch",
                           describe("leg A", feature_strings[f]));
        }
      }
    }

    // Leg B — breaker-gated serving: with the disk tier hard-failing the
    // service keeps answering bit-identical to serial while the breaker
    // trips open; once faults clear, a probe closes it again.
    {
      auto env = std::make_shared<FaultFsEnv>(FaultFsOptions{
          /*seed=*/rng.Next() | 1});
      serve::ServeOptions options;
      options.num_shards = 1;
      options.cache_capacity = rng.Chance(0.3) ? 0 : 16;
      options.cache_dir = (root / "b").string();
      options.fs_env = env;
      options.disk_retry_attempts = 2;
      options.disk_retry_backoff = std::chrono::microseconds(0);
      options.breaker_failure_threshold = 2;
      options.breaker_probe_interval = std::chrono::milliseconds(0);
      serve::EvalService service(options);

      auto check_round = [&](const char* phase) -> PropertyCheck {
        service.ClearCache();  // Force LRU misses → disk reads attempted.
        std::vector<std::shared_ptr<const serve::FeatureAnswer>> answers =
            service.TryResolve(features, db, nullptr);
        for (std::size_t f = 0; f < features.size(); ++f) {
          if (answers[f] == nullptr || !matches_truth(*answers[f], f)) {
            return Violation("crashio/breaker-degraded-mismatch",
                             describe("leg B", phase));
          }
        }
        return std::nullopt;
      };

      if (PropertyCheck v = check_round("healthy")) return v;
      env->set_fail_chance(1.0);
      for (int round = 0; round < 4; ++round) {
        if (PropertyCheck v = check_round("disk failing")) return v;
      }
      if (service.stats().breaker_trips == 0) {
        return Violation("crashio/breaker-never-tripped",
                         describe("leg B", "4 rounds of hard disk failure"));
      }
      env->ClearFaults();
      for (int round = 0;
           round < 5 && service.disk_health() != serve::DiskHealth::kClosed;
           ++round) {
        if (PropertyCheck v = check_round("recovering")) return v;
      }
      if (service.disk_health() != serve::DiskHealth::kClosed) {
        return Violation("crashio/breaker-never-closed",
                         describe("leg B", "faults cleared, probes failing"));
      }
      if (service.stats().breaker_closes == 0) {
        return Violation("crashio/breaker-close-uncounted",
                         describe("leg B", "closed without a counted probe"));
      }
    }

    // Leg C — kill at a seed-chosen I/O point mid-publish, then recover
    // with a fresh cache over the same directory: no half-visible entries,
    // every load is a miss or the exact answer, tmp orphans are collected.
    {
      const std::string dir = (root / "c").string();
      FaultFsOptions crash_options;
      crash_options.seed = rng.Next() | 1;
      crash_options.torn_write_chance = 0.7;
      crash_options.crash_after_ops = 3 + rng.Below(30);
      FaultFsEnv env(crash_options);
      serve::DiskCacheOptions cache_options;
      cache_options.env = &env;
      cache_options.tmp_gc_on_open = false;
      {
        serve::DiskResultCache cache(dir, cache_options);
        for (std::size_t f = 0; f < features.size(); ++f) {
          cache.Store(digest, feature_strings[f], truth_names(f));
        }
      }
      // "Restart": a fresh cache over the same directory on the real
      // filesystem, collecting every tmp orphan regardless of age.
      serve::DiskCacheOptions recovery_options;
      recovery_options.tmp_gc_age = std::chrono::milliseconds(0);
      serve::DiskResultCache recovered(dir, recovery_options);
      for (std::size_t f = 0; f < features.size(); ++f) {
        serve::DiskLoadResult loaded =
            recovered.LoadEntry(digest, feature_strings[f]);
        if (loaded.status == serve::DiskLoadStatus::kMiss) continue;
        if (!loaded.hit()) {
          return Violation("crashio/recovery-half-visible",
                           describe("leg C", feature_strings[f]));
        }
        if (!names_match_truth(loaded.selected, f)) {
          return Violation("crashio/recovery-mismatch",
                           describe("leg C", feature_strings[f]));
        }
      }
      FsListResult tmp_left = RealFs()->ListDir(dir + "/tmp");
      if (!tmp_left.entries.empty()) {
        return Violation("crashio/recovery-tmp-orphans",
                         describe("leg C", "tmp files survived startup GC"));
      }
    }

    // Leg D — a shard job: a faulted worker runs partway and "dies", then
    // a fresh coordinator over a clean filesystem drives the job to a
    // bit-identical merge (quarantining poison shards if needed); a
    // fault-free control job quarantines nothing.
    {
      const std::string job_dir = (root / "d" / "job").string();
      Result<std::size_t> published = serve::PublishShardJob(
          job_dir, db, feature_strings, /*entity_block=*/2,
          /*cache_dir=*/std::string());
      if (!published.ok()) {
        return Violation("crashio/shard-publish-failed",
                         describe("leg D", published.error().message()));
      }
      FaultFsOptions worker_fault;
      worker_fault.seed = rng.Next() | 1;
      worker_fault.fail_chance = 0.15;
      worker_fault.torn_write_chance = 0.3;
      worker_fault.crash_after_ops = 20 + rng.Below(60);
      FaultFsEnv worker_env(worker_fault);
      Result<serve::ShardJob> worker_job =
          serve::LoadShardJob(job_dir, &worker_env);
      if (worker_job.ok()) {
        serve::ShardWorkerOptions worker_options;
        worker_options.max_shards = 1 + rng.Below(4);
        worker_options.poll = std::chrono::milliseconds(0);
        // The worker may give up or "die" mid-job; either is the point.
        (void)serve::WorkOnShardJob(job_dir, worker_job.value(),
                                    worker_options);
      }

      Result<serve::ShardJob> coordinator_job = serve::LoadShardJob(job_dir);
      if (!coordinator_job.ok()) {
        return Violation("crashio/shard-reload-failed",
                         describe("leg D", coordinator_job.error().message()));
      }
      serve::ShardCoordinatorOptions coordinator;
      coordinator.lease = std::chrono::milliseconds(0);  // Worker is "dead".
      coordinator.poll = std::chrono::milliseconds(0);
      coordinator.quarantine_after = 2;
      Result<serve::ShardMergeResult> merged =
          serve::CoordinateShardJob(job_dir, coordinator_job.value(),
                                    coordinator);
      if (!merged.ok()) {
        return Violation("crashio/shard-merge-failed",
                         describe("leg D", merged.error().message()));
      }
      for (std::size_t f = 0; f < features.size(); ++f) {
        for (std::size_t e = 0; e < entities.size(); ++e) {
          const char expected =
              truth[f]->Selects(db, entities[e]) ? 1 : 0;
          if (merged.value().flags[f][e] != expected) {
            return Violation("crashio/shard-merge-mismatch",
                             describe("leg D", feature_strings[f]));
          }
        }
      }
      if (!serve::ShardJobDone(job_dir)) {
        return Violation("crashio/shard-not-done",
                         describe("leg D", "done marker missing after merge"));
      }

      // Fault-free control: nothing may be quarantined when nothing fails.
      const std::string clean_dir = (root / "d" / "clean").string();
      Result<std::size_t> clean_published = serve::PublishShardJob(
          clean_dir, db, feature_strings, /*entity_block=*/2,
          /*cache_dir=*/std::string());
      if (clean_published.ok()) {
        Result<serve::ShardJob> clean_job = serve::LoadShardJob(clean_dir);
        if (clean_job.ok()) {
          Result<serve::ShardMergeResult> clean_merged =
              serve::CoordinateShardJob(clean_dir, clean_job.value(),
                                        coordinator);
          if (!clean_merged.ok() ||
              clean_merged.value().quarantined_shards != 0 ||
              clean_merged.value().corrupt_results != 0) {
            return Violation(
                "crashio/quarantine-false-positive",
                describe("leg D", "fault-free job quarantined shards"));
          }
        }
      }
    }
    return std::nullopt;
  };

  PropertyCheck result = run();
  std::error_code ec;
  fsys::remove_all(root, ec);
  return result;
}

}  // namespace testing
}  // namespace featsep
