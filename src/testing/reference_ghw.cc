#include "testing/reference_ghw.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "util/check.h"

namespace featsep {
namespace testing {

namespace {

bool CoveredBy(const Hypergraph& graph, const std::vector<HVertex>& vertices,
               const std::vector<HEdge>& edges) {
  for (HVertex v : vertices) {
    bool covered = false;
    for (HEdge e : edges) {
      const std::vector<HVertex>& edge = graph.edge(e);
      if (std::find(edge.begin(), edge.end(), v) != edge.end()) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

/// Enumerates all size-`size` edge subsets starting from `first`; true if
/// some completion of `chosen` covers `vertices`.
bool AnyCoverOfSize(const Hypergraph& graph,
                    const std::vector<HVertex>& vertices, std::size_t size,
                    HEdge first, std::vector<HEdge>& chosen) {
  if (chosen.size() == size) return CoveredBy(graph, vertices, chosen);
  for (HEdge e = first; e < graph.num_edges(); ++e) {
    chosen.push_back(e);
    if (AnyCoverOfSize(graph, vertices, size, e + 1, chosen)) {
      chosen.pop_back();
      return true;
    }
    chosen.pop_back();
  }
  return false;
}

}  // namespace

std::size_t RefEdgeCoverNumber(const Hypergraph& graph,
                               const std::vector<HVertex>& vertices) {
  FEATSEP_CHECK_LE(graph.num_edges(), 20u)
      << "reference cover enumeration is exponential; instance too large";
  for (std::size_t size = 0; size <= graph.num_edges(); ++size) {
    std::vector<HEdge> chosen;
    if (AnyCoverOfSize(graph, vertices, size, 0, chosen)) return size;
  }
  return graph.num_edges() + 1;
}

bool RefValidateDecomposition(const Hypergraph& graph,
                              const TreeDecomposition& td, std::size_t k,
                              std::string* error) {
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = "reference: " + reason;
    return false;
  };
  if (td.empty()) {
    // An empty decomposition only covers the edgeless hypergraph.
    for (HEdge e = 0; e < graph.num_edges(); ++e) {
      if (!graph.edge(e).empty()) {
        return fail("empty decomposition for a hypergraph with edges");
      }
    }
    return true;
  }
  if (td.root >= td.nodes.size()) return fail("root out of range");

  // (1) Tree shape: every node reachable from the root exactly once via
  // children links.
  std::vector<int> seen(td.nodes.size(), 0);
  std::deque<std::size_t> queue{td.root};
  seen[td.root] = 1;
  std::size_t reached = 0;
  while (!queue.empty()) {
    std::size_t node = queue.front();
    queue.pop_front();
    ++reached;
    for (std::size_t child : td.nodes[node].children) {
      if (child >= td.nodes.size()) return fail("child index out of range");
      if (seen[child] != 0) {
        return fail("node reached twice (not a tree)");
      }
      seen[child] = 1;
      queue.push_back(child);
    }
  }
  if (reached != td.nodes.size()) {
    return fail("unreachable decomposition node");
  }

  // (2) Edge coverage: each edge's vertices inside one bag.
  for (HEdge e = 0; e < graph.num_edges(); ++e) {
    const std::vector<HVertex>& edge = graph.edge(e);
    bool contained = false;
    for (const TreeDecomposition::Node& node : td.nodes) {
      if (std::includes(node.bag.begin(), node.bag.end(), edge.begin(),
                        edge.end())) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      std::ostringstream out;
      out << "edge " << e << " not contained in any bag";
      return fail(out.str());
    }
  }

  // (3) Connectedness: per vertex, BFS over the undirected tree restricted
  // to nodes whose bags contain it.
  std::vector<std::vector<std::size_t>> adjacent(td.nodes.size());
  for (std::size_t node = 0; node < td.nodes.size(); ++node) {
    for (std::size_t child : td.nodes[node].children) {
      adjacent[node].push_back(child);
      adjacent[child].push_back(node);
    }
  }
  for (HVertex v = 0; v < graph.num_vertices(); ++v) {
    std::vector<std::size_t> occurrences;
    for (std::size_t node = 0; node < td.nodes.size(); ++node) {
      const std::vector<HVertex>& bag = td.nodes[node].bag;
      if (std::find(bag.begin(), bag.end(), v) != bag.end()) {
        occurrences.push_back(node);
      }
    }
    if (occurrences.size() <= 1) continue;
    std::vector<int> visited(td.nodes.size(), 0);
    std::deque<std::size_t> frontier{occurrences[0]};
    visited[occurrences[0]] = 1;
    while (!frontier.empty()) {
      std::size_t node = frontier.front();
      frontier.pop_front();
      for (std::size_t next : adjacent[node]) {
        const std::vector<HVertex>& bag = td.nodes[next].bag;
        if (visited[next] == 0 &&
            std::find(bag.begin(), bag.end(), v) != bag.end()) {
          visited[next] = 1;
          frontier.push_back(next);
        }
      }
    }
    for (std::size_t node : occurrences) {
      if (visited[node] == 0) {
        std::ostringstream out;
        out << "vertex " << v << " occurrences are disconnected";
        return fail(out.str());
      }
    }
  }

  // (4) Bag width: brute-force cover number per bag.
  for (std::size_t node = 0; node < td.nodes.size(); ++node) {
    std::size_t cover = RefEdgeCoverNumber(graph, td.nodes[node].bag);
    if (cover > k) {
      std::ostringstream out;
      out << "bag of node " << node << " has cover number " << cover
          << " > " << k;
      return fail(out.str());
    }
  }
  return true;
}

}  // namespace testing
}  // namespace featsep
