#ifndef FEATSEP_TESTING_CORPUS_H_
#define FEATSEP_TESTING_CORPUS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "testing/instance.h"
#include "util/result.h"

namespace featsep {
namespace testing {

/// Persistent fuzz corpus: serialized FuzzInstances, one per file, named by
/// a content hash so concurrent fuzzers and CI caches merge by plain file
/// copy. The text format composes the io layer's database/CQ syntax:
///
///   config covergame
///   k 2
///   [db_a]
///   relation E 2
///   E(v0, v1)
///   [end]
///   [db_b]
///   ...
///   [end]
///
/// plus `query`/`query2` rule lines (parsed against db_a's schema),
/// `seed`/`frozen`/`positives`/`negatives` value-name lists, `label` lines,
/// `example ±1 ... : ±1` feature rows, and `lp_row`/`lp_obj` integer rows.
/// Values are referenced by *name* (ids are re-interned on load); a seed id
/// outside the database — the generator's stale-id probe — serializes as
/// `#<id>`.

/// Renders `instance` in the corpus text format.
std::string SerializeFuzzInstance(const FuzzInstance& instance);

/// Parses the corpus text format. The result is sanitized
/// (SanitizeFuzzInstance), so adversarial or hand-edited entries cannot
/// exceed the reference-oracle budget.
Result<FuzzInstance> DeserializeFuzzInstance(std::string_view text);

/// The content-hash file name (FNV-1a 64 in hex + ".fz") for serialized
/// text.
std::string FuzzInstanceFileName(std::string_view serialized);

/// Writes `instance` into `dir` under its content-hash name; returns the
/// path, or an Error on I/O failure. Also used for crash artifacts.
Result<std::string> WriteFuzzInstanceFile(const std::string& dir,
                                          const FuzzInstance& instance);

/// The corpus held in memory, optionally mirrored to a directory.
class Corpus {
 public:
  /// Empty `dir`: in-memory only (Add never touches disk).
  explicit Corpus(std::string dir = "");

  /// Loads every *.fz file of the directory in lexicographic (hash) order.
  /// Unparseable files are skipped and reported into `errors` when non-null.
  /// Returns the number of instances loaded. No-op without a directory.
  std::size_t Load(std::vector<std::string>* errors = nullptr);

  /// Admits an instance (the scheduler calls this only on new coverage) and
  /// persists it when a directory is set. Returns its index, or an Error
  /// when the directory write fails (the in-memory admission still holds).
  Result<std::size_t> Add(const FuzzInstance& instance);

  std::size_t size() const { return instances_.size(); }
  const FuzzInstance& instance(std::size_t i) const { return instances_[i]; }
  /// Source path of entry i; empty for entries never written to disk.
  const std::string& path(std::size_t i) const { return paths_[i]; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::vector<FuzzInstance> instances_;
  std::vector<std::string> paths_;
};

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_CORPUS_H_
