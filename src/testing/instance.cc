#include "testing/instance.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "relational/database_ops.h"
#include "relational/training_database.h"
#include "testing/faults.h"
#include "testing/random_instance.h"
#include "testing/shrink.h"
#include "util/check.h"
#include "workload/generators.h"

namespace featsep {
namespace testing {

namespace {

/// Cap on |dom(to)|^|dom(from)| (resp. |dom(D)|^|vars(q)|): the reference
/// oracle is brute force, so instance sizes are chosen to keep its search
/// space bounded regardless of how unlucky a seed or a mutation chain is.
constexpr double kOracleBudget = 2e5;

/// Largest value count in [2, hi] whose `exponent`-th power stays within
/// the oracle budget.
std::size_t BoundedValues(std::size_t exponent, std::size_t hi) {
  std::size_t v = hi;
  while (v > 2 &&
         std::pow(static_cast<double>(v), static_cast<double>(exponent)) >
             kOracleBudget) {
    --v;
  }
  return v;
}

/// Largest exponent in [2, hi] with base^exponent within the oracle budget.
std::size_t BoundedExponent(std::size_t base, std::size_t hi) {
  std::size_t e = hi;
  while (e > 2 &&
         std::pow(static_cast<double>(base), static_cast<double>(e)) >
             kOracleBudget) {
    --e;
  }
  return e;
}

std::shared_ptr<const Schema> PickSchema(WorkloadRng& rng,
                                         std::size_t max_arity,
                                         bool need_entity) {
  if (!need_entity && rng.Chance(0.25)) {
    RandomSchemaParams params;
    params.num_relations = rng.Range(1, 3);
    params.max_arity = max_arity;
    params.entity_schema = false;
    return RandomSchema(params, rng);
  }
  if (rng.Chance(0.5)) return GraphWorkloadSchema();
  RandomSchemaParams params;
  params.num_relations = rng.Range(1, 3);
  params.max_arity = max_arity;
  params.entity_schema = true;
  return RandomSchema(params, rng);
}

Database PickDatabase(std::shared_ptr<const Schema> schema, WorkloadRng& rng,
                      std::size_t max_values, std::size_t max_facts) {
  RandomDatabaseParams params;
  params.num_values = rng.Range(2, max_values);
  params.num_facts = rng.Range(max_facts / 2, max_facts);
  params.entity_fraction = 0.2 + 0.4 * rng.Uniform();
  return RandomDatabase(std::move(schema), params, rng);
}

/// Rebuilds `db` keeping only facts that satisfy `keep`, at most
/// `max_facts` of them (insertion order). Every original constant name is
/// re-interned first, so value ids carry over and references held by the
/// instance (labels, seeds, frozen sets) stay valid.
template <typename KeepFact>
Database FilterFacts(const Database& db, KeepFact keep,
                     std::size_t max_facts) {
  Database out(db.schema_ptr());
  for (Value v = 0; v < db.num_values(); ++v) out.Intern(db.value_name(v));
  std::size_t added = 0;
  for (const Fact& fact : db.facts()) {
    if (added >= max_facts) break;
    if (!keep(fact)) continue;
    out.AddFact(fact.relation, fact.args);
    ++added;
  }
  return out;
}

/// Trims to at most `max_values` domain values (the lowest ids survive) and
/// `max_facts` facts. Id-stable; dropped values become isolated.
Database TrimDatabase(const Database& db, std::size_t max_values,
                      std::size_t max_facts) {
  if (db.domain().size() <= max_values && db.size() <= max_facts) {
    return db;
  }
  std::vector<bool> kept(db.num_values(), false);
  std::size_t taken = 0;
  for (Value v : db.domain()) {
    if (taken >= max_values) break;
    kept[v] = true;
    ++taken;
  }
  return FilterFacts(
      db,
      [&](const Fact& fact) {
        for (Value v : fact.args) {
          if (!kept[v]) return false;
        }
        return true;
      },
      max_facts);
}

/// Caps η(D) at `max_entities` by dropping the entity facts of every
/// further entity (the entity's other facts survive; it just stops being a
/// labeled example).
Database TrimEntities(const Database& db, std::size_t max_entities) {
  if (!db.schema().has_entity_relation()) return db;
  std::vector<Value> entities = db.Entities();
  if (entities.size() <= max_entities) return db;
  std::vector<bool> kept(db.num_values(), false);
  for (std::size_t i = 0; i < max_entities; ++i) kept[entities[i]] = true;
  RelationId eta = db.schema().entity_relation();
  return FilterFacts(
      db,
      [&](const Fact& fact) {
        return fact.relation != eta || kept[fact.args[0]];
      },
      db.size());
}

/// Keeps only label pairs naming current entities (first occurrence wins)
/// and drops the entity facts of entities with no label, so the rebuilt
/// TrainingDatabase is totally labeled.
void ReconcileLabels(FuzzInstance* instance) {
  if (!instance->db_a.has_value() ||
      !instance->db_a->schema().has_entity_relation()) {
    instance->labels.clear();
    return;
  }
  const Database& db = *instance->db_a;
  std::vector<bool> labeled(db.num_values(), false);
  std::vector<std::pair<Value, Label>> kept;
  for (auto& [value, label] : instance->labels) {
    if (value >= db.num_values() || !db.IsEntity(value) || labeled[value]) {
      continue;
    }
    labeled[value] = true;
    kept.emplace_back(value, label > 0 ? kPositive : kNegative);
  }
  instance->labels = std::move(kept);
  RelationId eta = db.schema().entity_relation();
  bool orphaned = false;
  for (Value e : db.Entities()) {
    if (!labeled[e]) {
      orphaned = true;
      break;
    }
  }
  if (orphaned) {
    instance->db_a = FilterFacts(
        db,
        [&](const Fact& fact) {
          return fact.relation != eta || labeled[fact.args[0]];
        },
        db.size());
  }
}

TrainingDatabase RebuildTraining(const FuzzInstance& instance) {
  auto db = std::make_shared<Database>(*instance.db_a);
  TrainingDatabase training(db);
  for (const auto& [value, label] : instance.labels) {
    if (value < db->num_values() && db->IsEntity(value)) {
      training.SetLabel(value, label);
    }
  }
  return training;
}

/// Drops trailing atoms down to `max_atoms`, then nulls the query if it
/// went unsafe (the config turns vacuous rather than feeding the engines a
/// non-range-restricted query).
void ClampQuery(std::optional<ConjunctiveQuery>* query,
                std::size_t max_atoms) {
  if (!query->has_value()) return;
  while ((*query)->atoms().size() > max_atoms) {
    **query = WithoutAtom(**query, (*query)->atoms().size() - 1);
  }
  if (!QueryIsSafe(**query)) query->reset();
}

/// Keeps values that exist in `db`, at most `max_size` of them.
void PruneValues(const Database& db, std::size_t max_size,
                 std::vector<Value>* values) {
  std::vector<Value> kept;
  for (Value v : *values) {
    if (kept.size() >= max_size) break;
    if (v < db.num_values() && db.InDomain(v)) kept.push_back(v);
  }
  *values = std::move(kept);
}

void PruneEntities(const Database& db, std::size_t max_size,
                   std::vector<Value>* values) {
  std::vector<Value> kept;
  for (Value v : *values) {
    if (kept.size() >= max_size) break;
    if (v < db.num_values() && db.IsEntity(v)) kept.push_back(v);
  }
  *values = std::move(kept);
}

Rational ClampRational(const Rational& value, std::int64_t magnitude) {
  if (Rational(magnitude) < value) return Rational(magnitude);
  if (value < Rational(-magnitude)) return Rational(-magnitude);
  return value;
}

int64_t SmallCoefficient(WorkloadRng& rng) {
  return static_cast<std::int64_t>(rng.Below(7)) - 3;
}

}  // namespace

bool QueryIsSafe(const ConjunctiveQuery& query) {
  if (query.atoms().empty()) return false;
  for (Variable v : query.free_variables()) {
    bool occurs = false;
    for (const CqAtom& atom : query.atoms()) {
      if (std::find(atom.args.begin(), atom.args.end(), v) !=
          atom.args.end()) {
        occurs = true;
        break;
      }
    }
    if (!occurs) return false;
  }
  return true;
}

FuzzInstance GenerateFuzzInstance(FuzzConfig config,
                                  std::uint64_t instance_seed) {
  if (config == FuzzConfig::kMixed) {
    constexpr FuzzConfig kAll[] = {
        FuzzConfig::kHom,       FuzzConfig::kEval, FuzzConfig::kContainment,
        FuzzConfig::kCore,      FuzzConfig::kGhw,  FuzzConfig::kSep,
        FuzzConfig::kQbe,       FuzzConfig::kCoverGame,
        FuzzConfig::kDimension, FuzzConfig::kLinsep};
    WorkloadRng selector(instance_seed);
    config = kAll[selector.Below(10)];
  }
  // The generation stream depends only on (instance_seed, resolved config),
  // so `--config <resolved> --seed S --iters 1` replays an instance found
  // under `--config mixed` exactly.
  WorkloadRng rng(instance_seed ^
                  (0x9e3779b97f4a7c15ULL *
                   (static_cast<std::uint64_t>(config) + 1)));

  FuzzInstance instance;
  instance.config = config;

  switch (config) {
    case FuzzConfig::kHom: {
      instance.schema = PickSchema(rng, 3, /*need_entity=*/false);
      Database to = PickDatabase(instance.schema, rng, 5, 12);
      std::size_t from_values = BoundedExponent(
          std::max<std::size_t>(to.domain().size(), 2), 7);
      Database from = PickDatabase(instance.schema, rng, from_values, 12);
      if (rng.Chance(0.3) && !from.domain().empty() && !to.domain().empty()) {
        // Mostly well-formed seed pairs, sometimes stale ids to exercise
        // the free-seed and out-of-domain paths.
        Value source = rng.Chance(0.8)
                           ? from.domain()[rng.Below(from.domain().size())]
                           : static_cast<Value>(from.num_values() +
                                                rng.Below(3));
        Value image = rng.Chance(0.8)
                          ? to.domain()[rng.Below(to.domain().size())]
                          : static_cast<Value>(to.num_values() + rng.Below(3));
        instance.hom_seed.emplace_back(source, image);
      }
      if (rng.Chance(0.25)) {
        instance.db_c = PickDatabase(instance.schema, rng, 5, 10);
      }
      instance.db_a = std::move(from);
      instance.db_b = std::move(to);
      break;
    }
    case FuzzConfig::kEval: {
      instance.schema = PickSchema(rng, 2, /*need_entity=*/false);
      RandomCqParams cq_params;
      cq_params.num_atoms = rng.Range(1, 4);
      instance.query = RandomUnaryCq(instance.schema, cq_params, rng);
      std::size_t max_values =
          BoundedValues(instance.query->num_variables(), 6);
      instance.db_a = PickDatabase(instance.schema, rng, max_values, 12);
      break;
    }
    case FuzzConfig::kContainment: {
      instance.schema = PickSchema(rng, 2, /*need_entity=*/false);
      RandomCqParams cq_params;
      cq_params.num_atoms = rng.Range(1, 3);
      instance.query = RandomUnaryCq(instance.schema, cq_params, rng);
      cq_params.num_atoms = rng.Range(1, 3);
      instance.query2 = RandomUnaryCq(instance.schema, cq_params, rng);
      std::size_t max_values = BoundedValues(
          std::max(instance.query->num_variables(),
                   instance.query2->num_variables()),
          5);
      instance.db_a = PickDatabase(instance.schema, rng, max_values, 10);
      break;
    }
    case FuzzConfig::kCore: {
      instance.schema = PickSchema(rng, 3, /*need_entity=*/false);
      instance.db_a = PickDatabase(instance.schema, rng, 6, 10);
      if (!instance.db_a->domain().empty()) {
        const std::vector<Value>& domain = instance.db_a->domain();
        for (std::size_t i = rng.Below(3); i > 0; --i) {
          instance.frozen.push_back(domain[rng.Below(domain.size())]);
        }
      }
      // Rides along: a small query for the MinimizeCq oracle laws. Kept at
      // ≤ 3 atoms so the reference Chandra–Merlin checks stay brute-force
      // sized.
      RandomCqParams cq_params;
      cq_params.num_atoms = rng.Range(1, 3);
      instance.query = RandomUnaryCq(instance.schema, cq_params, rng);
      break;
    }
    case FuzzConfig::kGhw: {
      instance.schema = PickSchema(rng, 3, /*need_entity=*/false);
      RandomCqParams cq_params;
      cq_params.num_atoms = rng.Range(2, 5);
      instance.query = RandomUnaryCq(instance.schema, cq_params, rng);
      // An empty database carries the schema through serialization.
      instance.db_a.emplace(instance.schema);
      break;
    }
    case FuzzConfig::kSep: {
      instance.schema = PickSchema(rng, 3, /*need_entity=*/true);
      RandomDatabaseParams params;
      params.num_values = rng.Range(3, 6);
      params.num_facts = rng.Range(5, 12);
      params.entity_fraction = 0.3 + 0.4 * rng.Uniform();
      std::shared_ptr<TrainingDatabase> training =
          RandomTrainingDatabase(instance.schema, params, rng);
      instance.db_a = training->database();
      instance.labels = training->labeling().Items();
      break;
    }
    case FuzzConfig::kQbe: {
      // Tiny entity databases: the canonical product has |D|^|S⁺| facts and
      // the CQ[m] check reference-evaluates the explanation, so |S⁺| ≤ 2,
      // arity ≤ 2, and m ≤ 2 keep every oracle fuzz-sized.
      instance.schema = PickSchema(rng, 2, /*need_entity=*/true);
      instance.db_a = PickDatabase(instance.schema, rng, 5, 10);
      std::vector<Value> entities = instance.db_a->Entities();
      if (entities.empty()) break;  // Vacuous: QBE needs a nonempty S⁺.
      for (std::size_t i = entities.size() - 1; i > 0; --i) {
        std::swap(entities[i], entities[rng.Below(i + 1)]);
      }
      std::size_t num_positives =
          (entities.size() > 1 && rng.Chance(0.4)) ? 2 : 1;
      instance.positives.assign(entities.begin(),
                                entities.begin() + num_positives);
      std::size_t num_negatives =
          std::min(entities.size() - num_positives,
                   static_cast<std::size_t>(rng.Below(3)));
      instance.negatives.assign(
          entities.begin() + num_positives,
          entities.begin() + num_positives + num_negatives);
      instance.m = rng.Chance(0.7) ? 1 : 2;
      break;
    }
    case FuzzConfig::kCoverGame: {
      // The solver's position set is |dom(from)|^k × |dom(to)|^k and the
      // completeness check plays at k = |from|, so both sides stay tiny.
      instance.schema = PickSchema(rng, 2, /*need_entity=*/false);
      instance.db_a = PickDatabase(instance.schema, rng, 4, 6);
      instance.db_b = PickDatabase(instance.schema, rng, 4, 6);
      instance.k = rng.Range(1, 2);
      break;
    }
    case FuzzConfig::kDimension: {
      // η(D) ≤ 3 keeps ℓ_max = 2^{|η(D)|−1} ≤ 4 subsets, so the Sep[ℓ_max]
      // vs DecideCqSep agreement law always runs.
      instance.schema = PickSchema(rng, 2, /*need_entity=*/true);
      Database db = PickDatabase(instance.schema, rng, 5, 8);
      db = TrimEntities(db, 3);
      std::vector<Value> entities = db.Entities();
      for (Value e : entities) {
        instance.labels.emplace_back(
            e, rng.Chance(0.5) ? kPositive : kNegative);
      }
      instance.db_a = std::move(db);
      instance.ell = rng.Range(1, 2);
      break;
    }
    case FuzzConfig::kFaults: {
      // A sep-shaped training instance plus a fault spec. Sites are the
      // FEATSEP_FAULT_POINT carriers; the hom and simplex sites are the ones
      // the sep drivers actually visit — the others exercise the
      // armed-but-never-fired path.
      instance.schema = PickSchema(rng, 3, /*need_entity=*/true);
      RandomDatabaseParams params;
      params.num_values = rng.Range(3, 6);
      params.num_facts = rng.Range(5, 12);
      params.entity_fraction = 0.3 + 0.4 * rng.Uniform();
      std::shared_ptr<TrainingDatabase> training =
          RandomTrainingDatabase(instance.schema, params, rng);
      instance.db_a = training->database();
      instance.labels = training->labeling().Items();
      constexpr CoverageSite kFaultSites[] = {
          CoverageSite::kHomNode, CoverageSite::kHomNode,
          CoverageSite::kHomBacktrack, CoverageSite::kSimplexPivot,
          CoverageSite::kGhwSubproblemSolved,
          CoverageSite::kCoverFixpointRound};
      instance.fault_site = static_cast<std::uint16_t>(
          kFaultSites[rng.Below(6)]);
      instance.fault_kind = static_cast<std::uint8_t>(rng.Below(3));
      instance.fault_visit = 1 + rng.Below(40);
      break;
    }
    case FuzzConfig::kServe: {
      // An entity database plus an interleaving seed and op count; the
      // feature set is derived deterministically from the schema inside the
      // property driver, so the instance stays serializable as (db, k, m).
      instance.schema = PickSchema(rng, 2, /*need_entity=*/true);
      instance.db_a = PickDatabase(instance.schema, rng, 5, 10);
      instance.k = rng.Next() >> 1;  // Interleaving seed.
      instance.m = rng.Range(6, 40);  // Submit/poll/cancel/pause op count.
      break;
    }
    case FuzzConfig::kIncremental: {
      // A starting entity database plus a trace seed and step count; the
      // mutation trace itself is derived deterministically from `k` inside
      // the property driver, so the instance serializes as (db, k, m).
      instance.schema = PickSchema(rng, 2, /*need_entity=*/true);
      instance.db_a = PickDatabase(instance.schema, rng, 4, 8);
      instance.k = rng.Next() >> 1;  // Mutation-trace seed.
      instance.m = rng.Range(4, 24);  // Insert/remove/relabel step count.
      break;
    }
    case FuzzConfig::kCrashIo: {
      // An entity database plus a fault-schedule seed and op count; the
      // fault schedules, crash points, and request traces are all derived
      // deterministically from `k` inside the property driver, so the
      // instance serializes as (db, k, m) like kServe/kIncremental.
      instance.schema = PickSchema(rng, 2, /*need_entity=*/true);
      instance.db_a = PickDatabase(instance.schema, rng, 4, 8);
      instance.k = rng.Next() >> 1;  // Fault-schedule seed.
      instance.m = rng.Range(4, 24);  // Durable-tier op count.
      break;
    }
    case FuzzConfig::kLinsep: {
      std::size_t num_features = rng.Range(1, 3);
      std::size_t num_examples = rng.Range(1, 6);
      for (std::size_t i = 0; i < num_examples; ++i) {
        FeatureVector features;
        for (std::size_t j = 0; j < num_features; ++j) {
          features.push_back(rng.Chance(0.5) ? 1 : -1);
        }
        instance.features.push_back(std::move(features));
        instance.feature_labels.push_back(rng.Chance(0.5) ? kPositive
                                                          : kNegative);
      }
      std::size_t lp_vars = rng.Range(1, 3);
      std::size_t lp_rows = rng.Range(1, 4);
      for (std::size_t i = 0; i < lp_rows; ++i) {
        std::vector<Rational> row;
        for (std::size_t j = 0; j < lp_vars; ++j) {
          row.emplace_back(SmallCoefficient(rng));
        }
        instance.lp.a.push_back(std::move(row));
        instance.lp.b.emplace_back(static_cast<std::int64_t>(rng.Below(7)) -
                                   2);
      }
      for (std::size_t j = 0; j < lp_vars; ++j) {
        instance.lp.c.emplace_back(SmallCoefficient(rng));
      }
      break;
    }
    case FuzzConfig::kMixed:
      FEATSEP_CHECK(false) << "mixed resolved above";
  }
  return instance;
}

PropertyCheck CheckFuzzInstance(const FuzzInstance& instance) {
  switch (instance.config) {
    case FuzzConfig::kHom: {
      if (!instance.db_a.has_value() || !instance.db_b.has_value()) {
        return std::nullopt;
      }
      PropertyCheck violation = CheckHomAgainstReference(
          *instance.db_a, *instance.db_b, instance.hom_seed);
      if (!violation.has_value() && instance.db_c.has_value()) {
        violation = CheckHomComposition(*instance.db_a, *instance.db_b,
                                        *instance.db_c);
      }
      return violation;
    }
    case FuzzConfig::kEval:
      if (!instance.query.has_value() || !instance.db_a.has_value()) {
        return std::nullopt;
      }
      return CheckEvaluationAgainstReference(*instance.query,
                                             *instance.db_a);
    case FuzzConfig::kContainment:
      if (!instance.query.has_value() || !instance.query2.has_value() ||
          !instance.db_a.has_value()) {
        return std::nullopt;
      }
      return CheckContainmentAgainstReference(*instance.query,
                                              *instance.query2,
                                              *instance.db_a);
    case FuzzConfig::kCore: {
      if (!instance.db_a.has_value()) return std::nullopt;
      PropertyCheck violation =
          CheckCoreProperties(*instance.db_a, instance.frozen);
      if (!violation.has_value() && instance.query.has_value()) {
        violation = CheckMinimizeCq(*instance.query);
      }
      return violation;
    }
    case FuzzConfig::kGhw:
      if (!instance.query.has_value()) return std::nullopt;
      return CheckGhwProperties(*instance.query);
    case FuzzConfig::kSep:
      if (!instance.db_a.has_value() ||
          !instance.db_a->schema().has_entity_relation()) {
        return std::nullopt;
      }
      return CheckSepThreadDeterminism(RebuildTraining(instance));
    case FuzzConfig::kQbe:
      if (!instance.db_a.has_value() || instance.positives.empty()) {
        return std::nullopt;
      }
      return CheckQbeProperties(*instance.db_a, instance.positives,
                                instance.negatives, instance.m);
    case FuzzConfig::kCoverGame:
      if (!instance.db_a.has_value() || !instance.db_b.has_value() ||
          instance.k == 0) {
        return std::nullopt;
      }
      return CheckCoverGameProperties(*instance.db_a, *instance.db_b,
                                      instance.k);
    case FuzzConfig::kDimension:
      if (!instance.db_a.has_value() ||
          !instance.db_a->schema().has_entity_relation() ||
          instance.ell == 0) {
        return std::nullopt;
      }
      return CheckSepDimProperties(RebuildTraining(instance), instance.ell);
    case FuzzConfig::kFaults:
      if (!instance.db_a.has_value() ||
          !instance.db_a->schema().has_entity_relation()) {
        return std::nullopt;
      }
      return CheckFaultInjectionProperties(
          RebuildTraining(instance),
          static_cast<CoverageSite>(instance.fault_site),
          static_cast<FaultKind>(instance.fault_kind), instance.fault_visit);
    case FuzzConfig::kServe:
      if (!instance.db_a.has_value() ||
          !instance.db_a->schema().has_entity_relation()) {
        return std::nullopt;
      }
      return CheckServeAsyncProperties(*instance.db_a, instance.k,
                                       instance.m);
    case FuzzConfig::kIncremental:
      if (!instance.db_a.has_value() ||
          !instance.db_a->schema().has_entity_relation()) {
        return std::nullopt;
      }
      return CheckIncrementalProperties(*instance.db_a, instance.k,
                                        instance.m);
    case FuzzConfig::kCrashIo:
      if (!instance.db_a.has_value() ||
          !instance.db_a->schema().has_entity_relation()) {
        return std::nullopt;
      }
      return CheckCrashIoProperties(*instance.db_a, instance.k, instance.m);
    case FuzzConfig::kLinsep: {
      TrainingCollection examples;
      for (std::size_t i = 0; i < instance.features.size(); ++i) {
        examples.emplace_back(instance.features[i],
                              instance.feature_labels[i]);
      }
      return CheckLinsepProperties(examples, instance.lp);
    }
    case FuzzConfig::kMixed:
      FEATSEP_CHECK(false) << "instances never carry kMixed";
  }
  return std::nullopt;
}

void SanitizeFuzzInstance(FuzzInstance* instance) {
  switch (instance->config) {
    case FuzzConfig::kHom: {
      if (instance->db_b.has_value()) {
        *instance->db_b = TrimDatabase(*instance->db_b, 5, 12);
      }
      if (instance->db_a.has_value()) {
        std::size_t dom_to = instance->db_b.has_value()
                                 ? instance->db_b->domain().size()
                                 : 2;
        std::size_t from_cap =
            BoundedExponent(std::max<std::size_t>(dom_to, 2), 7);
        *instance->db_a = TrimDatabase(*instance->db_a, from_cap, 12);
      }
      if (instance->db_c.has_value()) {
        *instance->db_c = TrimDatabase(*instance->db_c, 5, 10);
      }
      if (instance->hom_seed.size() > 2) instance->hom_seed.resize(2);
      if (instance->db_a.has_value() && instance->db_b.has_value()) {
        // Stale seed ids are a feature, but keep them within the window the
        // generator uses (num_values + 3) so shrinking stays meaningful.
        std::vector<std::pair<Value, Value>> kept;
        for (auto& [source, image] : instance->hom_seed) {
          if (source < instance->db_a->num_values() + 3 &&
              image < instance->db_b->num_values() + 3) {
            kept.emplace_back(source, image);
          }
        }
        instance->hom_seed = std::move(kept);
      } else {
        instance->hom_seed.clear();
      }
      break;
    }
    case FuzzConfig::kEval: {
      ClampQuery(&instance->query, 4);
      if (instance->db_a.has_value()) {
        std::size_t vars =
            instance->query.has_value() ? instance->query->num_variables()
                                        : 2;
        *instance->db_a =
            TrimDatabase(*instance->db_a, BoundedValues(vars, 6), 12);
      }
      break;
    }
    case FuzzConfig::kContainment: {
      ClampQuery(&instance->query, 3);
      ClampQuery(&instance->query2, 3);
      if (instance->db_a.has_value()) {
        std::size_t vars = 2;
        if (instance->query.has_value()) {
          vars = std::max(vars, instance->query->num_variables());
        }
        if (instance->query2.has_value()) {
          vars = std::max(vars, instance->query2->num_variables());
        }
        *instance->db_a =
            TrimDatabase(*instance->db_a, BoundedValues(vars, 5), 10);
      }
      break;
    }
    case FuzzConfig::kCore: {
      if (instance->db_a.has_value()) {
        *instance->db_a = TrimDatabase(*instance->db_a, 6, 10);
        PruneValues(*instance->db_a, 2, &instance->frozen);
      } else {
        instance->frozen.clear();
      }
      ClampQuery(&instance->query, 3);
      break;
    }
    case FuzzConfig::kGhw:
      ClampQuery(&instance->query, 5);
      break;
    case FuzzConfig::kSep: {
      if (instance->db_a.has_value()) {
        *instance->db_a = TrimDatabase(*instance->db_a, 6, 12);
      }
      ReconcileLabels(instance);
      break;
    }
    case FuzzConfig::kFaults: {
      if (instance->db_a.has_value()) {
        *instance->db_a = TrimDatabase(*instance->db_a, 6, 12);
      }
      ReconcileLabels(instance);
      if (instance->fault_site >=
          static_cast<std::uint16_t>(CoverageSite::kNumSites)) {
        instance->fault_site =
            static_cast<std::uint16_t>(CoverageSite::kHomNode);
      }
      instance->fault_kind = static_cast<std::uint8_t>(
          instance->fault_kind % 3);
      if (instance->fault_visit == 0) instance->fault_visit = 1;
      break;
    }
    case FuzzConfig::kQbe: {
      if (instance->db_a.has_value()) {
        *instance->db_a = TrimDatabase(*instance->db_a, 5, 10);
        PruneEntities(*instance->db_a, 2, &instance->positives);
        PruneEntities(*instance->db_a, 2, &instance->negatives);
        // Disjoint example sets: a value can't be both S⁺ and S⁻.
        std::vector<Value> negatives;
        for (Value v : instance->negatives) {
          if (std::find(instance->positives.begin(),
                        instance->positives.end(),
                        v) == instance->positives.end()) {
            negatives.push_back(v);
          }
        }
        instance->negatives = std::move(negatives);
      } else {
        instance->positives.clear();
        instance->negatives.clear();
      }
      instance->m = std::clamp<std::size_t>(instance->m, 1, 2);
      break;
    }
    case FuzzConfig::kCoverGame:
      if (instance->db_a.has_value()) {
        *instance->db_a = TrimDatabase(*instance->db_a, 4, 6);
      }
      if (instance->db_b.has_value()) {
        *instance->db_b = TrimDatabase(*instance->db_b, 4, 6);
      }
      instance->k = std::clamp<std::size_t>(instance->k, 1, 2);
      break;
    case FuzzConfig::kDimension:
      if (instance->db_a.has_value()) {
        *instance->db_a = TrimDatabase(*instance->db_a, 5, 8);
        *instance->db_a = TrimEntities(*instance->db_a, 3);
      }
      ReconcileLabels(instance);
      instance->ell = std::clamp<std::size_t>(instance->ell, 1, 2);
      break;
    case FuzzConfig::kServe:
      if (instance->db_a.has_value()) {
        *instance->db_a = TrimDatabase(*instance->db_a, 5, 10);
      }
      instance->m = std::clamp<std::size_t>(instance->m, 1, 60);
      break;
    case FuzzConfig::kIncremental:
    case FuzzConfig::kCrashIo:
      if (instance->db_a.has_value()) {
        *instance->db_a = TrimDatabase(*instance->db_a, 4, 8);
      }
      instance->m = std::clamp<std::size_t>(instance->m, 1, 40);
      break;
    case FuzzConfig::kLinsep: {
      if (instance->features.size() > 6) instance->features.resize(6);
      std::size_t num_features =
          instance->features.empty() ? 0 : instance->features[0].size();
      num_features = std::min<std::size_t>(num_features, 3);
      for (FeatureVector& features : instance->features) {
        features.resize(num_features, 1);
        for (int& f : features) f = f > 0 ? 1 : -1;
      }
      instance->feature_labels.resize(instance->features.size(), kPositive);
      for (Label& label : instance->feature_labels) {
        label = label > 0 ? kPositive : kNegative;
      }
      if (instance->lp.c.size() > 3) instance->lp.c.resize(3);
      if (instance->lp.a.size() > 4) instance->lp.a.resize(4);
      instance->lp.b.resize(instance->lp.a.size());
      for (Rational& c : instance->lp.c) c = ClampRational(c, 8);
      for (Rational& b : instance->lp.b) b = ClampRational(b, 8);
      for (std::vector<Rational>& row : instance->lp.a) {
        row.resize(instance->lp.c.size());
        for (Rational& c : row) c = ClampRational(c, 8);
      }
      break;
    }
    case FuzzConfig::kMixed:
      FEATSEP_CHECK(false) << "instances never carry kMixed";
  }
}

FuzzInstance ShrinkFuzzInstance(
    FuzzInstance instance,
    const std::function<bool(const FuzzInstance&)>& still_failing) {
  auto candidate_fails = [&](FuzzInstance candidate) {
    SanitizeFuzzInstance(&candidate);
    return still_failing(candidate);
  };

  // Database fields shrink through the structural shrinkers, with the
  // candidate substituted into a copy of the *current* instance so already
  // accepted shrinks of other fields stay in effect.
  auto shrink_db =
      [&](std::optional<Database> FuzzInstance::*field) {
        if (!(instance.*field).has_value()) return;
        Database shrunk = ShrinkDatabase(
            *(instance.*field), [&](const Database& d) {
              FuzzInstance candidate = instance;
              candidate.*field = d;
              return candidate_fails(std::move(candidate));
            });
        instance.*field = std::move(shrunk);
      };

  // Query fields shrink by greedy atom removal.
  auto shrink_query =
      [&](std::optional<ConjunctiveQuery> FuzzInstance::*field) {
        if (!(instance.*field).has_value()) return;
        bool changed = true;
        while (changed) {
          changed = false;
          for (std::size_t i = 0; i < (instance.*field)->atoms().size();
               ++i) {
            ConjunctiveQuery smaller = WithoutAtom(*(instance.*field), i);
            if (!QueryIsSafe(smaller)) continue;
            FuzzInstance candidate = instance;
            candidate.*field = smaller;
            if (candidate_fails(std::move(candidate))) {
              instance.*field = std::move(smaller);
              changed = true;
              break;
            }
          }
        }
      };

  switch (instance.config) {
    case FuzzConfig::kHom:
    case FuzzConfig::kCoverGame: {
      if (!instance.db_a.has_value() || !instance.db_b.has_value()) break;
      auto [from, to] = ShrinkHomPair(
          *instance.db_a, *instance.db_b,
          [&](const Database& f, const Database& t) {
            FuzzInstance candidate = instance;
            candidate.db_a = f;
            candidate.db_b = t;
            return candidate_fails(std::move(candidate));
          });
      instance.db_a = std::move(from);
      instance.db_b = std::move(to);
      if (instance.config == FuzzConfig::kHom) {
        shrink_db(&FuzzInstance::db_c);
      } else if (instance.k > 1) {
        FuzzInstance candidate = instance;
        candidate.k = instance.k - 1;
        if (candidate_fails(std::move(candidate))) --instance.k;
      }
      break;
    }
    case FuzzConfig::kEval: {
      if (!instance.query.has_value() || !instance.db_a.has_value()) break;
      auto [query, db] = ShrinkCqInstance(
          *instance.query, *instance.db_a,
          [&](const ConjunctiveQuery& q, const Database& d) {
            FuzzInstance candidate = instance;
            candidate.query = q;
            candidate.db_a = d;
            return candidate_fails(std::move(candidate));
          });
      instance.query = std::move(query);
      instance.db_a = std::move(db);
      break;
    }
    case FuzzConfig::kContainment: {
      if (!instance.query.has_value() || !instance.query2.has_value() ||
          !instance.db_a.has_value()) {
        break;
      }
      // Alternate single-atom removals on either query, then shrink the
      // data, as long as the discrepancy persists.
      bool changed = true;
      while (changed) {
        std::size_t atoms_before = instance.query->atoms().size() +
                                   instance.query2->atoms().size();
        shrink_query(&FuzzInstance::query);
        shrink_query(&FuzzInstance::query2);
        std::size_t facts_before = instance.db_a->size();
        shrink_db(&FuzzInstance::db_a);
        changed = instance.query->atoms().size() +
                          instance.query2->atoms().size() !=
                      atoms_before ||
                  instance.db_a->size() != facts_before;
      }
      break;
    }
    case FuzzConfig::kCore:
      shrink_db(&FuzzInstance::db_a);
      shrink_query(&FuzzInstance::query);
      break;
    case FuzzConfig::kGhw:
      shrink_query(&FuzzInstance::query);
      break;
    case FuzzConfig::kSep:
    case FuzzConfig::kDimension:
    case FuzzConfig::kQbe:
      shrink_db(&FuzzInstance::db_a);
      break;
    case FuzzConfig::kServe:
    case FuzzConfig::kIncremental:
    case FuzzConfig::kCrashIo:
      shrink_db(&FuzzInstance::db_a);
      // Fewer ops make shorter traces; halve while it still fails.
      while (instance.m > 1) {
        FuzzInstance candidate = instance;
        candidate.m = std::max<std::size_t>(instance.m / 2, 1);
        if (!candidate_fails(candidate)) break;
        instance.m = std::max<std::size_t>(instance.m / 2, 1);
      }
      break;
    case FuzzConfig::kFaults:
      shrink_db(&FuzzInstance::db_a);
      // Earlier trigger visits make smaller repros; halve while it still
      // fails.
      while (instance.fault_visit > 1) {
        FuzzInstance candidate = instance;
        candidate.fault_visit /= 2;
        if (!candidate_fails(candidate)) break;
        instance.fault_visit /= 2;
      }
      break;
    case FuzzConfig::kLinsep: {
      // Drop whole examples, then whole LP rows, then zero coefficients.
      for (std::size_t i = instance.features.size(); i > 0; --i) {
        FuzzInstance candidate = instance;
        candidate.features.erase(candidate.features.begin() + (i - 1));
        candidate.feature_labels.erase(candidate.feature_labels.begin() +
                                       (i - 1));
        if (candidate_fails(candidate)) instance = std::move(candidate);
      }
      for (std::size_t i = instance.lp.a.size(); i > 0; --i) {
        FuzzInstance candidate = instance;
        candidate.lp.a.erase(candidate.lp.a.begin() + (i - 1));
        candidate.lp.b.erase(candidate.lp.b.begin() + (i - 1));
        if (candidate_fails(candidate)) instance = std::move(candidate);
      }
      for (std::size_t i = 0; i < instance.lp.a.size(); ++i) {
        for (std::size_t j = 0; j < instance.lp.a[i].size(); ++j) {
          if (instance.lp.a[i][j].is_zero()) continue;
          FuzzInstance candidate = instance;
          candidate.lp.a[i][j] = Rational(0);
          if (candidate_fails(candidate)) instance = std::move(candidate);
        }
      }
      break;
    }
    case FuzzConfig::kMixed:
      FEATSEP_CHECK(false) << "instances never carry kMixed";
  }
  SanitizeFuzzInstance(&instance);
  return instance;
}

}  // namespace testing
}  // namespace featsep
