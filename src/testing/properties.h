#ifndef FEATSEP_TESTING_PROPERTIES_H_
#define FEATSEP_TESTING_PROPERTIES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cq/cq.h"
#include "linsep/separability_lp.h"
#include "linsep/simplex.h"
#include "relational/database.h"
#include "relational/training_database.h"
#include "testing/faults.h"

namespace featsep {
namespace testing {

/// Differential/metamorphic property drivers: each check runs the optimized
/// engines against the naive reference oracle (reference_hom.h) and/or a
/// metamorphic law implied by the paper's semantics, returning nullopt on
/// agreement or a violation describing the discrepancy. The fuzz loop
/// (fuzz.h) feeds them random instances and shrinks whatever they reject.

struct PropertyViolation {
  /// Which law failed, e.g. "hom-vs-reference/status".
  std::string property;
  /// Human-readable discrepancy description.
  std::string detail;
};

using PropertyCheck = std::optional<PropertyViolation>;

/// FindHomomorphism vs the reference oracle on (from, to, seed):
///   - decision agreement (with forward checking on and off),
///   - witness validity when the kernel reports kFound,
///   - decision invariance under a witness-seeded `prefer` ordering.
PropertyCheck CheckHomAgainstReference(
    const Database& from, const Database& to,
    const std::vector<std::pair<Value, Value>>& seed = {});

/// Composition closure: whenever the kernel finds witnesses f : a → b and
/// g : b → c, the composite g∘f must be a valid homomorphism a → c, and the
/// kernel must also decide a → c positively.
PropertyCheck CheckHomComposition(const Database& a, const Database& b,
                                  const Database& c);

/// Unary-CQ evaluation: CqEvaluator vs the reference oracle vs (when a
/// width-≤`max_width` plan exists) the decomposition-guided evaluator.
PropertyCheck CheckEvaluationAgainstReference(const ConjunctiveQuery& query,
                                              const Database& db,
                                              std::size_t max_width = 2);

/// Containment: IsContainedIn vs the reference canonical-database
/// criterion in both directions, reflexivity, and semantic soundness on
/// data (q1 ⊆ q2 implies q1(D) ⊆ q2(D) under the reference evaluator).
PropertyCheck CheckContainmentAgainstReference(const ConjunctiveQuery& q1,
                                               const ConjunctiveQuery& q2,
                                               const Database& db);

/// CoreOf: the core's facts are a subset of the input's, the core is
/// hom-equivalent to the input (pointed at `frozen`, per the reference
/// oracle), and coring is idempotent.
PropertyCheck CheckCoreProperties(const Database& db,
                                  const std::vector<Value>& frozen);

/// GHW laws: the witness decomposition validates at the claimed width,
/// Ghw/IsInGhw agree (tight at g, false at g-1, monotone at g+1), and
/// removing an atom whose existential variables are covered by another
/// atom never increases the width.
PropertyCheck CheckGhwProperties(const ConjunctiveQuery& query);

/// DecideCqSep determinism and correctness: identical results (decision
/// and conflict pair) at 1, 2, and 8 threads, and agreement with the
/// reference pairwise hom-equivalence criterion of Theorem 3.2.
PropertyCheck CheckSepThreadDeterminism(const TrainingDatabase& training);

/// QBE laws on (db, S⁺, S⁻) with S⁺ nonempty entities of an entity
/// database:
///   - SolveCqQbe decides identically at 1, 2, and 8 threads and with
///     minimize_explanation on;
///   - when an explanation exists it selects every positive and no
///     negative (kernel evaluator), minimized or not;
///   - when none exists, dropping S⁻ makes one exist (the canonical
///     product query);
///   - SolveCqmQbe through a serve::EvalService (cold and warm cache)
///     returns the identical decision and explanation as the unserved
///     sweep, the explanation screens correctly under the *reference*
///     evaluator, and CQ[m]-explainability implies CQ-explainability.
PropertyCheck CheckQbeProperties(const Database& db,
                                 const std::vector<Value>& positives,
                                 const std::vector<Value>& negatives,
                                 std::size_t m);

/// Existential k-cover game laws on (from, to, k), over a bounded sample of
/// pebble pairs from dom(from) × dom(to):
///   - decide-twice idempotence and fresh-vs-shared-solver agreement;
///   - monotonicity: (from, ā) →_{k+1} (to, b̄) implies →_k (more GHW(k)
///     queries to satisfy at higher k);
///   - soundness: a full homomorphism extending ā → b̄ implies →_k for
///     every k (per the reference oracle);
///   - completeness at k = |from|: →_{|from|} coincides with pointed
///     homomorphism (checked only when |from| ≤ 3 — the position set is
///     exponential in k);
///   - CoverPreorder reflexivity, transitivity, and agreement with
///     per-pair CoverGameWins calls.
PropertyCheck CheckCoverGameProperties(const Database& from,
                                       const Database& to, std::size_t k);

/// Dimension-bounded separability laws (Lemma 6.3) on (training, ℓ) with
/// the CQ-QBE oracle:
///   - monotonicity: Sep[ℓ] implies Sep[ℓ+1];
///   - at ℓ_max = 2^{|η(D)|−1} (checked when |η(D)| ≤ 4), Sep[ℓ_max]
///     coincides with DecideCqSep (Theorem 3.2);
///   - a positive answer's witness is well-formed: at most ℓ feature
///     columns, each passing the QBE oracle, whose induced ±1 vectors
///     linearly separate the labeling per the Fourier–Motzkin reference.
PropertyCheck CheckSepDimProperties(const TrainingDatabase& training,
                                    std::size_t ell);

/// LP-layer differentials against the Fourier–Motzkin reference
/// (reference_lp.h):
///   - FindSeparator/IsLinearlySeparable agree with RefIsLinearlySeparable
///     on `examples`, and a returned classifier commits zero errors;
///   - SolveLp agrees with RefSolveLpValue on `lp` in status and (when
///     optimal) objective, and the returned point is feasible and attains
///     the objective.
PropertyCheck CheckLinsepProperties(
    const std::vector<std::pair<FeatureVector, Label>>& examples,
    const LpProblem& lp);

/// Fault-injection robustness laws on a labeled training database, with a
/// cancellation/timeout/bad-alloc fault armed at the `trigger_visit`-th
/// visit of FEATSEP_FAULT_POINT(`site`):
///   - a faulted DecideCqSep either completes with the bit-identical
///     uninterrupted answer (the fault never fired), reports the outcome
///     matching the injected kind with any conflict pair verified sound
///     (differently labeled and hom-equivalent), or — kBadAlloc only —
///     propagates std::bad_alloc;
///   - a disarmed rerun after the faulted call is bit-identical to the
///     uninterrupted baseline (interrupt-then-resume determinism);
///   - a faulted served DecideCqmSep never poisons the EvalService cache:
///     re-running through the same service, disarmed, matches the serial
///     truth, and no cache entry was added for an aborted evaluation;
///   - every cell an interrupted Statistic::TryMatrix marks valid equals
///     the uninterrupted Matrix truth.
PropertyCheck CheckFaultInjectionProperties(const TrainingDatabase& training,
                                            CoverageSite site, FaultKind kind,
                                            std::uint64_t trigger_visit);

/// Async serve front-end laws on an entity database, against the serial
/// evaluation path as oracle. A seeded random interleaving of `num_ops`
/// Submit (mixed priorities and budgets: unbounded, tiny step limits,
/// already-expired deadlines) / Poll / Cancel / PauseDispatch /
/// ResumeDispatch operations runs against an AsyncEvalService with
/// seed-derived queue capacity, dispatcher count, and shard count; after a
/// full drain:
///   - every non-null answer of every terminal request is bit-identical to
///     the serial path (num_shards = 1, no cache), regardless of the
///     request's terminal state — interruption yields nothing or the truth;
///   - kCompleted requests answer every feature; kRejected requests answer
///     none and carry dispatch sequence 0;
///   - per-class stats balance: submitted = accepted + rejected and
///     accepted = completed + expired + cancelled, each matching the states
///     observed on the handles exactly; the queue high-water mark respects
///     the admission capacity;
///   - a final resolve through the shared backend still matches the serial
///     truth (no interrupted request poisoned the cache).
PropertyCheck CheckServeAsyncProperties(const Database& db,
                                        std::uint64_t interleaving_seed,
                                        std::size_t num_ops);

/// Delta-maintenance laws (DESIGN.md §14) on an entity database: a seeded
/// random trace of `num_ops` insert / remove / forced-no-op / relabel /
/// pure-recheck steps runs against a live stack — a mutating Database, a
/// warm EvalService maintained by IncrementalMaintainer (patch or drop
/// policy by seed), and an IncrementalSeparability warm-starting both
/// separability decisions. After EVERY step the live state is cross-checked
/// against a permanently-naive oracle rebuilt from scratch (fresh Database
/// replaying the live fact set, cold single-shard cache-free EvalService,
/// from-scratch FindSeparator and DecideCqSep):
///   - each Delta's old/new digests bracket the mutation, no-ops move
///     nothing, and the incrementally patched digest equals the fresh
///     recompute;
///   - the instant the digest moves, no (old-digest, feature) key is
///     resolvable in any cache tier;
///   - the warm feature matrix is bit-identical to the cold oracle's, with
///     the entity order preserved;
///   - the incremental linear-separability verdict matches the fresh LP
///     (and a returned classifier commits zero errors), and the incremental
///     CQ-SEP verdict matches the fresh sweep, any inseparability witness
///     being genuinely differently-labeled and hom-equivalent.
PropertyCheck CheckIncrementalProperties(const Database& db,
                                         std::uint64_t trace_seed,
                                         std::size_t num_ops);

/// Crash-recovery laws for the durable tier (DESIGN.md §15) on an entity
/// database, under a deterministic fault-injecting filesystem seeded from
/// `fault_seed` (EIO/ENOSPC-style op failures, torn writes that leave a
/// prefix on disk, partial directory scans, and a kill at a seed-chosen
/// I/O point followed by recovery over the same directory):
///   - disk-cache round trips under faults: a Load that reports a hit is
///     bit-identical to what was stored — torn or corrupt entries are
///     dropped, never trusted — and once faults clear every stored key
///     serves its exact answer again;
///   - breaker-gated serving: an EvalService whose disk tier is failing
///     answers every request bit-identical to the serial oracle while the
///     breaker trips open (degrading to LRU + compute), and after the
///     faults clear a probe closes the breaker and the disk tier resumes;
///   - crash mid-publish: killing the environment at an arbitrary op and
///     recovering with a fresh cache over the same directory never yields a
///     half-visible entry — every post-recovery load is a miss or the exact
///     stored answer, and orphaned tmp files are collected;
///   - shard jobs under faults: a coordinator driving a faulted job (with a
///     partially-run worker whose process "died" mid-job) still merges
///     every feature bit-identical to serial — shards that keep failing are
///     quarantined and evaluated in-memory, no shard is lost, and with a
///     fault-free environment nothing is quarantined.
PropertyCheck CheckCrashIoProperties(const Database& db,
                                     std::uint64_t fault_seed,
                                     std::size_t num_ops);

/// MinimizeCq laws: the minimized query has no more atoms, preserves the
/// free tuple, is hom-equivalent to the input (reference Chandra–Merlin
/// containment both ways), and is minimal — no single atom can be removed
/// without losing equivalence.
PropertyCheck CheckMinimizeCq(const ConjunctiveQuery& query);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_PROPERTIES_H_
