#ifndef FEATSEP_TESTING_SHRINK_H_
#define FEATSEP_TESTING_SHRINK_H_

#include <cstddef>
#include <functional>
#include <utility>

#include "cq/cq.h"
#include "relational/database.h"

namespace featsep {
namespace testing {

/// Greedy counterexample shrinking for the fuzz harness: given a failing
/// instance and a predicate "does the discrepancy persist?", repeatedly try
/// the removal edits below and keep every edit that preserves the failure,
/// until no single removal does (a 1-minimal counterexample). Deterministic:
/// edits are tried in a fixed order, so a seed's shrunk counterexample is
/// stable across runs.

/// `db` minus the fact at `index`. Value names/ids carry over.
Database WithoutFact(const Database& db, FactIndex index);

/// `db` minus every fact containing `value` (the value drops out of the
/// domain). Value names/ids carry over.
Database WithoutValue(const Database& db, Value value);

/// `query` minus the atom at `atom_index`. Variables and the free tuple
/// carry over (a variable left atom-less is harmless: it no longer occurs
/// in the canonical database's domain).
ConjunctiveQuery WithoutAtom(const ConjunctiveQuery& query,
                             std::size_t atom_index);

/// Shrinks `db` while `still_failing(db)` stays true: first value
/// removals (coarse), then fact removals (fine), to fixpoint.
Database ShrinkDatabase(Database db,
                        const std::function<bool(const Database&)>&
                            still_failing);

/// Shrinks a homomorphism instance (from, to) while the predicate stays
/// true, alternating sides to fixpoint.
std::pair<Database, Database> ShrinkHomPair(
    Database from, Database to,
    const std::function<bool(const Database&, const Database&)>&
        still_failing);

/// Shrinks a (query, database) instance while the predicate stays true:
/// atom removals on the query interleaved with database shrinking.
std::pair<ConjunctiveQuery, Database> ShrinkCqInstance(
    ConjunctiveQuery query, Database db,
    const std::function<bool(const ConjunctiveQuery&, const Database&)>&
        still_failing);

}  // namespace testing
}  // namespace featsep

#endif  // FEATSEP_TESTING_SHRINK_H_
