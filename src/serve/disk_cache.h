#ifndef FEATSEP_SERVE_DISK_CACHE_H_
#define FEATSEP_SERVE_DISK_CACHE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/fs_env.h"
#include "util/result.h"
#include "util/retry.h"

namespace featsep {
namespace serve {

/// Stable identity of one (database content digest, feature canonical
/// string) cache key: FNV-1a-64 over the digest (8 LE bytes) followed by
/// the length-prefixed feature string. This single value names the entry's
/// file on disk, buckets the in-memory LRU, and is identical in every
/// process — it is part of the persistent format contract (DESIGN.md §13).
std::uint64_t StableCacheKeyDigest(std::uint64_t content_digest,
                                   std::string_view feature);

/// The payload of one on-disk entry: the key it was stored under plus the
/// selected entity names, sorted by byte order (canonical — equal answers
/// serialize to bit-identical files in every process).
struct DiskCacheEntry {
  std::uint64_t content_digest = 0;
  std::string feature;
  std::vector<std::string> selected;  ///< Sorted ascending by byte order.
};

/// Serializes an entry to its canonical on-disk bytes (version header,
/// length-prefixed strings, trailing FNV-1a-64 checksum over everything
/// before the checksum line). `selected` is sorted internally.
std::string SerializeDiskCacheEntry(std::uint64_t content_digest,
                                    std::string_view feature,
                                    std::vector<std::string> selected);

/// Parses entry bytes, verifying the magic, version, and checksum. Any
/// truncation, corruption, or version mismatch is an error — a bad entry is
/// never partially trusted.
Result<DiskCacheEntry> ParseDiskCacheEntry(std::string_view bytes);

/// Counters for observability and tests; snapshot via stats().
struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  /// Entries dropped because their bytes failed to parse or checksum
  /// (truncated/corrupt files; best-effort deleted so they get rewritten).
  std::uint64_t corrupt_dropped = 0;
  /// Entries dropped because they carry a different format version (left
  /// on disk untouched — they may belong to a newer binary).
  std::uint64_t version_dropped = 0;
  /// Entries dropped because the stored key disagrees with the requested
  /// one (a 64-bit file-name collision; treated as a miss).
  std::uint64_t key_mismatch_dropped = 0;
  std::uint64_t write_failures = 0;
  /// Entries explicitly deleted (Remove) — stale-digest drops after a
  /// delta re-publish.
  std::uint64_t removed = 0;
  /// Entries evicted by the GC (Sweep), oldest mtime first.
  std::uint64_t swept = 0;
  /// Loads that exhausted their retries on a read *fault* (not absence).
  /// Distinct from `misses` bookkeeping-wise so the serve-layer circuit
  /// breaker can tell a cold cache from a sick disk.
  std::uint64_t io_errors = 0;
  /// Extra attempts beyond the first, per RetryPolicy, on loads / stores.
  std::uint64_t load_retries = 0;
  std::uint64_t store_retries = 0;
  /// Remove() calls that failed with an I/O fault (the entry may linger;
  /// harmless for correctness — entries are content-addressed — but counted
  /// for hygiene).
  std::uint64_t remove_failures = 0;
  /// Orphaned tmp files collected by startup/explicit GC.
  std::uint64_t tmp_collected = 0;
  /// Cumulative directory-scan errors observed by Sweep/CollectStaleTmp —
  /// nonzero means some GC pass ran over an incomplete listing.
  std::uint64_t scan_errors = 0;
};

/// Outcome of one DiskResultCache::Sweep pass.
struct DiskSweepResult {
  std::uint64_t bytes_before = 0;  ///< Total `.fse` bytes found by the scan.
  std::uint64_t bytes_after = 0;   ///< Total remaining after evictions.
  std::uint64_t entries_removed = 0;
  /// Directory entries the scan failed to stat or iterate past: nonzero
  /// means bytes_before undercounts and the pass may have missed garbage —
  /// reported, never silently ignored.
  std::uint64_t scan_errors = 0;
};

/// How one LoadEntry resolved. Everything except kHit returns no answer;
/// kIoError is the only outcome caused by a filesystem *fault* rather than
/// by what is (or is not) durably stored.
enum class DiskLoadStatus : std::uint8_t {
  kHit = 0,
  kMiss,
  kCorrupt,
  kVersionSkew,
  kKeyCollision,
  kIoError,
};

struct DiskLoadResult {
  DiskLoadStatus status = DiskLoadStatus::kMiss;
  std::vector<std::string> selected;  ///< Filled iff status == kHit.
  bool hit() const { return status == DiskLoadStatus::kHit; }
  /// True when the lookup failed because of an I/O fault, not absence —
  /// what the serve-layer circuit breaker keys on.
  bool io_error() const { return status == DiskLoadStatus::kIoError; }
};

/// Construction-time knobs; the one-argument constructor uses the defaults
/// (real filesystem, no retries, collect hour-old tmp orphans on open).
struct DiskCacheOptions {
  /// Filesystem backend; nullptr = the real filesystem. Non-owning — the
  /// environment must outlive the cache (tests/fuzzers own a FaultFsEnv).
  FsEnv* env = nullptr;
  /// Applied to entry loads, stores, and removes on transient faults.
  RetryPolicy retry;
  /// tmp/ files older than this are orphans of a crash between tmp-write
  /// and rename; collected when the cache opens (and by CollectStaleTmp).
  std::chrono::milliseconds tmp_gc_age{60 * 60 * 1000};
  bool tmp_gc_on_open = true;
};

/// Persistent, cross-process result cache for feature answer sets, keyed by
/// (Database::ContentDigest(), feature canonical string) — the durable tier
/// under EvalService's in-memory LRU (DESIGN.md §13).
///
/// Layout: one file per entry, `<dir>/<hex16(StableCacheKeyDigest)>.fse`,
/// written atomically (serialize → unique temp file in `<dir>/tmp/` →
/// rename), so readers in any process only ever observe complete entries.
/// Entries are versioned and checksummed; Load never trusts a corrupt,
/// truncated, or version-mismatched file — it degrades to a miss.
/// Concurrent writers of the same key are harmless: answers are
/// deterministic, so both render bit-identical bytes and the second rename
/// replaces the first with equal content.
///
/// All filesystem access goes through an injectable FsEnv (DESIGN.md §15):
/// transient faults are retried per the RetryPolicy, a load that exhausts
/// its retries reports kIoError (distinguished from a plain miss), and
/// orphaned tmp files from a crash mid-publish are GC'd on open.
///
/// Thread-safe; all filesystem errors degrade to miss/failure counters,
/// never exceptions.
class DiskResultCache {
 public:
  /// Current on-disk format version, spelled in every entry's header.
  static constexpr int kFormatVersion = 1;

  /// Creates the directory (and its tmp/ subdirectory) if absent.
  explicit DiskResultCache(std::string dir)
      : DiskResultCache(std::move(dir), DiskCacheOptions{}) {}
  DiskResultCache(std::string dir, const DiskCacheOptions& options);

  const std::string& dir() const { return dir_; }

  /// The entry file path Load/Store use for this key.
  std::string EntryPath(std::uint64_t content_digest,
                        std::string_view feature) const;

  /// Reads the entry for the key with full outcome reporting. Returned
  /// names are sorted ascending.
  DiskLoadResult LoadEntry(std::uint64_t content_digest,
                           const std::string& feature);

  /// Reads the entry for the key, or nullopt on miss / corrupt / version
  /// mismatch / key collision / I/O fault. Returned names are sorted
  /// ascending. (LoadEntry reports which of those it was.)
  std::optional<std::vector<std::string>> Load(std::uint64_t content_digest,
                                               const std::string& feature);

  /// Atomically persists the entry; returns false (and counts a
  /// write_failure) if the filesystem refuses after retries. Never called
  /// with partial answers by EvalService — budget-aborted evaluations are
  /// not persisted.
  bool Store(std::uint64_t content_digest, const std::string& feature,
             std::vector<std::string> selected);

  /// Deletes the entry for the key if present; returns true iff a file was
  /// removed. Used by delta maintenance: once an answer is re-published
  /// under a new digest, the stale-digest entry must never be served again.
  bool Remove(std::uint64_t content_digest, const std::string& feature);

  /// Minimal GC: scans the directory's `.fse` entries and, while their
  /// total size exceeds `max_bytes`, deletes the oldest-mtime entry first.
  /// Entries are judged by file size and mtime only — corrupt or
  /// foreign-version files count toward the total like any other and are
  /// swept in the same order (a corrupt entry would be deleted on its next
  /// Load anyway). Safe to race with concurrent Store/Load in any process:
  /// a swept entry simply becomes a future miss. Scan errors are counted in
  /// the result, never silently swallowed.
  DiskSweepResult Sweep(std::uint64_t max_bytes);

  /// Collects tmp/ files older than `age` — the orphans a crash between
  /// tmp-write and rename leaves behind. Returns the number collected.
  /// Runs automatically on open unless DiskCacheOptions says otherwise.
  std::uint64_t CollectStaleTmp(std::chrono::milliseconds age);

  DiskCacheStats stats() const;

 private:
  std::string dir_;
  FsEnv* env_;
  RetryPolicy retry_;
  std::atomic<std::uint64_t> tmp_counter_{0};
  mutable std::mutex mutex_;  // Guards stats_ only; file ops are lock-free.
  DiskCacheStats stats_;
};

}  // namespace serve
}  // namespace featsep

#endif  // FEATSEP_SERVE_DISK_CACHE_H_
