#ifndef FEATSEP_SERVE_DISK_CACHE_H_
#define FEATSEP_SERVE_DISK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace featsep {
namespace serve {

/// Stable identity of one (database content digest, feature canonical
/// string) cache key: FNV-1a-64 over the digest (8 LE bytes) followed by
/// the length-prefixed feature string. This single value names the entry's
/// file on disk, buckets the in-memory LRU, and is identical in every
/// process — it is part of the persistent format contract (DESIGN.md §13).
std::uint64_t StableCacheKeyDigest(std::uint64_t content_digest,
                                   std::string_view feature);

/// The payload of one on-disk entry: the key it was stored under plus the
/// selected entity names, sorted by byte order (canonical — equal answers
/// serialize to bit-identical files in every process).
struct DiskCacheEntry {
  std::uint64_t content_digest = 0;
  std::string feature;
  std::vector<std::string> selected;  ///< Sorted ascending by byte order.
};

/// Serializes an entry to its canonical on-disk bytes (version header,
/// length-prefixed strings, trailing FNV-1a-64 checksum over everything
/// before the checksum line). `selected` is sorted internally.
std::string SerializeDiskCacheEntry(std::uint64_t content_digest,
                                    std::string_view feature,
                                    std::vector<std::string> selected);

/// Parses entry bytes, verifying the magic, version, and checksum. Any
/// truncation, corruption, or version mismatch is an error — a bad entry is
/// never partially trusted.
Result<DiskCacheEntry> ParseDiskCacheEntry(std::string_view bytes);

/// Counters for observability and tests; snapshot via stats().
struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  /// Entries dropped because their bytes failed to parse or checksum
  /// (truncated/corrupt files; best-effort deleted so they get rewritten).
  std::uint64_t corrupt_dropped = 0;
  /// Entries dropped because they carry a different format version (left
  /// on disk untouched — they may belong to a newer binary).
  std::uint64_t version_dropped = 0;
  /// Entries dropped because the stored key disagrees with the requested
  /// one (a 64-bit file-name collision; treated as a miss).
  std::uint64_t key_mismatch_dropped = 0;
  std::uint64_t write_failures = 0;
  /// Entries explicitly deleted (Remove) — stale-digest drops after a
  /// delta re-publish.
  std::uint64_t removed = 0;
  /// Entries evicted by the GC (Sweep), oldest mtime first.
  std::uint64_t swept = 0;
};

/// Outcome of one DiskResultCache::Sweep pass.
struct DiskSweepResult {
  std::uint64_t bytes_before = 0;  ///< Total `.fse` bytes found by the scan.
  std::uint64_t bytes_after = 0;   ///< Total remaining after evictions.
  std::uint64_t entries_removed = 0;
};

/// Persistent, cross-process result cache for feature answer sets, keyed by
/// (Database::ContentDigest(), feature canonical string) — the durable tier
/// under EvalService's in-memory LRU (DESIGN.md §13).
///
/// Layout: one file per entry, `<dir>/<hex16(StableCacheKeyDigest)>.fse`,
/// written atomically (serialize → unique temp file in `<dir>/tmp/` →
/// rename), so readers in any process only ever observe complete entries.
/// Entries are versioned and checksummed; Load never trusts a corrupt,
/// truncated, or version-mismatched file — it degrades to a miss.
/// Concurrent writers of the same key are harmless: answers are
/// deterministic, so both render bit-identical bytes and the second rename
/// replaces the first with equal content.
///
/// Thread-safe; all filesystem errors degrade to miss/failure counters,
/// never exceptions.
class DiskResultCache {
 public:
  /// Current on-disk format version, spelled in every entry's header.
  static constexpr int kFormatVersion = 1;

  /// Creates the directory (and its tmp/ subdirectory) if absent.
  explicit DiskResultCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// The entry file path Load/Store use for this key.
  std::string EntryPath(std::uint64_t content_digest,
                        std::string_view feature) const;

  /// Reads the entry for the key, or nullopt on miss / corrupt / version
  /// mismatch / key collision. Returned names are sorted ascending.
  std::optional<std::vector<std::string>> Load(std::uint64_t content_digest,
                                               const std::string& feature);

  /// Atomically persists the entry; returns false (and counts a
  /// write_failure) if the filesystem refuses. Never called with partial
  /// answers by EvalService — budget-aborted evaluations are not persisted.
  bool Store(std::uint64_t content_digest, const std::string& feature,
             std::vector<std::string> selected);

  /// Deletes the entry for the key if present; returns true iff a file was
  /// removed. Used by delta maintenance: once an answer is re-published
  /// under a new digest, the stale-digest entry must never be served again.
  bool Remove(std::uint64_t content_digest, const std::string& feature);

  /// Minimal GC: scans the directory's `.fse` entries and, while their
  /// total size exceeds `max_bytes`, deletes the oldest-mtime entry first.
  /// Entries are judged by file size and mtime only — corrupt or
  /// foreign-version files count toward the total like any other and are
  /// swept in the same order (a corrupt entry would be deleted on its next
  /// Load anyway). Safe to race with concurrent Store/Load in any process:
  /// a swept entry simply becomes a future miss.
  DiskSweepResult Sweep(std::uint64_t max_bytes);

  DiskCacheStats stats() const;

 private:
  std::string dir_;
  std::atomic<std::uint64_t> tmp_counter_{0};
  mutable std::mutex mutex_;  // Guards stats_ only; file ops are lock-free.
  DiskCacheStats stats_;
};

}  // namespace serve
}  // namespace featsep

#endif  // FEATSEP_SERVE_DISK_CACHE_H_
