#include "serve/eval_service.h"

#include <algorithm>

#include "cq/evaluation.h"
#include "util/check.h"
#include "util/hash.h"

namespace featsep {
namespace serve {

std::size_t EvalService::CacheKeyHash::operator()(const CacheKey& key) const {
  std::size_t seed = std::hash<std::uint64_t>()(key.first);
  HashCombine(seed, std::hash<std::string>()(key.second));
  return seed;
}

EvalService::EvalService(const ServeOptions& options)
    : options_(options), pool_(options.num_shards) {}

std::shared_ptr<const FeatureAnswer> EvalService::CacheGet(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.cache_misses;
    return nullptr;
  }
  ++stats_.cache_hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
  return it->second->answer;
}

void EvalService::CachePut(CacheKey key,
                           std::shared_ptr<const FeatureAnswer> answer) {
  if (options_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second->answer = std::move(answer);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{key, std::move(answer)});
  cache_.emplace(std::move(key), lru_.begin());
  while (cache_.size() > options_.cache_capacity) {
    cache_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

std::vector<std::shared_ptr<const FeatureAnswer>> EvalService::Resolve(
    const std::vector<ConjunctiveQuery>& features, const Database& db) {
  const std::uint64_t digest = db.ContentDigest();
  const bool use_cache = options_.cache_capacity > 0;
  std::vector<std::shared_ptr<const FeatureAnswer>> answers(features.size());

  // Cache pass. Batch-internal duplicates (identical canonical strings)
  // alias one evaluation slot so each distinct feature runs at most once.
  struct Miss {
    std::size_t feature_index;
    CacheKey key;
    std::unique_ptr<CqEvaluator> evaluator;
    std::vector<char> flags;  // One per entity of db, in Entities() order.
  };
  std::vector<Miss> misses;
  std::vector<std::size_t> alias(features.size(), 0);
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> miss_of_key;
  for (std::size_t i = 0; i < features.size(); ++i) {
    CacheKey key{digest, features[i].ToString()};
    if (use_cache) {
      answers[i] = CacheGet(key);
      if (answers[i] != nullptr) continue;
    }
    auto [it, inserted] = miss_of_key.try_emplace(key, misses.size());
    alias[i] = it->second;
    if (inserted) {
      misses.push_back(Miss{i, std::move(key), nullptr, {}});
    }
  }
  if (misses.empty()) return answers;

  // Sharded evaluation of the misses: (feature × entity-block) work items
  // on the persistent pool. Each item writes disjoint flag slots, so the
  // result is bit-identical for every shard count.
  const std::vector<Value> entities = db.Entities();
  const std::size_t block = std::max<std::size_t>(1, options_.entity_block);
  const std::size_t blocks_per_feature = (entities.size() + block - 1) / block;
  for (Miss& miss : misses) {
    miss.evaluator =
        std::make_unique<CqEvaluator>(features[miss.feature_index]);
    miss.flags.assign(entities.size(), 0);
  }
  pool_.ParallelFor(
      misses.size() * blocks_per_feature, [&](std::size_t task) {
        Miss& miss = misses[task / blocks_per_feature];
        std::size_t begin = (task % blocks_per_feature) * block;
        std::size_t end = std::min(begin + block, entities.size());
        for (std::size_t e = begin; e < end; ++e) {
          miss.flags[e] = miss.evaluator->SelectsEntity(db, entities[e]);
        }
      });

  for (Miss& miss : misses) {
    std::unordered_set<std::string> selected;
    for (std::size_t e = 0; e < entities.size(); ++e) {
      if (miss.flags[e] != 0) selected.insert(db.value_name(entities[e]));
    }
    auto answer = std::make_shared<const FeatureAnswer>(std::move(selected));
    CachePut(miss.key, answer);
    answers[miss.feature_index] = std::move(answer);
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    stats_.features_evaluated += misses.size();
    stats_.entity_evaluations += misses.size() * entities.size();
  }
  // Fill the aliased (and, with the cache disabled, repeated) slots.
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (answers[i] == nullptr) {
      answers[i] = answers[misses[alias[i]].feature_index];
    }
  }
  return answers;
}

std::shared_ptr<const FeatureAnswer> EvalService::Answer(
    const ConjunctiveQuery& feature, const Database& db) {
  return Resolve({feature}, db)[0];
}

std::vector<FeatureVector> EvalService::Matrix(
    const std::vector<ConjunctiveQuery>& features, const Database& db) {
  std::vector<std::shared_ptr<const FeatureAnswer>> answers =
      Resolve(features, db);
  const std::vector<Value> entities = db.Entities();
  std::vector<FeatureVector> matrix(entities.size());
  for (std::size_t e = 0; e < entities.size(); ++e) {
    matrix[e].reserve(features.size());
    for (const auto& answer : answers) {
      matrix[e].push_back(answer->Selects(db, entities[e]) ? 1 : -1);
    }
  }
  return matrix;
}

FeatureVector EvalService::Vector(
    const std::vector<ConjunctiveQuery>& features, const Database& db,
    Value entity) {
  // Answers are computed over η(D), so the probe must be an entity (the
  // unserved Statistic::Vector accepts arbitrary values; the service's
  // statistic contract is Π^D(e) for e ∈ η(D)).
  FEATSEP_CHECK(db.IsEntity(entity))
      << "EvalService::Vector probe is not an entity";
  std::vector<std::shared_ptr<const FeatureAnswer>> answers =
      Resolve(features, db);
  FeatureVector vector;
  vector.reserve(features.size());
  for (const auto& answer : answers) {
    vector.push_back(answer->Selects(db, entity) ? 1 : -1);
  }
  return vector;
}

ServeStats EvalService::stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return stats_;
}

std::size_t EvalService::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void EvalService::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
  lru_.clear();
}

}  // namespace serve
}  // namespace featsep
