#include "serve/eval_service.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <optional>

#include "cq/evaluation.h"
#include "serve/shard_protocol.h"
#include "serve/wire_format.h"
#include "util/check.h"
#include "util/hash.h"

namespace featsep {
namespace serve {

/// One cold (feature × database) evaluation slot of a Resolve batch.
struct EvalService::Miss {
  std::size_t feature_index;
  CacheKey key;
  std::unique_ptr<CqEvaluator> evaluator;
  std::vector<char> flags;  // One per entity of db, in Entities() order.
};

std::size_t EvalService::CacheKeyHash::operator()(const CacheKey& key) const {
  // The stable key identity, truncated to size_t on 32-bit hosts — bucket
  // choice may differ there, but the serialized identity never does.
  return static_cast<std::size_t>(
      StableCacheKeyDigest(key.first, key.second));
}

namespace {

/// The retry policy both durable tiers (disk cache + shard protocol) run
/// under, built from the serve knobs.
RetryPolicy DurableRetryPolicy(const ServeOptions& options) {
  RetryPolicy retry;
  retry.max_attempts = std::max(1, options.disk_retry_attempts);
  retry.initial_backoff = options.disk_retry_backoff;
  retry.jitter_seed = 0x9e3779b97f4a7c15ULL;
  return retry;
}

}  // namespace

const char* DiskHealthName(DiskHealth health) {
  switch (health) {
    case DiskHealth::kClosed: return "closed";
    case DiskHealth::kOpen: return "open";
    case DiskHealth::kHalfOpen: return "half-open";
  }
  return "?";
}

EvalService::EvalService(const ServeOptions& options)
    : options_(options), pool_(options.num_shards) {
  if (!options_.cache_dir.empty()) {
    DiskCacheOptions disk_options;
    disk_options.env = options_.fs_env.get();
    disk_options.retry = DurableRetryPolicy(options_);
    disk_ = std::make_unique<DiskResultCache>(options_.cache_dir, disk_options);
  }
}

bool EvalService::DiskTierAllowed() {
  if (options_.breaker_failure_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  switch (breaker_state_) {
    case DiskHealth::kClosed:
      return true;
    case DiskHealth::kOpen: {
      const auto now = std::chrono::steady_clock::now();
      if (now - breaker_opened_at_ >= options_.breaker_probe_interval) {
        breaker_state_ = DiskHealth::kHalfOpen;
        ++breaker_probes_;
        return true;  // This caller is the probe.
      }
      ++breaker_short_circuits_;
      return false;
    }
    case DiskHealth::kHalfOpen:
      // One probe at a time; everyone else keeps degrading until it lands.
      ++breaker_short_circuits_;
      return false;
  }
  return true;
}

void EvalService::NoteDiskResult(bool io_ok) {
  if (options_.breaker_failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  if (io_ok) {
    if (breaker_state_ == DiskHealth::kHalfOpen) ++breaker_closes_;
    breaker_state_ = DiskHealth::kClosed;
    breaker_failures_ = 0;
    return;
  }
  if (breaker_state_ == DiskHealth::kHalfOpen) {
    // The probe failed: straight back to open, restart the interval.
    breaker_state_ = DiskHealth::kOpen;
    breaker_opened_at_ = std::chrono::steady_clock::now();
    ++breaker_trips_;
    return;
  }
  ++breaker_failures_;
  if (breaker_state_ == DiskHealth::kClosed &&
      breaker_failures_ >= options_.breaker_failure_threshold) {
    breaker_state_ = DiskHealth::kOpen;
    breaker_opened_at_ = std::chrono::steady_clock::now();
    ++breaker_trips_;
  }
}

DiskHealth EvalService::disk_health() const {
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  return breaker_state_;
}

std::shared_ptr<const FeatureAnswer> EvalService::CacheGet(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.cache_misses;
    return nullptr;
  }
  ++stats_.cache_hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
  return it->second->answer;
}

void EvalService::CachePut(CacheKey key,
                           std::shared_ptr<const FeatureAnswer> answer) {
  if (options_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second->answer = std::move(answer);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{key, std::move(answer)});
  cache_.emplace(std::move(key), lru_.begin());
  while (cache_.size() > options_.cache_capacity) {
    cache_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

bool EvalService::ResolveMissesSharded(std::vector<Miss>& misses,
                                       const Database& db,
                                       const std::vector<Value>& entities) {
  // One job directory per batch, unique to this process and call so two
  // coordinators can never entangle lifecycles (the shared disk cache is
  // where cross-process reuse happens; the job dir is scratch).
  static std::atomic<std::uint64_t> job_counter{0};
  std::vector<std::string> feature_strings;
  feature_strings.reserve(misses.size());
  std::uint64_t job_key = Fnv1a64U64(kFnv64OffsetBasis, db.ContentDigest());
  for (const Miss& miss : misses) {
    feature_strings.push_back(miss.key.second);
    job_key = Fnv1a64String(job_key, miss.key.second);
  }
  job_key = Fnv1a64U64(job_key, job_counter.fetch_add(1));
#ifndef _WIN32
  job_key = Fnv1a64U64(job_key, static_cast<std::uint64_t>(::getpid()));
#endif
  const std::string job_dir =
      (std::filesystem::path(options_.shard_dir) /
       ("job-" + wire::DigestHex(job_key)))
          .string();

  FsEnv* env = options_.fs_env.get();
  Result<std::size_t> published =
      PublishShardJob(job_dir, db, feature_strings,
                      std::max<std::size_t>(1, options_.entity_block),
                      options_.cache_dir, env);
  if (!published.ok()) return false;

  ShardJob job;
  job.db = &db;
  job.env = env;
  job.retry = DurableRetryPolicy(options_);
  for (const Miss& miss : misses) {
    job.features.push_back(miss.evaluator->query());
  }
  job.feature_strings = std::move(feature_strings);
  job.digest = db.ContentDigest();
  job.entity_block = std::max<std::size_t>(1, options_.entity_block);
  job.cache_dir = options_.cache_dir;
  job.entities = entities;

  ShardCoordinatorOptions coordinator;
  coordinator.lease = options_.shard_lease;
  Result<ShardMergeResult> merged =
      CoordinateShardJob(job_dir, job, coordinator);
  if (!merged.ok()) return false;
  for (std::size_t m = 0; m < misses.size(); ++m) {
    misses[m].flags = std::move(merged.value().flags[m]);
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    ++stats_.shard_jobs;
    stats_.local_shards += merged.value().local_shards;
    stats_.remote_shards += merged.value().remote_shards;
    stats_.reclaimed_leases += merged.value().reclaimed_leases;
    stats_.quarantined_shards += merged.value().quarantined_shards;
    stats_.shard_corrupt_results += merged.value().corrupt_results;
    const ShardIoStats& io = merged.value().io;
    stats_.shard_claim_races += io.claim_races;
    stats_.shard_claim_errors += io.claim_errors;
    stats_.shard_requeue_failures += io.requeue_failures;
    stats_.shard_io_retries += io.io_retries;
    stats_.shard_io_give_ups += io.io_give_ups;
  }
  // The job directory is scratch; reclaim the space once merged. Workers
  // see the done marker vanish with the directory and move on.
  std::error_code ec;
  std::filesystem::remove_all(job_dir, ec);
  return true;
}

std::vector<std::shared_ptr<const FeatureAnswer>> EvalService::Resolve(
    const std::vector<ConjunctiveQuery>& features, const Database& db,
    ExecutionBudget* budget) {
  const bool use_cache = options_.cache_capacity > 0;
  std::vector<std::shared_ptr<const FeatureAnswer>> answers(features.size());

  // A budget already expired/cancelled at entry: the request is abandoned
  // before any cache or kernel work; every answer is "incomplete".
  if (!RecheckBudget(budget)) return answers;
  const std::uint64_t digest = db.ContentDigest();

  // Cache pass: in-memory LRU first, then read-through to the disk tier.
  // Batch-internal duplicates (identical canonical strings) alias one
  // evaluation slot so each distinct feature runs at most once.
  std::vector<Miss> misses;
  std::vector<std::size_t> alias(features.size(), 0);
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> miss_of_key;
  for (std::size_t i = 0; i < features.size(); ++i) {
    CacheKey key{digest, features[i].ToString()};
    if (use_cache) {
      answers[i] = CacheGet(key);
      if (answers[i] != nullptr) continue;
    }
    if (disk_ != nullptr && miss_of_key.count(key) == 0 && DiskTierAllowed()) {
      DiskLoadResult loaded = disk_->LoadEntry(digest, key.second);
      NoteDiskResult(!loaded.io_error());
      if (loaded.hit()) {
        auto answer = std::make_shared<const FeatureAnswer>(
            std::unordered_set<std::string>(loaded.selected.begin(),
                                            loaded.selected.end()));
        CachePut(key, answer);
        answers[i] = std::move(answer);
        continue;
      }
    }
    auto [it, inserted] = miss_of_key.try_emplace(key, misses.size());
    alias[i] = it->second;
    if (inserted) {
      {
        // A key whose previous evaluation was aborted is being retried.
        std::lock_guard<std::mutex> lock(cache_mutex_);
        auto aborted = aborted_keys_.find(key);
        if (aborted != aborted_keys_.end()) {
          ++stats_.evaluation_retries;
          aborted_keys_.erase(aborted);
        }
      }
      misses.push_back(Miss{i, std::move(key), nullptr, {}});
    }
  }
  if (misses.empty()) return answers;

  // Sharded evaluation of the misses: (feature × entity-block) work items
  // on the persistent pool — or, in shard-dir mode, published to the
  // multi-process protocol. Each item writes disjoint flag slots, so the
  // result is bit-identical for every shard count and worker mix.
  const std::vector<Value> entities = db.Entities();
  const std::size_t block = std::max<std::size_t>(1, options_.entity_block);
  const std::size_t blocks_per_feature = (entities.size() + block - 1) / block;
  for (Miss& miss : misses) {
    miss.evaluator =
        std::make_unique<CqEvaluator>(features[miss.feature_index]);
    miss.flags.assign(entities.size(), 0);
  }
  // Per-miss "this feature's answer is incomplete" flags: several shards of
  // one feature may trip concurrently. C++20 value-initializes the atomics.
  std::vector<std::atomic<bool>> incomplete(misses.size());
  std::atomic<std::uint64_t> cancelled{0};
  // Budgeted requests stay in-process: a deadline cannot cancel work that
  // other processes already claimed, and an aborted shard must never leak
  // into the durable tiers.
  const bool sharded = !options_.shard_dir.empty() && budget == nullptr &&
                       ResolveMissesSharded(misses, db, entities);
  if (!sharded) {
    pool_.ParallelFor(
        misses.size() * blocks_per_feature, [&](std::size_t task) {
          const std::size_t m = task / blocks_per_feature;
          Miss& miss = misses[m];
          // Queued shards of an abandoned request bail at dispatch — this is
          // what bounds cancellation latency to one in-flight kernel step per
          // worker.
          if (budget != nullptr && budget->Interrupted()) {
            incomplete[m].store(true, std::memory_order_relaxed);
            cancelled.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          std::size_t begin = (task % blocks_per_feature) * block;
          std::size_t end = std::min(begin + block, entities.size());
          for (std::size_t e = begin; e < end; ++e) {
            std::optional<bool> selects =
                miss.evaluator->TrySelectsEntity(db, entities[e], budget);
            if (!selects.has_value()) {
              incomplete[m].store(true, std::memory_order_relaxed);
              cancelled.fetch_add(1, std::memory_order_relaxed);
              return;
            }
            miss.flags[e] = *selects ? 1 : 0;
          }
        });
  }

  std::uint64_t evaluated = 0;
  for (std::size_t m = 0; m < misses.size(); ++m) {
    Miss& miss = misses[m];
    if (incomplete[m].load(std::memory_order_relaxed)) {
      // Aborted: the flags are partial, so the answer must NEVER reach the
      // cache — in memory or on disk. Remember the key so a later
      // re-request counts as a retry.
      std::lock_guard<std::mutex> lock(cache_mutex_);
      aborted_keys_.insert(miss.key);
      continue;  // answers[miss.feature_index] stays nullptr.
    }
    std::unordered_set<std::string> selected;
    for (std::size_t e = 0; e < entities.size(); ++e) {
      if (miss.flags[e] != 0) selected.insert(db.value_name(entities[e]));
    }
    auto answer = std::make_shared<const FeatureAnswer>(std::move(selected));
    CachePut(miss.key, answer);
    answers[miss.feature_index] = std::move(answer);
    ++evaluated;
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    stats_.features_evaluated += evaluated;
    stats_.entity_evaluations += evaluated * entities.size();
    stats_.cancelled_shards += cancelled.load(std::memory_order_relaxed);
  }
  // Fill the aliased (and, with the cache disabled, repeated) slots; slots
  // aliasing an aborted miss stay nullptr.
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (answers[i] == nullptr) {
      answers[i] = answers[misses[alias[i]].feature_index];
    }
  }
  // Write-behind to the durable tier, after the in-memory cache and the
  // response slots are already populated. Only complete, definitive
  // answers reach this point — aborted evaluations bailed out above.
  if (disk_ != nullptr) {
    for (std::size_t m = 0; m < misses.size(); ++m) {
      if (incomplete[m].load(std::memory_order_relaxed)) continue;
      // An open breaker skips write-behind entirely: the answer is already
      // in memory and in the response; only durability across restarts is
      // deferred until the disk recovers.
      if (!DiskTierAllowed()) continue;
      const Miss& miss = misses[m];
      std::vector<std::string> names;
      for (std::size_t e = 0; e < entities.size(); ++e) {
        if (miss.flags[e] != 0) names.push_back(db.value_name(entities[e]));
      }
      NoteDiskResult(disk_->Store(digest, miss.key.second, std::move(names)));
    }
    MaybeSweepDisk();
  }
  return answers;
}

std::vector<std::shared_ptr<const FeatureAnswer>> EvalService::TryResolve(
    const std::vector<ConjunctiveQuery>& features, const Database& db,
    ExecutionBudget* budget) {
  return Resolve(features, db, budget);
}

std::shared_ptr<const FeatureAnswer> EvalService::Answer(
    const ConjunctiveQuery& feature, const Database& db) {
  return Resolve({feature}, db, nullptr)[0];
}

std::vector<FeatureVector> EvalService::Matrix(
    const std::vector<ConjunctiveQuery>& features, const Database& db) {
  std::vector<std::shared_ptr<const FeatureAnswer>> answers =
      Resolve(features, db, nullptr);
  const std::vector<Value> entities = db.Entities();
  std::vector<FeatureVector> matrix(entities.size());
  for (std::size_t e = 0; e < entities.size(); ++e) {
    matrix[e].reserve(features.size());
    for (const auto& answer : answers) {
      matrix[e].push_back(answer->Selects(db, entities[e]) ? 1 : -1);
    }
  }
  return matrix;
}

FeatureVector EvalService::Vector(
    const std::vector<ConjunctiveQuery>& features, const Database& db,
    Value entity) {
  // Answers are computed over η(D), so the probe must be an entity (the
  // unserved Statistic::Vector accepts arbitrary values; the service's
  // statistic contract is Π^D(e) for e ∈ η(D)).
  FEATSEP_CHECK(db.IsEntity(entity))
      << "EvalService::Vector probe is not an entity";
  std::vector<std::shared_ptr<const FeatureAnswer>> answers =
      Resolve(features, db, nullptr);
  FeatureVector vector;
  vector.reserve(features.size());
  for (const auto& answer : answers) {
    vector.push_back(answer->Selects(db, entity) ? 1 : -1);
  }
  return vector;
}

ServeStats EvalService::stats() const {
  ServeStats stats;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    stats = stats_;
  }
  if (disk_ != nullptr) {
    DiskCacheStats disk = disk_->stats();
    stats.disk_hits = disk.hits;
    stats.disk_misses = disk.misses;
    stats.disk_writes = disk.writes;
    stats.disk_drops =
        disk.corrupt_dropped + disk.version_dropped + disk.key_mismatch_dropped;
    stats.disk_io_errors = disk.io_errors;
    stats.disk_retries = disk.load_retries + disk.store_retries;
    stats.disk_give_ups = disk.io_errors + disk.write_failures;
  }
  {
    std::lock_guard<std::mutex> lock(breaker_mutex_);
    stats.breaker_trips = breaker_trips_;
    stats.breaker_probes = breaker_probes_;
    stats.breaker_closes = breaker_closes_;
    stats.breaker_short_circuits = breaker_short_circuits_;
  }
  return stats;
}

std::size_t EvalService::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void EvalService::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
  lru_.clear();
  aborted_keys_.clear();
}

std::shared_ptr<const FeatureAnswer> EvalService::PeekCached(
    std::uint64_t digest, const std::string& feature) {
  CacheKey key{digest, feature};
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second->answer;
  }
  if (disk_ != nullptr && DiskTierAllowed()) {
    DiskLoadResult loaded = disk_->LoadEntry(digest, feature);
    NoteDiskResult(!loaded.io_error());
    if (loaded.hit()) {
      return std::make_shared<const FeatureAnswer>(
          std::unordered_set<std::string>(loaded.selected.begin(),
                                          loaded.selected.end()));
    }
  }
  return nullptr;
}

void EvalService::Republish(std::uint64_t old_digest, std::uint64_t new_digest,
                            const std::string& feature,
                            std::shared_ptr<const FeatureAnswer> answer) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    CacheKey old_key{old_digest, feature};
    auto it = cache_.find(old_key);
    if (it != cache_.end()) {
      lru_.erase(it->second);
      cache_.erase(it);
    }
    aborted_keys_.erase(old_key);
  }
  CachePut(CacheKey{new_digest, feature}, answer);
  if (disk_ != nullptr && DiskTierAllowed()) {
    // A failed remove only leaves a stale-digest file behind: entries are
    // content-addressed, so it can never be served under the new digest —
    // counted by the cache as a remove_failure, not breaker evidence.
    disk_->Remove(old_digest, feature);
    NoteDiskResult(
        disk_->Store(new_digest, feature,
                     std::vector<std::string>(answer->names().begin(),
                                              answer->names().end())));
    MaybeSweepDisk();
  }
}

void EvalService::DropCached(std::uint64_t digest, const std::string& feature) {
  CacheKey key{digest, feature};
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      lru_.erase(it->second);
      cache_.erase(it);
    }
    aborted_keys_.erase(key);
  }
  if (disk_ != nullptr && DiskTierAllowed()) disk_->Remove(digest, feature);
}

void EvalService::MaybeSweepDisk() {
  if (disk_ == nullptr || options_.disk_cache_max_bytes == 0) return;
  // No GC against a sick disk: while the breaker is open the sweep would
  // only accumulate scan/remove failures.
  if (disk_health() == DiskHealth::kOpen) return;
  disk_->Sweep(options_.disk_cache_max_bytes);
}

}  // namespace serve
}  // namespace featsep
