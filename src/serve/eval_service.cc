#include "serve/eval_service.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "cq/evaluation.h"
#include "util/check.h"
#include "util/hash.h"

namespace featsep {
namespace serve {

std::size_t EvalService::CacheKeyHash::operator()(const CacheKey& key) const {
  std::size_t seed = std::hash<std::uint64_t>()(key.first);
  HashCombine(seed, std::hash<std::string>()(key.second));
  return seed;
}

EvalService::EvalService(const ServeOptions& options)
    : options_(options), pool_(options.num_shards) {}

std::shared_ptr<const FeatureAnswer> EvalService::CacheGet(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.cache_misses;
    return nullptr;
  }
  ++stats_.cache_hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
  return it->second->answer;
}

void EvalService::CachePut(CacheKey key,
                           std::shared_ptr<const FeatureAnswer> answer) {
  if (options_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second->answer = std::move(answer);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{key, std::move(answer)});
  cache_.emplace(std::move(key), lru_.begin());
  while (cache_.size() > options_.cache_capacity) {
    cache_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

std::vector<std::shared_ptr<const FeatureAnswer>> EvalService::Resolve(
    const std::vector<ConjunctiveQuery>& features, const Database& db,
    ExecutionBudget* budget) {
  const bool use_cache = options_.cache_capacity > 0;
  std::vector<std::shared_ptr<const FeatureAnswer>> answers(features.size());

  // A budget already expired/cancelled at entry: the request is abandoned
  // before any cache or kernel work; every answer is "incomplete".
  if (!RecheckBudget(budget)) return answers;
  const std::uint64_t digest = db.ContentDigest();

  // Cache pass. Batch-internal duplicates (identical canonical strings)
  // alias one evaluation slot so each distinct feature runs at most once.
  struct Miss {
    std::size_t feature_index;
    CacheKey key;
    std::unique_ptr<CqEvaluator> evaluator;
    std::vector<char> flags;  // One per entity of db, in Entities() order.
  };
  std::vector<Miss> misses;
  std::vector<std::size_t> alias(features.size(), 0);
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> miss_of_key;
  for (std::size_t i = 0; i < features.size(); ++i) {
    CacheKey key{digest, features[i].ToString()};
    if (use_cache) {
      answers[i] = CacheGet(key);
      if (answers[i] != nullptr) continue;
    }
    auto [it, inserted] = miss_of_key.try_emplace(key, misses.size());
    alias[i] = it->second;
    if (inserted) {
      {
        // A key whose previous evaluation was aborted is being retried.
        std::lock_guard<std::mutex> lock(cache_mutex_);
        auto aborted = aborted_keys_.find(key);
        if (aborted != aborted_keys_.end()) {
          ++stats_.evaluation_retries;
          aborted_keys_.erase(aborted);
        }
      }
      misses.push_back(Miss{i, std::move(key), nullptr, {}});
    }
  }
  if (misses.empty()) return answers;

  // Sharded evaluation of the misses: (feature × entity-block) work items
  // on the persistent pool. Each item writes disjoint flag slots, so the
  // result is bit-identical for every shard count.
  const std::vector<Value> entities = db.Entities();
  const std::size_t block = std::max<std::size_t>(1, options_.entity_block);
  const std::size_t blocks_per_feature = (entities.size() + block - 1) / block;
  for (Miss& miss : misses) {
    miss.evaluator =
        std::make_unique<CqEvaluator>(features[miss.feature_index]);
    miss.flags.assign(entities.size(), 0);
  }
  // Per-miss "this feature's answer is incomplete" flags: several shards of
  // one feature may trip concurrently. C++20 value-initializes the atomics.
  std::vector<std::atomic<bool>> incomplete(misses.size());
  std::atomic<std::uint64_t> cancelled{0};
  pool_.ParallelFor(
      misses.size() * blocks_per_feature, [&](std::size_t task) {
        const std::size_t m = task / blocks_per_feature;
        Miss& miss = misses[m];
        // Queued shards of an abandoned request bail at dispatch — this is
        // what bounds cancellation latency to one in-flight kernel step per
        // worker.
        if (budget != nullptr && budget->Interrupted()) {
          incomplete[m].store(true, std::memory_order_relaxed);
          cancelled.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::size_t begin = (task % blocks_per_feature) * block;
        std::size_t end = std::min(begin + block, entities.size());
        for (std::size_t e = begin; e < end; ++e) {
          std::optional<bool> selects =
              miss.evaluator->TrySelectsEntity(db, entities[e], budget);
          if (!selects.has_value()) {
            incomplete[m].store(true, std::memory_order_relaxed);
            cancelled.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          miss.flags[e] = *selects ? 1 : 0;
        }
      });

  std::uint64_t evaluated = 0;
  for (std::size_t m = 0; m < misses.size(); ++m) {
    Miss& miss = misses[m];
    if (incomplete[m].load(std::memory_order_relaxed)) {
      // Aborted: the flags are partial, so the answer must NEVER reach the
      // cache. Remember the key so a later re-request counts as a retry.
      std::lock_guard<std::mutex> lock(cache_mutex_);
      aborted_keys_.insert(miss.key);
      continue;  // answers[miss.feature_index] stays nullptr.
    }
    std::unordered_set<std::string> selected;
    for (std::size_t e = 0; e < entities.size(); ++e) {
      if (miss.flags[e] != 0) selected.insert(db.value_name(entities[e]));
    }
    auto answer = std::make_shared<const FeatureAnswer>(std::move(selected));
    CachePut(miss.key, answer);
    answers[miss.feature_index] = std::move(answer);
    ++evaluated;
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    stats_.features_evaluated += evaluated;
    stats_.entity_evaluations += evaluated * entities.size();
    stats_.cancelled_shards += cancelled.load(std::memory_order_relaxed);
  }
  // Fill the aliased (and, with the cache disabled, repeated) slots; slots
  // aliasing an aborted miss stay nullptr.
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (answers[i] == nullptr) {
      answers[i] = answers[misses[alias[i]].feature_index];
    }
  }
  return answers;
}

std::vector<std::shared_ptr<const FeatureAnswer>> EvalService::TryResolve(
    const std::vector<ConjunctiveQuery>& features, const Database& db,
    ExecutionBudget* budget) {
  return Resolve(features, db, budget);
}

std::shared_ptr<const FeatureAnswer> EvalService::Answer(
    const ConjunctiveQuery& feature, const Database& db) {
  return Resolve({feature}, db, nullptr)[0];
}

std::vector<FeatureVector> EvalService::Matrix(
    const std::vector<ConjunctiveQuery>& features, const Database& db) {
  std::vector<std::shared_ptr<const FeatureAnswer>> answers =
      Resolve(features, db, nullptr);
  const std::vector<Value> entities = db.Entities();
  std::vector<FeatureVector> matrix(entities.size());
  for (std::size_t e = 0; e < entities.size(); ++e) {
    matrix[e].reserve(features.size());
    for (const auto& answer : answers) {
      matrix[e].push_back(answer->Selects(db, entities[e]) ? 1 : -1);
    }
  }
  return matrix;
}

FeatureVector EvalService::Vector(
    const std::vector<ConjunctiveQuery>& features, const Database& db,
    Value entity) {
  // Answers are computed over η(D), so the probe must be an entity (the
  // unserved Statistic::Vector accepts arbitrary values; the service's
  // statistic contract is Π^D(e) for e ∈ η(D)).
  FEATSEP_CHECK(db.IsEntity(entity))
      << "EvalService::Vector probe is not an entity";
  std::vector<std::shared_ptr<const FeatureAnswer>> answers =
      Resolve(features, db, nullptr);
  FeatureVector vector;
  vector.reserve(features.size());
  for (const auto& answer : answers) {
    vector.push_back(answer->Selects(db, entity) ? 1 : -1);
  }
  return vector;
}

ServeStats EvalService::stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return stats_;
}

std::size_t EvalService::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void EvalService::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
  lru_.clear();
  aborted_keys_.clear();
}

}  // namespace serve
}  // namespace featsep
