#ifndef FEATSEP_SERVE_SUPERVISOR_H_
#define FEATSEP_SERVE_SUPERVISOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace featsep {
namespace serve {

/// Structured exit codes for featsep_worker (documented in the tool's
/// --help and DESIGN.md §15). The supervisor uses them to distinguish
/// failures a restart can cure from poison it must not retry:
///   0  clean drain — the job(s) completed or there was nothing to do
///   2  usage error — bad flags; restarting with the same argv cannot help
///   3  digest refusal — the job spec's digest disagrees with its database
///      bytes; evaluating would poison shared caches, so never restart
///   4  I/O give-up — persistent filesystem faults after retries; the fault
///      may be transient, so a restart is worth attempting
///   5  crash — unhandled exception; restartable (so is death by signal)
enum WorkerExitCode : int {
  kWorkerExitClean = 0,
  kWorkerExitUsage = 2,
  kWorkerExitDigestRefusal = 3,
  kWorkerExitIoGiveUp = 4,
  kWorkerExitCrash = 5,
};

const char* WorkerExitCodeName(int code);

/// Whether a supervisor should restart a worker that exited with `code`.
/// Death by signal is always restartable and handled separately.
bool WorkerExitRestartable(int code);

struct WorkerProcessOptions {
  /// Worker command line; argv[0] is the binary path.
  std::vector<std::string> argv;
  std::size_t num_workers = 1;
  /// Restart budget *per worker slot*; once exhausted the slot stays down.
  std::size_t max_restarts = 3;
};

struct WorkerSupervisorStats {
  std::uint64_t spawned = 0;
  std::uint64_t restarts = 0;
  /// Exits by kind: signal deaths count as crashes.
  std::uint64_t clean_exits = 0;
  std::uint64_t crashes = 0;
  std::uint64_t poison_exits = 0;       ///< Non-restartable exit codes.
  std::uint64_t restartable_exits = 0;  ///< kIoGiveUp/kCrash exit codes.
  /// Slots abandoned because their restart budget ran out.
  std::uint64_t restart_budget_exhausted = 0;
};

/// Spawns and monitors a fixed fleet of worker processes (POSIX
/// fork/exec). Poll() reaps exits without blocking and restarts workers
/// whose exit was restartable, up to max_restarts per slot; StopAll()
/// terminates the fleet (SIGTERM, then reap). The shard coordinator runs
/// one of these when ShardCoordinatorOptions::supervise is set, so a job
/// keeps its worker fleet alive across worker crashes without any human in
/// the loop. Thread-safe. On non-POSIX builds Start() fails.
class WorkerSupervisor {
 public:
  explicit WorkerSupervisor(WorkerProcessOptions options);
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Spawns the fleet. False if any spawn failed (the rest still run).
  bool Start();

  /// Reaps any exited workers and restarts the restartable ones within
  /// budget. Non-blocking. Returns the number of live workers.
  std::size_t Poll();

  /// SIGTERMs and reaps every live worker. Idempotent; the destructor
  /// calls it.
  void StopAll();

  std::size_t live_workers() const;
  WorkerSupervisorStats stats() const;

 private:
  struct Slot {
    long long pid = -1;  ///< -1 = not running.
    std::size_t restarts = 0;
    bool abandoned = false;  ///< Poison exit or restart budget exhausted.
  };

  /// Spawns one worker into `slot` (locked by the caller).
  bool Spawn(Slot* slot);

  WorkerProcessOptions options_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  WorkerSupervisorStats stats_;
};

}  // namespace serve
}  // namespace featsep

#endif  // FEATSEP_SERVE_SUPERVISOR_H_
