#include "serve/async_service.h"

#include <algorithm>
#include <utility>

namespace featsep {
namespace serve {
namespace {

bool IsTerminal(RequestState state) {
  return state != RequestState::kQueued && state != RequestState::kRunning;
}

/// Builds the per-request budget from the resolved deadline/step-limit pair.
/// ExecutionBudget is non-copyable, so every return is a prvalue the caller
/// materializes in place (guaranteed elision).
ExecutionBudget MakeBudget(bool has_deadline,
                           ExecutionBudget::Clock::time_point deadline,
                           std::uint64_t step_limit) {
  if (has_deadline && step_limit != 0) {
    return ExecutionBudget::WithDeadlineAndStepLimit(deadline, step_limit);
  }
  if (has_deadline) return ExecutionBudget::WithDeadline(deadline);
  if (step_limit != 0) return ExecutionBudget::WithStepLimit(step_limit);
  return ExecutionBudget();
}

}  // namespace

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kInteractive:
      return "interactive";
    case RequestPriority::kBatch:
      return "batch";
  }
  return "?";
}

const char* RequestStateName(RequestState state) {
  switch (state) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kRunning:
      return "running";
    case RequestState::kCompleted:
      return "completed";
    case RequestState::kExpired:
      return "expired";
    case RequestState::kRejected:
      return "rejected";
    case RequestState::kCancelled:
      return "cancelled";
  }
  return "?";
}

struct RequestHandle::Request {
  Request(std::uint64_t id, RequestPriority priority,
          std::vector<ConjunctiveQuery> features,
          std::shared_ptr<const Database> db, bool has_deadline,
          ExecutionBudget::Clock::time_point deadline, std::uint64_t step_limit)
      : id(id),
        priority(priority),
        features(std::move(features)),
        db(std::move(db)),
        budget(MakeBudget(has_deadline, deadline, step_limit)),
        future(promise.get_future().share()) {}

  const std::uint64_t id;
  const RequestPriority priority;
  const std::vector<ConjunctiveQuery> features;
  const std::shared_ptr<const Database> db;
  ExecutionBudget budget;
  /// Dispatch order; written once by the dispatcher under the service
  /// mutex before the state flips to kRunning.
  std::uint64_t sequence = 0;
  std::atomic<RequestState> state{RequestState::kQueued};
  std::promise<RequestResult> promise;  // Must precede `future`.
  std::shared_future<RequestResult> future;
};

RequestHandle::RequestHandle() = default;
RequestHandle::RequestHandle(const RequestHandle&) = default;
RequestHandle::RequestHandle(RequestHandle&&) noexcept = default;
RequestHandle& RequestHandle::operator=(const RequestHandle&) = default;
RequestHandle& RequestHandle::operator=(RequestHandle&&) noexcept = default;
RequestHandle::~RequestHandle() = default;

RequestHandle::RequestHandle(std::shared_ptr<Request> request)
    : request_(std::move(request)) {}

bool RequestHandle::valid() const { return request_ != nullptr; }

std::uint64_t RequestHandle::id() const { return request_->id; }

RequestPriority RequestHandle::priority() const { return request_->priority; }

RequestState RequestHandle::state() const {
  return request_->state.load(std::memory_order_acquire);
}

bool RequestHandle::done() const { return IsTerminal(state()); }

std::optional<RequestResult> RequestHandle::Poll() const {
  if (request_ == nullptr || !IsTerminal(state())) return std::nullopt;
  // The terminal state is stored just before the promise is fulfilled, so
  // this get() is ready or at most an instruction-window away from it.
  return request_->future.get();
}

const RequestResult& RequestHandle::Wait() const {
  return request_->future.get();
}

std::shared_future<RequestResult> RequestHandle::future() const {
  return request_->future;
}

void RequestHandle::Cancel() const {
  if (request_ != nullptr) request_->budget.Cancel();
}

AsyncEvalService::AsyncEvalService(const AsyncServeOptions& options)
    : options_(options), backend_(options.serve) {
  std::size_t n = options_.num_dispatchers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  dispatchers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

AsyncEvalService::~AsyncEvalService() {
  std::vector<std::shared_ptr<Request>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    paused_ = false;
    for (auto& queue : queues_) {
      orphaned.insert(orphaned.end(), queue.begin(), queue.end());
      queue.clear();
    }
    // In-flight requests unwind cooperatively; the joins below wait for
    // them, so every future is satisfied before destruction completes.
    for (const auto& request : running_) request->budget.Cancel();
  }
  dispatch_cv_.notify_all();
  for (const auto& request : orphaned) {
    request->budget.Cancel();
    RequestResult result;
    result.state = RequestState::kCancelled;
    result.budget_outcome = BudgetOutcome::kCancelled;
    result.answers.assign(request->features.size(), nullptr);
    Finish(request, std::move(result));
  }
  for (std::thread& dispatcher : dispatchers_) dispatcher.join();
}

RequestHandle AsyncEvalService::Submit(std::vector<ConjunctiveQuery> features,
                                       std::shared_ptr<const Database> db,
                                       const SubmitOptions& submit) {
  bool has_deadline = false;
  ExecutionBudget::Clock::time_point deadline{};
  const ExecutionBudget::Clock::duration timeout =
      submit.timeout.has_value() ? *submit.timeout : options_.default_timeout;
  if (submit.timeout.has_value() ||
      options_.default_timeout != ExecutionBudget::Clock::duration::zero()) {
    has_deadline = true;
    deadline = ExecutionBudget::Clock::now() + timeout;
  }

  const std::size_t index = static_cast<std::size_t>(submit.priority);
  std::shared_ptr<Request> request;
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RequestClassStats& cls = StatsOf(submit.priority);
    ++cls.submitted;
    const bool full = options_.queue_capacity != 0 &&
                      queues_[index].size() >= options_.queue_capacity;
    if (stop_ || full) {
      ++cls.rejected;
      request = std::make_shared<Request>(
          next_id_++, submit.priority, std::move(features), std::move(db),
          /*has_deadline=*/false, ExecutionBudget::Clock::time_point{},
          /*step_limit=*/0);
    } else {
      admitted = true;
      ++cls.accepted;
      request = std::make_shared<Request>(next_id_++, submit.priority,
                                          std::move(features), std::move(db),
                                          has_deadline, deadline,
                                          submit.step_limit);
      queues_[index].push_back(request);
      cls.queue_high_water =
          std::max(cls.queue_high_water, queues_[index].size());
    }
  }
  if (admitted) {
    dispatch_cv_.notify_one();
  } else {
    // Shed load with a structured result: the handle is terminal before
    // Submit even returns, so rejected callers never block.
    RequestResult result;
    result.state = RequestState::kRejected;
    result.answers.assign(request->features.size(), nullptr);
    request->state.store(RequestState::kRejected, std::memory_order_release);
    request->promise.set_value(std::move(result));
  }
  return RequestHandle(std::move(request));
}

void AsyncEvalService::PauseDispatch() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void AsyncEvalService::ResumeDispatch() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  dispatch_cv_.notify_all();
}

std::size_t AsyncEvalService::queue_depth(RequestPriority priority) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queues_[static_cast<std::size_t>(priority)].size();
}

AsyncServeStats AsyncEvalService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AsyncEvalService::DispatcherLoop() {
  for (;;) {
    std::shared_ptr<Request> request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      dispatch_cv_.wait(lock, [this] {
        if (stop_) return true;
        if (paused_) return false;
        for (const auto& queue : queues_) {
          if (!queue.empty()) return true;
        }
        return false;
      });
      if (stop_) return;
      // Strict priority: interactive (index 0) drains before batch sees
      // a dispatcher.
      for (auto& queue : queues_) {
        if (!queue.empty()) {
          request = queue.front();
          queue.pop_front();
          break;
        }
      }
    }
    if (request != nullptr) RunRequest(request);
  }
}

void AsyncEvalService::RunRequest(const std::shared_ptr<Request>& request) {
  RequestResult result;
  // A deadline that passed in the queue (or a Cancel() that raced admission)
  // terminalizes here without constructing kernel work; sequence stays 0.
  if (!request->budget.Recheck()) {
    result.budget_outcome = request->budget.outcome();
    result.state = result.budget_outcome == BudgetOutcome::kCancelled
                       ? RequestState::kCancelled
                       : RequestState::kExpired;
    result.answers.assign(request->features.size(), nullptr);
    Finish(request, std::move(result));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    request->sequence = ++stats_.dispatched;
    request->state.store(RequestState::kRunning, std::memory_order_release);
    running_.push_back(request);
    // Shutdown may have started between the dequeue and this registration;
    // cancel so the evaluation below unwinds instead of delaying the join.
    if (stop_) request->budget.Cancel();
  }
  result.sequence = request->sequence;
  result.answers =
      backend_.TryResolve(request->features, *request->db, &request->budget);
  result.budget_outcome = request->budget.outcome();
  switch (result.budget_outcome) {
    case BudgetOutcome::kCompleted:
      result.state = RequestState::kCompleted;
      break;
    case BudgetOutcome::kCancelled:
      result.state = RequestState::kCancelled;
      break;
    case BudgetOutcome::kTimedOut:
    case BudgetOutcome::kBudgetExhausted:
      result.state = RequestState::kExpired;
      break;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find(running_.begin(), running_.end(), request);
    if (it != running_.end()) running_.erase(it);
  }
  Finish(request, std::move(result));
}

void AsyncEvalService::Finish(const std::shared_ptr<Request>& request,
                              RequestResult result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RequestClassStats& cls = StatsOf(request->priority);
    switch (result.state) {
      case RequestState::kCompleted:
        ++cls.completed;
        break;
      case RequestState::kExpired:
        ++cls.expired;
        break;
      case RequestState::kCancelled:
        ++cls.cancelled;
        break;
      default:
        break;
    }
  }
  // Terminal state first, then the promise: a ready future implies the
  // state() snapshot is already terminal.
  request->state.store(result.state, std::memory_order_release);
  request->promise.set_value(std::move(result));
}

}  // namespace serve
}  // namespace featsep
