#include "serve/supervisor.h"

#include <utility>

#ifndef _WIN32
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace featsep {
namespace serve {

const char* WorkerExitCodeName(int code) {
  switch (code) {
    case kWorkerExitClean: return "clean";
    case kWorkerExitUsage: return "usage";
    case kWorkerExitDigestRefusal: return "digest-refusal";
    case kWorkerExitIoGiveUp: return "io-give-up";
    case kWorkerExitCrash: return "crash";
    default: return "other";
  }
}

bool WorkerExitRestartable(int code) {
  // Only faults that a fresh process might not hit again: transient I/O and
  // crashes. Clean exits need no restart; usage and digest refusal would
  // repeat verbatim (poison).
  return code == kWorkerExitIoGiveUp || code == kWorkerExitCrash;
}

WorkerSupervisor::WorkerSupervisor(WorkerProcessOptions options)
    : options_(std::move(options)) {}

WorkerSupervisor::~WorkerSupervisor() { StopAll(); }

bool WorkerSupervisor::Spawn(Slot* slot) {
#ifndef _WIN32
  if (options_.argv.empty()) return false;
  std::vector<char*> argv;
  argv.reserve(options_.argv.size() + 1);
  for (const std::string& arg : options_.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::execvp(argv[0], argv.data());
    _exit(127);  // exec failed; classified as a poison exit by the parent.
  }
  slot->pid = pid;
  ++stats_.spawned;
  return true;
#else
  (void)slot;
  return false;
#endif
}

bool WorkerSupervisor::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.assign(options_.num_workers, Slot{});
  bool all = true;
  for (Slot& slot : slots_) {
    if (!Spawn(&slot)) {
      slot.abandoned = true;
      all = false;
    }
  }
  return all;
}

std::size_t WorkerSupervisor::Poll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
#ifndef _WIN32
  for (Slot& slot : slots_) {
    if (slot.pid < 0) continue;
    int status = 0;
    const pid_t reaped =
        ::waitpid(static_cast<pid_t>(slot.pid), &status, WNOHANG);
    if (reaped == 0) {
      ++live;
      continue;
    }
    slot.pid = -1;
    bool restart = false;
    if (reaped < 0) {
      // Already reaped elsewhere (should not happen); treat as crash.
      ++stats_.crashes;
      restart = true;
    } else if (WIFSIGNALED(status)) {
      ++stats_.crashes;
      restart = true;
    } else {
      const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 127;
      if (code == kWorkerExitClean) {
        ++stats_.clean_exits;
      } else if (WorkerExitRestartable(code)) {
        ++stats_.restartable_exits;
        restart = true;
      } else {
        ++stats_.poison_exits;
        slot.abandoned = true;
      }
    }
    if (restart) {
      if (slot.restarts >= options_.max_restarts) {
        slot.abandoned = true;
        ++stats_.restart_budget_exhausted;
      } else {
        ++slot.restarts;
        ++stats_.restarts;
        if (Spawn(&slot)) {
          ++live;
        } else {
          slot.abandoned = true;
        }
      }
    }
  }
#endif
  return live;
}

void WorkerSupervisor::StopAll() {
  std::lock_guard<std::mutex> lock(mutex_);
#ifndef _WIN32
  for (Slot& slot : slots_) {
    if (slot.pid < 0) continue;
    ::kill(static_cast<pid_t>(slot.pid), SIGTERM);
  }
  for (Slot& slot : slots_) {
    if (slot.pid < 0) continue;
    int status = 0;
    ::waitpid(static_cast<pid_t>(slot.pid), &status, 0);
    slot.pid = -1;
  }
#endif
}

std::size_t WorkerSupervisor::live_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (const Slot& slot : slots_) {
    if (slot.pid >= 0) ++live;
  }
  return live;
}

WorkerSupervisorStats WorkerSupervisor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace serve
}  // namespace featsep
