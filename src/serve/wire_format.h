#ifndef FEATSEP_SERVE_WIRE_FORMAT_H_
#define FEATSEP_SERVE_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/hash.h"

namespace featsep {
namespace serve {
namespace wire {

/// Helpers shared by the persistent serve formats (disk cache entries,
/// shard jobs, shard results — DESIGN.md §13). Every format is line
/// structured with length-prefixed strings and ends with a `checksum
/// <hex16>` line whose FNV-1a-64 covers every byte before that line.
/// Parsing fails softly: truncated or corrupt bytes surface as a false
/// return, never a crash or over-read.

/// Sequential reader over format bytes.
struct Cursor {
  std::string_view bytes;
  std::size_t pos = 0;

  bool ReadLine(std::string_view* line) {
    if (pos > bytes.size()) return false;
    std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string_view::npos) return false;
    *line = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  }

  /// Reads exactly n bytes followed by a newline.
  bool ReadExact(std::size_t n, std::string_view* out) {
    if (pos + n + 1 > bytes.size() || bytes[pos + n] != '\n') return false;
    *out = bytes.substr(pos, n);
    pos = pos + n + 1;
    return true;
  }

  /// Reads a "<len> <bytes>" token (length, one space, raw bytes, newline).
  bool ReadSized(std::string_view* out);
};

/// Strict decimal/hex u64 parse (lowercase hex only); rejects empty tokens,
/// stray characters, and overflow.
inline bool ParseU64(std::string_view token, std::uint64_t* out,
                     int base = 10) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (char c : token) {
    std::uint64_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint64_t>(c - '0');
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      d = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    std::uint64_t next = value * static_cast<std::uint64_t>(base) + d;
    if (next < value) return false;  // Overflow.
    value = next;
  }
  *out = value;
  return true;
}

/// Parses a "<keyword> <u64>" line.
inline bool ParseKeyedU64(std::string_view line, std::string_view keyword,
                          std::uint64_t* out, int base = 10) {
  if (line.size() <= keyword.size() + 1) return false;
  if (line.substr(0, keyword.size()) != keyword) return false;
  if (line[keyword.size()] != ' ') return false;
  return ParseU64(line.substr(keyword.size() + 1), out, base);
}

inline bool Cursor::ReadSized(std::string_view* out) {
  std::size_t space = bytes.find(' ', pos);
  if (space == std::string_view::npos) return false;
  std::uint64_t size = 0;
  if (!ParseU64(bytes.substr(pos, space - pos), &size)) return false;
  if (size > bytes.size()) return false;  // Implausible: cheap DoS guard.
  pos = space + 1;
  return ReadExact(size, out);
}

/// 16-hex-digit lowercase rendering of a u64, the on-disk spelling of
/// digests and checksums.
inline std::string DigestHex(std::uint64_t value) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[value & 0xf];
    value >>= 4;
  }
  return out;
}

/// Appends the trailing "checksum <hex16>\n" line over `payload`.
inline std::string WithChecksum(std::string payload) {
  std::uint64_t sum = Fnv1a64(payload);
  payload += "checksum ";
  payload += DigestHex(sum);
  payload += "\n";
  return payload;
}

/// Verifies that the cursor's remaining bytes are exactly one checksum line
/// matching everything before it.
inline bool VerifyChecksum(Cursor& cursor) {
  std::size_t payload_end = cursor.pos;
  std::string_view line;
  std::uint64_t stored = 0;
  if (!cursor.ReadLine(&line) || !ParseKeyedU64(line, "checksum", &stored, 16)) {
    return false;
  }
  if (cursor.pos != cursor.bytes.size()) return false;  // Trailing bytes.
  return stored == Fnv1a64(cursor.bytes.substr(0, payload_end));
}

}  // namespace wire
}  // namespace serve
}  // namespace featsep

#endif  // FEATSEP_SERVE_WIRE_FORMAT_H_
