#ifndef FEATSEP_SERVE_ASYNC_SERVICE_H_
#define FEATSEP_SERVE_ASYNC_SERVICE_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cq/cq.h"
#include "relational/database.h"
#include "serve/eval_service.h"
#include "util/budget.h"

namespace featsep {
namespace serve {

/// Priority class of a request. Interactive requests are always dequeued
/// before batch requests, and the two classes have separate admission
/// queues, so a saturated batch backlog can never starve or reject an
/// interactive caller (no priority inversion at admission or dispatch).
enum class RequestPriority : std::uint8_t {
  kInteractive = 0,
  kBatch = 1,
};
constexpr std::size_t kNumRequestPriorities = 2;

/// Short stable name ("interactive", "batch").
const char* RequestPriorityName(RequestPriority priority);

/// Lifecycle of a request (DESIGN.md §12):
///
///   Submit ──admitted──▶ kQueued ──dispatch──▶ kRunning ──▶ kCompleted
///      │                    │                     ├────────▶ kExpired
///      └──queue full──▶ kRejected                 └────────▶ kCancelled
///                           └─(deadline/cancel while queued)─▶ kExpired/
///                                                              kCancelled
///
/// kCompleted, kExpired, kRejected, and kCancelled are terminal; kQueued
/// and kRunning are transient snapshots.
enum class RequestState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kCompleted,  ///< Every answer definitive; bit-identical to the serial path.
  kExpired,    ///< The request's deadline or step budget tripped.
  kRejected,   ///< Shed at admission: queue full (or service shutting down).
  kCancelled,  ///< Cancel() reached the request before it completed.
};

/// Short stable name ("queued", "running", "completed", ...).
const char* RequestStateName(RequestState state);

/// Options for the asynchronous front-end. `serve` configures the shared
/// backend EvalService (shards, entity blocks, answer cache).
struct AsyncServeOptions {
  ServeOptions serve;
  /// Admission bound per priority class: a Submit finding this many
  /// requests of its class already queued is rejected immediately with a
  /// structured kRejected result (load shedding, never blocking). 0 =
  /// unbounded (admission control off).
  std::size_t queue_capacity = 256;
  /// Dispatcher threads pulling requests off the queues; 0 = hardware
  /// concurrency. Dispatchers fan each request's shards over the backend
  /// pool, so keep dispatchers × num_shards near the core count.
  std::size_t num_dispatchers = 1;
  /// Deadline applied to requests whose SubmitOptions leave `timeout`
  /// unset, measured from Submit; zero = unbounded.
  ExecutionBudget::Clock::duration default_timeout{0};
};

/// Per-request Submit parameters.
struct SubmitOptions {
  RequestPriority priority = RequestPriority::kInteractive;
  /// Deadline measured from Submit. Unset: AsyncServeOptions's
  /// default_timeout. A zero (or negative) value is an already-expired
  /// deadline: the request is admitted and completes as kExpired without
  /// touching the kernel.
  std::optional<ExecutionBudget::Clock::duration> timeout;
  /// Deterministic step budget (ExecutionBudget::WithStepLimit); 0 = none.
  /// Unlike wall-clock deadlines, step limits interrupt at reproducible
  /// points, which the async fuzz driver relies on.
  std::uint64_t step_limit = 0;
};

/// Terminal result of a request. `answers` has one entry per submitted
/// feature; an entry may be nullptr when the request did not complete
/// (kExpired/kCancelled leave the features the budget interrupted
/// unanswered, kRejected answers nothing). Every NON-null answer is
/// definitive and bit-identical to the serial evaluation path regardless of
/// the request's terminal state — an interrupted request returns either
/// nothing or the truth for a feature, never a partial answer (the backend
/// never caches aborted shards; DESIGN.md §8/§12).
struct RequestResult {
  RequestState state = RequestState::kCompleted;
  /// Which budget limit tripped, for kExpired (kTimedOut/kBudgetExhausted)
  /// and kCancelled (kCancelled); kCompleted otherwise. A kRejected request
  /// never constructs kernel work, so its outcome stays kCompleted.
  BudgetOutcome budget_outcome = BudgetOutcome::kCompleted;
  /// 1-based dispatch order across the service (0 = never dispatched:
  /// rejected, or cancelled/expired while still queued). With a single
  /// dispatcher, an interactive request always receives a lower sequence
  /// number than any batch request that was queued when it arrived.
  std::uint64_t sequence = 0;
  std::vector<std::shared_ptr<const FeatureAnswer>> answers;

  bool complete() const { return state == RequestState::kCompleted; }
};

/// Per-priority-class observability counters.
struct RequestClassStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;   ///< Shed at admission (queue full/shutdown).
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;    ///< Deadline or step budget tripped.
  std::uint64_t cancelled = 0;
  /// Highest queue depth ever observed at admission (≤ queue_capacity when
  /// admission control is on).
  std::size_t queue_high_water = 0;
};

/// Snapshot of the front-end's counters; `of()` indexes by priority.
struct AsyncServeStats {
  std::array<RequestClassStats, kNumRequestPriorities> classes;
  /// Requests handed to a dispatcher so far (the sequence counter).
  std::uint64_t dispatched = 0;

  const RequestClassStats& of(RequestPriority priority) const {
    return classes[static_cast<std::size_t>(priority)];
  }
};

class AsyncEvalService;

/// Caller-side handle to one submitted request: poll, block, or cancel.
/// Copyable (all copies refer to the same request) and cheap to pass by
/// value; safe to use from any thread, including after the service is
/// destroyed (the result outlives the service).
class RequestHandle {
 public:
  RequestHandle();
  RequestHandle(const RequestHandle&);
  RequestHandle(RequestHandle&&) noexcept;
  RequestHandle& operator=(const RequestHandle&);
  RequestHandle& operator=(RequestHandle&&) noexcept;
  ~RequestHandle();

  bool valid() const;
  std::uint64_t id() const;
  RequestPriority priority() const;

  /// Current state snapshot (transient states included). Monotone: once a
  /// terminal state is visible it never changes.
  RequestState state() const;
  bool done() const;

  /// Non-blocking: the terminal result once the request finished, nullopt
  /// while it is still queued or running. Repeatable.
  std::optional<RequestResult> Poll() const;

  /// Blocks until the request reaches a terminal state. Never blocks for a
  /// rejected request (its result is ready before Submit returns).
  const RequestResult& Wait() const;

  /// The future-flavored API: a shared_future completing with the terminal
  /// result, for callers composing with std::future machinery.
  std::shared_future<RequestResult> future() const;

  /// Requests cancellation: latches the request's budget, so a queued
  /// request terminalizes as kCancelled at dequeue and a running one
  /// unwinds cooperatively (bounded by one kernel event + one clock
  /// stride). Completion can win the race — check the terminal state.
  void Cancel() const;

 private:
  friend class AsyncEvalService;
  struct Request;
  explicit RequestHandle(std::shared_ptr<Request> request);
  std::shared_ptr<Request> request_;
};

/// Asynchronous request front-end over the batched EvalService (DESIGN.md
/// §12): Submit enqueues a (features, database) evaluation request under a
/// priority class and returns immediately with a RequestHandle; dispatcher
/// threads drain the queues (interactive strictly before batch) and run
/// each request through the shared backend with the request's own
/// ExecutionBudget, so per-request deadlines cancel in-flight shards
/// cooperatively. Bounded queues shed load at admission with a structured
/// kRejected result instead of blocking the caller.
///
/// Determinism contract: for every request that terminates kCompleted, the
/// answers are bit-identical to the serial path (`num_shards = 1`, no
/// cache), independent of dispatcher count, shard count, queue pressure,
/// and interleaving with expired/cancelled/rejected requests — interrupted
/// evaluations are never cached, so they cannot leak into later answers.
///
/// Destruction is a clean shutdown: queued requests terminalize as
/// kCancelled without running, in-flight budgets are cancelled, and every
/// handle's future is satisfied before the destructor returns.
class AsyncEvalService {
 public:
  explicit AsyncEvalService(const AsyncServeOptions& options = {});
  ~AsyncEvalService();

  AsyncEvalService(const AsyncEvalService&) = delete;
  AsyncEvalService& operator=(const AsyncEvalService&) = delete;

  const AsyncServeOptions& options() const { return options_; }

  /// Enqueues one evaluation request. `db` must stay unchanged until the
  /// request terminates (the shared_ptr keeps it alive). Never blocks: a
  /// full queue rejects, an admitted request returns a handle to poll or
  /// wait on.
  RequestHandle Submit(std::vector<ConjunctiveQuery> features,
                       std::shared_ptr<const Database> db,
                       const SubmitOptions& submit = {});

  /// Holds dispatch: running requests finish, queued requests stay queued
  /// (their deadlines keep ticking). Admission stays open. For draining,
  /// maintenance, and deterministic queue-pressure tests.
  void PauseDispatch();
  void ResumeDispatch();

  /// Currently queued requests of one class.
  std::size_t queue_depth(RequestPriority priority) const;

  AsyncServeStats stats() const;

  /// The shared backend (cache + shard pool). Synchronous EvalService calls
  /// on it are safe and see the same cache the async path fills.
  EvalService& backend() { return backend_; }
  const EvalService& backend() const { return backend_; }

 private:
  using Request = RequestHandle::Request;

  void DispatcherLoop();
  /// Runs one admitted request to a terminal state on the calling thread.
  void RunRequest(const std::shared_ptr<Request>& request);
  /// Stores the terminal result, fulfills the future, bumps class counters.
  void Finish(const std::shared_ptr<Request>& request, RequestResult result);

  RequestClassStats& StatsOf(RequestPriority priority) {
    return stats_.classes[static_cast<std::size_t>(priority)];
  }

  AsyncServeOptions options_;
  EvalService backend_;

  mutable std::mutex mutex_;
  std::condition_variable dispatch_cv_;
  std::array<std::deque<std::shared_ptr<Request>>, kNumRequestPriorities>
      queues_;
  /// Budgets of requests currently running on a dispatcher, for shutdown
  /// cancellation. Guarded by mutex_.
  std::vector<std::shared_ptr<Request>> running_;
  AsyncServeStats stats_;
  std::uint64_t next_id_ = 1;
  bool paused_ = false;
  bool stop_ = false;

  std::vector<std::thread> dispatchers_;
};

}  // namespace serve
}  // namespace featsep

#endif  // FEATSEP_SERVE_ASYNC_SERVICE_H_
