#ifndef FEATSEP_SERVE_EVAL_SERVICE_H_
#define FEATSEP_SERVE_EVAL_SERVICE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cq/cq.h"
#include "linsep/linear_classifier.h"
#include "relational/database.h"
#include "serve/disk_cache.h"
#include "util/budget.h"
#include "util/thread_pool.h"

namespace featsep {
namespace serve {

/// Options for the batched evaluation service.
struct ServeOptions {
  /// Shards (total concurrency) for the (feature × entity-block) work
  /// queue: 0 = hardware concurrency, 1 = serial in the calling thread.
  /// Results are bit-identical for every setting.
  std::size_t num_shards = 0;
  /// Entities per work item. Small blocks load-balance hard features;
  /// large blocks amortize dispatch. The default suits the NP-hard
  /// per-entity kernel cost.
  std::size_t entity_block = 64;
  /// Capacity of the per-feature result cache, in entries (one entry per
  /// distinct (database digest, feature) pair); 0 disables caching.
  std::size_t cache_capacity = 1024;
  /// Directory of the persistent on-disk result cache (serve/disk_cache.h):
  /// a durable tier under the in-memory LRU, read through on LRU misses and
  /// written behind after fresh evaluations. Shared safely between
  /// processes and across restarts; empty disables the disk tier.
  std::string cache_dir;
  /// Shared work directory for multi-process sharded evaluation
  /// (serve/shard_protocol.h): cache misses are published as shard jobs
  /// here and evaluated cooperatively by this process and any
  /// `featsep_worker` processes attached to the same directory, with
  /// results merged bit-identically to the in-process path. Empty disables
  /// shard mode. Budgeted (TryResolve) requests always evaluate in-process.
  std::string shard_dir;
  /// Shard-mode lease: a shard claimed by a worker that died is reclaimed
  /// and re-run after this long.
  std::chrono::milliseconds shard_lease{10000};
  /// Delta maintenance policy (serve/incremental.h). True: after a database
  /// mutation, warm cache entries are *patched* in place — only entities the
  /// delta can affect are re-evaluated — and re-published under the new
  /// digest. False: warm entries touched by a delta are simply dropped and
  /// the next read recomputes cold. Both are bit-identical to full
  /// recompute; patching trades a small maintenance cost on the write path
  /// for warm reads right after every write.
  bool incremental = true;
  /// Disk-tier GC budget in bytes: when the durable cache directory exceeds
  /// this, EvalService opportunistically sweeps oldest-mtime entries after
  /// write-behind (DiskResultCache::Sweep). 0 = unlimited, never sweep.
  std::uint64_t disk_cache_max_bytes = 0;
  /// Filesystem backend for the durable tiers (disk cache + shard
  /// protocol); null = the real filesystem. Tests and the crashio fuzzer
  /// inject a FaultFsEnv here.
  std::shared_ptr<FsEnv> fs_env;
  /// Retry policy for transient disk-tier faults: total attempts per
  /// store/load/remove (1 = no retry) and the backoff before each retry
  /// (exponential, deterministically jittered).
  int disk_retry_attempts = 3;
  std::chrono::microseconds disk_retry_backoff{100};
  /// Disk circuit breaker: after this many *consecutive* store/load I/O
  /// failures the disk tier trips open and serving degrades gracefully to
  /// LRU + compute (answers stay bit-identical; the disk is simply not
  /// consulted). 0 disables the breaker. While open, after
  /// breaker_probe_interval the next disk operation is let through as a
  /// half-open probe: success closes the breaker, failure re-opens it.
  int breaker_failure_threshold = 5;
  std::chrono::milliseconds breaker_probe_interval{1000};
};

/// Health of the disk tier as seen by the circuit breaker.
enum class DiskHealth : std::uint8_t {
  kClosed = 0,  ///< Healthy: disk consulted normally.
  kOpen,        ///< Tripped: disk bypassed, serving from LRU + compute.
  kHalfOpen,    ///< Probing: one operation in flight to test recovery.
};

const char* DiskHealthName(DiskHealth health);

/// Counters for observability and tests. Snapshot via EvalService::stats().
struct ServeStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t features_evaluated = 0;  ///< Kernel-evaluated (cache misses).
  std::uint64_t entity_evaluations = 0;  ///< Individual SelectsEntity calls.
  /// Work items (feature × entity-block shards) abandoned because the
  /// request's ExecutionBudget tripped mid-batch.
  std::uint64_t cancelled_shards = 0;
  /// Features re-requested after an earlier evaluation of the same
  /// (database, feature) key was aborted before completing.
  std::uint64_t evaluation_retries = 0;
  // Disk tier (zero unless ServeOptions::cache_dir is set).
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_misses = 0;
  std::uint64_t disk_writes = 0;
  /// Entries ignored as corrupt, version-mismatched, or key-colliding.
  std::uint64_t disk_drops = 0;
  // Disk-tier fault handling (serve/disk_cache.h + the circuit breaker).
  std::uint64_t disk_io_errors = 0;   ///< Loads that faulted after retries.
  std::uint64_t disk_retries = 0;     ///< Extra load/store attempts.
  std::uint64_t disk_give_ups = 0;    ///< Loads+stores that exhausted retries.
  std::uint64_t breaker_trips = 0;    ///< closed/half-open → open transitions.
  std::uint64_t breaker_probes = 0;   ///< open → half-open probe admissions.
  std::uint64_t breaker_closes = 0;   ///< Successful probes (probe → closed).
  /// Disk operations skipped because the breaker was open (served from
  /// LRU + compute instead; answers unaffected).
  std::uint64_t breaker_short_circuits = 0;
  // Shard mode (zero unless ServeOptions::shard_dir is set).
  std::uint64_t shard_jobs = 0;          ///< Miss batches published as jobs.
  std::uint64_t local_shards = 0;        ///< Shards this process evaluated.
  std::uint64_t remote_shards = 0;       ///< Shards merged from workers.
  std::uint64_t reclaimed_leases = 0;    ///< Dead-worker shards re-queued.
  /// Shards pulled out of the protocol after repeated failures and
  /// evaluated in-memory by the coordinator (answers unaffected).
  std::uint64_t quarantined_shards = 0;
  std::uint64_t shard_corrupt_results = 0;  ///< Dropped, never trusted.
  std::uint64_t shard_claim_races = 0;
  std::uint64_t shard_claim_errors = 0;
  std::uint64_t shard_requeue_failures = 0;
  std::uint64_t shard_io_retries = 0;
  std::uint64_t shard_io_give_ups = 0;
};

/// The answer set q(D) ∩ η(D) of one feature query, content-addressed: the
/// selected entities are stored by *name*, matching the digest's
/// order-insensitivity, so the entry transfers between equal-content
/// databases even when their interning orders (and hence value ids) differ.
class FeatureAnswer {
 public:
  explicit FeatureAnswer(std::unordered_set<std::string> selected)
      : selected_(std::move(selected)) {}

  /// True iff `entity` of `db` is selected. `db` must have the digest the
  /// entry was cached under.
  bool Selects(const Database& db, Value entity) const {
    return selected_.count(db.value_name(entity)) > 0;
  }

  std::size_t size() const { return selected_.size(); }

  /// True iff the entity with this name is selected (name-level probe for
  /// callers that track entities by name across digests).
  bool SelectsName(const std::string& name) const {
    return selected_.count(name) > 0;
  }

  /// The selected entity names — the content the incremental maintainer
  /// patches (copy, mutate, re-wrap) and the disk tier serializes.
  const std::unordered_set<std::string>& names() const { return selected_; }

 private:
  std::unordered_set<std::string> selected_;
};

/// Batched CQ-feature evaluation over the bitset homomorphism kernel, for
/// fitting-style pipelines that evaluate many candidate features over the
/// same database(s) repeatedly (DESIGN.md §8):
///
///   - results are cached in an LRU keyed by (Database::ContentDigest(),
///     feature canonical string), so a repeated (database, feature) pair
///     costs hash lookups instead of NP-hard homomorphism searches;
///   - cache misses are computed as (feature × entity-block) work items on
///     a persistent thread pool, sharded `num_shards` wide, instead of
///     spawning threads per call.
///
/// A service is safe to share between threads (the cache is
/// mutex-protected; batches serialize on the pool), but do not call it from
/// inside another service batch. Every query path has a serial fallback:
/// `num_shards = 1` never touches a worker thread, `cache_capacity = 0`
/// never caches, and all results are bit-identical to the unserved paths in
/// core/statistic.h, core/separability.h, and qbe/qbe.h.
class EvalService {
 public:
  explicit EvalService(const ServeOptions& options = {});

  const ServeOptions& options() const { return options_; }

  /// The full answer set of `feature` over `db`'s entities, from the cache
  /// when warm. The feature must be a unary query over a schema equal to
  /// `db`'s. Never returns nullptr.
  std::shared_ptr<const FeatureAnswer> Answer(const ConjunctiveQuery& feature,
                                              const Database& db);

  /// Π^D(e) for all entities of D in the order of db.Entities(), with rows
  /// indexed like core/statistic.h's Statistic::Matrix — one entry of ±1
  /// per feature, in feature order.
  std::vector<FeatureVector> Matrix(
      const std::vector<ConjunctiveQuery>& features, const Database& db);

  /// Π^D(e) for a single entity. Warm features are answered from the
  /// cache; cold features are batch-evaluated (and cached) first, so a
  /// Vector call on a fresh database pays one Matrix-shaped evaluation and
  /// every subsequent call on equal content is pure lookup.
  FeatureVector Vector(const std::vector<ConjunctiveQuery>& features,
                       const Database& db, Value entity);

  /// Budgeted Resolve for per-request deadlines/cancellation. Features
  /// whose evaluation was interrupted come back as nullptr; non-null
  /// answers are always complete and definitive. An interrupted feature is
  /// NEVER cached, so an aborted request can't poison later ones; a budget
  /// already expired at entry returns all-nullptr without touching the
  /// kernel. Cancellation is cooperative: queued shards of an abandoned
  /// request notice the tripped budget at dispatch and return immediately
  /// (counted in stats().cancelled_shards).
  std::vector<std::shared_ptr<const FeatureAnswer>> TryResolve(
      const std::vector<ConjunctiveQuery>& features, const Database& db,
      ExecutionBudget* budget);

  ServeStats stats() const;
  std::size_t cache_size() const;
  void ClearCache();

  /// Current disk-tier breaker state (kClosed when the breaker is disabled
  /// or there is no disk tier).
  DiskHealth disk_health() const;

  // Delta-maintenance hooks, used by IncrementalMaintainer
  // (serve/incremental.h). They operate on one (digest, feature) entry at a
  // time across both tiers; normal Resolve traffic may run concurrently.

  /// The cached answer for (digest, feature) from the LRU or, read-through,
  /// the disk tier — without promoting, inserting, or counting a hit/miss
  /// in the in-memory stats. nullptr when cold in both tiers.
  std::shared_ptr<const FeatureAnswer> PeekCached(std::uint64_t digest,
                                                  const std::string& feature);

  /// Publishes a patched answer under the new digest in both tiers and
  /// drops the stale old-digest entry from both: after this returns, the
  /// old key can never be served again and the new key is warm.
  void Republish(std::uint64_t old_digest, std::uint64_t new_digest,
                 const std::string& feature,
                 std::shared_ptr<const FeatureAnswer> answer);

  /// Drops the (digest, feature) entry from both tiers (invalidate-only
  /// maintenance, ServeOptions::incremental = false).
  void DropCached(std::uint64_t digest, const std::string& feature);

 private:
  using CacheKey = std::pair<std::uint64_t, std::string>;
  /// Buckets the in-memory LRU by the same stable FNV-1a-64 identity that
  /// names on-disk entries (serve/disk_cache.h), so the in-memory and
  /// serialized key spaces agree exactly — no std::hash anywhere.
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const;
  };
  struct CacheEntry {
    CacheKey key;
    std::shared_ptr<const FeatureAnswer> answer;
  };
  struct Miss;

  /// Cache lookups + batched evaluation of the misses; the workhorse
  /// behind Answer/Matrix/Vector/TryResolve. Returns one answer per
  /// feature; with a non-null budget, interrupted features are nullptr.
  std::vector<std::shared_ptr<const FeatureAnswer>> Resolve(
      const std::vector<ConjunctiveQuery>& features, const Database& db,
      ExecutionBudget* budget);

  /// Evaluates the misses via the multi-process shard protocol
  /// (options_.shard_dir), filling each miss's flags; returns false (and
  /// leaves flags untouched) if publishing failed, in which case the
  /// caller falls back to the in-process pool.
  bool ResolveMissesSharded(std::vector<Miss>& misses, const Database& db,
                            const std::vector<Value>& entities);

  std::shared_ptr<const FeatureAnswer> CacheGet(const CacheKey& key);
  void CachePut(CacheKey key, std::shared_ptr<const FeatureAnswer> answer);
  /// Runs the disk-tier GC when options_.disk_cache_max_bytes is set;
  /// called opportunistically after write-behind.
  void MaybeSweepDisk();

  /// Breaker gate: true when the disk tier may be touched right now. While
  /// open, returns false (counting a short-circuit) until the probe
  /// interval elapses, then admits exactly one operation as the half-open
  /// probe. Every admitted store/load must report back via NoteDiskResult.
  bool DiskTierAllowed();
  /// Feeds one store/load outcome to the breaker: success closes a probing
  /// breaker and resets the consecutive-failure run; an I/O failure extends
  /// it and trips the breaker at the threshold.
  void NoteDiskResult(bool io_ok);

  ServeOptions options_;
  ThreadPool pool_;
  /// Durable tier; null when cache_dir is empty. Thread-safe itself, so
  /// accessed outside cache_mutex_.
  std::unique_ptr<DiskResultCache> disk_;

  mutable std::mutex cache_mutex_;
  std::list<CacheEntry> lru_;  // Front = most recently used.
  std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHash>
      cache_;
  /// Keys whose evaluation was aborted mid-batch; a later re-request of
  /// such a key counts as an evaluation retry. Guarded by cache_mutex_.
  std::unordered_set<CacheKey, CacheKeyHash> aborted_keys_;
  ServeStats stats_;

  /// Circuit-breaker state for the disk tier. Guarded by breaker_mutex_
  /// (never held while doing I/O, and never nested with cache_mutex_).
  mutable std::mutex breaker_mutex_;
  DiskHealth breaker_state_ = DiskHealth::kClosed;
  int breaker_failures_ = 0;  // Consecutive store/load I/O failures.
  std::chrono::steady_clock::time_point breaker_opened_at_{};
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t breaker_probes_ = 0;
  std::uint64_t breaker_closes_ = 0;
  std::uint64_t breaker_short_circuits_ = 0;
};

}  // namespace serve
}  // namespace featsep

#endif  // FEATSEP_SERVE_EVAL_SERVICE_H_
