#include "serve/disk_cache.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "serve/wire_format.h"
#include "util/hash.h"

namespace featsep {
namespace serve {

namespace {

constexpr std::string_view kMagic = "featsep-result-cache";

std::uint64_t ProcessId() {
#ifndef _WIN32
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

std::uint64_t StableCacheKeyDigest(std::uint64_t content_digest,
                                   std::string_view feature) {
  std::uint64_t hash = Fnv1a64U64(kFnv64OffsetBasis, content_digest);
  return Fnv1a64String(hash, feature);
}

std::string SerializeDiskCacheEntry(std::uint64_t content_digest,
                                    std::string_view feature,
                                    std::vector<std::string> selected) {
  std::sort(selected.begin(), selected.end());
  std::ostringstream out;
  out << kMagic << " " << DiskResultCache::kFormatVersion << "\n";
  out << "digest " << wire::DigestHex(content_digest) << "\n";
  out << "feature " << feature.size() << "\n" << feature << "\n";
  out << "entities " << selected.size() << "\n";
  for (const std::string& name : selected) {
    out << name.size() << " " << name << "\n";
  }
  return wire::WithChecksum(out.str());
}

Result<DiskCacheEntry> ParseDiskCacheEntry(std::string_view bytes) {
  wire::Cursor cursor{bytes};
  std::string_view line;
  if (!cursor.ReadLine(&line)) return Error("truncated header");
  std::uint64_t version = 0;
  if (!wire::ParseKeyedU64(line, kMagic, &version)) return Error("bad magic");
  if (version != static_cast<std::uint64_t>(DiskResultCache::kFormatVersion)) {
    return Error("version mismatch: " + std::to_string(version));
  }

  DiskCacheEntry entry;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "digest", &entry.content_digest, 16)) {
    return Error("bad digest line");
  }
  std::uint64_t feature_size = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "feature", &feature_size)) {
    return Error("bad feature line");
  }
  std::string_view feature;
  if (!cursor.ReadExact(feature_size, &feature)) {
    return Error("truncated feature");
  }
  entry.feature = std::string(feature);
  std::uint64_t count = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "entities", &count)) {
    return Error("bad entities line");
  }
  if (count > bytes.size()) return Error("implausible entity count");
  entry.selected.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string_view name;
    if (!cursor.ReadSized(&name)) return Error("truncated entity");
    entry.selected.emplace_back(name);
  }
  if (!wire::VerifyChecksum(cursor)) return Error("checksum mismatch");
  if (!std::is_sorted(entry.selected.begin(), entry.selected.end())) {
    return Error("entities not in canonical order");
  }
  return entry;
}

DiskResultCache::DiskResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(dir_) / "tmp", ec);
}

std::string DiskResultCache::EntryPath(std::uint64_t content_digest,
                                       std::string_view feature) const {
  return (std::filesystem::path(dir_) /
          (wire::DigestHex(StableCacheKeyDigest(content_digest, feature)) +
           ".fse"))
      .string();
}

std::optional<std::vector<std::string>> DiskResultCache::Load(
    std::uint64_t content_digest, const std::string& feature) {
  const std::string path = EntryPath(content_digest, feature);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  // A different-version entry may belong to a newer binary sharing the
  // directory: drop it without trusting OR deleting it.
  std::uint64_t version = 0;
  std::string_view first = std::string_view(bytes);
  first = first.substr(0, first.find('\n'));
  if (wire::ParseKeyedU64(first, kMagic, &version) &&
      version != static_cast<std::uint64_t>(kFormatVersion)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.version_dropped;
    ++stats_.misses;
    return std::nullopt;
  }
  Result<DiskCacheEntry> entry = ParseDiskCacheEntry(bytes);
  if (!entry.ok()) {
    // Corrupt or truncated: never trusted, best-effort deleted so a later
    // write replaces it with a good entry.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt_dropped;
    ++stats_.misses;
    return std::nullopt;
  }
  if (entry.value().content_digest != content_digest ||
      entry.value().feature != feature) {
    // 64-bit file-name collision between distinct keys: keep the resident
    // entry, miss on ours.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.key_mismatch_dropped;
    ++stats_.misses;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.hits;
  return std::move(entry.value().selected);
}

bool DiskResultCache::Store(std::uint64_t content_digest,
                            const std::string& feature,
                            std::vector<std::string> selected) {
  const std::string name =
      wire::DigestHex(StableCacheKeyDigest(content_digest, feature));
  const std::filesystem::path final_path =
      std::filesystem::path(dir_) / (name + ".fse");
  const std::filesystem::path tmp_path =
      std::filesystem::path(dir_) / "tmp" /
      (name + "." + std::to_string(ProcessId()) + "." +
       std::to_string(tmp_counter_.fetch_add(1, std::memory_order_relaxed)) +
       ".tmp");
  std::string bytes =
      SerializeDiskCacheEntry(content_digest, feature, std::move(selected));

  auto fail = [&]() {
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.write_failures;
    return false;
  };
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return fail();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) return fail();
  }
  // Publish atomically: a rename within the directory either installs the
  // complete entry or leaves the old state; readers never see a torn file.
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) return fail();
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writes;
  return true;
}

bool DiskResultCache::Remove(std::uint64_t content_digest,
                             const std::string& feature) {
  std::error_code ec;
  const bool removed =
      std::filesystem::remove(EntryPath(content_digest, feature), ec) && !ec;
  if (removed) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.removed;
  }
  return removed;
}

DiskSweepResult DiskResultCache::Sweep(std::uint64_t max_bytes) {
  DiskSweepResult result;
  struct Entry {
    std::filesystem::path path;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& item :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (ec) break;
    if (!item.is_regular_file(ec) || item.path().extension() != ".fse") {
      continue;
    }
    Entry entry;
    entry.path = item.path();
    entry.bytes = static_cast<std::uint64_t>(item.file_size(ec));
    if (ec) continue;
    entry.mtime = item.last_write_time(ec);
    if (ec) continue;
    result.bytes_before += entry.bytes;
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              // Oldest mtime first; path as a deterministic tiebreak.
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  result.bytes_after = result.bytes_before;
  for (const Entry& entry : entries) {
    if (result.bytes_after <= max_bytes) break;
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path, remove_ec) && !remove_ec) {
      result.bytes_after -= entry.bytes;
      ++result.entries_removed;
    }
  }
  if (result.entries_removed > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.swept += result.entries_removed;
  }
  return result;
}

DiskCacheStats DiskResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace serve
}  // namespace featsep
