#include "serve/disk_cache.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "serve/wire_format.h"
#include "util/hash.h"

namespace featsep {
namespace serve {

namespace {

constexpr std::string_view kMagic = "featsep-result-cache";

std::uint64_t ProcessId() {
#ifndef _WIN32
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

std::uint64_t StableCacheKeyDigest(std::uint64_t content_digest,
                                   std::string_view feature) {
  std::uint64_t hash = Fnv1a64U64(kFnv64OffsetBasis, content_digest);
  return Fnv1a64String(hash, feature);
}

std::string SerializeDiskCacheEntry(std::uint64_t content_digest,
                                    std::string_view feature,
                                    std::vector<std::string> selected) {
  std::sort(selected.begin(), selected.end());
  std::ostringstream out;
  out << kMagic << " " << DiskResultCache::kFormatVersion << "\n";
  out << "digest " << wire::DigestHex(content_digest) << "\n";
  out << "feature " << feature.size() << "\n" << feature << "\n";
  out << "entities " << selected.size() << "\n";
  for (const std::string& name : selected) {
    out << name.size() << " " << name << "\n";
  }
  return wire::WithChecksum(out.str());
}

Result<DiskCacheEntry> ParseDiskCacheEntry(std::string_view bytes) {
  wire::Cursor cursor{bytes};
  std::string_view line;
  if (!cursor.ReadLine(&line)) return Error("truncated header");
  std::uint64_t version = 0;
  if (!wire::ParseKeyedU64(line, kMagic, &version)) return Error("bad magic");
  if (version != static_cast<std::uint64_t>(DiskResultCache::kFormatVersion)) {
    return Error("version mismatch: " + std::to_string(version));
  }

  DiskCacheEntry entry;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "digest", &entry.content_digest, 16)) {
    return Error("bad digest line");
  }
  std::uint64_t feature_size = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "feature", &feature_size)) {
    return Error("bad feature line");
  }
  std::string_view feature;
  if (!cursor.ReadExact(feature_size, &feature)) {
    return Error("truncated feature");
  }
  entry.feature = std::string(feature);
  std::uint64_t count = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "entities", &count)) {
    return Error("bad entities line");
  }
  if (count > bytes.size()) return Error("implausible entity count");
  entry.selected.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string_view name;
    if (!cursor.ReadSized(&name)) return Error("truncated entity");
    entry.selected.emplace_back(name);
  }
  if (!wire::VerifyChecksum(cursor)) return Error("checksum mismatch");
  if (!std::is_sorted(entry.selected.begin(), entry.selected.end())) {
    return Error("entities not in canonical order");
  }
  return entry;
}

DiskResultCache::DiskResultCache(std::string dir,
                                 const DiskCacheOptions& options)
    : dir_(std::move(dir)),
      env_(options.env != nullptr ? options.env : RealFs()),
      retry_(options.retry) {
  env_->CreateDirs((std::filesystem::path(dir_) / "tmp").string());
  if (options.tmp_gc_on_open) CollectStaleTmp(options.tmp_gc_age);
}

std::string DiskResultCache::EntryPath(std::uint64_t content_digest,
                                       std::string_view feature) const {
  return (std::filesystem::path(dir_) /
          (wire::DigestHex(StableCacheKeyDigest(content_digest, feature)) +
           ".fse"))
      .string();
}

DiskLoadResult DiskResultCache::LoadEntry(std::uint64_t content_digest,
                                          const std::string& feature) {
  const std::string path = EntryPath(content_digest, feature);
  DiskLoadResult result;
  std::string bytes;
  FsStatus read = FsStatus::kError;
  RetryOutcome read_outcome =
      RetryCall(retry_, nullptr, [&]() {
        read = env_->ReadFile(path, &bytes);
        return read != FsStatus::kError;  // A miss is settled, not retried.
      });
  if (read_outcome.retries() > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.load_retries += read_outcome.retries();
  }
  if (!read_outcome.ok) {
    // The read kept faulting: the disk is sick, not cold. Reported apart
    // from a miss so the circuit breaker can react.
    result.status = DiskLoadStatus::kIoError;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.io_errors;
    ++stats_.misses;
    return result;
  }
  if (read == FsStatus::kNotFound) {
    result.status = DiskLoadStatus::kMiss;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return result;
  }
  // A different-version entry may belong to a newer binary sharing the
  // directory: drop it without trusting OR deleting it.
  std::uint64_t version = 0;
  std::string_view first = std::string_view(bytes);
  first = first.substr(0, first.find('\n'));
  if (wire::ParseKeyedU64(first, kMagic, &version) &&
      version != static_cast<std::uint64_t>(kFormatVersion)) {
    result.status = DiskLoadStatus::kVersionSkew;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.version_dropped;
    ++stats_.misses;
    return result;
  }
  Result<DiskCacheEntry> entry = ParseDiskCacheEntry(bytes);
  if (!entry.ok()) {
    // Corrupt or truncated: never trusted, best-effort deleted so a later
    // write replaces it with a good entry.
    env_->Remove(path);
    result.status = DiskLoadStatus::kCorrupt;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt_dropped;
    ++stats_.misses;
    return result;
  }
  if (entry.value().content_digest != content_digest ||
      entry.value().feature != feature) {
    // 64-bit file-name collision between distinct keys: keep the resident
    // entry, miss on ours.
    result.status = DiskLoadStatus::kKeyCollision;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.key_mismatch_dropped;
    ++stats_.misses;
    return result;
  }
  result.status = DiskLoadStatus::kHit;
  result.selected = std::move(entry.value().selected);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.hits;
  return result;
}

std::optional<std::vector<std::string>> DiskResultCache::Load(
    std::uint64_t content_digest, const std::string& feature) {
  DiskLoadResult result = LoadEntry(content_digest, feature);
  if (!result.hit()) return std::nullopt;
  return std::move(result.selected);
}

bool DiskResultCache::Store(std::uint64_t content_digest,
                            const std::string& feature,
                            std::vector<std::string> selected) {
  const std::string name =
      wire::DigestHex(StableCacheKeyDigest(content_digest, feature));
  const std::string final_path =
      (std::filesystem::path(dir_) / (name + ".fse")).string();
  std::string bytes =
      SerializeDiskCacheEntry(content_digest, feature, std::move(selected));

  // Each attempt publishes through a fresh unique tmp name: a failed
  // attempt can at worst orphan a tmp file (collected by startup GC), never
  // tear the published entry. A failed attempt also re-creates the cache
  // directories: if CreateDirs faulted when the cache opened, the store
  // path self-heals once the filesystem recovers instead of failing
  // forever against a missing tmp/.
  RetryOutcome outcome = RetryCall(retry_, nullptr, [&]() {
    const std::string tmp_path =
        (std::filesystem::path(dir_) / "tmp" /
         (name + "." + std::to_string(ProcessId()) + "." +
          std::to_string(
              tmp_counter_.fetch_add(1, std::memory_order_relaxed)) +
          ".tmp"))
            .string();
    if (env_->Publish(tmp_path, final_path, bytes) == FsStatus::kOk) {
      return true;
    }
    env_->CreateDirs((std::filesystem::path(dir_) / "tmp").string());
    return false;
  });
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.store_retries += outcome.retries();
  if (!outcome.ok) {
    ++stats_.write_failures;
    return false;
  }
  ++stats_.writes;
  return true;
}

bool DiskResultCache::Remove(std::uint64_t content_digest,
                             const std::string& feature) {
  const std::string path = EntryPath(content_digest, feature);
  FsStatus status = FsStatus::kError;
  RetryOutcome outcome = RetryCall(retry_, nullptr, [&]() {
    status = env_->Remove(path);
    return status != FsStatus::kError;
  });
  if (!outcome.ok) {
    // The stale entry may linger. Not a correctness problem — entries are
    // content-addressed, so it stays a correct answer for its own digest —
    // but worth counting.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.remove_failures;
    return false;
  }
  if (status == FsStatus::kOk) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.removed;
    return true;
  }
  return false;
}

DiskSweepResult DiskResultCache::Sweep(std::uint64_t max_bytes) {
  DiskSweepResult result;
  FsListResult listing = env_->ListDir(dir_);
  result.scan_errors = listing.scan_errors;
  if (listing.status != FsStatus::kOk) ++result.scan_errors;
  struct Entry {
    std::string name;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
  };
  std::vector<Entry> entries;
  for (FsDirEntry& item : listing.entries) {
    const std::string& name = item.name;
    if (name.size() < 4 || name.compare(name.size() - 4, 4, ".fse") != 0) {
      continue;
    }
    result.bytes_before += item.size;
    entries.push_back(Entry{std::move(item.name), item.size, item.mtime});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              // Oldest mtime first; name as a deterministic tiebreak.
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.name < b.name;
            });
  result.bytes_after = result.bytes_before;
  for (const Entry& entry : entries) {
    if (result.bytes_after <= max_bytes) break;
    const std::string path =
        (std::filesystem::path(dir_) / entry.name).string();
    if (env_->Remove(path) == FsStatus::kOk) {
      result.bytes_after -= entry.bytes;
      ++result.entries_removed;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.swept += result.entries_removed;
  stats_.scan_errors += result.scan_errors;
  return result;
}

std::uint64_t DiskResultCache::CollectStaleTmp(std::chrono::milliseconds age) {
  const std::string tmp_dir = (std::filesystem::path(dir_) / "tmp").string();
  FsListResult listing = env_->ListDir(tmp_dir);
  std::uint64_t scan_errors = listing.scan_errors;
  if (listing.status != FsStatus::kOk) ++scan_errors;
  const auto now = std::filesystem::file_time_type::clock::now();
  std::uint64_t collected = 0;
  for (const FsDirEntry& item : listing.entries) {
    if (now - item.mtime < age) continue;  // Possibly a live publish.
    const std::string path =
        (std::filesystem::path(tmp_dir) / item.name).string();
    if (env_->Remove(path) == FsStatus::kOk) ++collected;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.tmp_collected += collected;
  stats_.scan_errors += scan_errors;
  return collected;
}

DiskCacheStats DiskResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace serve
}  // namespace featsep
