#ifndef FEATSEP_SERVE_SHARD_PROTOCOL_H_
#define FEATSEP_SERVE_SHARD_PROTOCOL_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cq/cq.h"
#include "relational/database.h"
#include "serve/disk_cache.h"
#include "serve/supervisor.h"
#include "util/fs_env.h"
#include "util/result.h"
#include "util/retry.h"

namespace featsep {
namespace serve {

/// File-based multi-process shard protocol for (feature × entity-block)
/// evaluation sweeps (DESIGN.md §13). One *job* lives in one directory:
///
///   <job>/job.fsj       — checksummed job spec: database bytes, feature
///                         canonical strings, content digest, block size,
///                         optional shared disk-cache directory
///   <job>/todo/s<id>    — one (empty) file per unclaimed shard
///   <job>/leases/s<id>  — a claimed shard; mtime = claim/renewal time
///   <job>/results/s<id>.fsr — checksummed per-shard result flags
///   <job>/quarantine/s<id>  — a shard pulled out of the protocol after
///                         repeated failures (coordinator evaluates it
///                         in-memory; the marker records why)
///   <job>/done          — coordinator marker: job merged, workers move on
///
/// Claiming is a rename todo/s<id> → leases/s<id>: atomic on POSIX, so
/// exactly one process wins a shard. A worker renews its lease mtime while
/// evaluating; the coordinator reclaims leases older than the lease window
/// (rename back to todo) so shards claimed by dead workers are re-run.
/// Results are published by atomic rename like disk-cache entries, and the
/// kernel is deterministic, so a reclaimed-but-alive worker double-writing
/// a shard produces bit-identical bytes — last rename wins harmlessly.
///
/// Shard ids are `feature_index * blocks_per_feature + block_index`; every
/// result carries disjoint, deterministic slots, so the merged answer is
/// bit-identical to the serial path regardless of worker count, claim
/// order, or timing.
///
/// All filesystem access goes through an injectable FsEnv (DESIGN.md §15).
/// A failed claim rename is never treated as won: a missing source is a
/// lost race (counted), any other failure is a fault (counted separately,
/// and evidence toward quarantine). Requeue failures are retried and
/// surfaced, never dropped.

/// I/O-boundary counters shared by workers and the coordinator.
struct ShardIoStats {
  /// Claim renames lost because the todo file was gone — another process
  /// won the shard (or it is already resolved). Normal under contention.
  std::uint64_t claim_races = 0;
  /// Claim renames that *faulted*. The claim is not won; the shard stays
  /// claimable and the fault counts toward quarantine evidence.
  std::uint64_t claim_errors = 0;
  /// lease→todo requeues (reclaim, corrupt-result recovery) that faulted
  /// after retries.
  std::uint64_t requeue_failures = 0;
  /// Lease mtime renewals that faulted (non-fatal: the next entity retries,
  /// but a long run of these gets the lease reclaimed under a live worker).
  std::uint64_t lease_renew_failures = 0;
  /// Extra attempts beyond the first on reads/publishes, per RetryPolicy.
  std::uint64_t io_retries = 0;
  /// Reads/publishes that exhausted their retries.
  std::uint64_t io_give_ups = 0;
  /// Directory scans that failed or were detectably partial.
  std::uint64_t list_errors = 0;

  void Add(const ShardIoStats& other) {
    claim_races += other.claim_races;
    claim_errors += other.claim_errors;
    requeue_failures += other.requeue_failures;
    lease_renew_failures += other.lease_renew_failures;
    io_retries += other.io_retries;
    io_give_ups += other.io_give_ups;
    list_errors += other.list_errors;
  }
};

/// A parsed (or in-memory) job.
struct ShardJob {
  /// Storage for a database parsed from job.fsj; null when the coordinator
  /// built the job around a live database it does not own.
  std::shared_ptr<Database> owned_db;
  const Database* db = nullptr;
  std::vector<ConjunctiveQuery> features;
  std::vector<std::string> feature_strings;
  std::uint64_t digest = 0;
  std::size_t entity_block = 64;
  /// Shared DiskResultCache directory; empty = no write-through.
  std::string cache_dir;
  /// db->Entities(), cached at load/publish time; the evaluation order
  /// every process agrees on.
  std::vector<Value> entities;
  /// Runtime-only (never serialized): the filesystem backend every protocol
  /// operation on this job uses, and the retry policy for transient faults.
  /// Null env = the real filesystem.
  FsEnv* env = nullptr;
  RetryPolicy retry;

  FsEnv* fs() const { return env != nullptr ? env : RealFs(); }

  std::size_t blocks_per_feature() const {
    return (entities.size() + entity_block - 1) / entity_block;
  }
  std::size_t num_shards() const {
    return features.size() * blocks_per_feature();
  }
};

/// The error message prefix LoadShardJob uses when a job's spelled digest
/// disagrees with its database bytes. featsep_worker keys its structured
/// digest-refusal exit code (kWorkerExitDigestRefusal) off this — the one
/// failure a supervisor must never retry.
inline constexpr std::string_view kDigestRefusalMessage =
    "job digest disagrees with database content";

/// Serializes and publishes a job into `job_dir` (created if absent):
/// writes job.fsj atomically plus one todo file per shard. Returns the
/// shard count. `env` = nullptr uses the real filesystem.
Result<std::size_t> PublishShardJob(const std::string& job_dir,
                                    const Database& db,
                                    const std::vector<std::string>& features,
                                    std::size_t entity_block,
                                    const std::string& cache_dir,
                                    FsEnv* env = nullptr);

/// Loads and verifies job.fsj (checksum, parseable database and features,
/// database content digest matching the spelled digest — a worker whose
/// digest computation disagrees must refuse rather than poison caches;
/// that error's message is kDigestRefusalMessage). The loaded job carries
/// `env` for all subsequent protocol operations.
Result<ShardJob> LoadShardJob(const std::string& job_dir,
                              FsEnv* env = nullptr);

/// True once the coordinator has merged the job and marked it done.
bool ShardJobDone(const std::string& job_dir, FsEnv* env = nullptr);

/// Shard ids currently quarantined in `job_dir` (sorted).
std::vector<std::size_t> QuarantinedShards(const std::string& job_dir,
                                           FsEnv* env = nullptr);

/// Claims the lowest-id unclaimed shard (rename into leases/); nullopt when
/// no shard could be claimed right now. A faulted rename is never treated
/// as a win — it counts io->claim_errors and the scan moves on (a lost
/// race counts io->claim_races). `io` may be null.
std::optional<std::size_t> ClaimShard(const std::string& job_dir,
                                      const ShardJob& job,
                                      ShardIoStats* io = nullptr);

/// Evaluates one claimed shard and publishes its result file, renewing the
/// lease mtime after each entity. Removes the lease on success. When the
/// job names a cache_dir and this shard completes its feature (all blocks'
/// results present), also merges the feature's answer and writes it through
/// the shared disk cache — so warm restarts hit even if the coordinator
/// died before merging. Returns whether that write-through happened; an
/// error means the result could not be published after retries (the caller
/// should requeue the lease and, in a worker, exit kWorkerExitIoGiveUp).
Result<bool> EvaluateClaimedShard(const std::string& job_dir,
                                  const ShardJob& job, std::size_t shard,
                                  ShardIoStats* io = nullptr);

/// Renames leases older than `lease` (with no result) back into todo/;
/// returns how many shards were reclaimed. Requeue faults are retried per
/// job.retry and then surfaced via io->requeue_failures — a shard must
/// never silently vanish from the protocol. `attempted` (optional)
/// receives the ids of shards whose lease expired (reclaimed or not):
/// each is one piece of that-shard-failed-once evidence for the
/// coordinator's quarantine accounting.
std::size_t ReclaimExpiredLeases(const std::string& job_dir,
                                 const ShardJob& job,
                                 std::chrono::milliseconds lease,
                                 ShardIoStats* io = nullptr,
                                 std::vector<std::size_t>* attempted = nullptr);

struct ShardWorkerOptions {
  std::chrono::milliseconds poll{25};
  /// Stop after this many shards (0 = unlimited).
  std::size_t max_shards = 0;
  /// Workers do not reclaim leases by default (that is the coordinator's
  /// job); a standalone worker pool with no coordinator can opt in.
  std::optional<std::chrono::milliseconds> reclaim_lease;
};

struct ShardWorkerStats {
  std::uint64_t shards_completed = 0;
  std::uint64_t entities_evaluated = 0;
  std::uint64_t features_cached = 0;  ///< Features written through the cache.
  /// Jobs refused because their digest disagreed with their database bytes
  /// (RunShardWorkerDir; poison — never retried).
  std::uint64_t digest_refusals = 0;
  ShardIoStats io;
};

/// Worker loop over one job: claim → evaluate → publish until every shard
/// is resolved (result or quarantine, or the done marker appears, or
/// max_shards is reached).
Result<ShardWorkerStats> WorkOnShardJob(const std::string& job_dir,
                                        const ShardJob& job,
                                        const ShardWorkerOptions& options = {});

struct ShardCoordinatorOptions {
  /// Leases older than this are reclaimed (dead or stuck workers).
  std::chrono::milliseconds lease{10000};
  std::chrono::milliseconds poll{10};
  /// The coordinator claims and evaluates shards itself while waiting, so
  /// a job always finishes even with zero workers attached.
  bool evaluate_locally = true;
  /// After this many failure observations for one shard (faulted claims,
  /// expired leases, corrupt results, failed publishes) the shard is
  /// quarantined: pulled out of the distributed protocol, marked under
  /// <job>/quarantine/, and evaluated in-memory by the coordinator — the
  /// job still completes bit-identical, and the poison shard stops being
  /// requeued forever. 0 disables quarantine.
  std::size_t quarantine_after = 3;
  /// When set, the coordinator runs a WorkerSupervisor over this fleet for
  /// the duration of the job: spawn at start, restart crashed/give-up
  /// workers (bounded) on every wait-loop tick, terminate at the end.
  std::optional<WorkerProcessOptions> supervise;
};

struct ShardMergeResult {
  /// flags[feature][entity] ∈ {0,1} in job.entities order — the same shape
  /// the in-process evaluation produces.
  std::vector<std::vector<char>> flags;
  std::uint64_t local_shards = 0;
  std::uint64_t remote_shards = 0;
  std::uint64_t reclaimed_leases = 0;
  /// Shards quarantined and evaluated in-memory by the coordinator.
  std::uint64_t quarantined_shards = 0;
  /// Corrupt/unreadable result files deleted and re-queued during merges.
  std::uint64_t corrupt_results = 0;
  ShardIoStats io;
  /// Snapshot of the supervised fleet's lifecycle (zero when
  /// ShardCoordinatorOptions::supervise is unset).
  WorkerSupervisorStats supervisor;
};

/// Coordinator: drives the job to completion (evaluating locally when
/// enabled, reclaiming expired leases, supervising a worker fleet when
/// configured), verifies and merges every shard result, writes the done
/// marker. A corrupt result file is deleted and its shard re-queued, never
/// trusted; a shard that keeps failing is quarantined and evaluated
/// in-memory, so the merge always completes and is always bit-identical to
/// the serial path.
Result<ShardMergeResult> CoordinateShardJob(
    const std::string& job_dir, const ShardJob& job,
    const ShardCoordinatorOptions& options = {});

/// Scans `work_dir` for job subdirectories (any directory containing
/// job.fsj) that are not done, and works on each; used by featsep_worker.
/// Exits once `idle_exit` elapses with nothing to do (0 = one pass only).
/// Digest-refusing jobs are counted in stats.digest_refusals and skipped.
struct ShardWorkerPoolOptions {
  ShardWorkerOptions worker;
  std::chrono::milliseconds idle_exit{0};
  std::chrono::milliseconds poll{50};
  /// Filesystem backend for every job worked on (null = real).
  FsEnv* env = nullptr;
  RetryPolicy retry;
};
Result<ShardWorkerStats> RunShardWorkerDir(
    const std::string& work_dir, const ShardWorkerPoolOptions& options = {});

}  // namespace serve
}  // namespace featsep

#endif  // FEATSEP_SERVE_SHARD_PROTOCOL_H_
