#ifndef FEATSEP_SERVE_SHARD_PROTOCOL_H_
#define FEATSEP_SERVE_SHARD_PROTOCOL_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cq/cq.h"
#include "relational/database.h"
#include "serve/disk_cache.h"
#include "util/result.h"

namespace featsep {
namespace serve {

/// File-based multi-process shard protocol for (feature × entity-block)
/// evaluation sweeps (DESIGN.md §13). One *job* lives in one directory:
///
///   <job>/job.fsj       — checksummed job spec: database bytes, feature
///                         canonical strings, content digest, block size,
///                         optional shared disk-cache directory
///   <job>/todo/s<id>    — one (empty) file per unclaimed shard
///   <job>/leases/s<id>  — a claimed shard; mtime = claim/renewal time
///   <job>/results/s<id>.fsr — checksummed per-shard result flags
///   <job>/done          — coordinator marker: job merged, workers move on
///
/// Claiming is a rename todo/s<id> → leases/s<id>: atomic on POSIX, so
/// exactly one process wins a shard. A worker renews its lease mtime while
/// evaluating; the coordinator reclaims leases older than the lease window
/// (rename back to todo) so shards claimed by dead workers are re-run.
/// Results are published by atomic rename like disk-cache entries, and the
/// kernel is deterministic, so a reclaimed-but-alive worker double-writing
/// a shard produces bit-identical bytes — last rename wins harmlessly.
///
/// Shard ids are `feature_index * blocks_per_feature + block_index`; every
/// result carries disjoint, deterministic slots, so the merged answer is
/// bit-identical to the serial path regardless of worker count, claim
/// order, or timing.

/// A parsed (or in-memory) job.
struct ShardJob {
  /// Storage for a database parsed from job.fsj; null when the coordinator
  /// built the job around a live database it does not own.
  std::shared_ptr<Database> owned_db;
  const Database* db = nullptr;
  std::vector<ConjunctiveQuery> features;
  std::vector<std::string> feature_strings;
  std::uint64_t digest = 0;
  std::size_t entity_block = 64;
  /// Shared DiskResultCache directory; empty = no write-through.
  std::string cache_dir;
  /// db->Entities(), cached at load/publish time; the evaluation order
  /// every process agrees on.
  std::vector<Value> entities;

  std::size_t blocks_per_feature() const {
    return (entities.size() + entity_block - 1) / entity_block;
  }
  std::size_t num_shards() const {
    return features.size() * blocks_per_feature();
  }
};

/// Serializes and publishes a job into `job_dir` (created if absent):
/// writes job.fsj atomically plus one todo file per shard. Returns the
/// shard count.
Result<std::size_t> PublishShardJob(const std::string& job_dir,
                                    const Database& db,
                                    const std::vector<std::string>& features,
                                    std::size_t entity_block,
                                    const std::string& cache_dir);

/// Loads and verifies job.fsj (checksum, parseable database and features,
/// database content digest matching the spelled digest — a worker whose
/// digest computation disagrees must refuse rather than poison caches).
Result<ShardJob> LoadShardJob(const std::string& job_dir);

/// True once the coordinator has merged the job and marked it done.
bool ShardJobDone(const std::string& job_dir);

/// Claims the lowest-id unclaimed shard (rename into leases/); nullopt when
/// no todo shard exists right now.
std::optional<std::size_t> ClaimShard(const std::string& job_dir,
                                      const ShardJob& job);

/// Evaluates one claimed shard and publishes its result file, renewing the
/// lease mtime after each entity. Removes the lease on success. When the
/// job names a cache_dir and this shard completes its feature (all blocks'
/// results present), also merges the feature's answer and writes it through
/// the shared disk cache — so warm restarts hit even if the coordinator
/// died before merging. Returns whether that write-through happened.
Result<bool> EvaluateClaimedShard(const std::string& job_dir,
                                  const ShardJob& job, std::size_t shard);

/// Renames leases older than `lease` (with no result) back into todo/;
/// returns how many shards were reclaimed.
std::size_t ReclaimExpiredLeases(const std::string& job_dir,
                                 const ShardJob& job,
                                 std::chrono::milliseconds lease);

struct ShardWorkerOptions {
  std::chrono::milliseconds poll{25};
  /// Stop after this many shards (0 = unlimited).
  std::size_t max_shards = 0;
  /// Workers do not reclaim leases by default (that is the coordinator's
  /// job); a standalone worker pool with no coordinator can opt in.
  std::optional<std::chrono::milliseconds> reclaim_lease;
};

struct ShardWorkerStats {
  std::uint64_t shards_completed = 0;
  std::uint64_t entities_evaluated = 0;
  std::uint64_t features_cached = 0;  ///< Features written through the cache.
};

/// Worker loop over one job: claim → evaluate → publish until every shard
/// has a result (or the done marker appears, or max_shards is reached).
Result<ShardWorkerStats> WorkOnShardJob(const std::string& job_dir,
                                        const ShardJob& job,
                                        const ShardWorkerOptions& options = {});

struct ShardCoordinatorOptions {
  /// Leases older than this are reclaimed (dead or stuck workers).
  std::chrono::milliseconds lease{10000};
  std::chrono::milliseconds poll{10};
  /// The coordinator claims and evaluates shards itself while waiting, so
  /// a job always finishes even with zero workers attached.
  bool evaluate_locally = true;
};

struct ShardMergeResult {
  /// flags[feature][entity] ∈ {0,1} in job.entities order — the same shape
  /// the in-process evaluation produces.
  std::vector<std::vector<char>> flags;
  std::uint64_t local_shards = 0;
  std::uint64_t remote_shards = 0;
  std::uint64_t reclaimed_leases = 0;
};

/// Coordinator: drives the job to completion (evaluating locally when
/// enabled, reclaiming expired leases), verifies and merges every shard
/// result, writes the done marker. A corrupt result file is deleted and
/// its shard re-queued, never trusted.
Result<ShardMergeResult> CoordinateShardJob(
    const std::string& job_dir, const ShardJob& job,
    const ShardCoordinatorOptions& options = {});

/// Scans `work_dir` for job subdirectories (any directory containing
/// job.fsj) that are not done, and works on each; used by featsep_worker.
/// Exits once `idle_exit` elapses with nothing to do (0 = one pass only).
struct ShardWorkerPoolOptions {
  ShardWorkerOptions worker;
  std::chrono::milliseconds idle_exit{0};
  std::chrono::milliseconds poll{50};
};
Result<ShardWorkerStats> RunShardWorkerDir(
    const std::string& work_dir, const ShardWorkerPoolOptions& options = {});

}  // namespace serve
}  // namespace featsep

#endif  // FEATSEP_SERVE_SHARD_PROTOCOL_H_
