#include "serve/incremental.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "cq/homomorphism.h"
#include "linsep/separability_lp.h"
#include "util/check.h"

namespace featsep {
namespace serve {

namespace {

/// True iff every atom of `q` is connected to the free variable through
/// shared variables — the precondition of the neighborhood screen. A free
/// variable occurring in no atom, or any detached atom (nullary atoms
/// always are), makes the query's truth at an entity sensitive to facts
/// arbitrarily far away.
bool ConnectedToFreeVariable(const ConjunctiveQuery& q) {
  const std::vector<CqAtom>& atoms = q.atoms();
  if (atoms.empty()) return true;  // Nothing whose truth could flip.
  const Variable x = q.free_variable();
  auto contains = [](const CqAtom& atom, Variable v) {
    return std::find(atom.args.begin(), atom.args.end(), v) != atom.args.end();
  };
  auto share_variable = [](const CqAtom& a, const CqAtom& b) {
    for (Variable v : a.args) {
      if (std::find(b.args.begin(), b.args.end(), v) != b.args.end()) {
        return true;
      }
    }
    return false;
  };
  std::vector<char> visited(atoms.size(), 0);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (contains(atoms[i], x)) {
      visited[i] = 1;
      stack.push_back(i);
    }
  }
  if (stack.empty()) return false;  // x unconstrained: global flips possible.
  while (!stack.empty()) {
    std::size_t a = stack.back();
    stack.pop_back();
    for (std::size_t b = 0; b < atoms.size(); ++b) {
      if (!visited[b] && share_variable(atoms[a], atoms[b])) {
        visited[b] = 1;
        stack.push_back(b);
      }
    }
  }
  return std::all_of(visited.begin(), visited.end(),
                     [](char v) { return v != 0; });
}

}  // namespace

std::vector<Value> AffectedEntities(const Database& db_after,
                                    const Delta& delta,
                                    const ConjunctiveQuery& query,
                                    const FeatureAnswer* previous) {
  // Relation screen: a homomorphism q → D only ever maps atoms onto facts
  // of the atoms' relations, so a delta on a relation q never mentions
  // leaves q(D) untouched. η(e) deltas are exempt — the answer is
  // q(D) ∩ η(D), whose η part every feature depends on.
  if (!delta.entity_fact) {
    const std::vector<CqAtom>& atoms = query.atoms();
    const bool mentioned =
        std::any_of(atoms.begin(), atoms.end(), [&](const CqAtom& atom) {
          return atom.relation == delta.relation;
        });
    if (!mentioned) return {};
  }

  const std::vector<Value> entities = db_after.Entities();
  const bool insert = delta.kind == Delta::Kind::kInsert;
  // Direction screen: inserts only ever select, removes only ever deselect.
  // The previous answer is probed by name — a brand-new entity is simply
  // "previously unselected". Without a previous answer every entity can
  // flip as far as this screen knows.
  auto can_flip = [&](Value e) {
    if (previous == nullptr) return true;
    const bool was = previous->SelectsName(db_after.value_name(e));
    return insert ? !was : was;
  };

  std::vector<Value> affected;
  if (!ConnectedToFreeVariable(query)) {
    for (Value e : entities) {
      if (can_flip(e)) affected.push_back(e);
    }
    return affected;
  }

  // Neighborhood screen: BFS over fact-hops from the delta's touched
  // values. A flip at entity e needs a hom whose image contains the
  // delta's fact; with every atom connected to x, that image is a
  // connected set of at most |atoms| facts, so e lies within |atoms| hops.
  const std::size_t radius = query.atoms().size();
  std::unordered_set<Value> reached(delta.touched.begin(),
                                    delta.touched.end());
  std::vector<Value> frontier(delta.touched.begin(), delta.touched.end());
  for (std::size_t step = 0; step < radius && !frontier.empty(); ++step) {
    std::vector<Value> next;
    for (Value v : frontier) {
      if (v >= db_after.num_values()) continue;
      for (FactIndex fi : db_after.FactsContaining(v)) {
        for (Value u : db_after.fact(fi).args) {
          if (reached.insert(u).second) next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  for (Value e : entities) {
    if (reached.count(e) > 0 && can_flip(e)) affected.push_back(e);
  }
  return affected;
}

IncrementalMaintainer::IncrementalMaintainer(
    EvalService* service, std::vector<ConjunctiveQuery> features)
    : service_(service), features_(std::move(features)) {
  FEATSEP_CHECK(service_ != nullptr);
  feature_strings_.reserve(features_.size());
  evaluators_.reserve(features_.size());
  for (const ConjunctiveQuery& feature : features_) {
    feature_strings_.push_back(feature.ToString());
    evaluators_.push_back(std::make_unique<CqEvaluator>(feature));
  }
}

DeltaMaintenance IncrementalMaintainer::ApplyDelta(const Database& db_after,
                                                   const Delta& delta) {
  DeltaMaintenance out;
  out.old_digest = delta.old_digest;
  out.new_digest = delta.new_digest;
  if (!delta.applied) {
    ++stats_.noop_deltas;
    return out;
  }
  ++stats_.deltas_applied;
  out.entity_set_changed = delta.entity_fact;

  const bool patch = service_->options().incremental;
  std::unordered_set<std::string> changed;
  // An η(e) delta changes e's row existence itself.
  if (delta.entity_fact) changed.insert(db_after.value_name(delta.args[0]));

  const std::vector<Value> entities = db_after.Entities();
  for (std::size_t i = 0; i < features_.size(); ++i) {
    const std::string& fstr = feature_strings_[i];
    std::shared_ptr<const FeatureAnswer> previous =
        service_->PeekCached(delta.old_digest, fstr);
    if (previous == nullptr) {
      // Cold in both tiers: nothing stale can ever be served, and the next
      // read computes fresh under the new digest. The feature's rows may
      // still have moved, though, so report the screen's superset (sans
      // direction — there is no previous answer) to keep downstream
      // warm-start consumers sound.
      for (Value e :
           AffectedEntities(db_after, delta, features_[i], nullptr)) {
        changed.insert(db_after.value_name(e));
      }
      ++stats_.features_skipped;
      continue;
    }
    const std::vector<Value> suspects =
        AffectedEntities(db_after, delta, features_[i], previous.get());
    stats_.entities_screened_out += entities.size() - suspects.size();
    if (!patch) {
      // Invalidate-only mode: record the screen's superset as potentially
      // changed, then drop the stale entry from both tiers.
      for (Value e : suspects) changed.insert(db_after.value_name(e));
      service_->DropCached(delta.old_digest, fstr);
      ++stats_.features_dropped;
      continue;
    }
    std::unordered_set<std::string> names = previous->names();
    if (delta.entity_fact && delta.kind == Delta::Kind::kRemove) {
      // The entity left η(D); its answer-set membership goes with it.
      names.erase(db_after.value_name(delta.args[0]));
    }
    for (Value e : suspects) {
      const std::string& name = db_after.value_name(e);
      const bool was = previous->SelectsName(name);
      const bool now = evaluators_[i]->SelectsEntity(db_after, e);
      ++stats_.entities_rechecked;
      if (now != was) {
        ++stats_.cells_changed;
        changed.insert(name);
      }
      if (now) {
        names.insert(name);
      } else {
        names.erase(name);
      }
    }
    service_->Republish(delta.old_digest, delta.new_digest, fstr,
                        std::make_shared<const FeatureAnswer>(std::move(names)));
    ++stats_.features_patched;
  }

  out.changed_entities.assign(changed.begin(), changed.end());
  std::sort(out.changed_entities.begin(), out.changed_entities.end());
  return out;
}

IncrementalSeparability::IncrementalSeparability(
    std::vector<ConjunctiveQuery> features)
    : features_(std::move(features)) {}

IncrementalSeparability::Verdict IncrementalSeparability::Recheck(
    const TrainingDatabase& training, EvalService* service,
    const std::vector<std::string>& changed_entities) {
  FEATSEP_CHECK(service != nullptr);
  FEATSEP_CHECK(training.IsFullyLabeled());
  const Database& db = training.database();
  const std::vector<Value> entities = db.Entities();
  const std::vector<FeatureVector> rows = service->Matrix(features_, db);

  // The changed-row set the warm start may trust: the caller's names (from
  // DeltaMaintenance) plus everything this class can see shifted itself —
  // relabeled entities and entities absent from the previous call.
  std::unordered_set<std::string> changed(changed_entities.begin(),
                                          changed_entities.end());
  std::unordered_map<std::string, Label> labels;
  labels.reserve(entities.size());
  for (Value e : entities) {
    const std::string& name = db.value_name(e);
    const Label label = training.label(e);
    labels.emplace(name, label);
    auto it = prev_labels_.find(name);
    if (it == prev_labels_.end() || it->second != label) changed.insert(name);
  }

  TrainingCollection collection;
  collection.reserve(entities.size());
  std::vector<std::size_t> changed_rows;
  for (std::size_t i = 0; i < entities.size(); ++i) {
    collection.emplace_back(rows[i], training.label(entities[i]));
    if (changed.count(db.value_name(entities[i])) > 0) {
      changed_rows.push_back(i);
    }
  }

  Verdict verdict;
  // Linear separability: warm-start only from a previous *separable*
  // verdict — examples leaving or a previously-infeasible system can both
  // turn inseparable into separable, so "still infeasible" never transfers.
  if (has_previous_ && prev_lin_separable_ && prev_classifier_.has_value() &&
      changed_rows.size() < collection.size()) {
    SeparatorSearch search = TryFindSeparatorWarm(collection, *prev_classifier_,
                                                  changed_rows, nullptr);
    verdict.lin_separable = search.classifier.has_value();
    verdict.classifier = std::move(search.classifier);
    if (verdict.lin_separable &&
        verdict.classifier->weights() == prev_classifier_->weights() &&
        verdict.classifier->threshold() == prev_classifier_->threshold()) {
      ++stats_.lin_warm_hits;
    } else {
      ++stats_.lin_resolves;
    }
  } else {
    std::optional<LinearClassifier> classifier = FindSeparator(collection);
    verdict.lin_separable = classifier.has_value();
    verdict.classifier = std::move(classifier);
    ++stats_.lin_resolves;
  }

  // CQ-SEP: reuse, witness-recheck, or full sweep — in that order.
  const std::uint64_t digest = db.ContentDigest();
  if (has_previous_ && digest == prev_digest_ && labels == prev_labels_ &&
      prev_cq_.outcome == BudgetOutcome::kCompleted) {
    verdict.cq_sep = prev_cq_;
    ++stats_.cqsep_reuses;
  } else {
    bool witnessed = false;
    if (has_previous_ && !prev_cq_.separable && prev_cq_.conflict.has_value()) {
      Value p = prev_cq_.conflict->first;
      Value n = prev_cq_.conflict->second;
      const Labeling& labeling = training.labeling();
      if (db.IsEntity(p) && db.IsEntity(n) && labeling.Has(p) &&
          labeling.Has(n) && labeling.Get(p) != labeling.Get(n)) {
        // Re-orient so the reported pair stays (positive, negative).
        if (labeling.Get(p) < 0) std::swap(p, n);
        if (HomEquivalent(db, {p}, db, {n})) {
          // Still a differently-labeled hom-equivalent pair: sound
          // inseparability, no sweep. (The pair may differ from the full
          // sweep's first-in-scan-order conflict; the verdict never does.)
          verdict.cq_sep.separable = false;
          verdict.cq_sep.conflict = std::make_pair(p, n);
          verdict.cq_sep.pairs_checked = 1;
          witnessed = true;
          ++stats_.cqsep_witness_hits;
        }
      }
    }
    if (!witnessed) {
      verdict.cq_sep = DecideCqSep(training);
      ++stats_.cqsep_resolves;
    }
  }

  has_previous_ = true;
  prev_digest_ = digest;
  prev_labels_ = std::move(labels);
  prev_lin_separable_ = verdict.lin_separable;
  prev_classifier_ = verdict.classifier;
  prev_cq_ = verdict.cq_sep;
  return verdict;
}

}  // namespace serve
}  // namespace featsep
