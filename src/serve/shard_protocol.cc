#include "serve/shard_protocol.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "cq/evaluation.h"
#include "io/cq_parser.h"
#include "io/reader.h"
#include "io/writer.h"
#include "serve/wire_format.h"
#include "util/hash.h"

namespace featsep {
namespace serve {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kJobMagic = "featsep-shard-job";
constexpr std::string_view kResultMagic = "featsep-shard-result";
constexpr int kShardFormatVersion = 1;

std::uint64_t ProcessId() {
#ifndef _WIN32
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

fs::path TodoPath(const std::string& job_dir, std::size_t shard) {
  return fs::path(job_dir) / "todo" / ("s" + std::to_string(shard));
}
fs::path LeasePath(const std::string& job_dir, std::size_t shard) {
  return fs::path(job_dir) / "leases" / ("s" + std::to_string(shard));
}
fs::path ResultPath(const std::string& job_dir, std::size_t shard) {
  return fs::path(job_dir) / "results" / ("s" + std::to_string(shard) + ".fsr");
}
fs::path DonePath(const std::string& job_dir) {
  return fs::path(job_dir) / "done";
}

/// Writes bytes to a unique temp file in <job>/tmp and renames onto
/// `final_path` — the same publish idiom as disk-cache entries.
bool AtomicWrite(const std::string& job_dir, const fs::path& final_path,
                 std::string_view bytes) {
  static std::atomic<std::uint64_t> counter{0};
  fs::path tmp = fs::path(job_dir) / "tmp" /
                 (final_path.filename().string() + "." +
                  std::to_string(ProcessId()) + "." +
                  std::to_string(counter.fetch_add(1)) + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

bool ReadFileBytes(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Reads "<keyword> <len> <bytes>\n" at the cursor.
bool ReadKeywordSized(wire::Cursor& cursor, std::string_view keyword,
                      std::string_view* out) {
  if (cursor.bytes.substr(cursor.pos, keyword.size()) != keyword) return false;
  std::size_t after = cursor.pos + keyword.size();
  if (after >= cursor.bytes.size() || cursor.bytes[after] != ' ') return false;
  cursor.pos = after + 1;
  return cursor.ReadSized(out);
}

std::string SerializeJob(const Database& db,
                         const std::vector<std::string>& features,
                         std::size_t entity_block,
                         const std::string& cache_dir) {
  std::ostringstream out;
  out << kJobMagic << " " << kShardFormatVersion << "\n";
  out << "digest " << wire::DigestHex(db.ContentDigest()) << "\n";
  out << "entity_block " << entity_block << "\n";
  out << "cache_dir " << cache_dir.size() << " " << cache_dir << "\n";
  out << "features " << features.size() << "\n";
  for (const std::string& feature : features) {
    out << feature.size() << " " << feature << "\n";
  }
  std::string db_bytes = WriteDatabase(db);
  out << "db " << db_bytes.size() << " " << db_bytes << "\n";
  return wire::WithChecksum(out.str());
}

std::string SerializeShardResult(const ShardJob& job, std::size_t shard,
                                 std::string_view flags) {
  std::ostringstream out;
  out << kResultMagic << " " << kShardFormatVersion << "\n";
  out << "digest " << wire::DigestHex(job.digest) << "\n";
  out << "shard " << shard << "\n";
  out << "flags " << flags.size() << " " << flags << "\n";
  return wire::WithChecksum(out.str());
}

/// Parses and verifies one shard result; returns the flag bytes for the
/// shard's entity range, or an error for anything untrustworthy.
Result<std::string> ParseShardResult(const ShardJob& job, std::size_t shard,
                                     std::string_view bytes) {
  wire::Cursor cursor{bytes};
  std::string_view line;
  std::uint64_t version = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, kResultMagic, &version)) {
    return Error("bad result magic");
  }
  if (version != static_cast<std::uint64_t>(kShardFormatVersion)) {
    return Error("result version mismatch");
  }
  std::uint64_t digest = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "digest", &digest, 16) ||
      digest != job.digest) {
    return Error("result digest mismatch");
  }
  std::uint64_t id = 0;
  if (!cursor.ReadLine(&line) || !wire::ParseKeyedU64(line, "shard", &id) ||
      id != shard) {
    return Error("result shard mismatch");
  }
  std::string_view flags;
  if (!ReadKeywordSized(cursor, "flags", &flags)) {
    return Error("truncated flags");
  }
  if (!wire::VerifyChecksum(cursor)) return Error("result checksum mismatch");
  const std::size_t block = job.entity_block;
  const std::size_t begin = (shard % job.blocks_per_feature()) * block;
  const std::size_t end = std::min(begin + block, job.entities.size());
  if (flags.size() != end - begin) return Error("result flag count mismatch");
  for (char c : flags) {
    if (c != '+' && c != '-') return Error("bad flag byte");
  }
  return std::string(flags);
}

bool AllResultsPresent(const std::string& job_dir, const ShardJob& job) {
  for (std::size_t s = 0; s < job.num_shards(); ++s) {
    std::error_code ec;
    if (!fs::exists(ResultPath(job_dir, s), ec)) return false;
  }
  return true;
}

/// When all blocks of `feature` have results, merges them and writes the
/// feature's answer through the shared disk cache. Quietly does nothing on
/// missing/corrupt blocks — the coordinator is the authority; this path
/// only makes warm restarts survive a dead coordinator.
bool TryCacheCompletedFeature(const std::string& job_dir, const ShardJob& job,
                              std::size_t feature) {
  if (job.cache_dir.empty()) return false;
  const std::size_t bpf = job.blocks_per_feature();
  std::vector<std::string> selected;
  for (std::size_t b = 0; b < bpf; ++b) {
    const std::size_t shard = feature * bpf + b;
    std::string bytes;
    if (!ReadFileBytes(ResultPath(job_dir, shard), &bytes)) return false;
    Result<std::string> flags = ParseShardResult(job, shard, bytes);
    if (!flags.ok()) return false;
    const std::size_t begin = b * job.entity_block;
    for (std::size_t i = 0; i < flags.value().size(); ++i) {
      if (flags.value()[i] == '+') {
        selected.push_back(job.db->value_name(job.entities[begin + i]));
      }
    }
  }
  DiskResultCache cache(job.cache_dir);
  return cache.Store(job.digest, job.feature_strings[feature],
                     std::move(selected));
}

std::vector<std::size_t> ListShardIds(const fs::path& dir) {
  std::vector<std::size_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() < 2 || name[0] != 's') continue;
    std::string_view digits(name);
    digits.remove_prefix(1);
    // Strip a ".fsr" result suffix if present.
    std::size_t dot = digits.find('.');
    if (dot != std::string_view::npos) digits = digits.substr(0, dot);
    std::uint64_t id = 0;
    if (wire::ParseU64(digits, &id)) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

Result<std::size_t> PublishShardJob(const std::string& job_dir,
                                    const Database& db,
                                    const std::vector<std::string>& features,
                                    std::size_t entity_block,
                                    const std::string& cache_dir) {
  entity_block = std::max<std::size_t>(1, entity_block);
  std::error_code ec;
  for (const char* sub : {"tmp", "todo", "leases", "results"}) {
    fs::create_directories(fs::path(job_dir) / sub, ec);
    if (ec) {
      return Error("cannot create " + (fs::path(job_dir) / sub).string() +
                   ": " + ec.message());
    }
  }
  if (!AtomicWrite(job_dir, fs::path(job_dir) / "job.fsj",
                   SerializeJob(db, features, entity_block, cache_dir))) {
    return Error("cannot write job spec in " + job_dir);
  }
  const std::size_t blocks =
      (db.Entities().size() + entity_block - 1) / entity_block;
  const std::size_t shards = features.size() * blocks;
  for (std::size_t s = 0; s < shards; ++s) {
    // Existence is the whole content; claiming renames the file away.
    std::ofstream todo(TodoPath(job_dir, s));
    if (!todo.good()) return Error("cannot write todo shard in " + job_dir);
  }
  return shards;
}

Result<ShardJob> LoadShardJob(const std::string& job_dir) {
  std::string bytes;
  if (!ReadFileBytes(fs::path(job_dir) / "job.fsj", &bytes)) {
    return Error("no job spec in " + job_dir);
  }
  wire::Cursor cursor{bytes};
  std::string_view line;
  std::uint64_t version = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, kJobMagic, &version)) {
    return Error("bad job magic");
  }
  if (version != static_cast<std::uint64_t>(kShardFormatVersion)) {
    return Error("job version mismatch: " + std::to_string(version));
  }
  ShardJob job;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "digest", &job.digest, 16)) {
    return Error("bad job digest line");
  }
  std::uint64_t block = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "entity_block", &block) || block == 0) {
    return Error("bad entity_block line");
  }
  job.entity_block = static_cast<std::size_t>(block);
  std::string_view cache_dir;
  if (!ReadKeywordSized(cursor, "cache_dir", &cache_dir)) {
    return Error("bad cache_dir line");
  }
  job.cache_dir = std::string(cache_dir);
  std::uint64_t count = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "features", &count) ||
      count > bytes.size()) {
    return Error("bad features line");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string_view feature;
    if (!cursor.ReadSized(&feature)) return Error("truncated feature");
    job.feature_strings.emplace_back(feature);
  }
  std::string_view db_bytes;
  if (!ReadKeywordSized(cursor, "db", &db_bytes)) {
    return Error("truncated database");
  }
  if (!wire::VerifyChecksum(cursor)) return Error("job checksum mismatch");

  Result<std::shared_ptr<Database>> db = ReadDatabase(db_bytes);
  if (!db.ok()) return Error("job database: " + db.error().message());
  job.owned_db = db.value();
  job.db = job.owned_db.get();
  // A worker whose digest computation disagrees with the coordinator's
  // must refuse the job outright — evaluating under the wrong key would
  // poison every shared cache.
  if (job.db->ContentDigest() != job.digest) {
    return Error("job digest disagrees with database content");
  }
  for (const std::string& feature : job.feature_strings) {
    Result<ConjunctiveQuery> query = ParseCq(job.db->schema_ptr(), feature);
    if (!query.ok()) return Error("job feature: " + query.error().message());
    job.features.push_back(std::move(query.value()));
  }
  job.entities = job.db->Entities();
  return job;
}

bool ShardJobDone(const std::string& job_dir) {
  std::error_code ec;
  return fs::exists(DonePath(job_dir), ec);
}

std::optional<std::size_t> ClaimShard(const std::string& job_dir,
                                      const ShardJob& job) {
  // Lowest id first: claim order is deterministic per scan, and the merged
  // answer is slot-keyed so racing processes cannot perturb results.
  for (std::size_t id : ListShardIds(fs::path(job_dir) / "todo")) {
    if (id >= job.num_shards()) continue;
    std::error_code ec;
    fs::rename(TodoPath(job_dir, id), LeasePath(job_dir, id), ec);
    if (!ec) return id;  // The rename is atomic: we are the sole owner.
  }
  return std::nullopt;
}

Result<bool> EvaluateClaimedShard(const std::string& job_dir,
                                  const ShardJob& job, std::size_t shard) {
  const std::size_t bpf = job.blocks_per_feature();
  if (bpf == 0 || shard >= job.num_shards()) {
    return Error("shard id out of range");
  }
  const std::size_t feature = shard / bpf;
  const std::size_t begin = (shard % bpf) * job.entity_block;
  const std::size_t end =
      std::min(begin + job.entity_block, job.entities.size());

  CqEvaluator evaluator(job.features[feature]);
  std::string flags;
  flags.reserve(end - begin);
  const fs::path lease = LeasePath(job_dir, shard);
  for (std::size_t e = begin; e < end; ++e) {
    flags.push_back(evaluator.SelectsEntity(*job.db, job.entities[e]) ? '+'
                                                                      : '-');
    // Renew the lease so a long shard is not reclaimed under a live worker
    // (entity evaluations are the NP-hard unit of progress).
    std::error_code ec;
    fs::last_write_time(lease, fs::file_time_type::clock::now(), ec);
  }
  if (!AtomicWrite(job_dir, ResultPath(job_dir, shard),
                   SerializeShardResult(job, shard, flags))) {
    return Error("cannot publish shard result");
  }
  std::error_code ec;
  fs::remove(lease, ec);
  return TryCacheCompletedFeature(job_dir, job, feature);
}

std::size_t ReclaimExpiredLeases(const std::string& job_dir,
                                 const ShardJob& job,
                                 std::chrono::milliseconds lease) {
  std::size_t reclaimed = 0;
  for (std::size_t id : ListShardIds(fs::path(job_dir) / "leases")) {
    std::error_code ec;
    if (fs::exists(ResultPath(job_dir, id), ec)) {
      // Finished but the worker died before cleanup: drop the stale lease.
      fs::remove(LeasePath(job_dir, id), ec);
      continue;
    }
    auto mtime = fs::last_write_time(LeasePath(job_dir, id), ec);
    if (ec) continue;  // Raced with the owner's cleanup.
    auto age = fs::file_time_type::clock::now() - mtime;
    if (age < lease) continue;
    fs::rename(LeasePath(job_dir, id), TodoPath(job_dir, id), ec);
    if (!ec) ++reclaimed;
  }
  return reclaimed;
}

Result<ShardWorkerStats> WorkOnShardJob(const std::string& job_dir,
                                        const ShardJob& job,
                                        const ShardWorkerOptions& options) {
  ShardWorkerStats stats;
  while (!ShardJobDone(job_dir)) {
    if (options.max_shards != 0 && stats.shards_completed >= options.max_shards)
      break;
    std::optional<std::size_t> shard = ClaimShard(job_dir, job);
    if (shard.has_value()) {
      const std::size_t begin =
          (*shard % job.blocks_per_feature()) * job.entity_block;
      const std::size_t end =
          std::min(begin + job.entity_block, job.entities.size());
      Result<bool> done = EvaluateClaimedShard(job_dir, job, *shard);
      if (!done.ok()) return done.error();
      ++stats.shards_completed;
      stats.entities_evaluated += end - begin;
      if (done.value()) ++stats.features_cached;
      continue;
    }
    if (AllResultsPresent(job_dir, job)) break;
    if (options.reclaim_lease.has_value()) {
      ReclaimExpiredLeases(job_dir, job, *options.reclaim_lease);
    }
    std::this_thread::sleep_for(options.poll);
  }
  return stats;
}

Result<ShardMergeResult> CoordinateShardJob(
    const std::string& job_dir, const ShardJob& job,
    const ShardCoordinatorOptions& options) {
  ShardMergeResult merge;
  merge.flags.assign(job.features.size(),
                     std::vector<char>(job.entities.size(), 0));
  const std::size_t bpf = job.blocks_per_feature();

  while (true) {
    // Drive the job to completion: claim locally when allowed, reclaim
    // leases of dead workers, otherwise wait for attached workers.
    while (!AllResultsPresent(job_dir, job)) {
      bool progress = false;
      if (options.evaluate_locally) {
        std::optional<std::size_t> shard = ClaimShard(job_dir, job);
        if (shard.has_value()) {
          Result<bool> done = EvaluateClaimedShard(job_dir, job, *shard);
          if (!done.ok()) return done.error();
          ++merge.local_shards;
          progress = true;
        }
      }
      if (!progress) {
        merge.reclaimed_leases +=
            ReclaimExpiredLeases(job_dir, job, options.lease);
        std::this_thread::sleep_for(options.poll);
      }
    }

    // Merge. Results are slot-keyed by shard id, so the merged flags are
    // bit-identical to the serial path no matter which process produced
    // which shard. A corrupt/truncated result is deleted and its shard
    // re-queued — never trusted.
    std::vector<std::size_t> requeue;
    for (std::size_t s = 0; s < job.num_shards(); ++s) {
      std::string bytes;
      Result<std::string> flags = Error("unread");
      if (ReadFileBytes(ResultPath(job_dir, s), &bytes)) {
        flags = ParseShardResult(job, s, bytes);
      }
      if (!flags.ok()) {
        std::error_code ec;
        fs::remove(ResultPath(job_dir, s), ec);
        requeue.push_back(s);
        continue;
      }
      const std::size_t begin = (s % bpf) * job.entity_block;
      for (std::size_t i = 0; i < flags.value().size(); ++i) {
        merge.flags[s / bpf][begin + i] = flags.value()[i] == '+' ? 1 : 0;
      }
    }
    if (requeue.empty()) break;
    for (std::size_t s : requeue) {
      std::error_code ec;
      fs::remove(LeasePath(job_dir, s), ec);  // Unblock the todo rename.
      std::ofstream todo(TodoPath(job_dir, s));
      if (!todo.good()) return Error("cannot re-queue corrupt shard");
    }
  }
  merge.remote_shards = job.num_shards() - merge.local_shards;

  if (!AtomicWrite(job_dir, DonePath(job_dir), "done\n")) {
    // Non-fatal: workers will still observe AllResultsPresent and stop.
  }
  return merge;
}

Result<ShardWorkerStats> RunShardWorkerDir(
    const std::string& work_dir, const ShardWorkerPoolOptions& options) {
  ShardWorkerStats total;
  auto last_activity = std::chrono::steady_clock::now();
  while (true) {
    bool worked = false;
    std::error_code ec;
    std::vector<fs::path> jobs;
    for (const auto& entry : fs::directory_iterator(work_dir, ec)) {
      if (!entry.is_directory(ec)) continue;
      std::error_code exists_ec;
      if (fs::exists(entry.path() / "job.fsj", exists_ec)) {
        jobs.push_back(entry.path());
      }
    }
    std::sort(jobs.begin(), jobs.end());
    for (const fs::path& dir : jobs) {
      if (ShardJobDone(dir.string())) continue;
      Result<ShardJob> job = LoadShardJob(dir.string());
      if (!job.ok()) continue;  // Partially published or foreign-version job.
      Result<ShardWorkerStats> stats =
          WorkOnShardJob(dir.string(), job.value(), options.worker);
      if (!stats.ok()) return stats.error();
      total.shards_completed += stats.value().shards_completed;
      total.entities_evaluated += stats.value().entities_evaluated;
      total.features_cached += stats.value().features_cached;
      if (stats.value().shards_completed > 0) worked = true;
    }
    auto now = std::chrono::steady_clock::now();
    if (worked) last_activity = now;
    if (options.idle_exit.count() == 0) break;  // Single pass.
    if (!worked && now - last_activity >= options.idle_exit) break;
    if (!worked) std::this_thread::sleep_for(options.poll);
  }
  return total;
}

}  // namespace serve
}  // namespace featsep
