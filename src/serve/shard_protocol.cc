#include "serve/shard_protocol.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "cq/evaluation.h"
#include "io/cq_parser.h"
#include "io/reader.h"
#include "io/writer.h"
#include "serve/wire_format.h"
#include "util/hash.h"

namespace featsep {
namespace serve {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kJobMagic = "featsep-shard-job";
constexpr std::string_view kResultMagic = "featsep-shard-result";
constexpr int kShardFormatVersion = 1;

std::uint64_t ProcessId() {
#ifndef _WIN32
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

fs::path TodoPath(const std::string& job_dir, std::size_t shard) {
  return fs::path(job_dir) / "todo" / ("s" + std::to_string(shard));
}
fs::path LeasePath(const std::string& job_dir, std::size_t shard) {
  return fs::path(job_dir) / "leases" / ("s" + std::to_string(shard));
}
fs::path ResultPath(const std::string& job_dir, std::size_t shard) {
  return fs::path(job_dir) / "results" / ("s" + std::to_string(shard) + ".fsr");
}
fs::path QuarantinePath(const std::string& job_dir, std::size_t shard) {
  return fs::path(job_dir) / "quarantine" / ("s" + std::to_string(shard));
}
fs::path DonePath(const std::string& job_dir) {
  return fs::path(job_dir) / "done";
}

/// Writes bytes to a unique temp file in <job>/tmp and renames onto
/// `final_path` — the same publish idiom as disk-cache entries — retrying
/// transient faults per `retry`. Each attempt uses a fresh tmp name, so a
/// failed attempt at worst orphans a tmp file, never tears the target.
bool AtomicWrite(FsEnv* env, const RetryPolicy& retry,
                 const std::string& job_dir, const fs::path& final_path,
                 std::string_view bytes, ShardIoStats* io) {
  static std::atomic<std::uint64_t> counter{0};
  RetryOutcome outcome = RetryCall(retry, nullptr, [&]() {
    fs::path tmp = fs::path(job_dir) / "tmp" /
                   (final_path.filename().string() + "." +
                    std::to_string(ProcessId()) + "." +
                    std::to_string(counter.fetch_add(1)) + ".tmp");
    return env->Publish(tmp.string(), final_path.string(), bytes) ==
           FsStatus::kOk;
  });
  if (io != nullptr) {
    io->io_retries += outcome.retries();
    if (!outcome.ok) ++io->io_give_ups;
  }
  return outcome.ok;
}

/// Reads a whole file with retries on transient faults. Returns kOk,
/// kNotFound (settled immediately, never retried), or kError (gave up).
FsStatus ReadBytes(FsEnv* env, const RetryPolicy& retry,
                   const std::string& path, std::string* out,
                   ShardIoStats* io) {
  FsStatus status = FsStatus::kError;
  RetryOutcome outcome = RetryCall(retry, nullptr, [&]() {
    status = env->ReadFile(path, out);
    return status != FsStatus::kError;
  });
  if (io != nullptr) {
    io->io_retries += outcome.retries();
    if (!outcome.ok) ++io->io_give_ups;
  }
  return outcome.ok ? status : FsStatus::kError;
}

/// Reads "<keyword> <len> <bytes>\n" at the cursor.
bool ReadKeywordSized(wire::Cursor& cursor, std::string_view keyword,
                      std::string_view* out) {
  if (cursor.bytes.substr(cursor.pos, keyword.size()) != keyword) return false;
  std::size_t after = cursor.pos + keyword.size();
  if (after >= cursor.bytes.size() || cursor.bytes[after] != ' ') return false;
  cursor.pos = after + 1;
  return cursor.ReadSized(out);
}

std::string SerializeJob(const Database& db,
                         const std::vector<std::string>& features,
                         std::size_t entity_block,
                         const std::string& cache_dir) {
  std::ostringstream out;
  out << kJobMagic << " " << kShardFormatVersion << "\n";
  out << "digest " << wire::DigestHex(db.ContentDigest()) << "\n";
  out << "entity_block " << entity_block << "\n";
  out << "cache_dir " << cache_dir.size() << " " << cache_dir << "\n";
  out << "features " << features.size() << "\n";
  for (const std::string& feature : features) {
    out << feature.size() << " " << feature << "\n";
  }
  std::string db_bytes = WriteDatabase(db);
  out << "db " << db_bytes.size() << " " << db_bytes << "\n";
  return wire::WithChecksum(out.str());
}

std::string SerializeShardResult(const ShardJob& job, std::size_t shard,
                                 std::string_view flags) {
  std::ostringstream out;
  out << kResultMagic << " " << kShardFormatVersion << "\n";
  out << "digest " << wire::DigestHex(job.digest) << "\n";
  out << "shard " << shard << "\n";
  out << "flags " << flags.size() << " " << flags << "\n";
  return wire::WithChecksum(out.str());
}

/// Parses and verifies one shard result; returns the flag bytes for the
/// shard's entity range, or an error for anything untrustworthy.
Result<std::string> ParseShardResult(const ShardJob& job, std::size_t shard,
                                     std::string_view bytes) {
  wire::Cursor cursor{bytes};
  std::string_view line;
  std::uint64_t version = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, kResultMagic, &version)) {
    return Error("bad result magic");
  }
  if (version != static_cast<std::uint64_t>(kShardFormatVersion)) {
    return Error("result version mismatch");
  }
  std::uint64_t digest = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "digest", &digest, 16) ||
      digest != job.digest) {
    return Error("result digest mismatch");
  }
  std::uint64_t id = 0;
  if (!cursor.ReadLine(&line) || !wire::ParseKeyedU64(line, "shard", &id) ||
      id != shard) {
    return Error("result shard mismatch");
  }
  std::string_view flags;
  if (!ReadKeywordSized(cursor, "flags", &flags)) {
    return Error("truncated flags");
  }
  if (!wire::VerifyChecksum(cursor)) return Error("result checksum mismatch");
  const std::size_t block = job.entity_block;
  const std::size_t begin = (shard % job.blocks_per_feature()) * block;
  const std::size_t end = std::min(begin + block, job.entities.size());
  if (flags.size() != end - begin) return Error("result flag count mismatch");
  for (char c : flags) {
    if (c != '+' && c != '-') return Error("bad flag byte");
  }
  return std::string(flags);
}

/// A shard is resolved once it has a result or has been quarantined (the
/// coordinator answers quarantined shards in-memory, so no one should wait
/// on them).
bool AllShardsResolved(const std::string& job_dir, const ShardJob& job) {
  FsEnv* env = job.fs();
  for (std::size_t s = 0; s < job.num_shards(); ++s) {
    if (!env->Exists(ResultPath(job_dir, s).string()) &&
        !env->Exists(QuarantinePath(job_dir, s).string())) {
      return false;
    }
  }
  return true;
}

/// When all blocks of `feature` have results, merges them and writes the
/// feature's answer through the shared disk cache. Quietly does nothing on
/// missing/corrupt blocks — the coordinator is the authority; this path
/// only makes warm restarts survive a dead coordinator.
bool TryCacheCompletedFeature(const std::string& job_dir, const ShardJob& job,
                              std::size_t feature, ShardIoStats* io) {
  if (job.cache_dir.empty()) return false;
  FsEnv* env = job.fs();
  const std::size_t bpf = job.blocks_per_feature();
  std::vector<std::string> selected;
  for (std::size_t b = 0; b < bpf; ++b) {
    const std::size_t shard = feature * bpf + b;
    std::string bytes;
    if (ReadBytes(env, job.retry, ResultPath(job_dir, shard).string(),
                  &bytes, io) != FsStatus::kOk) {
      return false;
    }
    Result<std::string> flags = ParseShardResult(job, shard, bytes);
    if (!flags.ok()) return false;
    const std::size_t begin = b * job.entity_block;
    for (std::size_t i = 0; i < flags.value().size(); ++i) {
      if (flags.value()[i] == '+') {
        selected.push_back(job.db->value_name(job.entities[begin + i]));
      }
    }
  }
  DiskCacheOptions cache_options;
  cache_options.env = env;
  cache_options.retry = job.retry;
  cache_options.tmp_gc_on_open = false;  // The write-through is a hot path.
  DiskResultCache cache(job.cache_dir, cache_options);
  return cache.Store(job.digest, job.feature_strings[feature],
                     std::move(selected));
}

std::vector<std::size_t> ListShardIds(FsEnv* env, const fs::path& dir,
                                      ShardIoStats* io) {
  FsListResult listing = env->ListDir(dir.string());
  if (io != nullptr &&
      (listing.status != FsStatus::kOk || listing.scan_errors > 0)) {
    ++io->list_errors;
  }
  std::vector<std::size_t> ids;
  for (const FsDirEntry& entry : listing.entries) {
    const std::string& name = entry.name;
    if (name.size() < 2 || name[0] != 's') continue;
    std::string_view digits(name);
    digits.remove_prefix(1);
    // Strip a ".fsr" result suffix if present.
    std::size_t dot = digits.find('.');
    if (dot != std::string_view::npos) digits = digits.substr(0, dot);
    std::uint64_t id = 0;
    if (wire::ParseU64(digits, &id)) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Tries to claim each candidate shard in order. A faulted rename is never
/// a win: it counts io->claim_errors, feeds `on_claim_error` (the
/// coordinator's quarantine evidence), and the scan moves on.
std::optional<std::size_t> ClaimFromCandidates(
    const std::string& job_dir, const ShardJob& job,
    const std::vector<std::size_t>& candidates, ShardIoStats* io,
    const std::function<void(std::size_t)>& on_claim_error) {
  FsEnv* env = job.fs();
  for (std::size_t id : candidates) {
    if (id >= job.num_shards()) continue;
    const FsStatus status = env->Rename(TodoPath(job_dir, id).string(),
                                        LeasePath(job_dir, id).string());
    if (status == FsStatus::kOk) {
      return id;  // The rename is atomic: we are the sole owner.
    }
    if (status == FsStatus::kNotFound) {
      // The todo file is gone: someone else won the shard (or it is
      // resolved). A race, not a fault.
      if (io != nullptr) ++io->claim_races;
      continue;
    }
    if (io != nullptr) ++io->claim_errors;
    if (on_claim_error) on_claim_error(id);
  }
  return std::nullopt;
}

}  // namespace

Result<std::size_t> PublishShardJob(const std::string& job_dir,
                                    const Database& db,
                                    const std::vector<std::string>& features,
                                    std::size_t entity_block,
                                    const std::string& cache_dir,
                                    FsEnv* env) {
  if (env == nullptr) env = RealFs();
  entity_block = std::max<std::size_t>(1, entity_block);
  for (const char* sub : {"tmp", "todo", "leases", "results", "quarantine"}) {
    if (env->CreateDirs((fs::path(job_dir) / sub).string()) !=
        FsStatus::kOk) {
      return Error("cannot create " + (fs::path(job_dir) / sub).string());
    }
  }
  if (!AtomicWrite(env, RetryPolicy{}, job_dir, fs::path(job_dir) / "job.fsj",
                   SerializeJob(db, features, entity_block, cache_dir),
                   nullptr)) {
    return Error("cannot write job spec in " + job_dir);
  }
  const std::size_t blocks =
      (db.Entities().size() + entity_block - 1) / entity_block;
  const std::size_t shards = features.size() * blocks;
  for (std::size_t s = 0; s < shards; ++s) {
    // Existence is the whole content; claiming renames the file away.
    if (env->WriteFile(TodoPath(job_dir, s).string(), "") != FsStatus::kOk) {
      return Error("cannot write todo shard in " + job_dir);
    }
  }
  return shards;
}

Result<ShardJob> LoadShardJob(const std::string& job_dir, FsEnv* env) {
  if (env == nullptr) env = RealFs();
  std::string bytes;
  if (env->ReadFile((fs::path(job_dir) / "job.fsj").string(), &bytes) !=
      FsStatus::kOk) {
    return Error("no job spec in " + job_dir);
  }
  wire::Cursor cursor{bytes};
  std::string_view line;
  std::uint64_t version = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, kJobMagic, &version)) {
    return Error("bad job magic");
  }
  if (version != static_cast<std::uint64_t>(kShardFormatVersion)) {
    return Error("job version mismatch: " + std::to_string(version));
  }
  ShardJob job;
  job.env = env;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "digest", &job.digest, 16)) {
    return Error("bad job digest line");
  }
  std::uint64_t block = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "entity_block", &block) || block == 0) {
    return Error("bad entity_block line");
  }
  job.entity_block = static_cast<std::size_t>(block);
  std::string_view cache_dir;
  if (!ReadKeywordSized(cursor, "cache_dir", &cache_dir)) {
    return Error("bad cache_dir line");
  }
  job.cache_dir = std::string(cache_dir);
  std::uint64_t count = 0;
  if (!cursor.ReadLine(&line) ||
      !wire::ParseKeyedU64(line, "features", &count) ||
      count > bytes.size()) {
    return Error("bad features line");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string_view feature;
    if (!cursor.ReadSized(&feature)) return Error("truncated feature");
    job.feature_strings.emplace_back(feature);
  }
  std::string_view db_bytes;
  if (!ReadKeywordSized(cursor, "db", &db_bytes)) {
    return Error("truncated database");
  }
  if (!wire::VerifyChecksum(cursor)) return Error("job checksum mismatch");

  Result<std::shared_ptr<Database>> db = ReadDatabase(db_bytes);
  if (!db.ok()) return Error("job database: " + db.error().message());
  job.owned_db = db.value();
  job.db = job.owned_db.get();
  // A worker whose digest computation disagrees with the coordinator's
  // must refuse the job outright — evaluating under the wrong key would
  // poison every shared cache.
  if (job.db->ContentDigest() != job.digest) {
    return Error(std::string(kDigestRefusalMessage));
  }
  for (const std::string& feature : job.feature_strings) {
    Result<ConjunctiveQuery> query = ParseCq(job.db->schema_ptr(), feature);
    if (!query.ok()) return Error("job feature: " + query.error().message());
    job.features.push_back(std::move(query.value()));
  }
  job.entities = job.db->Entities();
  return job;
}

bool ShardJobDone(const std::string& job_dir, FsEnv* env) {
  if (env == nullptr) env = RealFs();
  return env->Exists(DonePath(job_dir).string());
}

std::vector<std::size_t> QuarantinedShards(const std::string& job_dir,
                                           FsEnv* env) {
  if (env == nullptr) env = RealFs();
  return ListShardIds(env, fs::path(job_dir) / "quarantine", nullptr);
}

std::optional<std::size_t> ClaimShard(const std::string& job_dir,
                                      const ShardJob& job, ShardIoStats* io) {
  // Lowest id first: claim order is deterministic per scan, and the merged
  // answer is slot-keyed so racing processes cannot perturb results.
  return ClaimFromCandidates(
      job_dir, job, ListShardIds(job.fs(), fs::path(job_dir) / "todo", io),
      io, nullptr);
}

Result<bool> EvaluateClaimedShard(const std::string& job_dir,
                                  const ShardJob& job, std::size_t shard,
                                  ShardIoStats* io) {
  FsEnv* env = job.fs();
  const std::size_t bpf = job.blocks_per_feature();
  if (bpf == 0 || shard >= job.num_shards()) {
    return Error("shard id out of range");
  }
  const std::size_t feature = shard / bpf;
  const std::size_t begin = (shard % bpf) * job.entity_block;
  const std::size_t end =
      std::min(begin + job.entity_block, job.entities.size());

  CqEvaluator evaluator(job.features[feature]);
  std::string flags;
  flags.reserve(end - begin);
  const std::string lease = LeasePath(job_dir, shard).string();
  for (std::size_t e = begin; e < end; ++e) {
    flags.push_back(evaluator.SelectsEntity(*job.db, job.entities[e]) ? '+'
                                                                      : '-');
    // Renew the lease so a long shard is not reclaimed under a live worker
    // (entity evaluations are the NP-hard unit of progress). A faulted
    // renewal is non-fatal — the next entity retries — but counted: enough
    // of them and the lease goes stale under a live worker.
    if (env->Touch(lease) == FsStatus::kError && io != nullptr) {
      ++io->lease_renew_failures;
    }
  }
  if (!AtomicWrite(env, job.retry, job_dir, ResultPath(job_dir, shard),
                   SerializeShardResult(job, shard, flags), io)) {
    return Error("cannot publish shard result");
  }
  env->Remove(lease);
  return TryCacheCompletedFeature(job_dir, job, feature, io);
}

std::size_t ReclaimExpiredLeases(const std::string& job_dir,
                                 const ShardJob& job,
                                 std::chrono::milliseconds lease,
                                 ShardIoStats* io,
                                 std::vector<std::size_t>* attempted) {
  FsEnv* env = job.fs();
  std::size_t reclaimed = 0;
  for (std::size_t id : ListShardIds(env, fs::path(job_dir) / "leases", io)) {
    if (id >= job.num_shards()) continue;
    if (env->Exists(ResultPath(job_dir, id).string())) {
      // Finished but the worker died before cleanup: drop the stale lease.
      env->Remove(LeasePath(job_dir, id).string());
      continue;
    }
    std::optional<fs::file_time_type> mtime =
        env->Mtime(LeasePath(job_dir, id).string());
    if (!mtime.has_value()) continue;  // Raced with the owner's cleanup.
    const auto age = fs::file_time_type::clock::now() - *mtime;
    if (age < lease) continue;
    FsStatus status = FsStatus::kError;
    RetryOutcome outcome = RetryCall(job.retry, nullptr, [&]() {
      status = env->Rename(LeasePath(job_dir, id).string(),
                           TodoPath(job_dir, id).string());
      return status != FsStatus::kError;
    });
    if (io != nullptr) io->io_retries += outcome.retries();
    if (!outcome.ok) {
      // The expired lease could not be requeued: surfaced, and the shard is
      // still lease-visible so the next pass retries — never silently lost.
      if (io != nullptr) ++io->requeue_failures;
      if (attempted != nullptr) attempted->push_back(id);
      continue;
    }
    if (status == FsStatus::kOk) {
      ++reclaimed;
      if (attempted != nullptr) attempted->push_back(id);
    }
    // kNotFound: the owner finished or cleaned up concurrently — no-op.
  }
  return reclaimed;
}

Result<ShardWorkerStats> WorkOnShardJob(const std::string& job_dir,
                                        const ShardJob& job,
                                        const ShardWorkerOptions& options) {
  ShardWorkerStats stats;
  FsEnv* env = job.fs();
  // Passes that claimed nothing while observing fresh I/O faults. A worker
  // on a dead disk must give up (kWorkerExitIoGiveUp) rather than spin: it
  // cannot even see whether the job still exists.
  std::size_t fruitless_faulted_passes = 0;
  constexpr std::size_t kMaxFruitlessFaultedPasses = 8;
  while (!ShardJobDone(job_dir, env)) {
    if (options.max_shards != 0 && stats.shards_completed >= options.max_shards)
      break;
    const std::uint64_t faults_before =
        stats.io.claim_errors + stats.io.list_errors;
    std::optional<std::size_t> shard = ClaimShard(job_dir, job, &stats.io);
    if (shard.has_value()) {
      fruitless_faulted_passes = 0;
      const std::size_t begin =
          (*shard % job.blocks_per_feature()) * job.entity_block;
      const std::size_t end =
          std::min(begin + job.entity_block, job.entities.size());
      Result<bool> done =
          EvaluateClaimedShard(job_dir, job, *shard, &stats.io);
      if (!done.ok()) {
        // The result could not be published after retries. Requeue our
        // lease so the shard is not stranded until lease expiry, then
        // surface the give-up (a worker process exits kWorkerExitIoGiveUp).
        if (env->Rename(LeasePath(job_dir, *shard).string(),
                        TodoPath(job_dir, *shard).string()) ==
            FsStatus::kError) {
          ++stats.io.requeue_failures;
        }
        return done.error();
      }
      ++stats.shards_completed;
      stats.entities_evaluated += end - begin;
      if (done.value()) ++stats.features_cached;
      continue;
    }
    if (AllShardsResolved(job_dir, job)) break;
    if (stats.io.claim_errors + stats.io.list_errors > faults_before) {
      if (++fruitless_faulted_passes >= kMaxFruitlessFaultedPasses) {
        return Error(
            "shard worker giving up after persistent I/O faults");
      }
    } else {
      fruitless_faulted_passes = 0;
    }
    if (options.reclaim_lease.has_value()) {
      ReclaimExpiredLeases(job_dir, job, *options.reclaim_lease, &stats.io,
                           nullptr);
    }
    std::this_thread::sleep_for(options.poll);
  }
  return stats;
}

Result<ShardMergeResult> CoordinateShardJob(
    const std::string& job_dir, const ShardJob& job,
    const ShardCoordinatorOptions& options) {
  FsEnv* env = job.fs();
  ShardMergeResult merge;
  merge.flags.assign(job.features.size(),
                     std::vector<char>(job.entities.size(), 0));
  const std::size_t num_shards = job.num_shards();
  const std::size_t bpf = job.blocks_per_feature();

  // Per-shard failure evidence: faulted claims, expired leases, corrupt
  // results, failed publishes and requeues all count. At quarantine_after
  // the shard leaves the distributed protocol for good.
  std::vector<std::size_t> attempts(num_shards, 0);
  // merged[s]: the shard's slots in merge.flags are final (verified result
  // file or in-memory quarantine evaluation).
  std::vector<char> merged(num_shards, 0);

  std::optional<WorkerSupervisor> supervisor;
  if (options.supervise.has_value()) {
    supervisor.emplace(*options.supervise);
    supervisor->Start();
  }

  auto evaluate_in_memory = [&](std::size_t s) {
    const std::size_t feature = s / bpf;
    const std::size_t begin = (s % bpf) * job.entity_block;
    const std::size_t end =
        std::min(begin + job.entity_block, job.entities.size());
    CqEvaluator evaluator(job.features[feature]);
    for (std::size_t e = begin; e < end; ++e) {
      merge.flags[feature][e] =
          evaluator.SelectsEntity(*job.db, job.entities[e]) ? 1 : 0;
    }
  };

  auto quarantine = [&](std::size_t s, const char* reason) {
    // Pull the shard out of the protocol (nothing left to claim, a marker
    // explaining why) and answer it authoritatively in-memory — evaluation
    // is pure compute, so no filesystem fault can stop the job from
    // completing, and the merged answer stays bit-identical to serial.
    env->Remove(TodoPath(job_dir, s).string());
    env->Remove(LeasePath(job_dir, s).string());
    env->WriteFile(QuarantinePath(job_dir, s).string(),
                   std::string(reason) + "\n");  // Best effort.
    evaluate_in_memory(s);
    merged[s] = 1;
    ++merge.quarantined_shards;
  };

  auto note_failure = [&](std::size_t s, const char* reason) {
    if (s >= num_shards || merged[s]) return;
    ++attempts[s];
    if (options.quarantine_after != 0 &&
        attempts[s] >= options.quarantine_after) {
      quarantine(s, reason);
    }
  };

  while (true) {
    // Drive the job until every shard is resolved: claim locally when
    // allowed, reclaim leases of dead workers, keep the supervised fleet
    // alive, and quarantine shards that keep failing.
    while (true) {
      if (supervisor.has_value()) supervisor->Poll();
      bool all_resolved = true;
      for (std::size_t s = 0; s < num_shards; ++s) {
        if (!merged[s] && !env->Exists(ResultPath(job_dir, s).string())) {
          all_resolved = false;
          break;
        }
      }
      if (all_resolved) break;
      bool progress = false;
      if (options.evaluate_locally) {
        // Candidates come from the todo listing; when the listing itself
        // faults, fall back to probing every unresolved shard directly so a
        // dead disk still produces per-shard failure evidence instead of an
        // infinite wait.
        std::vector<std::size_t> candidates =
            ListShardIds(env, fs::path(job_dir) / "todo", &merge.io);
        if (candidates.empty()) {
          for (std::size_t s = 0; s < num_shards; ++s) {
            if (!merged[s] && !env->Exists(ResultPath(job_dir, s).string()) &&
                !env->Exists(LeasePath(job_dir, s).string())) {
              candidates.push_back(s);
            }
          }
        }
        std::optional<std::size_t> shard = ClaimFromCandidates(
            job_dir, job, candidates, &merge.io,
            [&](std::size_t s) { note_failure(s, "claim faulted"); });
        if (shard.has_value() && !merged[*shard]) {
          Result<bool> done =
              EvaluateClaimedShard(job_dir, job, *shard, &merge.io);
          if (done.ok()) {
            ++merge.local_shards;
          } else {
            // Publish gave up: requeue the lease and record the failure.
            if (env->Rename(LeasePath(job_dir, *shard).string(),
                            TodoPath(job_dir, *shard).string()) ==
                FsStatus::kError) {
              ++merge.io.requeue_failures;
            }
            note_failure(*shard, "publish failed");
          }
          progress = true;
        }
      }
      if (!progress) {
        std::vector<std::size_t> attempted;
        merge.reclaimed_leases +=
            ReclaimExpiredLeases(job_dir, job, options.lease, &merge.io,
                                 &attempted);
        for (std::size_t s : attempted) note_failure(s, "lease expired");
        std::this_thread::sleep_for(options.poll);
      }
    }

    // Merge. Results are slot-keyed by shard id, so the merged flags are
    // bit-identical to the serial path no matter which process produced
    // which shard. A corrupt/unreadable result is deleted and its shard
    // re-queued — never trusted.
    std::vector<std::size_t> requeue;
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (merged[s]) continue;
      std::string bytes;
      Result<std::string> flags = Error("unreadable result");
      if (ReadBytes(env, job.retry, ResultPath(job_dir, s).string(), &bytes,
                    &merge.io) == FsStatus::kOk) {
        flags = ParseShardResult(job, s, bytes);
      }
      if (!flags.ok()) {
        ++merge.corrupt_results;
        env->Remove(ResultPath(job_dir, s).string());
        note_failure(s, "corrupt result");  // May quarantine (merged[s]=1).
        if (!merged[s]) requeue.push_back(s);
        continue;
      }
      const std::size_t begin = (s % bpf) * job.entity_block;
      for (std::size_t i = 0; i < flags.value().size(); ++i) {
        merge.flags[s / bpf][begin + i] = flags.value()[i] == '+' ? 1 : 0;
      }
      merged[s] = 1;
    }
    if (requeue.empty()) break;
    for (std::size_t s : requeue) {
      env->Remove(LeasePath(job_dir, s).string());  // Unblock the rename.
      RetryOutcome requeued = RetryCall(job.retry, nullptr, [&]() {
        return env->WriteFile(TodoPath(job_dir, s).string(), "") ==
               FsStatus::kOk;
      });
      merge.io.io_retries += requeued.retries();
      if (!requeued.ok) {
        // Surfaced and retried via the next drive pass (claim probing keeps
        // accumulating evidence until the shard quarantines) — a corrupt
        // shard is never silently dropped.
        ++merge.io.requeue_failures;
        note_failure(s, "requeue failed");
      }
    }
  }
  const std::uint64_t accounted =
      merge.local_shards + merge.quarantined_shards;
  merge.remote_shards =
      accounted >= num_shards ? 0 : num_shards - accounted;

  if (supervisor.has_value()) {
    supervisor->StopAll();
    merge.supervisor = supervisor->stats();
  }

  if (!AtomicWrite(env, job.retry, job_dir, DonePath(job_dir), "done\n",
                   &merge.io)) {
    // Non-fatal: workers will still observe AllShardsResolved and stop.
  }
  return merge;
}

Result<ShardWorkerStats> RunShardWorkerDir(
    const std::string& work_dir, const ShardWorkerPoolOptions& options) {
  FsEnv* env = options.env != nullptr ? options.env : RealFs();
  ShardWorkerStats total;
  auto last_activity = std::chrono::steady_clock::now();
  while (true) {
    bool worked = false;
    FsListResult listing = env->ListDir(work_dir);
    if (listing.status != FsStatus::kOk || listing.scan_errors > 0) {
      ++total.io.list_errors;
    }
    std::vector<std::string> jobs;
    for (const FsDirEntry& entry : listing.entries) {
      if (!entry.is_dir) continue;
      const fs::path dir = fs::path(work_dir) / entry.name;
      if (env->Exists((dir / "job.fsj").string())) {
        jobs.push_back(dir.string());
      }
    }
    std::sort(jobs.begin(), jobs.end());
    for (const std::string& dir : jobs) {
      if (ShardJobDone(dir, env)) continue;
      Result<ShardJob> job = LoadShardJob(dir, env);
      if (!job.ok()) {
        // A digest refusal is poison — evaluating would poison shared
        // caches — and distinct from a partially published or
        // foreign-version job, which simply is not ready yet.
        if (job.error().message() == kDigestRefusalMessage) {
          ++total.digest_refusals;
        }
        continue;
      }
      job.value().retry = options.retry;
      Result<ShardWorkerStats> stats =
          WorkOnShardJob(dir, job.value(), options.worker);
      if (!stats.ok()) return stats.error();
      total.shards_completed += stats.value().shards_completed;
      total.entities_evaluated += stats.value().entities_evaluated;
      total.features_cached += stats.value().features_cached;
      total.io.Add(stats.value().io);
      if (stats.value().shards_completed > 0) worked = true;
    }
    auto now = std::chrono::steady_clock::now();
    if (worked) last_activity = now;
    if (options.idle_exit.count() == 0) break;  // Single pass.
    if (!worked && now - last_activity >= options.idle_exit) break;
    if (!worked) std::this_thread::sleep_for(options.poll);
  }
  return total;
}

}  // namespace serve
}  // namespace featsep
