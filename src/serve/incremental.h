#ifndef FEATSEP_SERVE_INCREMENTAL_H_
#define FEATSEP_SERVE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/separability.h"
#include "cq/cq.h"
#include "cq/evaluation.h"
#include "linsep/linear_classifier.h"
#include "relational/database.h"
#include "relational/training_database.h"
#include "serve/eval_service.h"

namespace featsep {
namespace serve {

/// Counters for delta maintenance; snapshot via
/// IncrementalMaintainer::stats().
struct IncrementalStats {
  std::uint64_t deltas_applied = 0;  ///< Non-no-op deltas processed.
  std::uint64_t noop_deltas = 0;     ///< Duplicate-insert / absent-remove.
  /// Warm entries patched and re-published under the new digest.
  std::uint64_t features_patched = 0;
  /// Entries cold in both tiers — nothing to maintain, next read recomputes.
  std::uint64_t features_skipped = 0;
  /// Warm entries dropped instead of patched (ServeOptions::incremental off).
  std::uint64_t features_dropped = 0;
  /// Kernel probes spent re-evaluating screened-in entities.
  std::uint64_t entities_rechecked = 0;
  /// (feature × entity) cells the screens proved unaffected — the work a
  /// full recompute would have paid and the delta path did not.
  std::uint64_t entities_screened_out = 0;
  /// Cells whose membership actually flipped.
  std::uint64_t cells_changed = 0;
};

/// What one ApplyDelta changed — the unit the incremental separability
/// re-check consumes.
struct DeltaMaintenance {
  std::uint64_t old_digest = 0;
  std::uint64_t new_digest = 0;
  bool entity_set_changed = false;
  /// Names of entities whose feature row may differ from before the delta
  /// (a superset: exact flips in patch mode, the screen's overapproximation
  /// in drop mode), plus any entity that entered or left η(D). Sorted.
  std::vector<std::string> changed_entities;
};

/// The invalidation rule (DESIGN.md §14): a sound overapproximation of the
/// entities of `db_after` whose membership in `query` can differ across
/// `delta`. Three screens compose:
///   - relation: homomorphisms map atoms onto facts of the atoms' relations
///     only, so a non-η delta on a relation `query` never mentions cannot
///     change the answer at all (η deltas are exempt: the served answer is
///     q(D) ∩ η(D), whose η part every feature depends on);
///   - direction: CQ semantics is monotone in facts, so an insert can only
///     newly select entities (previously-selected rows cannot change) and a
///     remove can only deselect previously-selected ones;
///   - neighborhood: when every atom of `query` is connected to its free
///     variable through shared variables, a homomorphism whose image uses
///     the delta's fact has a connected image, so affected entities lie
///     within |atoms| fact-hops of the delta's touched values. The BFS runs
///     over `db_after` seeded with every touched value, which also covers
///     removals (their witnessing homs lived in db_before = db_after plus
///     the removed fact, whose values are all seeds).
/// Queries with atoms disconnected from the free variable (including
/// nullary atoms) skip the neighborhood screen — a detached component acts
/// as a global boolean whose truth can flip every row at once.
/// `previous` may be null — e.g. the feature is cold in every cache tier —
/// which disables the direction screen (no prior answer to compare
/// against) and keeps only the neighborhood bound.
std::vector<Value> AffectedEntities(const Database& db_after,
                                    const Delta& delta,
                                    const ConjunctiveQuery& query,
                                    const FeatureAnswer* previous);

/// Delta maintenance for EvalService (DESIGN.md §14): given the Delta a
/// Database mutation returned, re-keys every warm cached answer for the
/// maintained feature set from the old digest to the new one, so stale
/// entries can never be served and warm entries stay warm across writes.
/// With ServeOptions::incremental (the default) entries are *patched* in
/// place — only screened-in entities are re-evaluated — and re-published in
/// both tiers; with it off, warm entries are dropped and the next read
/// recomputes cold. Both policies are bit-identical to full recompute; the
/// `--config incremental` fuzz driver enforces this against a
/// fresh-database, cold-service oracle at every step.
///
/// Not thread-safe: maintenance is part of the mutation epoch (see the
/// Database mutation contract) — apply the delta, then resume serving.
class IncrementalMaintainer {
 public:
  /// Maintains `service`'s cached answers for `features` — the feature
  /// universe the serving tier evaluates. `service` must outlive this.
  IncrementalMaintainer(EvalService* service,
                        std::vector<ConjunctiveQuery> features);

  const std::vector<ConjunctiveQuery>& features() const { return features_; }

  /// `db_after` is the database AFTER the mutation that produced `delta`.
  /// No-op deltas (duplicate insert, absent remove) return immediately.
  DeltaMaintenance ApplyDelta(const Database& db_after, const Delta& delta);

  IncrementalStats stats() const { return stats_; }

 private:
  EvalService* service_;
  std::vector<ConjunctiveQuery> features_;
  std::vector<std::string> feature_strings_;
  std::vector<std::unique_ptr<CqEvaluator>> evaluators_;
  IncrementalStats stats_;
};

/// Counters for the incremental separability re-check.
struct IncrementalSepStats {
  /// Previous separator verified on the changed rows only — no simplex.
  std::uint64_t lin_warm_hits = 0;
  std::uint64_t lin_resolves = 0;  ///< Fresh simplex solves.
  /// CQ-SEP verdict reused outright (digest and labeling unchanged).
  std::uint64_t cqsep_reuses = 0;
  /// Previous conflict pair re-verified hom-equivalent — a sound
  /// inseparability witness without the full pair sweep.
  std::uint64_t cqsep_witness_hits = 0;
  std::uint64_t cqsep_resolves = 0;  ///< Full DecideCqSep sweeps.
};

/// Incremental separability over a mutating training database: caches the
/// previous call's verdicts and warm-starts both decisions —
///   - linear separability of the feature matrix: when the previous call
///     found a separator, it still correctly classifies every unchanged row
///     (their constraints did not move), so verifying it on the changed
///     rows alone (O(changed · features) rational arithmetic) re-certifies
///     separability without touching the simplex
///     (linsep's TryFindSeparatorWarm);
///   - CQ-SEP: an unchanged (digest, labeling) reuses the verdict; after a
///     change, the previous conflict pair is re-verified first — two
///     differently-labeled entities that are still hom-equivalent are a
///     sound inseparability witness, skipping the full pair sweep.
/// Every verdict equals what a from-scratch decision returns (the fuzz
/// oracle enforces this); only the work differs. Changed rows are
/// self-computed from label diffs and entity-set changes plus the caller's
/// `changed_entities` (from DeltaMaintenance), so a stale caller set can
/// only cost work, not soundness — provided it covers all matrix-row
/// changes, which the maintainer guarantees.
class IncrementalSeparability {
 public:
  explicit IncrementalSeparability(std::vector<ConjunctiveQuery> features);

  struct Verdict {
    bool lin_separable = false;
    std::optional<LinearClassifier> classifier;
    CqSepResult cq_sep;
  };

  /// Decides both separability questions for (db, λ), reusing previous
  /// state where sound. `service` (non-null) supplies the feature matrix —
  /// warm after IncrementalMaintainer::ApplyDelta, so the steady-state cost
  /// of a step is the screens plus the changed rows, not the matrix.
  Verdict Recheck(const TrainingDatabase& training, EvalService* service,
                  const std::vector<std::string>& changed_entities);

  IncrementalSepStats stats() const { return stats_; }

 private:
  std::vector<ConjunctiveQuery> features_;
  bool has_previous_ = false;
  std::uint64_t prev_digest_ = 0;
  std::unordered_map<std::string, Label> prev_labels_;  // By entity name.
  bool prev_lin_separable_ = false;
  std::optional<LinearClassifier> prev_classifier_;
  CqSepResult prev_cq_;
  IncrementalSepStats stats_;
};

}  // namespace serve
}  // namespace featsep

#endif  // FEATSEP_SERVE_INCREMENTAL_H_
