#include "fo/color_refinement.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/check.h"

namespace featsep {

namespace {

/// One refinement round over a list of (database, colors) pairs sharing a
/// color space. Returns true if any color class split.
bool RefineRound(const std::vector<const Database*>& dbs,
                 std::vector<std::vector<std::size_t>>& colors) {
  // Signature of a value: (own color, sorted list of per-fact signatures).
  using FactSig = std::vector<std::size_t>;  // relation, position, colors...
  using ValueSig = std::pair<std::size_t, std::vector<FactSig>>;

  std::map<ValueSig, std::size_t> palette;
  std::vector<std::vector<std::size_t>> next(colors.size());
  for (std::size_t d = 0; d < dbs.size(); ++d) {
    const Database& db = *dbs[d];
    next[d].assign(db.num_values(), 0);
    for (Value v = 0; v < db.num_values(); ++v) {
      ValueSig sig;
      sig.first = colors[d][v];
      for (FactIndex fi : db.FactsContaining(v)) {
        const Fact& fact = db.fact(fi);
        for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
          if (fact.args[pos] != v) continue;
          FactSig fs;
          fs.push_back(fact.relation);
          fs.push_back(pos);
          for (Value arg : fact.args) fs.push_back(colors[d][arg]);
          sig.second.push_back(std::move(fs));
        }
      }
      std::sort(sig.second.begin(), sig.second.end());
      auto [it, inserted] = palette.emplace(std::move(sig), palette.size());
      (void)inserted;
      next[d][v] = it->second;
    }
  }

  bool changed = false;
  for (std::size_t d = 0; d < dbs.size(); ++d) {
    if (next[d] != colors[d]) changed = true;
  }
  // Detect stabilization by comparing partition sizes rather than raw ids
  // (ids are renumbered every round): count distinct colors before/after.
  auto count_colors = [](const std::vector<std::vector<std::size_t>>& cs) {
    std::vector<std::size_t> all;
    for (const auto& c : cs) all.insert(all.end(), c.begin(), c.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all.size();
  };
  std::size_t before = count_colors(colors);
  std::size_t after = count_colors(next);
  colors = std::move(next);
  (void)changed;
  return after > before;
}

std::vector<std::vector<std::size_t>> Refine(
    const std::vector<const Database*>& dbs,
    std::vector<std::vector<std::size_t>> colors) {
  while (RefineRound(dbs, colors)) {
  }
  return colors;
}

}  // namespace

std::vector<std::size_t> StableColors(const Database& db,
                                      const std::vector<std::size_t>& initial) {
  std::vector<std::size_t> colors =
      initial.empty() ? std::vector<std::size_t>(db.num_values(), 0) : initial;
  FEATSEP_CHECK_EQ(colors.size(), db.num_values());
  auto result = Refine({&db}, {std::move(colors)});
  return result[0];
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
JointStableColors(const Database& a, const Database& b,
                  const std::vector<std::size_t>& initial_a,
                  const std::vector<std::size_t>& initial_b) {
  std::vector<std::size_t> ca = initial_a.empty()
                                    ? std::vector<std::size_t>(a.num_values(), 0)
                                    : initial_a;
  std::vector<std::size_t> cb = initial_b.empty()
                                    ? std::vector<std::size_t>(b.num_values(), 0)
                                    : initial_b;
  FEATSEP_CHECK_EQ(ca.size(), a.num_values());
  FEATSEP_CHECK_EQ(cb.size(), b.num_values());
  auto result = Refine({&a, &b}, {std::move(ca), std::move(cb)});
  return {std::move(result[0]), std::move(result[1])};
}

}  // namespace featsep
