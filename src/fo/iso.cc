#include "fo/iso.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "fo/color_refinement.h"
#include "util/check.h"

namespace featsep {

namespace {

/// Values participating in the isomorphism: dom(db) plus the distinguished
/// tuple (isolated interned names are irrelevant to isomorphism).
std::vector<Value> RelevantValues(const Database& db,
                                  const std::vector<Value>& tuple) {
  std::vector<Value> values = db.domain();
  for (Value v : tuple) values.push_back(v);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

class IsoSearch {
 public:
  IsoSearch(const Database& a, const Database& b) : a_(a), b_(b) {}

  bool Run(const std::vector<Value>& a_tuple,
           const std::vector<Value>& b_tuple, std::uint64_t* nodes) {
    nodes_ = 0;
    bool result = false;
    do {
      if (a_tuple.size() != b_tuple.size()) break;
      // Equal repetition patterns in the distinguished tuples.
      bool pattern_ok = true;
      for (std::size_t i = 0; i < a_tuple.size() && pattern_ok; ++i) {
        for (std::size_t j = i + 1; j < a_tuple.size(); ++j) {
          if ((a_tuple[i] == a_tuple[j]) != (b_tuple[i] == b_tuple[j])) {
            pattern_ok = false;
            break;
          }
        }
      }
      if (!pattern_ok) break;

      relevant_a_ = RelevantValues(a_, a_tuple);
      relevant_b_ = RelevantValues(b_, b_tuple);
      if (relevant_a_.size() != relevant_b_.size()) break;
      if (a_.size() != b_.size()) break;
      if (!(a_.schema() == b_.schema())) break;

      // Initial colors: 0 everywhere, distinguished positions get 1+i (the
      // first position at which the value occurs in the tuple).
      std::vector<std::size_t> ca(a_.num_values(), 0);
      std::vector<std::size_t> cb(b_.num_values(), 0);
      for (std::size_t i = a_tuple.size(); i-- > 0;) {
        ca[a_tuple[i]] = 1 + i;
        cb[b_tuple[i]] = 1 + i;
      }
      result = Recurse(std::move(ca), std::move(cb));
    } while (false);
    if (nodes != nullptr) *nodes = nodes_;
    return result;
  }

 private:
  bool Recurse(std::vector<std::size_t> ca, std::vector<std::size_t> cb) {
    ++nodes_;
    auto [ra, rb] = JointStableColors(a_, b_, ca, cb);

    // Color class inventories over relevant values must match.
    std::map<std::size_t, std::vector<Value>> classes_a;
    std::map<std::size_t, std::vector<Value>> classes_b;
    for (Value v : relevant_a_) classes_a[ra[v]].push_back(v);
    for (Value v : relevant_b_) classes_b[rb[v]].push_back(v);
    if (classes_a.size() != classes_b.size()) return false;
    for (auto ia = classes_a.begin(), ib = classes_b.begin();
         ia != classes_a.end(); ++ia, ++ib) {
      if (ia->first != ib->first || ia->second.size() != ib->second.size()) {
        return false;
      }
    }

    // Find the smallest non-singleton class.
    const std::vector<Value>* split_a = nullptr;
    const std::vector<Value>* split_b = nullptr;
    for (auto ia = classes_a.begin(), ib = classes_b.begin();
         ia != classes_a.end(); ++ia, ++ib) {
      if (ia->second.size() > 1 &&
          (split_a == nullptr || ia->second.size() < split_a->size())) {
        split_a = &ia->second;
        split_b = &ib->second;
      }
    }

    if (split_a == nullptr) {
      // Discrete coloring: candidate bijection color -> (value, value).
      std::vector<Value> map_a_to_b(a_.num_values(), kNoValue);
      for (auto ia = classes_a.begin(), ib = classes_b.begin();
           ia != classes_a.end(); ++ia, ++ib) {
        map_a_to_b[ia->second[0]] = ib->second[0];
      }
      return VerifyBijection(map_a_to_b);
    }

    // A color id strictly above everything the joint palette assigned, so
    // individualization cannot collide with an existing class.
    std::size_t fresh = 0;
    for (std::size_t c : ra) fresh = std::max(fresh, c + 1);
    for (std::size_t c : rb) fresh = std::max(fresh, c + 1);

    Value pivot = (*split_a)[0];
    for (Value candidate : *split_b) {
      std::vector<std::size_t> na = ra;
      std::vector<std::size_t> nb = rb;
      na[pivot] = fresh;
      nb[candidate] = fresh;
      if (Recurse(std::move(na), std::move(nb))) return true;
    }
    return false;
  }

  bool VerifyBijection(const std::vector<Value>& map_a_to_b) const {
    // Injectivity over relevant values.
    std::unordered_set<Value> images;
    for (Value v : relevant_a_) {
      FEATSEP_CHECK_NE(map_a_to_b[v], kNoValue);
      if (!images.insert(map_a_to_b[v]).second) return false;
    }
    // Every fact of a maps to a fact of b; with |a| == |b| and injectivity
    // this forces a fact bijection, hence an isomorphism.
    for (const Fact& fact : a_.facts()) {
      std::vector<Value> args;
      args.reserve(fact.args.size());
      for (Value v : fact.args) args.push_back(map_a_to_b[v]);
      if (!b_.ContainsFact(Fact{fact.relation, std::move(args)})) {
        return false;
      }
    }
    return true;
  }

  const Database& a_;
  const Database& b_;
  std::vector<Value> relevant_a_;
  std::vector<Value> relevant_b_;
  std::uint64_t nodes_ = 0;
};

}  // namespace

bool AreIsomorphic(const Database& a, const std::vector<Value>& a_tuple,
                   const Database& b, const std::vector<Value>& b_tuple,
                   std::uint64_t* nodes) {
  IsoSearch search(a, b);
  return search.Run(a_tuple, b_tuple, nodes);
}

}  // namespace featsep
