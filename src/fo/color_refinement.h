#ifndef FEATSEP_FO_COLOR_REFINEMENT_H_
#define FEATSEP_FO_COLOR_REFINEMENT_H_

#include <cstddef>
#include <vector>

#include "relational/database.h"

namespace featsep {

/// Stable coloring of a database's domain by 1-dimensional Weisfeiler–Leman
/// refinement, generalized to relational structures: at each round a value's
/// color is refined by the multiset of (relation, own position, colors of
/// the co-occurring values) signatures over its incident facts. Two values
/// with different stable colors lie in different orbits of the automorphism
/// group — the workhorse invariant of the FO-separability isomorphism test
/// (paper, Section 8; FO-QBE is GI-complete, Arenas–Díaz).
///
/// `initial` optionally seeds colors (e.g., to individualize distinguished
/// elements); it must assign a color to every value id of `db` if present.
/// The returned vector maps each value id to its stable color; colors are
/// normalized across *one* database only. To compare two databases, refine
/// their disjoint union (see JointStableColors).
std::vector<std::size_t> StableColors(
    const Database& db, const std::vector<std::size_t>& initial = {});

/// Refines both databases together (colors comparable across them): returns
/// the pair of color vectors under a common color space.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
JointStableColors(const Database& a, const Database& b,
                  const std::vector<std::size_t>& initial_a = {},
                  const std::vector<std::size_t>& initial_b = {});

}  // namespace featsep

#endif  // FEATSEP_FO_COLOR_REFINEMENT_H_
