#ifndef FEATSEP_FO_ISO_H_
#define FEATSEP_FO_ISO_H_

#include <cstdint>
#include <vector>

#include "relational/database.h"

namespace featsep {

/// Decides whether the pointed databases (a, ā) and (b, b̄) are isomorphic:
/// a bijection between their domains preserving facts in both directions
/// and mapping ā to b̄ pointwise.
///
/// Isomorphism is exactly FO-indistinguishability for finite structures, so
/// this test underlies FO-separability (paper, Section 8): a training
/// database is FO-separable iff no two differently-labeled entities have
/// isomorphic pointed databases. The problem is GI-complete (Arenas–Díaz),
/// and the implementation is the classic individualization–refinement
/// scheme: 1-WL color refinement as an invariant, with backtracking over
/// color-preserving individualization when refinement alone is not
/// discrete. `nodes`, if non-null, receives the number of search nodes —
/// a measure of instance hardness (CFI-style pairs blow it up).
bool AreIsomorphic(const Database& a, const std::vector<Value>& a_tuple,
                   const Database& b, const std::vector<Value>& b_tuple,
                   std::uint64_t* nodes = nullptr);

}  // namespace featsep

#endif  // FEATSEP_FO_ISO_H_
