#ifndef FEATSEP_RELATIONAL_VALUE_H_
#define FEATSEP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <limits>

namespace featsep {

/// A domain element (constant) of a database, represented as an index into
/// the owning Database's symbol table. Values are only meaningful relative to
/// the database that interned them.
using Value = std::uint32_t;

/// Identifier of a relation symbol within a Schema.
using RelationId = std::uint32_t;

/// Sentinel for "no value"; never a valid interned value.
inline constexpr Value kNoValue = std::numeric_limits<Value>::max();

/// Sentinel for "no relation".
inline constexpr RelationId kNoRelation =
    std::numeric_limits<RelationId>::max();

/// A classification label: +1 (positive class) or -1 (negative class), as in
/// the paper's {1, -1} convention.
using Label = int;

inline constexpr Label kPositive = 1;
inline constexpr Label kNegative = -1;

}  // namespace featsep

#endif  // FEATSEP_RELATIONAL_VALUE_H_
