#include "relational/database.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace featsep {

namespace {
const std::vector<FactIndex>& EmptyIndexList() {
  static const auto& empty = *new std::vector<FactIndex>();
  return empty;
}
}  // namespace

Database::Database(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  FEATSEP_CHECK(schema_ != nullptr);
  facts_by_relation_.resize(schema_->size());
  facts_by_position_.resize(schema_->size());
  for (RelationId r = 0; r < schema_->size(); ++r) {
    facts_by_position_[r].resize(schema_->arity(r));
  }
}

Value Database::Intern(std::string_view name) {
  auto it = values_by_name_.find(std::string(name));
  if (it != values_by_name_.end()) return it->second;
  Value value = static_cast<Value>(value_names_.size());
  value_names_.emplace_back(name);
  values_by_name_.emplace(std::string(name), value);
  facts_by_value_.emplace_back();
  in_domain_.push_back(false);
  return value;
}

Value Database::FindValue(std::string_view name) const {
  auto it = values_by_name_.find(std::string(name));
  return it == values_by_name_.end() ? kNoValue : it->second;
}

const std::string& Database::value_name(Value value) const {
  FEATSEP_CHECK_LT(value, value_names_.size());
  return value_names_[value];
}

bool Database::AddFact(RelationId relation, std::vector<Value> args) {
  FEATSEP_CHECK_LT(relation, schema_->size());
  FEATSEP_CHECK_EQ(args.size(), schema_->arity(relation))
      << "arity mismatch for relation " << schema_->name(relation);
  for (Value v : args) FEATSEP_CHECK_LT(v, value_names_.size());
  Fact fact{relation, std::move(args)};
  if (fact_set_.count(fact) > 0) return false;

  FactIndex index = facts_.size();
  facts_by_relation_[relation].push_back(index);
  for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
    facts_by_position_[relation][pos][fact.args[pos]].push_back(index);
  }
  // facts_by_value_ lists each fact once even if a value repeats.
  std::vector<Value> seen;
  for (Value v : fact.args) {
    if (std::find(seen.begin(), seen.end(), v) == seen.end()) {
      seen.push_back(v);
      facts_by_value_[v].push_back(index);
      in_domain_[v] = true;
    }
  }
  fact_set_.insert(fact);
  facts_.push_back(std::move(fact));
  domain_cache_valid_ = false;
  return true;
}

bool Database::AddFact(std::string_view relation_name,
                       const std::vector<std::string>& arg_names) {
  RelationId relation = schema_->FindRelation(relation_name);
  FEATSEP_CHECK_NE(relation, kNoRelation)
      << "unknown relation: " << relation_name;
  std::vector<Value> args;
  args.reserve(arg_names.size());
  for (const std::string& name : arg_names) args.push_back(Intern(name));
  return AddFact(relation, std::move(args));
}

bool Database::ContainsFact(const Fact& fact) const {
  return fact_set_.count(fact) > 0;
}

const Fact& Database::fact(FactIndex index) const {
  FEATSEP_CHECK_LT(index, facts_.size());
  return facts_[index];
}

const std::vector<FactIndex>& Database::FactsOf(RelationId relation) const {
  FEATSEP_CHECK_LT(relation, facts_by_relation_.size());
  return facts_by_relation_[relation];
}

const std::vector<FactIndex>& Database::FactsContaining(Value value) const {
  FEATSEP_CHECK_LT(value, facts_by_value_.size());
  return facts_by_value_[value];
}

const std::vector<FactIndex>& Database::FactsWith(RelationId relation,
                                                  std::size_t pos,
                                                  Value value) const {
  FEATSEP_CHECK_LT(relation, facts_by_position_.size());
  FEATSEP_CHECK_LT(pos, facts_by_position_[relation].size());
  auto it = facts_by_position_[relation][pos].find(value);
  if (it == facts_by_position_[relation][pos].end()) return EmptyIndexList();
  return it->second;
}

const std::vector<Value>& Database::domain() const {
  if (!domain_cache_valid_) {
    domain_cache_.clear();
    domain_index_cache_.assign(value_names_.size(), kNoDomainIndex);
    for (Value v = 0; v < in_domain_.size(); ++v) {
      if (in_domain_[v]) {
        domain_index_cache_[v] =
            static_cast<std::uint32_t>(domain_cache_.size());
        domain_cache_.push_back(v);
      }
    }
    domain_cache_valid_ = true;
  }
  return domain_cache_;
}

const std::vector<std::uint32_t>& Database::domain_index() const {
  domain();  // Rebuilds both caches when stale.
  return domain_index_cache_;
}

std::uint32_t Database::DomainIndexOf(Value value) const {
  const std::vector<std::uint32_t>& index = domain_index();
  return value < index.size() ? index[value] : kNoDomainIndex;
}

bool Database::InDomain(Value value) const {
  return value < in_domain_.size() && in_domain_[value];
}

std::vector<Value> Database::Entities() const {
  RelationId eta = schema_->entity_relation();
  std::vector<Value> entities;
  for (FactIndex index : FactsOf(eta)) {
    entities.push_back(facts_[index].args[0]);
  }
  return entities;
}

bool Database::IsEntity(Value value) const {
  if (!schema_->has_entity_relation()) return false;
  RelationId eta = schema_->entity_relation();
  return !FactsWith(eta, 0, value).empty();
}

std::shared_ptr<const Schema> MakeSharedSchema(Schema schema) {
  return std::make_shared<const Schema>(std::move(schema));
}

}  // namespace featsep
