#include "relational/database.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace featsep {

namespace {
const std::vector<FactIndex>& EmptyIndexList() {
  static const auto& empty = *new std::vector<FactIndex>();
  return empty;
}
}  // namespace

Database::Database(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  FEATSEP_CHECK(schema_ != nullptr);
  facts_by_relation_.resize(schema_->size());
  facts_by_position_.resize(schema_->size());
  for (RelationId r = 0; r < schema_->size(); ++r) {
    facts_by_position_[r].resize(schema_->arity(r));
  }
}

// The copy/move special members are spelled out because the cache mutex and
// the atomic validity flags are neither copyable nor movable. Copying or
// moving requires exclusive access to both operands (as mutation does), so
// the cache fields can be transferred without holding the mutex.

Database::Database(const Database& other)
    : schema_(other.schema_),
      value_names_(other.value_names_),
      values_by_name_(other.values_by_name_),
      facts_(other.facts_),
      fact_set_(other.fact_set_),
      facts_by_relation_(other.facts_by_relation_),
      facts_by_value_(other.facts_by_value_),
      facts_by_position_(other.facts_by_position_),
      domain_cache_(other.domain_cache_),
      domain_index_cache_(other.domain_index_cache_),
      domain_cache_valid_(other.domain_cache_valid_.load()),
      digest_cache_(other.digest_cache_),
      digest_schema_hash_(other.digest_schema_hash_),
      digest_facts_hash_(other.digest_facts_hash_),
      digest_valid_(other.digest_valid_.load()),
      in_domain_(other.in_domain_) {}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  value_names_ = other.value_names_;
  values_by_name_ = other.values_by_name_;
  facts_ = other.facts_;
  fact_set_ = other.fact_set_;
  facts_by_relation_ = other.facts_by_relation_;
  facts_by_value_ = other.facts_by_value_;
  facts_by_position_ = other.facts_by_position_;
  domain_cache_ = other.domain_cache_;
  domain_index_cache_ = other.domain_index_cache_;
  domain_cache_valid_.store(other.domain_cache_valid_.load());
  digest_cache_ = other.digest_cache_;
  digest_schema_hash_ = other.digest_schema_hash_;
  digest_facts_hash_ = other.digest_facts_hash_;
  digest_valid_.store(other.digest_valid_.load());
  in_domain_ = other.in_domain_;
  return *this;
}

Database::Database(Database&& other) noexcept
    : schema_(std::move(other.schema_)),
      value_names_(std::move(other.value_names_)),
      values_by_name_(std::move(other.values_by_name_)),
      facts_(std::move(other.facts_)),
      fact_set_(std::move(other.fact_set_)),
      facts_by_relation_(std::move(other.facts_by_relation_)),
      facts_by_value_(std::move(other.facts_by_value_)),
      facts_by_position_(std::move(other.facts_by_position_)),
      domain_cache_(std::move(other.domain_cache_)),
      domain_index_cache_(std::move(other.domain_index_cache_)),
      domain_cache_valid_(other.domain_cache_valid_.load()),
      digest_cache_(other.digest_cache_),
      digest_schema_hash_(other.digest_schema_hash_),
      digest_facts_hash_(other.digest_facts_hash_),
      digest_valid_(other.digest_valid_.load()),
      in_domain_(std::move(other.in_domain_)) {
  other.domain_cache_valid_.store(false);
  other.digest_valid_.store(false);
}

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  value_names_ = std::move(other.value_names_);
  values_by_name_ = std::move(other.values_by_name_);
  facts_ = std::move(other.facts_);
  fact_set_ = std::move(other.fact_set_);
  facts_by_relation_ = std::move(other.facts_by_relation_);
  facts_by_value_ = std::move(other.facts_by_value_);
  facts_by_position_ = std::move(other.facts_by_position_);
  domain_cache_ = std::move(other.domain_cache_);
  domain_index_cache_ = std::move(other.domain_index_cache_);
  domain_cache_valid_.store(other.domain_cache_valid_.load());
  digest_cache_ = other.digest_cache_;
  digest_schema_hash_ = other.digest_schema_hash_;
  digest_facts_hash_ = other.digest_facts_hash_;
  digest_valid_.store(other.digest_valid_.load());
  in_domain_ = std::move(other.in_domain_);
  other.domain_cache_valid_.store(false);
  other.digest_valid_.store(false);
  return *this;
}

Value Database::Intern(std::string_view name) {
  auto it = values_by_name_.find(std::string(name));
  if (it != values_by_name_.end()) return it->second;
  Value value = static_cast<Value>(value_names_.size());
  value_names_.emplace_back(name);
  values_by_name_.emplace(std::string(name), value);
  facts_by_value_.emplace_back();
  in_domain_.push_back(false);
  // Keep the domain_index() length invariant (num_values() entries).
  domain_cache_valid_.store(false, std::memory_order_relaxed);
  return value;
}

Value Database::FindValue(std::string_view name) const {
  auto it = values_by_name_.find(std::string(name));
  return it == values_by_name_.end() ? kNoValue : it->second;
}

const std::string& Database::value_name(Value value) const {
  FEATSEP_CHECK_LT(value, value_names_.size());
  return value_names_[value];
}

bool Database::ApplyInsert(RelationId relation, std::vector<Value> args,
                           std::vector<Value>* touched,
                           std::vector<Value>* entered) {
  FEATSEP_CHECK_LT(relation, schema_->size());
  FEATSEP_CHECK_EQ(args.size(), schema_->arity(relation))
      << "arity mismatch for relation " << schema_->name(relation);
  for (Value v : args) FEATSEP_CHECK_LT(v, value_names_.size());
  Fact fact{relation, std::move(args)};
  if (fact_set_.count(fact) > 0) return false;

  FactIndex index = facts_.size();
  facts_by_relation_[relation].push_back(index);
  for (std::size_t pos = 0; pos < fact.args.size(); ++pos) {
    facts_by_position_[relation][pos][fact.args[pos]].push_back(index);
  }
  // facts_by_value_ lists each fact once even if a value repeats.
  std::vector<Value> seen;
  for (Value v : fact.args) {
    if (std::find(seen.begin(), seen.end(), v) == seen.end()) {
      seen.push_back(v);
      if (!in_domain_[v] && entered != nullptr) entered->push_back(v);
      facts_by_value_[v].push_back(index);
      in_domain_[v] = true;
    }
  }
  if (touched != nullptr) *touched = seen;
  fact_set_.insert(fact);
  facts_.push_back(std::move(fact));
  return true;
}

bool Database::AddFact(RelationId relation, std::vector<Value> args) {
  if (!ApplyInsert(relation, std::move(args), nullptr, nullptr)) return false;
  domain_cache_valid_.store(false, std::memory_order_relaxed);
  digest_valid_.store(false, std::memory_order_relaxed);
  return true;
}

bool Database::AddFact(std::string_view relation_name,
                       const std::vector<std::string>& arg_names) {
  RelationId relation = schema_->FindRelation(relation_name);
  FEATSEP_CHECK_NE(relation, kNoRelation)
      << "unknown relation: " << relation_name;
  std::vector<Value> args;
  args.reserve(arg_names.size());
  for (const std::string& name : arg_names) args.push_back(Intern(name));
  return AddFact(relation, std::move(args));
}

Delta Database::InsertFact(RelationId relation, std::vector<Value> args) {
  Delta delta;
  delta.kind = Delta::Kind::kInsert;
  delta.relation = relation;
  delta.args = args;
  // Force the digest memoized so the patch below lands on valid parts; the
  // first mutation on a database pays the one full fold.
  delta.old_digest = ContentDigest();
  delta.new_digest = delta.old_digest;

  const bool domain_was_warm =
      domain_cache_valid_.load(std::memory_order_relaxed);
  std::vector<Value> entered;
  if (!ApplyInsert(relation, std::move(args), &delta.touched, &entered)) {
    delta.touched.clear();  // duplicate fact: a no-op, footprint is empty
    return delta;
  }
  delta.applied = true;
  delta.entity_fact = schema_->has_entity_relation() &&
                      relation == schema_->entity_relation();

  // Digest patch: the facts part is a commutative sum, so one += suffices.
  digest_facts_hash_ += FactContentHash(facts_.back());
  digest_cache_ = ComposeDigest();
  delta.new_digest = digest_cache_;

  // Domain patch: splice newly-domained values into the sorted cache. Only
  // when the cache was warm — a never-built cache stays invalid and is
  // built on demand.
  if (domain_was_warm && !entered.empty()) {
    for (Value v : entered) {
      auto it = std::lower_bound(domain_cache_.begin(), domain_cache_.end(), v);
      domain_cache_.insert(it, v);
    }
    ReindexDomainCache();
  }
  return delta;
}

Delta Database::RemoveFact(RelationId relation,
                           const std::vector<Value>& args) {
  FEATSEP_CHECK_LT(relation, schema_->size());
  FEATSEP_CHECK_EQ(args.size(), schema_->arity(relation))
      << "arity mismatch for relation " << schema_->name(relation);
  for (Value v : args) FEATSEP_CHECK_LT(v, value_names_.size());

  Delta delta;
  delta.kind = Delta::Kind::kRemove;
  delta.relation = relation;
  delta.args = args;
  delta.old_digest = ContentDigest();  // memoize before patching
  delta.new_digest = delta.old_digest;

  Fact fact{relation, args};
  auto set_it = fact_set_.find(fact);
  if (set_it == fact_set_.end()) return delta;  // absent fact: a no-op

  delta.applied = true;
  delta.entity_fact = schema_->has_entity_relation() &&
                      relation == schema_->entity_relation();
  for (Value v : args) {
    if (std::find(delta.touched.begin(), delta.touched.end(), v) ==
        delta.touched.end()) {
      delta.touched.push_back(v);
    }
  }

  const std::uint64_t fact_hash = FactContentHash(fact);
  FactIndex removed = facts_.size();
  for (FactIndex i : facts_by_relation_[relation]) {
    if (facts_[i] == fact) {
      removed = i;
      break;
    }
  }
  FEATSEP_CHECK_LT(removed, facts_.size());

  fact_set_.erase(set_it);
  facts_.erase(facts_.begin() + static_cast<std::ptrdiff_t>(removed));

  // Every index list may reference facts above the removed one, whose
  // FactIndex values all shift down by one; rewrite them all. Linear in
  // total index size — trivial next to the per-entity evaluation work the
  // delta saves downstream.
  auto fix_list = [removed](std::vector<FactIndex>& list) {
    std::size_t out = 0;
    for (FactIndex i : list) {
      if (i == removed) continue;
      list[out++] = i > removed ? i - 1 : i;
    }
    list.resize(out);
  };
  for (std::vector<FactIndex>& list : facts_by_relation_) fix_list(list);
  for (std::vector<FactIndex>& list : facts_by_value_) fix_list(list);
  for (std::vector<PositionIndex>& by_pos : facts_by_position_) {
    for (PositionIndex& index : by_pos) {
      for (auto it = index.begin(); it != index.end();) {
        fix_list(it->second);
        // Drop emptied entries so the map only ever holds live postings.
        it = it->second.empty() ? index.erase(it) : std::next(it);
      }
    }
  }

  // Values whose last fact this was leave dom(D).
  const bool domain_was_warm =
      domain_cache_valid_.load(std::memory_order_relaxed);
  std::vector<Value> left;
  for (Value v : delta.touched) {
    if (facts_by_value_[v].empty() && in_domain_[v]) {
      in_domain_[v] = false;
      left.push_back(v);
    }
  }

  // Digest patch: subtract the removed fact's hash from the commutative sum.
  digest_facts_hash_ -= fact_hash;
  digest_cache_ = ComposeDigest();
  delta.new_digest = digest_cache_;

  // Domain patch: erase leavers from the sorted cache (cache stays warm).
  if (domain_was_warm && !left.empty()) {
    for (Value v : left) {
      auto it = std::lower_bound(domain_cache_.begin(), domain_cache_.end(), v);
      FEATSEP_CHECK(it != domain_cache_.end() && *it == v);
      domain_cache_.erase(it);
    }
    ReindexDomainCache();
  }
  return delta;
}

bool Database::ContainsFact(const Fact& fact) const {
  return fact_set_.count(fact) > 0;
}

const Fact& Database::fact(FactIndex index) const {
  FEATSEP_CHECK_LT(index, facts_.size());
  return facts_[index];
}

const std::vector<FactIndex>& Database::FactsOf(RelationId relation) const {
  FEATSEP_CHECK_LT(relation, facts_by_relation_.size());
  return facts_by_relation_[relation];
}

const std::vector<FactIndex>& Database::FactsContaining(Value value) const {
  FEATSEP_CHECK_LT(value, facts_by_value_.size());
  return facts_by_value_[value];
}

const std::vector<FactIndex>& Database::FactsWith(RelationId relation,
                                                  std::size_t pos,
                                                  Value value) const {
  const PositionIndex& index = PositionIndexOf(relation, pos);
  auto it = index.find(value);
  if (it == index.end()) return EmptyIndexList();
  return it->second;
}

const Database::PositionIndex& Database::PositionIndexOf(
    RelationId relation, std::size_t pos) const {
  FEATSEP_CHECK_LT(relation, facts_by_position_.size());
  FEATSEP_CHECK_LT(pos, facts_by_position_[relation].size());
  return facts_by_position_[relation][pos];
}

const std::vector<Value>& Database::domain() const {
  // Double-checked locking: the release store below pairs with this acquire
  // load, so a reader that observes `true` also observes the built caches;
  // cold concurrent readers serialize on the mutex and build once.
  if (!domain_cache_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (!domain_cache_valid_.load(std::memory_order_relaxed)) {
      domain_cache_.clear();
      domain_index_cache_.assign(value_names_.size(), kNoDomainIndex);
      for (Value v = 0; v < in_domain_.size(); ++v) {
        if (in_domain_[v]) {
          domain_index_cache_[v] =
              static_cast<std::uint32_t>(domain_cache_.size());
          domain_cache_.push_back(v);
        }
      }
      domain_cache_valid_.store(true, std::memory_order_release);
    }
  }
  return domain_cache_;
}

const std::vector<std::uint32_t>& Database::domain_index() const {
  domain();  // Rebuilds both caches when stale.
  return domain_index_cache_;
}

std::uint64_t Database::ContentDigest() const {
  if (!digest_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (!digest_valid_.load(std::memory_order_relaxed)) {
      // Explicit FNV-1a-64 over canonical bytes — the exact format is a
      // persistence contract (DESIGN.md §13) pinned by golden values in
      // DatabaseDigestTest; it must never drift. In particular no part of
      // the computation may touch std::hash, whose output is
      // implementation-defined and differs across standard libraries, so
      // any on-disk or cross-process cache keyed by it would silently
      // never hit.
      //
      // Schema part: relation count, then for each relation in id order
      // its name (length-prefixed) and arity, then the entity designation
      // (id + 1, or 0 when absent). Id order is semantic —
      // Schema::operator== compares it.
      std::uint64_t schema_hash = kFnv64OffsetBasis;
      schema_hash =
          Fnv1a64U64(schema_hash, static_cast<std::uint64_t>(schema_->size()));
      for (RelationId r = 0; r < schema_->size(); ++r) {
        schema_hash = Fnv1a64String(schema_hash, schema_->name(r));
        schema_hash = Fnv1a64U64(
            schema_hash, static_cast<std::uint64_t>(schema_->arity(r)));
      }
      schema_hash = Fnv1a64U64(
          schema_hash,
          schema_->has_entity_relation()
              ? static_cast<std::uint64_t>(schema_->entity_relation()) + 1
              : 0);
      // Fact part: each fact is FNV-1a-64 of its relation id followed by
      // its argument *names* (value ids depend on interning order; names
      // do not), each length-prefixed. Per-fact hashes are combined by
      // wrap-around u64 addition so the digest is insensitive to insertion
      // order; facts are deduplicated, so the sum is over a set. The
      // commutative-sum form is also what makes the digest incrementally
      // maintainable: InsertFact/RemoveFact patch it by adding/subtracting
      // one FactContentHash instead of re-folding the whole database.
      std::uint64_t facts_hash = 0;
      for (const Fact& fact : facts_) {
        facts_hash += FactContentHash(fact);
      }
      digest_schema_hash_ = schema_hash;
      digest_facts_hash_ = facts_hash;
      digest_cache_ = ComposeDigest();
      digest_valid_.store(true, std::memory_order_release);
    }
  }
  return digest_cache_;
}

std::uint64_t Database::FactContentHash(const Fact& fact) const {
  std::uint64_t h = kFnv64OffsetBasis;
  h = Fnv1a64U64(h, static_cast<std::uint64_t>(fact.relation));
  for (Value v : fact.args) {
    h = Fnv1a64String(h, value_names_[v]);
  }
  return h;
}

std::uint64_t Database::ComposeDigest() const {
  std::uint64_t digest = kFnv64OffsetBasis;
  digest = Fnv1a64U64(digest, digest_schema_hash_);
  digest = Fnv1a64U64(digest, digest_facts_hash_);
  digest = Fnv1a64U64(digest, static_cast<std::uint64_t>(facts_.size()));
  return digest;
}

void Database::ReindexDomainCache() const {
  domain_index_cache_.assign(value_names_.size(), kNoDomainIndex);
  for (std::size_t i = 0; i < domain_cache_.size(); ++i) {
    domain_index_cache_[domain_cache_[i]] = static_cast<std::uint32_t>(i);
  }
}

std::uint32_t Database::DomainIndexOf(Value value) const {
  const std::vector<std::uint32_t>& index = domain_index();
  return value < index.size() ? index[value] : kNoDomainIndex;
}

bool Database::InDomain(Value value) const {
  return value < in_domain_.size() && in_domain_[value];
}

std::vector<Value> Database::Entities() const {
  RelationId eta = schema_->entity_relation();
  std::vector<Value> entities;
  for (FactIndex index : FactsOf(eta)) {
    entities.push_back(facts_[index].args[0]);
  }
  return entities;
}

bool Database::IsEntity(Value value) const {
  if (!schema_->has_entity_relation()) return false;
  RelationId eta = schema_->entity_relation();
  return !FactsWith(eta, 0, value).empty();
}

std::shared_ptr<const Schema> MakeSharedSchema(Schema schema) {
  return std::make_shared<const Schema>(std::move(schema));
}

}  // namespace featsep
