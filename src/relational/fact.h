#ifndef FEATSEP_RELATIONAL_FACT_H_
#define FEATSEP_RELATIONAL_FACT_H_

#include <cstddef>
#include <vector>

#include "relational/value.h"
#include "util/hash.h"

namespace featsep {

/// A ground fact R(a₁,…,a_k): a relation symbol id plus its argument tuple.
/// The argument values are interned in the owning Database.
struct Fact {
  RelationId relation = kNoRelation;
  std::vector<Value> args;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.args == b.args;
  }
  friend bool operator!=(const Fact& a, const Fact& b) { return !(a == b); }
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.args < b.args;
  }
};

/// std::hash-compatible functor for facts.
struct FactHash {
  std::size_t operator()(const Fact& fact) const {
    std::size_t seed = fact.relation;
    for (Value v : fact.args) HashCombine(seed, v);
    return seed;
  }
};

/// Index of a fact within a Database (insertion order).
using FactIndex = std::size_t;

}  // namespace featsep

#endif  // FEATSEP_RELATIONAL_FACT_H_
