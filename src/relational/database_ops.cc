#include "relational/database_ops.h"

#include <string>

#include "util/check.h"

namespace featsep {

namespace {

/// Re-interns every value name of `db` in id order, so value ids coincide
/// between `db` and the returned (fact-less) database.
Database EmptyWithSameValues(const Database& db) {
  Database result(db.schema_ptr());
  for (Value v = 0; v < db.num_values(); ++v) {
    Value copy = result.Intern(db.value_name(v));
    FEATSEP_CHECK_EQ(copy, v);
  }
  return result;
}

}  // namespace

Database InducedSubdatabase(const Database& db,
                            const std::unordered_set<Value>& values) {
  Database result = EmptyWithSameValues(db);
  for (const Fact& fact : db.facts()) {
    bool inside = true;
    for (Value v : fact.args) {
      if (values.count(v) == 0) {
        inside = false;
        break;
      }
    }
    if (inside) result.AddFact(fact.relation, fact.args);
  }
  return result;
}

Database MapDatabase(const Database& db, const std::vector<Value>& mapping) {
  Database result = EmptyWithSameValues(db);
  for (const Fact& fact : db.facts()) {
    std::vector<Value> args;
    args.reserve(fact.args.size());
    for (Value v : fact.args) {
      FEATSEP_CHECK_LT(v, mapping.size());
      FEATSEP_CHECK_NE(mapping[v], kNoValue)
          << "MapDatabase: value " << db.value_name(v) << " has no image";
      args.push_back(mapping[v]);
    }
    result.AddFact(fact.relation, std::move(args));
  }
  return result;
}

Database DisjointUnion(const Database& a, const Database& b,
                       const std::string& b_suffix,
                       std::vector<Value>* b_value_map) {
  FEATSEP_CHECK(a.schema() == b.schema())
      << "DisjointUnion requires equal schemas";
  Database result(a.schema_ptr());
  for (Value v = 0; v < a.num_values(); ++v) {
    Value copy = result.Intern(a.value_name(v));
    FEATSEP_CHECK_EQ(copy, v);
  }
  std::vector<Value> b_map(b.num_values(), kNoValue);
  for (Value v = 0; v < b.num_values(); ++v) {
    std::string name = b.value_name(v);
    if (result.FindValue(name) != kNoValue) name += b_suffix;
    // Keep appending the suffix until fresh (handles pathological inputs).
    while (result.FindValue(name) != kNoValue) name += b_suffix;
    b_map[v] = result.Intern(name);
  }
  for (const Fact& fact : a.facts()) {
    result.AddFact(fact.relation, fact.args);
  }
  for (const Fact& fact : b.facts()) {
    std::vector<Value> args;
    args.reserve(fact.args.size());
    for (Value v : fact.args) args.push_back(b_map[v]);
    result.AddFact(fact.relation, std::move(args));
  }
  if (b_value_map != nullptr) *b_value_map = std::move(b_map);
  return result;
}

Database Copy(const Database& db) {
  Database result = EmptyWithSameValues(db);
  for (const Fact& fact : db.facts()) {
    result.AddFact(fact.relation, fact.args);
  }
  return result;
}

}  // namespace featsep
