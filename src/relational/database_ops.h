#ifndef FEATSEP_RELATIONAL_DATABASE_OPS_H_
#define FEATSEP_RELATIONAL_DATABASE_OPS_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "relational/database.h"

namespace featsep {

/// The induced sub-database of `db` on `values`: all facts whose arguments
/// all lie in `values`. All of `db`'s value names are re-interned in id
/// order, so value ids carry over unchanged (values outside `values` simply
/// drop out of the domain).
Database InducedSubdatabase(const Database& db,
                            const std::unordered_set<Value>& values);

/// Applies a value map to every fact: the result contains h(fact) for each
/// fact, where `mapping` is indexed by value id (entries may repeat —
/// non-injective maps fold facts together). Value ids carry over unchanged.
Database MapDatabase(const Database& db, const std::vector<Value>& mapping);

/// Disjoint union of two databases over the same schema; values of `b` are
/// renamed with the given suffix when their names collide with `a`'s.
/// Returns the union database; `b_value_map` (optional) receives, for each
/// value id of `b`, the corresponding value id in the result.
Database DisjointUnion(const Database& a, const Database& b,
                       const std::string& b_suffix,
                       std::vector<Value>* b_value_map = nullptr);

/// Copies `db` (same schema, same value names and ids, same facts).
Database Copy(const Database& db);

}  // namespace featsep

#endif  // FEATSEP_RELATIONAL_DATABASE_OPS_H_
