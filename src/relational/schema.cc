#include "relational/schema.h"

#include <algorithm>

#include "util/check.h"

namespace featsep {

RelationId Schema::AddRelation(std::string name, std::size_t arity) {
  FEATSEP_CHECK_GT(arity, 0u) << "relation arity must be positive";
  FEATSEP_CHECK(by_name_.find(name) == by_name_.end())
      << "duplicate relation name: " << name;
  RelationId id = static_cast<RelationId>(relations_.size());
  by_name_.emplace(name, id);
  relations_.push_back(Relation{std::move(name), arity});
  return id;
}

RelationId Schema::FindRelation(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoRelation : it->second;
}

const std::string& Schema::name(RelationId id) const {
  FEATSEP_CHECK_LT(id, relations_.size());
  return relations_[id].name;
}

std::size_t Schema::arity(RelationId id) const {
  FEATSEP_CHECK_LT(id, relations_.size());
  return relations_[id].arity;
}

std::size_t Schema::max_arity() const {
  std::size_t result = 0;
  for (const Relation& r : relations_) result = std::max(result, r.arity);
  return result;
}

void Schema::set_entity_relation(RelationId id) {
  FEATSEP_CHECK_LT(id, relations_.size());
  FEATSEP_CHECK_EQ(relations_[id].arity, 1u)
      << "entity relation must be unary";
  entity_relation_ = id;
}

RelationId Schema::entity_relation() const {
  FEATSEP_CHECK(has_entity_relation())
      << "schema has no designated entity relation";
  return entity_relation_;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.relations_.size() != b.relations_.size()) return false;
  for (std::size_t i = 0; i < a.relations_.size(); ++i) {
    if (a.relations_[i].name != b.relations_[i].name ||
        a.relations_[i].arity != b.relations_[i].arity) {
      return false;
    }
  }
  return a.entity_relation_ == b.entity_relation_;
}

}  // namespace featsep
