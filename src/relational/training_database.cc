#include "relational/training_database.h"

#include "util/check.h"

namespace featsep {

void Labeling::Set(Value entity, Label label) {
  FEATSEP_CHECK(label == kPositive || label == kNegative)
      << "label must be +1 or -1, got " << label;
  labels_[entity] = label;
}

Label Labeling::Get(Value entity) const {
  auto it = labels_.find(entity);
  FEATSEP_CHECK(it != labels_.end())
      << "no label assigned to entity " << entity;
  return it->second;
}

std::vector<std::pair<Value, Label>> Labeling::Items() const {
  return std::vector<std::pair<Value, Label>>(labels_.begin(), labels_.end());
}

std::size_t Labeling::Disagreement(const Labeling& other) const {
  std::size_t count = 0;
  for (const auto& [entity, label] : labels_) {
    if (!other.Has(entity) || other.Get(entity) != label) ++count;
  }
  return count;
}

TrainingDatabase::TrainingDatabase(std::shared_ptr<Database> database)
    : database_(std::move(database)) {
  FEATSEP_CHECK(database_ != nullptr);
  FEATSEP_CHECK(database_->schema().has_entity_relation())
      << "training databases require an entity schema";
}

void TrainingDatabase::SetLabel(Value entity, Label label) {
  FEATSEP_CHECK(database_->IsEntity(entity))
      << "labeled value " << entity << " is not an entity";
  labeling_.Set(entity, label);
}

bool TrainingDatabase::IsFullyLabeled() const {
  for (Value e : database_->Entities()) {
    if (!labeling_.Has(e)) return false;
  }
  return true;
}

std::vector<Value> TrainingDatabase::PositiveExamples() const {
  std::vector<Value> result;
  for (Value e : database_->Entities()) {
    if (labeling_.Has(e) && labeling_.Get(e) == kPositive) {
      result.push_back(e);
    }
  }
  return result;
}

std::vector<Value> TrainingDatabase::NegativeExamples() const {
  std::vector<Value> result;
  for (Value e : database_->Entities()) {
    if (labeling_.Has(e) && labeling_.Get(e) == kNegative) {
      result.push_back(e);
    }
  }
  return result;
}

}  // namespace featsep
