#ifndef FEATSEP_RELATIONAL_SCHEMA_H_
#define FEATSEP_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace featsep {

/// A relational schema: a finite set of relation symbols with arities.
///
/// Entity schemas (paper, Section 3) are schemas with a distinguished unary
/// relation symbol η used to mark the entities to be classified; call
/// `set_entity_relation` to designate it. The conventional name is "Eta" but
/// any unary relation may serve.
class Schema {
 public:
  Schema() = default;

  /// Adds a relation symbol. The name must be fresh and arity positive.
  RelationId AddRelation(std::string name, std::size_t arity);

  /// Looks up a relation by name; returns kNoRelation if absent.
  RelationId FindRelation(std::string_view name) const;

  /// Number of relation symbols.
  std::size_t size() const { return relations_.size(); }

  const std::string& name(RelationId id) const;
  std::size_t arity(RelationId id) const;

  /// Largest arity over all relation symbols (0 for the empty schema).
  std::size_t max_arity() const;

  /// Designates `id` (which must be unary) as the entity symbol η, making
  /// this an entity schema.
  void set_entity_relation(RelationId id);

  /// True if an entity symbol has been designated.
  bool has_entity_relation() const { return entity_relation_ != kNoRelation; }

  /// The entity symbol η; checked programmer error if not designated.
  RelationId entity_relation() const;

  /// True if the two schemas have the same relation names, arities (in the
  /// same id order), and entity designation.
  friend bool operator==(const Schema& a, const Schema& b);

 private:
  struct Relation {
    std::string name;
    std::size_t arity;
  };

  std::vector<Relation> relations_;
  std::unordered_map<std::string, RelationId> by_name_;
  RelationId entity_relation_ = kNoRelation;
};

}  // namespace featsep

#endif  // FEATSEP_RELATIONAL_SCHEMA_H_
