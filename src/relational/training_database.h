#ifndef FEATSEP_RELATIONAL_TRAINING_DATABASE_H_
#define FEATSEP_RELATIONAL_TRAINING_DATABASE_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relational/database.h"
#include "relational/value.h"

namespace featsep {

/// A labeling λ : η(D) → {1, -1} partitioning the entities of a database
/// into positive and negative examples (paper, Section 3).
class Labeling {
 public:
  Labeling() = default;

  /// Sets λ(entity) = label; label must be ±1.
  void Set(Value entity, Label label);

  /// True if a label has been assigned to `entity`.
  bool Has(Value entity) const { return labels_.count(entity) > 0; }

  /// λ(entity); checked programmer error if unassigned.
  Label Get(Value entity) const;

  std::size_t size() const { return labels_.size(); }

  /// All (entity, label) pairs in unspecified order.
  std::vector<std::pair<Value, Label>> Items() const;

  /// Number of entities on which this labeling and `other` disagree
  /// (both must be defined on the same entities for the count to be
  /// meaningful; entities missing from `other` count as disagreements).
  std::size_t Disagreement(const Labeling& other) const;

 private:
  std::unordered_map<Value, Label> labels_;
};

/// A training database (D, λ): a database over an entity schema together
/// with a labeling of its entities (paper, Section 3).
class TrainingDatabase {
 public:
  /// Takes shared ownership of the database. The labeling may be completed
  /// afterwards via `SetLabel`.
  explicit TrainingDatabase(std::shared_ptr<Database> database);

  const Database& database() const { return *database_; }
  Database& mutable_database() { return *database_; }
  const std::shared_ptr<Database>& database_ptr() const { return database_; }

  void SetLabel(Value entity, Label label);

  const Labeling& labeling() const { return labeling_; }
  Label label(Value entity) const { return labeling_.Get(entity); }

  /// True if every entity of the database has a label.
  bool IsFullyLabeled() const;

  /// Entities with λ(e) = +1 / -1.
  std::vector<Value> PositiveExamples() const;
  std::vector<Value> NegativeExamples() const;

  /// η(D).
  std::vector<Value> Entities() const { return database_->Entities(); }

 private:
  std::shared_ptr<Database> database_;
  Labeling labeling_;
};

}  // namespace featsep

#endif  // FEATSEP_RELATIONAL_TRAINING_DATABASE_H_
