#ifndef FEATSEP_RELATIONAL_DATABASE_H_
#define FEATSEP_RELATIONAL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/fact.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace featsep {

/// The structured result of one mutation (Database::InsertFact /
/// Database::RemoveFact): what changed, which values it touched, and the
/// content digests on either side of the change. This is the unit the
/// incremental serve layer (serve/incremental.h) consumes to invalidate or
/// patch exactly the cached state the mutation can affect (DESIGN.md §14).
struct Delta {
  enum class Kind { kInsert, kRemove };

  Kind kind = Kind::kInsert;
  /// False for no-ops — inserting a fact already present, or removing one
  /// that never was. A no-op delta changed no state: `old_digest ==
  /// new_digest` and `touched` is empty.
  bool applied = false;
  RelationId relation = kNoRelation;
  /// The fact's argument tuple (valid whether or not the mutation applied).
  std::vector<Value> args;
  /// The distinct argument values — the delta's footprint, seed set of the
  /// neighborhood screen in serve/incremental.h. Empty for no-ops.
  std::vector<Value> touched;
  /// True when the fact is an entity fact η(e): the entity set η(D) itself
  /// changed, not just some entity's neighborhood.
  bool entity_fact = false;
  /// Database::ContentDigest() before and after the mutation. Equal for
  /// no-ops. Mutations through this API keep the digest memoized, patched
  /// incrementally (see ContentDigest()).
  std::uint64_t old_digest = 0;
  std::uint64_t new_digest = 0;
};

/// A finite set of facts over a schema (paper, Section 2), together with a
/// symbol table interning the constant names and the secondary indexes used
/// by the homomorphism engine and the cover-game solver:
///   - facts by relation,
///   - facts by contained value,
///   - facts by (relation, argument position, value).
/// Fact insertion is deduplicating (a database is a *set* of facts).
///
/// Thread safety: mutation (Intern, AddFact, InsertFact, RemoveFact) and
/// copying/moving require exclusive access, like a standard container. All
/// const accessors — including the lazily built `domain()`,
/// `domain_index()`, and `ContentDigest()` caches — are safe to call
/// concurrently from any number of threads with no warm-up step: lazy
/// construction is internally synchronized (double-checked locking on a
/// per-database mutex).
///
/// Mutation contract (pinned by DatabaseMutationContractTest under tsan):
/// mutating while ANY other thread reads the database — or dereferences a
/// reference previously returned by an accessor — is a data race and a
/// programmer error; the mutators patch the memoized caches in place, so a
/// concurrently held `domain()`/`domain_index()` reference observes the
/// write. The safe pattern is epoch-style: readers (any number of threads)
/// finish and establish a happens-before edge to the mutator (e.g. a join
/// or a task-queue handoff), the mutator applies InsertFact/RemoveFact
/// exclusively, then readers resume — re-fetching references, never reusing
/// pre-mutation ones. Caches stay warm across the epoch boundary: the
/// mutators patch rather than drop them whenever possible.
class Database {
 public:
  explicit Database(std::shared_ptr<const Schema> schema);

  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }

  /// Interns a constant name, creating it if absent. Interned values need
  /// not occur in any fact; the paper's dom(D) is `domain()` below.
  Value Intern(std::string_view name);

  /// Looks up a constant by name; kNoValue if never interned.
  Value FindValue(std::string_view name) const;

  /// The name a value was interned under.
  const std::string& value_name(Value value) const;

  /// Number of interned constants (an upper bound on |dom(D)|).
  std::size_t num_values() const { return value_names_.size(); }

  /// Adds fact relation(args); returns true if the fact is new. The argument
  /// count must match the relation's arity.
  bool AddFact(RelationId relation, std::vector<Value> args);

  /// Convenience: interns names and adds the fact; the relation is looked up
  /// by name and must exist in the schema.
  bool AddFact(std::string_view relation_name,
               const std::vector<std::string>& arg_names);

  /// Mutation API for delta maintenance (DESIGN.md §14). Semantically
  /// InsertFact is AddFact; both return a structured Delta describing the
  /// change, and both *force* the content digest to be memoized so it can
  /// be patched incrementally: the first mutation on a database pays one
  /// full digest pass, every further one costs O(fact) digest work. The
  /// memoized domain()/domain_index() caches are likewise patched in place
  /// when they are warm (insertion into / deletion from the sorted domain),
  /// or left invalid when they never were built.
  Delta InsertFact(RelationId relation, std::vector<Value> args);

  /// Removes the fact if present (no-op delta otherwise). Remaining facts
  /// keep their relative order — FactIndex values above the removed fact
  /// shift down by one, and every secondary index is rewritten accordingly,
  /// so Entities() order stays the insertion order of the surviving η
  /// facts. Cost is linear in the total index size (|D| · arity), far below
  /// the NP-hard per-entity evaluation the delta saves downstream.
  Delta RemoveFact(RelationId relation, const std::vector<Value>& args);

  bool ContainsFact(const Fact& fact) const;

  /// All facts in insertion order.
  const std::vector<Fact>& facts() const { return facts_; }

  /// |D|: the number of facts.
  std::size_t size() const { return facts_.size(); }

  const Fact& fact(FactIndex index) const;

  /// Indexes of all facts of `relation`.
  const std::vector<FactIndex>& FactsOf(RelationId relation) const;

  /// Indexes of all facts in which `value` occurs (each fact listed once).
  const std::vector<FactIndex>& FactsContaining(Value value) const;

  /// Indexes of facts of `relation` with `value` at argument position `pos`.
  const std::vector<FactIndex>& FactsWith(RelationId relation,
                                          std::size_t pos, Value value) const;

  /// The index FactsWith consults for one (relation, pos): value -> indexes
  /// of facts of `relation` carrying it at `pos`. Exposed so hot callers
  /// (e.g., homomorphism pivot selection) can cache the map pointer at setup
  /// and skip the relation/pos navigation on every probe.
  using PositionIndex = std::unordered_map<Value, std::vector<FactIndex>>;
  const PositionIndex& PositionIndexOf(RelationId relation,
                                       std::size_t pos) const;

  /// dom(D): the values occurring in facts, in increasing value order.
  const std::vector<Value>& domain() const;

  /// Sentinel for "not a domain position".
  static constexpr std::uint32_t kNoDomainIndex =
      static_cast<std::uint32_t>(-1);

  /// Dense value index: maps every interned value to its position in
  /// domain(), or kNoDomainIndex for values outside dom(D). Indexed by value
  /// id; the vector has num_values() entries. This is the bridge between
  /// Value ids and the 0..|dom(D)|-1 universe the bitset-domain homomorphism
  /// engine operates over. Like domain(), built lazily and safe to hit cold
  /// from concurrent readers.
  const std::vector<std::uint32_t>& domain_index() const;

  /// Content digest: explicit FNV-1a-64 over canonical bytes of the schema
  /// and the *set* of facts, insensitive to fact insertion order and to
  /// value interning order (facts are hashed by relation and argument
  /// names, then combined commutatively). Two databases with equal schemas
  /// and equal fact sets — up to constant names — digest equally regardless
  /// of construction order; interned-but-unused constants do not
  /// contribute. The value is *stable across processes, platforms, and
  /// standard libraries* (no std::hash anywhere in its computation; golden
  /// values are pinned in DatabaseDigestTest and the format is specified in
  /// DESIGN.md §13), so it keys the persistent on-disk result cache and the
  /// multi-process shard protocol as well as the in-memory serve cache
  /// (serve/eval_service.h, serve/disk_cache.h). Memoized thread-safely.
  std::uint64_t ContentDigest() const;

  /// Position of `value` in domain(), or kNoDomainIndex if absent.
  std::uint32_t DomainIndexOf(Value value) const;

  /// True if `value` occurs in some fact.
  bool InDomain(Value value) const;

  /// η(D): the entities, i.e., values e with η(e) ∈ D, in insertion order of
  /// the η facts. Requires the schema to designate an entity relation.
  std::vector<Value> Entities() const;

  /// True if η(value) ∈ D.
  bool IsEntity(Value value) const;

 private:
  // Core insertion shared by AddFact and InsertFact: dedups, appends to all
  // indexes, updates in_domain_. Does NOT touch the lazy-cache validity
  // flags — callers decide between invalidating (AddFact) and patching
  // (InsertFact). Records the distinct argument values in `touched` and the
  // values that newly entered dom(D) in `entered` when non-null.
  bool ApplyInsert(RelationId relation, std::vector<Value> args,
                   std::vector<Value>* touched, std::vector<Value>* entered);

  // The per-fact FNV-1a-64 hash folded (by wraparound addition) into the
  // facts part of ContentDigest().
  std::uint64_t FactContentHash(const Fact& fact) const;

  // Recombines the memoized digest parts with the current fact count.
  // Requires digest_schema_hash_/digest_facts_hash_ to be populated (i.e.
  // ContentDigest() ran at least once and mutations kept them patched).
  std::uint64_t ComposeDigest() const;

  // Rebuilds domain_index_cache_ from domain_cache_ after a sorted
  // insert/erase patch (O(num_values), vs. re-deriving domain_cache_ from
  // scratch which the DCL slow path does).
  void ReindexDomainCache() const;

  std::shared_ptr<const Schema> schema_;

  std::vector<std::string> value_names_;
  std::unordered_map<std::string, Value> values_by_name_;

  std::vector<Fact> facts_;
  std::unordered_set<Fact, FactHash> fact_set_;

  std::vector<std::vector<FactIndex>> facts_by_relation_;
  std::vector<std::vector<FactIndex>> facts_by_value_;
  // Keyed by (relation, pos) -> value -> fact indexes.
  std::vector<std::vector<PositionIndex>> facts_by_position_;

  // Lazily built caches, guarded by `cache_mutex_` under double-checked
  // locking: the `*_valid_` flag is read with acquire ordering outside the
  // mutex and published with release ordering after the cache is built, so
  // cold concurrent readers are safe. Mutators reset the flags (they
  // already require exclusive access).
  mutable std::mutex cache_mutex_;
  mutable std::vector<Value> domain_cache_;
  mutable std::vector<std::uint32_t> domain_index_cache_;
  mutable std::atomic<bool> domain_cache_valid_{false};
  mutable std::uint64_t digest_cache_ = 0;
  // The two components ContentDigest() is composed from, memoized alongside
  // it so the mutation API can patch the digest in O(fact): the schema part
  // is immutable, the facts part is a wraparound sum of per-fact hashes, so
  // insert/remove is += / -= of FactContentHash. Meaningful only while
  // digest_valid_ is true.
  mutable std::uint64_t digest_schema_hash_ = 0;
  mutable std::uint64_t digest_facts_hash_ = 0;
  mutable std::atomic<bool> digest_valid_{false};
  std::vector<bool> in_domain_;
};

/// Builds a database over a fresh single-use schema copy that shares
/// relation ids with `schema`. (Helper for tests and generators that want a
/// value-identical schema object they can own.)
std::shared_ptr<const Schema> MakeSharedSchema(Schema schema);

}  // namespace featsep

#endif  // FEATSEP_RELATIONAL_DATABASE_H_
