#ifndef FEATSEP_HYPERTREE_GHW_H_
#define FEATSEP_HYPERTREE_GHW_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "cq/cq.h"
#include "hypertree/decomposition.h"
#include "hypertree/hypergraph.h"
#include "util/budget.h"

namespace featsep {

/// Options for the ghw decision procedure.
struct GhwOptions {
  /// Upper bound on the candidate bag family size; the procedure CHECK-fails
  /// beyond it (deciding ghw ≤ k is NP-hard for fixed k ≥ 2 — Gottlob et
  /// al. — so blowup on large inputs is inherent; this guard makes it loud).
  std::size_t max_bags = 2000000;
  /// Cooperative budget (nullptr = unbounded), charged per enumerated bag
  /// candidate and per bag tried in the subproblem search. Only
  /// TryDecideGhwAtMost tolerates interruption; the unbudgeted entry points
  /// CHECK-fail if a budget trips mid-decision.
  ExecutionBudget* budget = nullptr;
};

/// Outcome of a budgeted ghw decision.
struct GhwDecision {
  /// kCompleted: `decomposition` is definitive (nullopt = ghw > k).
  /// Otherwise the search was interrupted and the question is UNDECIDED.
  BudgetOutcome outcome = BudgetOutcome::kCompleted;
  std::optional<TreeDecomposition> decomposition;
};

/// Budgeted variant of DecideGhwAtMost: an interrupted search reports the
/// budget outcome instead of an answer.
GhwDecision TryDecideGhwAtMost(const Hypergraph& graph, std::size_t k,
                               const GhwOptions& options = {});

/// Decides whether ghw(graph) ≤ k and, if so, returns a witness tree
/// decomposition of width ≤ k (validated by ValidateDecomposition).
///
/// Algorithm: detkdecomp-style recursive decomposition over edge components
/// with memoization on (component, connector) pairs. Completeness for
/// *generalized* hypertree width is obtained by drawing bags from the full
/// family of subsets of unions of ≤ k edges (the subedge-closure that plain
/// det-k-decomp lacks), which keeps the procedure exact at exponential
/// worst-case cost — appropriate for query-sized hypergraphs.
std::optional<TreeDecomposition> DecideGhwAtMost(
    const Hypergraph& graph, std::size_t k, const GhwOptions& options = {});

/// The exact generalized hypertree width: the least k with ghw(graph) ≤ k
/// (0 for hypergraphs with no nonempty edge).
std::size_t Ghw(const Hypergraph& graph, const GhwOptions& options = {});

/// Builds the hypergraph of a CQ per the paper's Section 5 definition:
/// vertices are the existentially quantified variables, edges are the atom
/// variable sets restricted to those. If `vertex_to_variable` is non-null it
/// receives, for each hypergraph vertex, the corresponding query variable.
Hypergraph QueryHypergraph(const ConjunctiveQuery& query,
                           std::vector<Variable>* vertex_to_variable = nullptr);

/// ghw of a CQ.
std::size_t QueryGhw(const ConjunctiveQuery& query,
                     const GhwOptions& options = {});

/// True iff the CQ belongs to GHW(k).
bool IsInGhw(const ConjunctiveQuery& query, std::size_t k,
             const GhwOptions& options = {});

}  // namespace featsep

#endif  // FEATSEP_HYPERTREE_GHW_H_
