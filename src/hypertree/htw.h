#ifndef FEATSEP_HYPERTREE_HTW_H_
#define FEATSEP_HYPERTREE_HTW_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "hypertree/hypergraph.h"

namespace featsep {

/// A hypertree decomposition (Gottlob–Leone–Scarcello [13]): a rooted tree
/// whose nodes carry a bag χ(t) and an edge label λ(t) with
///   (1)  every edge covered by some bag,
///   (2)  connectedness of every vertex's occurrence set,
///   (3)  χ(t) ⊆ ⋃λ(t) and |λ(t)| ≤ k,
///   (4)  the special condition: ⋃λ(t) ∩ χ(T_t) ⊆ χ(t), where χ(T_t) is
///        the union of the bags in the subtree rooted at t.
/// Hypertree width (htw) relates to the paper's generalized hypertree
/// width by ghw ≤ htw ≤ 3·ghw + 1; unlike ghw ≤ k (NP-hard for fixed
/// k ≥ 2), htw ≤ k is decidable in polynomial time — this is the
/// det-k-decomp algorithm, the classical tool for width-bounded query
/// evaluation that GHW(k) feature classes build on.
struct HypertreeDecomposition {
  struct Node {
    std::vector<HVertex> bag;      // χ(t), sorted.
    std::vector<HEdge> lambda;     // λ(t), sorted.
    std::vector<std::size_t> children;
  };
  std::vector<Node> nodes;
  std::size_t root = 0;

  bool empty() const { return nodes.empty(); }
};

/// Decides htw(graph) ≤ k via det-k-decomp (recursive edge-component
/// decomposition with memoization, bags in the normal form
/// χ = ⋃λ ∩ (connector ∪ vars(component))). Returns a witness on success.
std::optional<HypertreeDecomposition> DecideHtwAtMost(const Hypergraph& graph,
                                                      std::size_t k);

/// The exact hypertree width (0 for hypergraphs with no nonempty edge).
std::size_t Htw(const Hypergraph& graph);

/// Verifies all four conditions above for width ≤ k.
bool ValidateHypertreeDecomposition(const Hypergraph& graph,
                                    const HypertreeDecomposition& htd,
                                    std::size_t k,
                                    std::string* error = nullptr);

}  // namespace featsep

#endif  // FEATSEP_HYPERTREE_HTW_H_
