#include "hypertree/hypergraph.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace featsep {

HVertex Hypergraph::AddVertex() {
  incident_.resize(std::max(incident_.size(), num_vertices_ + 1));
  return num_vertices_++;
}

HEdge Hypergraph::AddEdge(std::vector<HVertex> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  for (HVertex v : vertices) {
    FEATSEP_CHECK_LT(v, num_vertices_) << "edge uses unknown vertex";
  }
  HEdge e = edges_.size();
  incident_.resize(std::max(incident_.size(), num_vertices_));
  for (HVertex v : vertices) incident_[v].push_back(e);
  edges_.push_back(std::move(vertices));
  return e;
}

const std::vector<HVertex>& Hypergraph::edge(HEdge e) const {
  FEATSEP_CHECK_LT(e, edges_.size());
  return edges_[e];
}

const std::vector<HEdge>& Hypergraph::IncidentEdges(HVertex v) const {
  FEATSEP_CHECK_LT(v, num_vertices_);
  static const auto& empty = *new std::vector<HEdge>();
  if (v >= incident_.size()) return empty;
  return incident_[v];
}

std::vector<std::vector<HEdge>> Hypergraph::EdgeComponents(
    const std::vector<HEdge>& edge_subset,
    const std::vector<HVertex>& separator) const {
  // Union-find over the edges of `edge_subset`, merging through shared
  // vertices not in `separator`.
  std::vector<std::size_t> parent(edge_subset.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    parent[find(a)] = find(b);
  };

  // vertex -> index of first subset edge seen containing it.
  std::vector<std::size_t> first_edge(num_vertices_,
                                      static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < edge_subset.size(); ++i) {
    for (HVertex v : edges_[edge_subset[i]]) {
      if (std::binary_search(separator.begin(), separator.end(), v)) {
        continue;
      }
      if (first_edge[v] == static_cast<std::size_t>(-1)) {
        first_edge[v] = i;
      } else {
        unite(first_edge[v], i);
      }
    }
  }

  std::vector<std::vector<HEdge>> components;
  std::vector<std::size_t> component_of(edge_subset.size(),
                                        static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < edge_subset.size(); ++i) {
    std::size_t root = find(i);
    if (component_of[root] == static_cast<std::size_t>(-1)) {
      component_of[root] = components.size();
      components.emplace_back();
    }
    components[component_of[root]].push_back(edge_subset[i]);
  }
  for (std::vector<HEdge>& component : components) {
    std::sort(component.begin(), component.end());
  }
  return components;
}

std::vector<HVertex> Hypergraph::VerticesOf(
    const std::vector<HEdge>& edges) const {
  std::vector<HVertex> vertices;
  for (HEdge e : edges) {
    const std::vector<HVertex>& vs = edge(e);
    vertices.insert(vertices.end(), vs.begin(), vs.end());
  }
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  return vertices;
}

std::size_t Hypergraph::EdgeCoverNumber(
    const std::vector<HVertex>& vertices) const {
  // Exact set cover by branch and bound on the uncovered vertex with the
  // fewest covering edges.
  std::vector<HVertex> todo = vertices;
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());

  std::size_t best = edges_.size() + 1;
  auto recurse = [&](auto&& self, std::vector<HVertex> uncovered,
                     std::size_t used) -> void {
    if (used >= best) return;
    if (uncovered.empty()) {
      best = used;
      return;
    }
    HVertex pivot = uncovered.front();
    std::size_t fewest = static_cast<std::size_t>(-1);
    for (HVertex v : uncovered) {
      if (IncidentEdges(v).size() < fewest) {
        fewest = IncidentEdges(v).size();
        pivot = v;
      }
    }
    for (HEdge e : IncidentEdges(pivot)) {
      std::vector<HVertex> rest;
      rest.reserve(uncovered.size());
      for (HVertex v : uncovered) {
        if (!std::binary_search(edges_[e].begin(), edges_[e].end(), v)) {
          rest.push_back(v);
        }
      }
      self(self, std::move(rest), used + 1);
    }
  };
  recurse(recurse, std::move(todo), 0);
  return best;
}

std::optional<std::vector<HEdge>> Hypergraph::FindMinimumEdgeCover(
    const std::vector<HVertex>& vertices) const {
  std::vector<HVertex> todo = vertices;
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());

  std::optional<std::vector<HEdge>> best;
  std::vector<HEdge> chosen;
  auto recurse = [&](auto&& self, std::vector<HVertex> uncovered) -> void {
    if (best.has_value() && chosen.size() >= best->size()) return;
    if (uncovered.empty()) {
      best = chosen;
      return;
    }
    HVertex pivot = uncovered.front();
    std::size_t fewest = static_cast<std::size_t>(-1);
    for (HVertex v : uncovered) {
      if (IncidentEdges(v).size() < fewest) {
        fewest = IncidentEdges(v).size();
        pivot = v;
      }
    }
    for (HEdge e : IncidentEdges(pivot)) {
      std::vector<HVertex> rest;
      rest.reserve(uncovered.size());
      for (HVertex v : uncovered) {
        if (!std::binary_search(edges_[e].begin(), edges_[e].end(), v)) {
          rest.push_back(v);
        }
      }
      chosen.push_back(e);
      self(self, std::move(rest));
      chosen.pop_back();
    }
  };
  recurse(recurse, std::move(todo));
  return best;
}

std::string Hypergraph::ToString() const {
  std::ostringstream out;
  out << "Hypergraph(" << num_vertices_ << " vertices; edges:";
  for (const std::vector<HVertex>& edge : edges_) {
    out << " {";
    for (std::size_t i = 0; i < edge.size(); ++i) {
      if (i > 0) out << ",";
      out << edge[i];
    }
    out << "}";
  }
  out << ")";
  return out.str();
}

}  // namespace featsep
