#ifndef FEATSEP_HYPERTREE_HYPERGRAPH_H_
#define FEATSEP_HYPERTREE_HYPERGRAPH_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace featsep {

/// Vertex of a hypergraph (dense index).
using HVertex = std::size_t;
/// Edge index within a hypergraph.
using HEdge = std::size_t;

/// A finite hypergraph: vertices 0..n-1 and a list of hyperedges, each a
/// sorted set of vertices. This is the combinatorial object underlying
/// generalized hypertree width (paper, Section 5): for a CQ q, vertices are
/// its existentially quantified variables and edges are the variable sets of
/// its atoms (restricted to existential variables, per the Chen–Dalmau
/// definition of coverwidth that the paper adopts).
class Hypergraph {
 public:
  explicit Hypergraph(std::size_t num_vertices = 0)
      : num_vertices_(num_vertices) {}

  std::size_t num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Appends a vertex, returning its index.
  HVertex AddVertex();

  /// Adds a hyperedge (vertices are deduplicated and sorted). Empty edges
  /// are allowed but carry no constraint. Returns the edge index.
  HEdge AddEdge(std::vector<HVertex> vertices);

  /// The sorted vertex set of edge `e`.
  const std::vector<HVertex>& edge(HEdge e) const;

  /// Edges incident to vertex `v`.
  const std::vector<HEdge>& IncidentEdges(HVertex v) const;

  /// Partitions `edge_subset` into connected components, where two edges
  /// are adjacent if they share a vertex outside `separator`. Each
  /// component is a sorted list of edge indices.
  std::vector<std::vector<HEdge>> EdgeComponents(
      const std::vector<HEdge>& edge_subset,
      const std::vector<HVertex>& separator) const;

  /// The sorted union of the vertex sets of `edges`.
  std::vector<HVertex> VerticesOf(const std::vector<HEdge>& edges) const;

  /// Minimum number of edges needed to cover `vertices`, computed exactly
  /// by branch-and-bound (set cover; exponential worst case — fine for
  /// query-sized hypergraphs). Returns num_edges()+1 if not coverable.
  std::size_t EdgeCoverNumber(const std::vector<HVertex>& vertices) const;

  /// A minimum edge cover of `vertices` (empty for the empty set); nullopt
  /// if some vertex lies in no edge. Same search as EdgeCoverNumber.
  std::optional<std::vector<HEdge>> FindMinimumEdgeCover(
      const std::vector<HVertex>& vertices) const;

  std::string ToString() const;

 private:
  std::size_t num_vertices_ = 0;
  std::vector<std::vector<HVertex>> edges_;
  std::vector<std::vector<HEdge>> incident_;
};

}  // namespace featsep

#endif  // FEATSEP_HYPERTREE_HYPERGRAPH_H_
