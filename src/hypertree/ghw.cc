#include "hypertree/ghw.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "testing/coverage.h"
#include "testing/faults.h"
#include "util/budget.h"
#include "util/check.h"
#include "util/hash.h"

namespace featsep {

namespace {

/// Key of a (component, connector) subproblem for memoization.
struct SubproblemKey {
  std::vector<HEdge> component;   // Sorted.
  std::vector<HVertex> connector;  // Sorted.

  friend bool operator==(const SubproblemKey& a, const SubproblemKey& b) {
    return a.component == b.component && a.connector == b.connector;
  }
};

struct SubproblemKeyHash {
  std::size_t operator()(const SubproblemKey& key) const {
    std::size_t seed = HashRange(key.component.begin(), key.component.end());
    HashCombine(seed,
                HashRange(key.connector.begin(), key.connector.end()));
    return seed;
  }
};

/// The decision engine for one (graph, k) instance.
class GhwSearch {
 public:
  GhwSearch(const Hypergraph& graph, std::size_t k, const GhwOptions& options)
      : graph_(graph), k_(k), budget_(options.budget) {
    EnumerateBags(options);
  }

  std::optional<TreeDecomposition> Run();

  bool interrupted() const { return interrupted_; }

 private:
  /// Result of a solved subproblem: the chosen bag and child subproblems,
  /// or nullopt if unsolvable.
  struct Choice {
    std::vector<HVertex> bag;
    std::vector<SubproblemKey> children;
  };

  void EnumerateBags(const GhwOptions& options);
  bool Solve(const SubproblemKey& key);
  /// Appends the decomposition subtree for a solved subproblem to `td`,
  /// returning the index of its root node.
  std::size_t Emit(const SubproblemKey& key, TreeDecomposition* td) const;

  const Hypergraph& graph_;
  std::size_t k_;
  ExecutionBudget* budget_;
  /// Once set, any "unsolvable" answer below is tainted and the whole run
  /// must be reported as undecided (the memo may hold in-flight nullopts).
  bool interrupted_ = false;
  std::vector<std::vector<HVertex>> bags_;  // Sorted vertex sets; deduped.
  std::unordered_map<SubproblemKey, std::optional<Choice>, SubproblemKeyHash>
      memo_;
};

void GhwSearch::EnumerateBags(const GhwOptions& options) {
  // All subsets of unions of at most k edges. Any such subset has edge
  // cover number ≤ k by construction; conversely, every bag of a width-k
  // decomposition is a subset of the union of its ≤ k covering edges, so
  // the family is complete.
  std::unordered_set<std::vector<HVertex>, VectorHash<HVertex>> seen;
  std::vector<HEdge> chosen;

  auto add_subsets = [&](const std::vector<HVertex>& base) {
    FEATSEP_CHECK_LE(base.size(), 63u) << "bag union too large to enumerate";
    std::uint64_t limit = 1ULL << base.size();
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      if (!ChargeBudget(budget_)) {
        interrupted_ = true;
        return;
      }
      std::vector<HVertex> subset;
      for (std::size_t i = 0; i < base.size(); ++i) {
        if ((mask >> i) & 1) subset.push_back(base[i]);
      }
      if (seen.insert(subset).second) {
        FEATSEP_CHECK_LE(seen.size(), options.max_bags)
            << "ghw candidate bag family exceeds max_bags";
        bags_.push_back(std::move(subset));
      }
    }
  };

  auto recurse = [&](auto&& self, HEdge next) -> void {
    if (interrupted_) return;
    if (!chosen.empty()) add_subsets(graph_.VerticesOf(chosen));
    if (chosen.size() == k_ || interrupted_) return;
    for (HEdge e = next; e < graph_.num_edges(); ++e) {
      chosen.push_back(e);
      self(self, e + 1);
      chosen.pop_back();
    }
  };
  add_subsets({});  // The empty bag.
  recurse(recurse, 0);
}

bool GhwSearch::Solve(const SubproblemKey& key) {
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    FEATSEP_COVERAGE(kGhwMemoHit);
    return it->second.has_value();
  }
  // Mark as unsolvable while in flight; components strictly shrink so no
  // true recursion on the same key occurs, but this keeps lookups total.
  memo_.emplace(key, std::nullopt);

  for (const std::vector<HVertex>& bag : bags_) {
    if (interrupted_) return false;
    if (!ChargeBudget(budget_)) {
      interrupted_ = true;
      return false;
    }
    // Connector must be inside the bag (connectedness with the parent).
    if (!std::includes(bag.begin(), bag.end(), key.connector.begin(),
                       key.connector.end())) {
      FEATSEP_COVERAGE(kGhwBagConnectorReject);
      continue;
    }
    // Edges of the component fully inside the bag are covered here.
    std::vector<HEdge> remaining;
    for (HEdge e : key.component) {
      const std::vector<HVertex>& vs = graph_.edge(e);
      if (!std::includes(bag.begin(), bag.end(), vs.begin(), vs.end())) {
        remaining.push_back(e);
      }
    }
    std::vector<std::vector<HEdge>> components =
        graph_.EdgeComponents(remaining, bag);
    // Progress requirement (termination): every child must be strictly
    // smaller than the current component.
    if (remaining.size() == key.component.size() && components.size() == 1) {
      FEATSEP_COVERAGE(kGhwBagProgressReject);
      continue;
    }

    bool all_solved = true;
    std::vector<SubproblemKey> children;
    for (std::vector<HEdge>& component : components) {
      std::vector<HVertex> vars = graph_.VerticesOf(component);
      std::vector<HVertex> connector;
      std::set_intersection(vars.begin(), vars.end(), bag.begin(), bag.end(),
                            std::back_inserter(connector));
      SubproblemKey child{std::move(component), std::move(connector)};
      if (!Solve(child)) {
        FEATSEP_COVERAGE(kGhwChildUnsolved);
        all_solved = false;
        break;
      }
      children.push_back(std::move(child));
    }
    if (all_solved) {
      FEATSEP_COVERAGE(kGhwSubproblemSolved);
      FEATSEP_FAULT_POINT(kGhwSubproblemSolved);
      memo_[key] = Choice{bag, std::move(children)};
      return true;
    }
  }
  FEATSEP_COVERAGE(kGhwSubproblemFailed);
  return false;
}

std::size_t GhwSearch::Emit(const SubproblemKey& key,
                            TreeDecomposition* td) const {
  const std::optional<Choice>& choice = memo_.at(key);
  FEATSEP_CHECK(choice.has_value());
  std::size_t index = td->nodes.size();
  td->nodes.push_back(TreeDecomposition::Node{choice->bag, {}});
  for (const SubproblemKey& child : choice->children) {
    std::size_t child_index = Emit(child, td);
    td->nodes[index].children.push_back(child_index);
  }
  return index;
}

std::optional<TreeDecomposition> GhwSearch::Run() {
  std::vector<HEdge> all_edges;
  for (HEdge e = 0; e < graph_.num_edges(); ++e) {
    if (!graph_.edge(e).empty()) all_edges.push_back(e);
  }
  TreeDecomposition td;
  if (all_edges.empty()) {
    td.nodes.push_back(TreeDecomposition::Node{{}, {}});
    td.root = 0;
    return td;
  }

  std::vector<std::vector<HEdge>> components =
      graph_.EdgeComponents(all_edges, {});
  std::vector<SubproblemKey> roots;
  for (std::vector<HEdge>& component : components) {
    SubproblemKey key{std::move(component), {}};
    if (!Solve(key)) return std::nullopt;
    roots.push_back(std::move(key));
  }

  // Synthetic empty-bag root joining the per-component subtrees (valid: the
  // empty bag has cover number 0, and distinct components share no vertex).
  td.nodes.push_back(TreeDecomposition::Node{{}, {}});
  td.root = 0;
  for (const SubproblemKey& key : roots) {
    std::size_t child = Emit(key, &td);
    td.nodes[td.root].children.push_back(child);
  }
  return td;
}

}  // namespace

GhwDecision TryDecideGhwAtMost(const Hypergraph& graph, std::size_t k,
                               const GhwOptions& options) {
  GhwDecision decision;
  // A zero/expired/cancelled budget at entry: no bag enumeration at all.
  if (!RecheckBudget(options.budget)) {
    decision.outcome = options.budget->outcome();
    return decision;
  }
  GhwSearch search(graph, k, options);
  if (search.interrupted()) {
    decision.outcome = OutcomeOf(options.budget);
    return decision;
  }
  std::optional<TreeDecomposition> td = search.Run();
  if (search.interrupted()) {
    // An interrupted search may have recorded tainted "unsolvable" memo
    // entries; its answer carries no information.
    decision.outcome = OutcomeOf(options.budget);
    return decision;
  }
  decision.decomposition = std::move(td);
  return decision;
}

std::optional<TreeDecomposition> DecideGhwAtMost(const Hypergraph& graph,
                                                 std::size_t k,
                                                 const GhwOptions& options) {
  GhwDecision decision = TryDecideGhwAtMost(graph, k, options);
  FEATSEP_CHECK(decision.outcome == BudgetOutcome::kCompleted)
      << "unbudgeted ghw entry point interrupted; use TryDecideGhwAtMost";
  return std::move(decision.decomposition);
}

std::size_t Ghw(const Hypergraph& graph, const GhwOptions& options) {
  for (std::size_t k = 0; k <= graph.num_edges(); ++k) {
    if (DecideGhwAtMost(graph, k, options).has_value()) return k;
  }
  FEATSEP_CHECK(false) << "ghw exceeds the number of edges (impossible)";
  return graph.num_edges();
}

Hypergraph QueryHypergraph(const ConjunctiveQuery& query,
                           std::vector<Variable>* vertex_to_variable) {
  // Existential variables get dense vertex indices.
  std::vector<bool> is_free(query.num_variables(), false);
  for (Variable v : query.free_variables()) is_free[v] = true;

  std::vector<std::size_t> vertex_of(query.num_variables(),
                                     static_cast<std::size_t>(-1));
  Hypergraph graph;
  std::vector<Variable> mapping;
  for (Variable v = 0; v < query.num_variables(); ++v) {
    if (is_free[v]) continue;
    vertex_of[v] = graph.AddVertex();
    mapping.push_back(v);
  }
  for (const CqAtom& atom : query.atoms()) {
    std::vector<HVertex> edge;
    for (Variable v : atom.args) {
      if (!is_free[v]) edge.push_back(vertex_of[v]);
    }
    graph.AddEdge(std::move(edge));
  }
  if (vertex_to_variable != nullptr) *vertex_to_variable = std::move(mapping);
  return graph;
}

std::size_t QueryGhw(const ConjunctiveQuery& query, const GhwOptions& options) {
  return Ghw(QueryHypergraph(query), options);
}

bool IsInGhw(const ConjunctiveQuery& query, std::size_t k,
             const GhwOptions& options) {
  return DecideGhwAtMost(QueryHypergraph(query), k, options).has_value();
}

}  // namespace featsep
