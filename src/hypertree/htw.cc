#include "hypertree/htw.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace featsep {

namespace {

struct SubproblemKey {
  std::vector<HEdge> component;    // Sorted.
  std::vector<HVertex> connector;  // Sorted.

  friend bool operator==(const SubproblemKey& a, const SubproblemKey& b) {
    return a.component == b.component && a.connector == b.connector;
  }
};

struct SubproblemKeyHash {
  std::size_t operator()(const SubproblemKey& key) const {
    std::size_t seed = HashRange(key.component.begin(), key.component.end());
    HashCombine(seed, HashRange(key.connector.begin(), key.connector.end()));
    return seed;
  }
};

/// det-k-decomp engine: guesses λ among ≤k-edge subsets; the bag is the
/// normal form χ = ⋃λ ∩ (connector ∪ vars(component)), which guarantees
/// the special condition.
class HtwSearch {
 public:
  HtwSearch(const Hypergraph& graph, std::size_t k) : graph_(graph), k_(k) {}

  std::optional<HypertreeDecomposition> Run() {
    std::vector<HEdge> all_edges;
    for (HEdge e = 0; e < graph_.num_edges(); ++e) {
      if (!graph_.edge(e).empty()) all_edges.push_back(e);
    }
    HypertreeDecomposition htd;
    if (all_edges.empty()) {
      htd.nodes.push_back(HypertreeDecomposition::Node{{}, {}, {}});
      htd.root = 0;
      return htd;
    }
    std::vector<std::vector<HEdge>> components =
        graph_.EdgeComponents(all_edges, {});
    std::vector<SubproblemKey> roots;
    for (std::vector<HEdge>& component : components) {
      SubproblemKey key{std::move(component), {}};
      if (!Solve(key)) return std::nullopt;
      roots.push_back(std::move(key));
    }
    htd.nodes.push_back(HypertreeDecomposition::Node{{}, {}, {}});
    htd.root = 0;
    for (const SubproblemKey& key : roots) {
      std::size_t child = Emit(key, &htd);
      htd.nodes[htd.root].children.push_back(child);
    }
    return htd;
  }

 private:
  struct Choice {
    std::vector<HVertex> bag;
    std::vector<HEdge> lambda;
    std::vector<SubproblemKey> children;
  };

  bool Solve(const SubproblemKey& key) {
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second.has_value();
    memo_.emplace(key, std::nullopt);

    std::vector<HVertex> component_vars = graph_.VerticesOf(key.component);
    std::vector<HVertex> scope;  // connector ∪ vars(component), sorted.
    std::set_union(component_vars.begin(), component_vars.end(),
                   key.connector.begin(), key.connector.end(),
                   std::back_inserter(scope));

    // Enumerate λ of size ≤ k over all edges of the graph.
    std::vector<HEdge> lambda;
    bool found = TryLambdas(key, scope, 0, &lambda);
    return found;
  }

  bool TryLambdas(const SubproblemKey& key,
                  const std::vector<HVertex>& scope, HEdge next,
                  std::vector<HEdge>* lambda) {
    if (!lambda->empty() && TryOne(key, scope, *lambda)) return true;
    if (lambda->size() == k_) return false;
    for (HEdge e = next; e < graph_.num_edges(); ++e) {
      if (graph_.edge(e).empty()) continue;
      lambda->push_back(e);
      if (TryLambdas(key, scope, e + 1, lambda)) {
        lambda->pop_back();
        return true;
      }
      lambda->pop_back();
    }
    return false;
  }

  bool TryOne(const SubproblemKey& key, const std::vector<HVertex>& scope,
              const std::vector<HEdge>& lambda) {
    // Normal-form bag.
    std::vector<HVertex> covered = graph_.VerticesOf(lambda);
    std::vector<HVertex> bag;
    std::set_intersection(covered.begin(), covered.end(), scope.begin(),
                          scope.end(), std::back_inserter(bag));
    // Connectedness with the parent.
    if (!std::includes(bag.begin(), bag.end(), key.connector.begin(),
                       key.connector.end())) {
      return false;
    }
    std::vector<HEdge> remaining;
    for (HEdge e : key.component) {
      const std::vector<HVertex>& vs = graph_.edge(e);
      if (!std::includes(bag.begin(), bag.end(), vs.begin(), vs.end())) {
        remaining.push_back(e);
      }
    }
    std::vector<std::vector<HEdge>> components =
        graph_.EdgeComponents(remaining, bag);
    if (remaining.size() == key.component.size() && components.size() == 1) {
      return false;  // No progress.
    }
    std::vector<SubproblemKey> children;
    for (std::vector<HEdge>& component : components) {
      std::vector<HVertex> vars = graph_.VerticesOf(component);
      std::vector<HVertex> connector;
      std::set_intersection(vars.begin(), vars.end(), bag.begin(), bag.end(),
                            std::back_inserter(connector));
      SubproblemKey child{std::move(component), std::move(connector)};
      if (!Solve(child)) return false;
      children.push_back(std::move(child));
    }
    memo_[key] = Choice{std::move(bag), lambda, std::move(children)};
    return true;
  }

  std::size_t Emit(const SubproblemKey& key,
                   HypertreeDecomposition* htd) const {
    const std::optional<Choice>& choice = memo_.at(key);
    FEATSEP_CHECK(choice.has_value());
    std::size_t index = htd->nodes.size();
    htd->nodes.push_back(
        HypertreeDecomposition::Node{choice->bag, choice->lambda, {}});
    for (const SubproblemKey& child : choice->children) {
      std::size_t child_index = Emit(child, htd);
      htd->nodes[index].children.push_back(child_index);
    }
    return index;
  }

  const Hypergraph& graph_;
  std::size_t k_;
  std::unordered_map<SubproblemKey, std::optional<Choice>, SubproblemKeyHash>
      memo_;
};

}  // namespace

std::optional<HypertreeDecomposition> DecideHtwAtMost(const Hypergraph& graph,
                                                      std::size_t k) {
  HtwSearch search(graph, k);
  return search.Run();
}

std::size_t Htw(const Hypergraph& graph) {
  for (std::size_t k = 0; k <= graph.num_edges(); ++k) {
    if (DecideHtwAtMost(graph, k).has_value()) return k;
  }
  FEATSEP_CHECK(false) << "htw exceeds the number of edges (impossible)";
  return graph.num_edges();
}

bool ValidateHypertreeDecomposition(const Hypergraph& graph,
                                    const HypertreeDecomposition& htd,
                                    std::size_t k, std::string* error) {
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    return false;
  };
  if (htd.empty()) {
    for (HEdge e = 0; e < graph.num_edges(); ++e) {
      if (!graph.edge(e).empty()) {
        return fail("empty decomposition with nonempty edges");
      }
    }
    return true;
  }
  if (htd.root >= htd.nodes.size()) return fail("root out of range");

  // Tree shape.
  std::vector<std::size_t> parent(htd.nodes.size(),
                                  static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < htd.nodes.size(); ++i) {
    for (std::size_t child : htd.nodes[i].children) {
      if (child >= htd.nodes.size()) return fail("child out of range");
      if (parent[child] != static_cast<std::size_t>(-1)) {
        return fail("node has two parents");
      }
      parent[child] = i;
    }
  }

  // (1) Edge coverage.
  for (HEdge e = 0; e < graph.num_edges(); ++e) {
    const std::vector<HVertex>& vs = graph.edge(e);
    bool covered = false;
    for (const auto& node : htd.nodes) {
      if (std::includes(node.bag.begin(), node.bag.end(), vs.begin(),
                        vs.end())) {
        covered = true;
        break;
      }
    }
    if (!covered) return fail("edge " + std::to_string(e) + " uncovered");
  }

  // (2) Connectedness.
  for (HVertex v = 0; v < graph.num_vertices(); ++v) {
    std::size_t tops = 0;
    std::size_t occurrences = 0;
    for (std::size_t i = 0; i < htd.nodes.size(); ++i) {
      const std::vector<HVertex>& bag = htd.nodes[i].bag;
      if (!std::binary_search(bag.begin(), bag.end(), v)) continue;
      ++occurrences;
      std::size_t p = parent[i];
      if (p == static_cast<std::size_t>(-1) ||
          !std::binary_search(htd.nodes[p].bag.begin(),
                              htd.nodes[p].bag.end(), v)) {
        ++tops;
      }
    }
    if (occurrences > 0 && tops != 1) {
      return fail("vertex " + std::to_string(v) + " disconnected");
    }
  }

  // (3) λ covers χ and |λ| ≤ k.
  for (std::size_t i = 0; i < htd.nodes.size(); ++i) {
    const auto& node = htd.nodes[i];
    if (node.lambda.size() > k) {
      return fail("node " + std::to_string(i) + " has |lambda| > k");
    }
    std::vector<HVertex> covered = graph.VerticesOf(node.lambda);
    if (!std::includes(covered.begin(), covered.end(), node.bag.begin(),
                       node.bag.end())) {
      return fail("bag of node " + std::to_string(i) +
                  " not covered by its lambda");
    }
  }

  // (4) Special condition: ⋃λ(t) ∩ χ(T_t) ⊆ χ(t).
  // Compute subtree bag unions bottom-up.
  std::vector<std::vector<HVertex>> subtree_vars(htd.nodes.size());
  // Process nodes in reverse topological order: children have larger
  // indexes in our emissions, but be safe and iterate to fixpoint.
  bool changed = true;
  for (std::size_t i = 0; i < htd.nodes.size(); ++i) {
    subtree_vars[i] = htd.nodes[i].bag;
  }
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < htd.nodes.size(); ++i) {
      for (std::size_t child : htd.nodes[i].children) {
        std::vector<HVertex> merged;
        std::set_union(subtree_vars[i].begin(), subtree_vars[i].end(),
                       subtree_vars[child].begin(), subtree_vars[child].end(),
                       std::back_inserter(merged));
        if (merged != subtree_vars[i]) {
          subtree_vars[i] = std::move(merged);
          changed = true;
        }
      }
    }
  }
  for (std::size_t i = 0; i < htd.nodes.size(); ++i) {
    std::vector<HVertex> lambda_vars = graph.VerticesOf(htd.nodes[i].lambda);
    std::vector<HVertex> meet;
    std::set_intersection(lambda_vars.begin(), lambda_vars.end(),
                          subtree_vars[i].begin(), subtree_vars[i].end(),
                          std::back_inserter(meet));
    if (!std::includes(htd.nodes[i].bag.begin(), htd.nodes[i].bag.end(),
                       meet.begin(), meet.end())) {
      return fail("special condition violated at node " + std::to_string(i));
    }
  }
  return true;
}

}  // namespace featsep
