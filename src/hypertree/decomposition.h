#ifndef FEATSEP_HYPERTREE_DECOMPOSITION_H_
#define FEATSEP_HYPERTREE_DECOMPOSITION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "hypertree/hypergraph.h"

namespace featsep {

/// A (generalized hypertree–style) tree decomposition of a hypergraph: a
/// rooted tree whose nodes carry bags of vertices. Width of a node = edge
/// cover number of its bag; width of the decomposition = max node width
/// (paper, Section 5, following Chen–Dalmau).
struct TreeDecomposition {
  struct Node {
    std::vector<HVertex> bag;          // Sorted.
    std::vector<std::size_t> children;
  };

  std::vector<Node> nodes;
  std::size_t root = 0;

  bool empty() const { return nodes.empty(); }
  std::string ToString() const;
};

/// Verifies that `td` is a valid tree decomposition of `graph` of width at
/// most `k`:
///   (1) every edge's vertex set is contained in some bag,
///   (2) for every vertex, the nodes whose bags contain it induce a
///       connected subtree,
///   (3) every bag has edge cover number ≤ k.
/// If `error` is non-null, a human-readable reason is stored on failure.
bool ValidateDecomposition(const Hypergraph& graph,
                           const TreeDecomposition& td, std::size_t k,
                           std::string* error = nullptr);

}  // namespace featsep

#endif  // FEATSEP_HYPERTREE_DECOMPOSITION_H_
