#include "hypertree/decomposition.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace featsep {

std::string TreeDecomposition::ToString() const {
  std::ostringstream out;
  out << "TreeDecomposition(root=" << root << ";";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out << " node" << i << "{";
    for (std::size_t j = 0; j < nodes[i].bag.size(); ++j) {
      if (j > 0) out << ",";
      out << nodes[i].bag[j];
    }
    out << "}->[";
    for (std::size_t j = 0; j < nodes[i].children.size(); ++j) {
      if (j > 0) out << ",";
      out << nodes[i].children[j];
    }
    out << "]";
  }
  out << ")";
  return out.str();
}

bool ValidateDecomposition(const Hypergraph& graph,
                           const TreeDecomposition& td, std::size_t k,
                           std::string* error) {
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    return false;
  };
  if (td.empty()) {
    // The empty decomposition is valid only for hypergraphs with no
    // non-empty edges (nothing to cover).
    for (HEdge e = 0; e < graph.num_edges(); ++e) {
      if (!graph.edge(e).empty()) {
        return fail("empty decomposition but hypergraph has edges");
      }
    }
    return true;
  }
  if (td.root >= td.nodes.size()) return fail("root out of range");

  // Tree shape: every node except the root has exactly one parent; all
  // nodes reachable from the root.
  std::vector<std::size_t> parent(td.nodes.size(),
                                  static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < td.nodes.size(); ++i) {
    for (std::size_t child : td.nodes[i].children) {
      if (child >= td.nodes.size()) return fail("child index out of range");
      if (parent[child] != static_cast<std::size_t>(-1)) {
        return fail("node has two parents");
      }
      parent[child] = i;
    }
  }
  std::vector<bool> reached(td.nodes.size(), false);
  std::vector<std::size_t> stack = {td.root};
  while (!stack.empty()) {
    std::size_t node = stack.back();
    stack.pop_back();
    if (reached[node]) return fail("cycle in decomposition tree");
    reached[node] = true;
    for (std::size_t child : td.nodes[node].children) stack.push_back(child);
  }
  for (std::size_t i = 0; i < td.nodes.size(); ++i) {
    if (!reached[i]) return fail("unreachable decomposition node");
  }

  // (1) Edge coverage.
  for (HEdge e = 0; e < graph.num_edges(); ++e) {
    const std::vector<HVertex>& vs = graph.edge(e);
    bool covered = false;
    for (const TreeDecomposition::Node& node : td.nodes) {
      if (std::includes(node.bag.begin(), node.bag.end(), vs.begin(),
                        vs.end())) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return fail("edge " + std::to_string(e) + " not covered by any bag");
    }
  }

  // (2) Connectedness: for every vertex, the nodes containing it form a
  // connected subtree — equivalently, at most one such node has a parent
  // not containing the vertex.
  for (HVertex v = 0; v < graph.num_vertices(); ++v) {
    std::size_t tops = 0;
    std::size_t occurrences = 0;
    for (std::size_t i = 0; i < td.nodes.size(); ++i) {
      const std::vector<HVertex>& bag = td.nodes[i].bag;
      if (!std::binary_search(bag.begin(), bag.end(), v)) continue;
      ++occurrences;
      std::size_t p = parent[i];
      if (p == static_cast<std::size_t>(-1) ||
          !std::binary_search(td.nodes[p].bag.begin(),
                              td.nodes[p].bag.end(), v)) {
        ++tops;
      }
    }
    if (occurrences > 0 && tops != 1) {
      return fail("vertex " + std::to_string(v) +
                  " does not induce a connected subtree");
    }
  }

  // (3) Width.
  for (std::size_t i = 0; i < td.nodes.size(); ++i) {
    std::size_t cover = graph.EdgeCoverNumber(td.nodes[i].bag);
    if (cover > k) {
      return fail("bag of node " + std::to_string(i) + " has cover number " +
                  std::to_string(cover) + " > " + std::to_string(k));
    }
  }
  return true;
}

}  // namespace featsep
