#ifndef FEATSEP_IO_MODEL_IO_H_
#define FEATSEP_IO_MODEL_IO_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/statistic.h"
#include "util/result.h"

namespace featsep {

/// Serializes a trained separator (statistic + linear classifier) to a
/// text format:
///
///   feature q(x) :- Eta(x), E(x, y)
///   feature q(x) :- Eta(x), E(y, x)
///   threshold 1/2
///   weight 1/2
///   weight -1
///
/// One `weight` line per feature, in order; rationals as `p` or `p/q`.
std::string WriteSeparatorModel(const SeparatorModel& model);

/// Parses the format above over the given schema. The weight count must
/// match the feature count.
Result<SeparatorModel> ReadSeparatorModel(
    std::shared_ptr<const Schema> schema, std::string_view text);

}  // namespace featsep

#endif  // FEATSEP_IO_MODEL_IO_H_
