#include "io/writer.h"

#include <sstream>

namespace featsep {

namespace {

void WriteSchemaAndFacts(const Database& db, std::ostringstream& out) {
  const Schema& schema = db.schema();
  for (RelationId r = 0; r < schema.size(); ++r) {
    out << "relation " << schema.name(r) << " " << schema.arity(r);
    if (schema.has_entity_relation() && schema.entity_relation() == r) {
      out << " entity";
    }
    out << "\n";
  }
  for (const Fact& fact : db.facts()) {
    out << schema.name(fact.relation) << "(";
    for (std::size_t i = 0; i < fact.args.size(); ++i) {
      if (i > 0) out << ", ";
      out << db.value_name(fact.args[i]);
    }
    out << ")\n";
  }
}

}  // namespace

std::string WriteDatabase(const Database& db) {
  std::ostringstream out;
  WriteSchemaAndFacts(db, out);
  return out.str();
}

std::string WriteTrainingDatabase(const TrainingDatabase& training) {
  std::ostringstream out;
  WriteSchemaAndFacts(training.database(), out);
  for (Value e : training.Entities()) {
    if (training.labeling().Has(e)) {
      out << "label " << training.database().value_name(e) << " "
          << (training.label(e) == kPositive ? "+" : "-") << "\n";
    }
  }
  return out.str();
}

}  // namespace featsep
