#ifndef FEATSEP_IO_READER_H_
#define FEATSEP_IO_READER_H_

#include <memory>
#include <string_view>

#include "relational/training_database.h"
#include "util/result.h"

namespace featsep {

/// Parses the featsep text format:
///
///   # comment (blank lines ignored)
///   relation Eta 1 entity     — declares a relation; "entity" marks η
///   relation E 2
///   Eta(e1)                   — a fact
///   E(e1, a)
///   label e1 +                — a label (+/-/+1/-1)
///
/// Relation declarations must precede their facts; exactly one relation
/// may be marked "entity" when labels are used.
Result<std::shared_ptr<TrainingDatabase>> ReadTrainingDatabase(
    std::string_view text);

/// Same format without label lines.
Result<std::shared_ptr<Database>> ReadDatabase(std::string_view text);

}  // namespace featsep

#endif  // FEATSEP_IO_READER_H_
