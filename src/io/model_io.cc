#include "io/model_io.h"

#include <sstream>
#include <utility>
#include <vector>

#include "io/cq_parser.h"
#include "util/strings.h"

namespace featsep {

namespace {

Result<Rational> ParseRational(std::string_view text) {
  text = StripWhitespace(text);
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    Result<BigInt> value = BigInt::FromString(text);
    if (!value.ok()) return value.error();
    return Rational(std::move(value.value()), BigInt(1));
  }
  Result<BigInt> numerator = BigInt::FromString(text.substr(0, slash));
  if (!numerator.ok()) return numerator.error();
  Result<BigInt> denominator = BigInt::FromString(text.substr(slash + 1));
  if (!denominator.ok()) return denominator.error();
  if (denominator.value().is_zero()) {
    return Error("zero denominator in rational");
  }
  return Rational(std::move(numerator.value()),
                  std::move(denominator.value()));
}

}  // namespace

std::string WriteSeparatorModel(const SeparatorModel& model) {
  std::ostringstream out;
  for (const ConjunctiveQuery& q : model.statistic.features()) {
    out << "feature " << q.ToString() << "\n";
  }
  out << "threshold " << model.classifier.threshold().ToString() << "\n";
  for (const Rational& w : model.classifier.weights()) {
    out << "weight " << w.ToString() << "\n";
  }
  return out.str();
}

Result<SeparatorModel> ReadSeparatorModel(
    std::shared_ptr<const Schema> schema, std::string_view text) {
  std::vector<ConjunctiveQuery> features;
  std::vector<Rational> weights;
  Rational threshold;
  bool saw_threshold = false;

  std::size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto error = [&](const std::string& message) {
      return Error("line " + std::to_string(line_number) + ": " + message);
    };
    if (StartsWith(line, "feature ")) {
      Result<ConjunctiveQuery> q = ParseCq(schema, line.substr(8));
      if (!q.ok()) return error(q.error().message());
      features.push_back(std::move(q.value()));
    } else if (StartsWith(line, "threshold ")) {
      Result<Rational> value = ParseRational(line.substr(10));
      if (!value.ok()) return error(value.error().message());
      threshold = std::move(value.value());
      saw_threshold = true;
    } else if (StartsWith(line, "weight ")) {
      Result<Rational> value = ParseRational(line.substr(7));
      if (!value.ok()) return error(value.error().message());
      weights.push_back(std::move(value.value()));
    } else {
      return error("expected 'feature', 'threshold', or 'weight'");
    }
  }
  if (!saw_threshold) return Error("missing threshold");
  if (weights.size() != features.size()) {
    return Error("weight count (" + std::to_string(weights.size()) +
                 ") does not match feature count (" +
                 std::to_string(features.size()) + ")");
  }
  return SeparatorModel{Statistic(std::move(features)),
                        LinearClassifier(std::move(threshold),
                                         std::move(weights))};
}

}  // namespace featsep
