#ifndef FEATSEP_IO_CQ_PARSER_H_
#define FEATSEP_IO_CQ_PARSER_H_

#include <memory>
#include <string_view>

#include "cq/cq.h"
#include "util/result.h"

namespace featsep {

/// Parses a conjunctive query in rule syntax over the given schema:
///
///   q(x) :- Eta(x), E(x, y), E(y, z)
///
/// Head variables are the free variables; every other variable is
/// existentially quantified. The inverse of ConjunctiveQuery::ToString.
Result<ConjunctiveQuery> ParseCq(std::shared_ptr<const Schema> schema,
                                 std::string_view text);

}  // namespace featsep

#endif  // FEATSEP_IO_CQ_PARSER_H_
