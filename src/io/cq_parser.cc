#include "io/cq_parser.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/strings.h"

namespace featsep {

namespace {

/// Splits "Name(a, b), Other(c)" into atom strings at top-level commas.
std::vector<std::string> SplitAtoms(std::string_view body) {
  std::vector<std::string> atoms;
  int depth = 0;
  std::string current;
  for (char c : body) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      atoms.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!StripWhitespace(current).empty()) atoms.push_back(current);
  return atoms;
}

struct ParsedAtom {
  std::string relation;
  std::vector<std::string> args;
};

Result<ParsedAtom> ParseAtom(std::string_view text) {
  text = StripWhitespace(text);
  std::size_t open = text.find('(');
  if (open == std::string_view::npos || text.empty() ||
      text.back() != ')') {
    return Error("malformed atom: '" + std::string(text) + "'");
  }
  ParsedAtom atom;
  atom.relation = std::string(StripWhitespace(text.substr(0, open)));
  std::string_view args = text.substr(open + 1, text.size() - open - 2);
  if (!StripWhitespace(args).empty()) {
    for (const std::string& piece : Split(args, ',')) {
      std::string name(StripWhitespace(piece));
      if (name.empty()) return Error("empty variable in atom");
      atom.args.push_back(std::move(name));
    }
  }
  return atom;
}

}  // namespace

Result<ConjunctiveQuery> ParseCq(std::shared_ptr<const Schema> schema,
                                 std::string_view text) {
  std::size_t separator = text.find(":-");
  if (separator == std::string_view::npos) {
    return Error("expected 'head :- body'");
  }
  Result<ParsedAtom> head = ParseAtom(text.substr(0, separator));
  if (!head.ok()) return head.error();

  ConjunctiveQuery query(std::move(schema));
  std::unordered_map<std::string, Variable> variables;
  auto var_for = [&](const std::string& name) {
    auto it = variables.find(name);
    if (it != variables.end()) return it->second;
    Variable v = query.NewVariable(name);
    variables.emplace(name, v);
    return v;
  };
  for (const std::string& name : head.value().args) {
    if (variables.count(name) > 0) {
      return Error("repeated head variable '" + name + "'");
    }
    query.AddFreeVariable(var_for(name));
  }

  std::string_view body = text.substr(separator + 2);
  if (StripWhitespace(body) == "true") return query;
  for (const std::string& atom_text : SplitAtoms(body)) {
    Result<ParsedAtom> atom = ParseAtom(atom_text);
    if (!atom.ok()) return atom.error();
    RelationId rel = query.schema().FindRelation(atom.value().relation);
    if (rel == kNoRelation) {
      return Error("unknown relation '" + atom.value().relation + "'");
    }
    if (query.schema().arity(rel) != atom.value().args.size()) {
      return Error("arity mismatch for '" + atom.value().relation + "'");
    }
    std::vector<Variable> args;
    for (const std::string& name : atom.value().args) {
      args.push_back(var_for(name));
    }
    query.AddAtom(rel, std::move(args));
  }
  return query;
}

}  // namespace featsep
