#ifndef FEATSEP_IO_WRITER_H_
#define FEATSEP_IO_WRITER_H_

#include <string>

#include "relational/training_database.h"

namespace featsep {

/// Serializes a database to the featsep text format (see io/reader.h);
/// round-trips through ReadDatabase.
std::string WriteDatabase(const Database& db);

/// Serializes a training database (facts + label lines); round-trips
/// through ReadTrainingDatabase.
std::string WriteTrainingDatabase(const TrainingDatabase& training);

}  // namespace featsep

#endif  // FEATSEP_IO_WRITER_H_
