#include "io/reader.h"

#include <string>
#include <utility>
#include <vector>

#include "util/strings.h"

namespace featsep {

namespace {

struct ParsedLabel {
  std::string entity;
  Label label;
};

struct ParseState {
  Schema schema;
  std::vector<std::pair<std::string, std::vector<std::string>>> facts;
  std::vector<ParsedLabel> labels;
};

Result<bool> ParseLine(std::string_view line, std::size_t line_number,
                       ParseState* state) {
  auto error = [&](const std::string& message) {
    return Error("line " + std::to_string(line_number) + ": " + message);
  };

  line = StripWhitespace(line);
  if (line.empty() || line[0] == '#') return true;

  if (StartsWith(line, "relation ")) {
    std::vector<std::string> parts;
    for (const std::string& piece : Split(line, ' ')) {
      if (!piece.empty()) parts.push_back(piece);
    }
    if (parts.size() != 3 && parts.size() != 4) {
      return error("expected 'relation <name> <arity> [entity]'");
    }
    std::size_t arity = 0;
    for (char c : parts[2]) {
      if (c < '0' || c > '9' || arity > 1000) {
        return error("invalid arity '" + parts[2] + "'");
      }
      arity = arity * 10 + static_cast<std::size_t>(c - '0');
    }
    if (arity == 0) return error("invalid arity '" + parts[2] + "'");
    if (state->schema.FindRelation(parts[1]) != kNoRelation) {
      return error("duplicate relation '" + parts[1] + "'");
    }
    RelationId id = state->schema.AddRelation(parts[1], arity);
    if (parts.size() == 4) {
      if (parts[3] != "entity") {
        return error("expected 'entity', got '" + parts[3] + "'");
      }
      if (state->schema.has_entity_relation()) {
        return error("second entity relation");
      }
      if (arity != 1) {
        return error("entity relation must be unary");
      }
      state->schema.set_entity_relation(id);
    }
    return true;
  }

  if (StartsWith(line, "label ")) {
    std::vector<std::string> parts;
    for (const std::string& piece : Split(line, ' ')) {
      if (!piece.empty()) parts.push_back(piece);
    }
    if (parts.size() != 3) return error("expected 'label <entity> <+/->'");
    Label label;
    if (parts[2] == "+" || parts[2] == "+1") {
      label = kPositive;
    } else if (parts[2] == "-" || parts[2] == "-1") {
      label = kNegative;
    } else {
      return error("invalid label '" + parts[2] + "'");
    }
    state->labels.push_back(ParsedLabel{parts[1], label});
    return true;
  }

  // Fact: Name(arg, arg, ...)
  std::size_t open = line.find('(');
  if (open == std::string_view::npos || line.back() != ')') {
    return error("expected a fact 'R(a, b)', a 'relation' declaration, a "
                 "'label' line, or a comment");
  }
  std::string name(StripWhitespace(line.substr(0, open)));
  if (name.empty()) return error("missing relation name");
  std::string_view args_text = line.substr(open + 1,
                                           line.size() - open - 2);
  std::vector<std::string> args;
  if (!StripWhitespace(args_text).empty()) {
    for (const std::string& piece : Split(args_text, ',')) {
      std::string arg(StripWhitespace(piece));
      if (arg.empty()) return error("empty argument");
      args.push_back(std::move(arg));
    }
  }
  RelationId rel = state->schema.FindRelation(name);
  if (rel == kNoRelation) return error("unknown relation '" + name + "'");
  if (state->schema.arity(rel) != args.size()) {
    return error("arity mismatch for '" + name + "'");
  }
  state->facts.emplace_back(std::move(name), std::move(args));
  return true;
}

Result<ParseState> Parse(std::string_view text) {
  ParseState state;
  std::size_t line_number = 0;
  for (const std::string& line : Split(text, '\n')) {
    ++line_number;
    Result<bool> result = ParseLine(line, line_number, &state);
    if (!result.ok()) return result.error();
  }
  return state;
}

}  // namespace

Result<std::shared_ptr<TrainingDatabase>> ReadTrainingDatabase(
    std::string_view text) {
  Result<ParseState> parsed = Parse(text);
  if (!parsed.ok()) return parsed.error();
  ParseState& state = parsed.value();
  if (!state.schema.has_entity_relation()) {
    return Error("no relation is marked 'entity'");
  }
  auto db = std::make_shared<Database>(
      std::make_shared<const Schema>(std::move(state.schema)));
  for (const auto& [name, args] : state.facts) {
    db->AddFact(name, args);
  }
  auto training = std::make_shared<TrainingDatabase>(db);
  for (const ParsedLabel& parsed_label : state.labels) {
    Value entity = db->FindValue(parsed_label.entity);
    if (entity == kNoValue || !db->IsEntity(entity)) {
      return Error("labeled value '" + parsed_label.entity +
                   "' is not an entity");
    }
    training->SetLabel(entity, parsed_label.label);
  }
  return training;
}

Result<std::shared_ptr<Database>> ReadDatabase(std::string_view text) {
  Result<ParseState> parsed = Parse(text);
  if (!parsed.ok()) return parsed.error();
  ParseState& state = parsed.value();
  if (!state.labels.empty()) {
    return Error("unexpected 'label' line in a plain database");
  }
  auto db = std::make_shared<Database>(
      std::make_shared<const Schema>(std::move(state.schema)));
  for (const auto& [name, args] : state.facts) {
    db->AddFact(name, args);
  }
  return db;
}

}  // namespace featsep
