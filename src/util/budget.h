#ifndef FEATSEP_UTIL_BUDGET_H_
#define FEATSEP_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace featsep {

/// Why a budgeted computation stopped. `kCompleted` means the procedure ran
/// to its natural end; every other value means it was interrupted and its
/// result (if any) is partial — callers must never read an interrupted run
/// as a definitive answer.
enum class BudgetOutcome : std::uint8_t {
  kCompleted = 0,
  kTimedOut,          ///< The steady-clock deadline passed.
  kCancelled,         ///< Cancel() was called (request abandoned).
  kBudgetExhausted,   ///< The step budget ran out.
};

/// Short stable name ("completed", "timed-out", ...).
const char* BudgetOutcomeName(BudgetOutcome outcome);

/// Cooperative execution budget shared by every decision procedure: a
/// steady-clock deadline, a step budget, and a cancellation flag, checked
/// cheaply from the kernels' inner loops (the same event sites that carry
/// FEATSEP_COVERAGE probes — node expansions, bag candidates, fixpoint
/// pairs, pivots).
///
/// Usage: the request owner constructs one budget, passes a pointer down
/// through the options structs (nullptr everywhere means "unbounded", the
/// default), and may call Cancel() from any thread to abandon the request.
/// Kernels call Charge() per unit of work; once any limit trips, the first
/// violation is latched as the sticky outcome() and every later Charge()
/// returns false immediately, so a budget threaded through parallel shards
/// stops all of them.
///
/// Cost model: Charge() is one relaxed fetch-add plus two relaxed loads;
/// the clock is only read every kClockStride steps, so deadlines add no
/// per-node syscall pressure. Cancellation latency is therefore bounded by
/// one unit of kernel work plus at most kClockStride steps.
///
/// Limits (deadline, step limit) are set before the budget is shared and
/// are immutable afterwards; Cancel()/Charge()/Recheck() are thread-safe.
class ExecutionBudget {
 public:
  using Clock = std::chrono::steady_clock;

  /// Steps between deadline clock reads. Small enough that a 10 ms deadline
  /// overshoots by microseconds, large enough to keep Clock::now() off the
  /// per-node hot path.
  static constexpr std::uint64_t kClockStride = 64;

  /// Unbounded: never trips unless Cancel() is called.
  ExecutionBudget() = default;

  ExecutionBudget(const ExecutionBudget&) = delete;
  ExecutionBudget& operator=(const ExecutionBudget&) = delete;

  static ExecutionBudget WithDeadline(Clock::time_point deadline) {
    return ExecutionBudget(true, deadline, 0);
  }
  static ExecutionBudget WithTimeout(Clock::duration timeout) {
    return ExecutionBudget(true, Clock::now() + timeout, 0);
  }
  /// `limit` total Charge() steps are allowed; the limit-plus-first step
  /// trips. Step limits are deterministic across runs and thread counts
  /// when the charged work is, which the interruption tests rely on.
  static ExecutionBudget WithStepLimit(std::uint64_t limit) {
    return ExecutionBudget(false, Clock::time_point(), limit);
  }
  static ExecutionBudget WithDeadlineAndStepLimit(Clock::time_point deadline,
                                                  std::uint64_t limit) {
    return ExecutionBudget(true, deadline, limit);
  }

  /// Requests cancellation. Thread-safe; the next Charge()/Recheck() on any
  /// thread latches kCancelled (unless another violation already latched).
  void Cancel() { cancel_.store(true, std::memory_order_release); }

  /// Charges `steps` units of work and reports whether the computation may
  /// continue. False means stop: unwind, return best-so-far, and report
  /// outcome().
  bool Charge(std::uint64_t steps = 1) {
    if (outcome_.load(std::memory_order_acquire) != 0) return false;
    std::uint64_t before = steps_.fetch_add(steps, std::memory_order_relaxed);
    std::uint64_t after = before + steps;
    if (step_limit_ != 0 && after > step_limit_) {
      return Fail(BudgetOutcome::kBudgetExhausted);
    }
    if (cancel_.load(std::memory_order_relaxed)) {
      return Fail(BudgetOutcome::kCancelled);
    }
    if (has_deadline_ && before / kClockStride != after / kClockStride &&
        Clock::now() >= deadline_) {
      return Fail(BudgetOutcome::kTimedOut);
    }
    return true;
  }

  /// Full check without charging — always reads the clock. Procedures call
  /// this once at entry so a zero or already-expired deadline is detected
  /// before any work happens, and periodically from coarse-grained loops.
  bool Recheck() {
    if (outcome_.load(std::memory_order_acquire) != 0) return false;
    if (cancel_.load(std::memory_order_relaxed)) {
      return Fail(BudgetOutcome::kCancelled);
    }
    if (step_limit_ != 0 && steps_.load(std::memory_order_relaxed) > step_limit_) {
      return Fail(BudgetOutcome::kBudgetExhausted);
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Fail(BudgetOutcome::kTimedOut);
    }
    return true;
  }

  /// True once any limit has tripped. Cheap (one relaxed load); does not
  /// itself detect a newly-passed deadline — use Charge()/Recheck() for
  /// that.
  bool Interrupted() const {
    return outcome_.load(std::memory_order_acquire) != 0;
  }

  /// The sticky first violation, or kCompleted while none has tripped.
  BudgetOutcome outcome() const {
    return static_cast<BudgetOutcome>(outcome_.load(std::memory_order_acquire));
  }

  /// Units of work charged so far.
  std::uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Latches `forced` as the outcome if nothing tripped yet (first violation
  /// wins, like any other trip). Used by the fault-injection harness to
  /// simulate a deadline expiring at an exact kernel event.
  void ForceOutcome(BudgetOutcome forced) {
    if (forced != BudgetOutcome::kCompleted) Fail(forced);
  }

 private:
  ExecutionBudget(bool has_deadline, Clock::time_point deadline,
                  std::uint64_t step_limit)
      : has_deadline_(has_deadline),
        deadline_(deadline),
        step_limit_(step_limit) {}

  /// Latches the first violation; always returns false.
  bool Fail(BudgetOutcome o) {
    std::uint8_t expected = 0;
    outcome_.compare_exchange_strong(expected, static_cast<std::uint8_t>(o),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire);
    return false;
  }

  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint8_t> outcome_{0};  // BudgetOutcome; 0 = kCompleted.
  std::atomic<bool> cancel_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::uint64_t step_limit_ = 0;  // 0 = unlimited.
};

/// nullptr-tolerant helpers: every budgeted API takes `ExecutionBudget*`
/// where nullptr means unbounded, so kernels guard with these instead of
/// sprinkling null checks.
inline bool ChargeBudget(ExecutionBudget* budget, std::uint64_t steps = 1) {
  return budget == nullptr || budget->Charge(steps);
}
inline bool RecheckBudget(ExecutionBudget* budget) {
  return budget == nullptr || budget->Recheck();
}
inline bool BudgetOk(const ExecutionBudget* budget) {
  return budget == nullptr || !budget->Interrupted();
}
inline BudgetOutcome OutcomeOf(const ExecutionBudget* budget) {
  return budget == nullptr ? BudgetOutcome::kCompleted : budget->outcome();
}

/// A boundary result that may be partial: `value` is definitive iff
/// `outcome == kCompleted`; otherwise it carries best-so-far state whose
/// meaning the producing API documents.
template <typename T>
struct Budgeted {
  BudgetOutcome outcome = BudgetOutcome::kCompleted;
  T value{};

  bool ok() const { return outcome == BudgetOutcome::kCompleted; }
};

}  // namespace featsep

#endif  // FEATSEP_UTIL_BUDGET_H_
