#include "util/strings.h"

#include <cctype>

namespace featsep {

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace featsep
