#ifndef FEATSEP_UTIL_PARALLEL_H_
#define FEATSEP_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace featsep {

/// Resolves a user-facing `num_threads` knob (0 = hardware concurrency,
/// 1 = serial) against the number of independent work items. Never returns 0.
inline std::size_t EffectiveThreads(std::size_t num_threads,
                                    std::size_t items) {
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  if (num_threads > items) num_threads = items;
  return num_threads == 0 ? 1 : num_threads;
}

/// Calls `fn(i)` exactly once for every i in [0, n), fanned out over a
/// bounded pool of at most `num_threads` std::threads (0 = hardware
/// concurrency, 1 = serial in the calling thread). Work is claimed from an
/// atomic counter, so items run in roughly increasing order but on arbitrary
/// threads; when results must be ordered, write them into a pre-sized vector
/// at index i — the caller observes deterministic ordering regardless of the
/// thread count. Blocks until all items finish. `fn` must be safe to call
/// concurrently from distinct threads for distinct i.
///
/// An exception thrown by `fn` does not terminate the process: the first
/// one (by completion order) is captured, sibling workers stop claiming new
/// items, and the exception is rethrown in the calling thread after every
/// worker has joined. Items already in flight on other threads still run to
/// completion; items never claimed are skipped.
template <typename Fn>
void ParallelFor(std::size_t num_threads, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  std::size_t threads = EffectiveThreads(num_threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto worker = [&]() {
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        abort.store(true, std::memory_order_release);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

/// Returns the smallest i in [0, n) with `pred(i)` true, or n if none —
/// the same answer a serial first-match loop produces, for any thread count.
/// Workers claim indices in increasing order and publish matches into an
/// atomic minimum; claiming stops once the next index exceeds the current
/// best (the early-exit flag), so work beyond the first match is bounded.
/// Indices below the returned value are always fully evaluated, which is
/// what makes the result deterministic under threading.
///
/// An exception thrown by `pred` is captured (first by completion order),
/// siblings stop claiming, and the exception is rethrown in the calling
/// thread after the join — the return value is never produced.
template <typename Pred>
std::size_t ParallelFindFirst(std::size_t num_threads, std::size_t n,
                              Pred&& pred) {
  if (n == 0) return 0;
  std::size_t threads = EffectiveThreads(num_threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) return i;
    }
    return n;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> best{n};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto worker = [&]() {
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      // Early exit: every index below the current best has been claimed by
      // some worker, so indexes at or above it can no longer win.
      if (i >= best.load(std::memory_order_acquire)) return;
      bool hit;
      try {
        hit = pred(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        abort.store(true, std::memory_order_release);
        return;
      }
      if (!hit) continue;
      std::size_t current = best.load(std::memory_order_acquire);
      while (i < current &&
             !best.compare_exchange_weak(current, i,
                                         std::memory_order_acq_rel)) {
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return best.load(std::memory_order_acquire);
}

}  // namespace featsep

#endif  // FEATSEP_UTIL_PARALLEL_H_
