#ifndef FEATSEP_UTIL_HASH_H_
#define FEATSEP_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace featsep {

/// Mixes `value` into a running hash seed (boost::hash_combine-style, with a
/// 64-bit golden-ratio constant). Order-sensitive.
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes an arbitrary range of hashable elements, order-sensitively.
template <typename Iterator>
std::size_t HashRange(Iterator first, Iterator last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  using T = std::decay_t<decltype(*first)>;
  std::hash<T> hasher;
  for (; first != last; ++first) {
    HashCombine(seed, hasher(*first));
  }
  return seed;
}

/// std::hash-compatible functor for vectors of hashable elements; usable as
/// the Hash template argument of unordered containers keyed by vectors.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

/// std::hash-compatible functor for pairs.
template <typename A, typename B>
struct PairHash {
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = std::hash<A>()(p.first);
    HashCombine(seed, std::hash<B>()(p.second));
    return seed;
  }
};

}  // namespace featsep

#endif  // FEATSEP_UTIL_HASH_H_
