#ifndef FEATSEP_UTIL_HASH_H_
#define FEATSEP_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

namespace featsep {

/// Mixes `value` into a running hash seed (boost::hash_combine-style, with a
/// 64-bit golden-ratio constant). Order-sensitive.
///
/// NOT stable across processes when fed std::hash output — never use it for
/// anything serialized or shared between processes; that is what the
/// Fnv1a64* family below is for.
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

// ---------------------------------------------------------------------------
// Stable hashing: FNV-1a-64 over explicitly specified byte sequences.
//
// Every constant and byte order below is part of the persistent format
// contract (DESIGN.md §13): the output is identical on every platform,
// process, and standard library, so it may key on-disk caches, file names,
// and cross-process protocols. std::hash must never leak into these values.

/// FNV-1a 64-bit offset basis.
inline constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
/// FNV-1a 64-bit prime.
inline constexpr std::uint64_t kFnv64Prime = 0x100000001b3ULL;

/// Absorbs one byte into a running FNV-1a-64 hash.
inline std::uint64_t Fnv1a64Byte(std::uint64_t hash, unsigned char byte) {
  return (hash ^ byte) * kFnv64Prime;
}

/// Absorbs a raw byte sequence into a running FNV-1a-64 hash.
inline std::uint64_t Fnv1a64Bytes(std::uint64_t hash, std::string_view bytes) {
  for (char c : bytes) hash = Fnv1a64Byte(hash, static_cast<unsigned char>(c));
  return hash;
}

/// Absorbs a u64 as exactly 8 little-endian bytes (byte order fixed by
/// shifts, independent of host endianness).
inline std::uint64_t Fnv1a64U64(std::uint64_t hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash = Fnv1a64Byte(hash, static_cast<unsigned char>(value >> shift));
  }
  return hash;
}

/// Absorbs a string unambiguously: its length as a u64, then its bytes
/// (the length prefix keeps "ab","c" distinct from "a","bc").
inline std::uint64_t Fnv1a64String(std::uint64_t hash, std::string_view s) {
  hash = Fnv1a64U64(hash, static_cast<std::uint64_t>(s.size()));
  return Fnv1a64Bytes(hash, s);
}

/// Plain FNV-1a-64 of a byte sequence from the offset basis.
inline std::uint64_t Fnv1a64(std::string_view bytes) {
  return Fnv1a64Bytes(kFnv64OffsetBasis, bytes);
}

/// Hashes an arbitrary range of hashable elements, order-sensitively.
template <typename Iterator>
std::size_t HashRange(Iterator first, Iterator last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  using T = std::decay_t<decltype(*first)>;
  std::hash<T> hasher;
  for (; first != last; ++first) {
    HashCombine(seed, hasher(*first));
  }
  return seed;
}

/// std::hash-compatible functor for vectors of hashable elements; usable as
/// the Hash template argument of unordered containers keyed by vectors.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

/// std::hash-compatible functor for pairs.
template <typename A, typename B>
struct PairHash {
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = std::hash<A>()(p.first);
    HashCombine(seed, std::hash<B>()(p.second));
    return seed;
  }
};

}  // namespace featsep

#endif  // FEATSEP_UTIL_HASH_H_
