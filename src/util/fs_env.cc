#include "util/fs_env.h"

#include <fstream>
#include <sstream>
#include <system_error>

namespace featsep {

namespace fs = std::filesystem;

FsStatus FsEnv::Publish(const std::string& tmp_path,
                        const std::string& final_path,
                        std::string_view bytes) {
  FsStatus wrote = WriteFile(tmp_path, bytes);
  if (wrote != FsStatus::kOk) {
    Remove(tmp_path);  // Best effort; startup GC handles survivors.
    return FsStatus::kError;
  }
  FsStatus renamed = Rename(tmp_path, final_path);
  if (renamed != FsStatus::kOk) {
    Remove(tmp_path);
    return FsStatus::kError;
  }
  return FsStatus::kOk;
}

FsStatus RealFsEnv::ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::error_code ec;
    return fs::exists(path, ec) ? FsStatus::kError : FsStatus::kNotFound;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return FsStatus::kError;
  *out = buffer.str();
  return FsStatus::kOk;
}

FsStatus RealFsEnv::WriteFile(const std::string& path,
                              std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return FsStatus::kError;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return out.good() ? FsStatus::kOk : FsStatus::kError;
}

FsStatus RealFsEnv::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (!ec) return FsStatus::kOk;
  // A missing source is the signature of a lost claim race, not a fault.
  if (ec == std::errc::no_such_file_or_directory) return FsStatus::kNotFound;
  return FsStatus::kError;
}

FsStatus RealFsEnv::Remove(const std::string& path) {
  std::error_code ec;
  const bool removed = fs::remove(path, ec);
  if (ec) return FsStatus::kError;
  return removed ? FsStatus::kOk : FsStatus::kNotFound;
}

FsStatus RealFsEnv::CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  return ec ? FsStatus::kError : FsStatus::kOk;
}

FsListResult RealFsEnv::ListDir(const std::string& path) {
  FsListResult result;
  std::error_code ec;
  fs::directory_iterator it(path, ec);
  if (ec) {
    result.status = FsStatus::kError;
    return result;
  }
  // Manual advance: a range-for swallows increment errors by ending the
  // loop, silently truncating the scan. Count them instead.
  const fs::directory_iterator end;
  while (it != end) {
    std::error_code entry_ec;
    FsDirEntry entry;
    entry.name = it->path().filename().string();
    entry.is_dir = it->is_directory(entry_ec) && !entry_ec;
    entry.size = !entry.is_dir && it->is_regular_file(entry_ec) && !entry_ec
                     ? static_cast<std::uint64_t>(it->file_size(entry_ec))
                     : 0;
    if (entry_ec) {
      ++result.scan_errors;
    } else {
      entry.mtime = it->last_write_time(entry_ec);
      if (entry_ec) {
        ++result.scan_errors;
      } else {
        result.entries.push_back(std::move(entry));
      }
    }
    it.increment(ec);
    if (ec) {
      ++result.scan_errors;
      break;
    }
  }
  return result;
}

FsStatus RealFsEnv::Touch(const std::string& path) {
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  if (!ec) return FsStatus::kOk;
  if (ec == std::errc::no_such_file_or_directory) return FsStatus::kNotFound;
  return FsStatus::kError;
}

std::optional<fs::file_time_type> RealFsEnv::Mtime(const std::string& path) {
  std::error_code ec;
  fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return std::nullopt;
  return mtime;
}

bool RealFsEnv::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

FsEnv* RealFs() {
  static RealFsEnv env;
  return &env;
}

FaultFsEnv::FaultFsEnv(FaultFsOptions options, FsEnv* base)
    : base_(base),
      options_(options),
      rng_state_(options.seed == 0 ? 0x9e3779b9 : options.seed) {}

void FaultFsEnv::FailNext(FsOp op, std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  scripted_[static_cast<std::size_t>(op)] += count;
}

void FaultFsEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.fail_chance = 0.0;
  scripted_.fill(0);
}

void FaultFsEnv::set_fail_chance(double chance) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.fail_chance = chance;
}

void FaultFsEnv::CrashNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = true;
}

void FaultFsEnv::Recover() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = false;
  // Disarm the crash point too: total_attempts is already past it, and a
  // recovered "process" must not re-crash on its first post-restart op.
  options_.crash_after_ops = 0;
}

bool FaultFsEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

FaultFsStats FaultFsEnv::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t FaultFsEnv::NextDraw() {
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545f4914f6cdd1dULL;
}

bool FaultFsEnv::Inject(FsOp op) {
  const std::size_t idx = static_cast<std::size_t>(op);
  ++stats_.attempts[idx];
  ++stats_.total_attempts;
  bool fail = false;
  if (options_.crash_after_ops != 0 && !crashed_ &&
      stats_.total_attempts >= options_.crash_after_ops) {
    crashed_ = true;
  }
  if (crashed_) {
    fail = true;
  } else if (scripted_[idx] > 0) {
    --scripted_[idx];
    fail = true;
  } else if (options_.fail_chance > 0.0) {
    const double draw = static_cast<double>(NextDraw() >> 11) * 0x1.0p-53;
    fail = draw < options_.fail_chance;
  }
  if (fail) {
    ++stats_.injected[idx];
    ++stats_.total_injected;
  }
  return fail;
}

FsStatus FaultFsEnv::ReadFile(const std::string& path, std::string* out) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Inject(FsOp::kRead)) return FsStatus::kError;
  }
  return base_->ReadFile(path, out);
}

FsStatus FaultFsEnv::WriteFile(const std::string& path,
                               std::string_view bytes) {
  std::size_t torn_prefix = 0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Inject(FsOp::kWrite)) {
      fail = true;
      const double draw = static_cast<double>(NextDraw() >> 11) * 0x1.0p-53;
      if (draw < options_.torn_write_chance && !bytes.empty()) {
        torn_prefix = static_cast<std::size_t>(NextDraw() % bytes.size());
      }
    }
  }
  if (!fail) return base_->WriteFile(path, bytes);
  if (torn_prefix > 0) {
    // The crash/ENOSPC shape: a prefix of the payload is on disk, the
    // checksum line is not. Readers must detect and drop it.
    base_->WriteFile(path, bytes.substr(0, torn_prefix));
  }
  return FsStatus::kError;
}

FsStatus FaultFsEnv::Rename(const std::string& from, const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Inject(FsOp::kRename)) return FsStatus::kError;
  }
  return base_->Rename(from, to);
}

FsStatus FaultFsEnv::Remove(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Inject(FsOp::kRemove)) return FsStatus::kError;
  }
  return base_->Remove(path);
}

FsStatus FaultFsEnv::CreateDirs(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Inject(FsOp::kCreateDirs)) return FsStatus::kError;
  }
  return base_->CreateDirs(path);
}

FsListResult FaultFsEnv::ListDir(const std::string& path) {
  bool fail = false;
  bool partial = false;
  std::uint64_t keep_draw = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Inject(FsOp::kList)) {
      fail = true;
      const double draw = static_cast<double>(NextDraw() >> 11) * 0x1.0p-53;
      partial = !crashed_ && draw < options_.partial_list_chance;
      keep_draw = NextDraw();
    }
  }
  if (!fail) return base_->ListDir(path);
  if (partial) {
    FsListResult full = base_->ListDir(path);
    if (full.status == FsStatus::kOk && !full.entries.empty()) {
      const std::size_t keep = keep_draw % full.entries.size();
      full.scan_errors += full.entries.size() - keep;
      full.entries.resize(keep);
      return full;
    }
  }
  FsListResult result;
  result.status = FsStatus::kError;
  return result;
}

FsStatus FaultFsEnv::Touch(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Inject(FsOp::kTouch)) return FsStatus::kError;
  }
  return base_->Touch(path);
}

std::optional<fs::file_time_type> FaultFsEnv::Mtime(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Inject(FsOp::kStat)) return std::nullopt;
  }
  return base_->Mtime(path);
}

bool FaultFsEnv::Exists(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Inject(FsOp::kStat)) return false;
  }
  return base_->Exists(path);
}

}  // namespace featsep
