#include "util/retry.h"

#include <algorithm>
#include <thread>

namespace featsep {

namespace {

std::uint64_t NextJitter(std::uint64_t* state) {
  *state ^= *state >> 12;
  *state ^= *state << 25;
  *state ^= *state >> 27;
  return *state * 0x2545f4914f6cdd1dULL;
}

}  // namespace

RetryOutcome RetryCall(const RetryPolicy& policy, ExecutionBudget* budget,
                       const std::function<bool()>& op) {
  RetryOutcome outcome;
  const int max_attempts = std::max(1, policy.max_attempts);
  std::uint64_t jitter_state =
      policy.jitter_seed == 0 ? 0 : policy.jitter_seed;
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (!RecheckBudget(budget)) return outcome;
    ++outcome.attempts;
    if (op()) {
      outcome.ok = true;
      return outcome;
    }
    if (attempt + 1 == max_attempts) break;
    std::chrono::microseconds wait = std::min(backoff, policy.max_backoff);
    if (jitter_state != 0 && wait.count() > 0) {
      // Scale into [50%, 100%]: full decorrelation without ever waiting
      // longer than the nominal backoff.
      const std::uint64_t draw = NextJitter(&jitter_state) % 512;
      wait = std::chrono::microseconds(
          wait.count() / 2 + (wait.count() / 2) * draw / 511);
    }
    if (wait.count() > 0) {
      if (!RecheckBudget(budget)) return outcome;
      std::this_thread::sleep_for(wait);
    }
    const double multiplier = std::max(1.0, policy.backoff_multiplier);
    backoff = std::chrono::microseconds(static_cast<std::int64_t>(
        static_cast<double>(backoff.count()) * multiplier));
    if (backoff > policy.max_backoff) backoff = policy.max_backoff;
  }
  return outcome;
}

}  // namespace featsep
