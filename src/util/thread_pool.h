#ifndef FEATSEP_UTIL_THREAD_POOL_H_
#define FEATSEP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace featsep {

/// A persistent pool of worker threads executing index-range batches: the
/// serve-layer alternative to util/parallel.h's spawn-per-call helpers.
/// Construction starts the workers once; every `ParallelFor` call then
/// reuses them, so steady-state batch dispatch costs two condition-variable
/// signals instead of thread creation and teardown.
///
/// `num_threads` follows the repo-wide knob convention: 0 = hardware
/// concurrency, 1 = serial (no workers; batches run entirely in the calling
/// thread). The calling thread always participates in its own batch, so a
/// pool at concurrency k owns k-1 worker threads.
///
/// Batches are serialized: concurrent `ParallelFor` calls queue behind one
/// another on an internal mutex. Work items of one batch run concurrently
/// and must be thread-safe for distinct indices. Calling `ParallelFor` from
/// inside a work item deadlocks — fan out at one level only.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread); at least 1.
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Calls `fn(i)` exactly once for every i in [0, n), fanned out over the
  /// pool. Items are claimed from an atomic counter (roughly increasing
  /// order, arbitrary threads); write ordered results into a pre-sized
  /// vector at index i. Blocks until every item finished.
  ///
  /// An exception thrown by `fn` does not terminate the process: the first
  /// one is captured, the batch's remaining unclaimed items are skipped, and
  /// the exception is rethrown in the calling thread once the batch drains.
  /// The pool itself stays usable for later batches.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  /// One dispatched batch. Heap-allocated and shared with the workers so a
  /// late-waking worker can never touch a dead batch.
  struct Batch {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};
    // First exception thrown by an item; siblings stop running items once
    // `abort` is set but still count claimed items as finished so the
    // dispatcher's wait always completes.
    std::atomic<bool> abort{false};
    std::mutex error_mutex;
    std::exception_ptr error;
    std::mutex done_mutex;
    std::condition_variable done;
  };

  void WorkerLoop();
  static void Help(Batch& batch);

  std::vector<std::thread> workers_;

  // Dispatch state: generation_ bumps once per batch; workers wake on the
  // change and pick up current_.
  std::mutex mutex_;
  std::condition_variable wake_;
  std::shared_ptr<Batch> current_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  // Serializes ParallelFor callers.
  std::mutex batch_mutex_;
};

}  // namespace featsep

#endif  // FEATSEP_UTIL_THREAD_POOL_H_
