#ifndef FEATSEP_UTIL_RETRY_H_
#define FEATSEP_UTIL_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "util/budget.h"

namespace featsep {

/// Bounded-retry policy for transient I/O faults: up to max_attempts tries,
/// exponential backoff between them, deterministic seeded jitter so
/// colliding retriers decorrelate without nondeterminism in tests. Defaults
/// are "try once, no waiting" — retrying is always an explicit choice.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying, 0 is treated as 1.
  int max_attempts = 1;
  /// Backoff before the first retry; each further retry multiplies it.
  std::chrono::microseconds initial_backoff{0};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds max_backoff{5000};
  /// Seed for the jitter stream (each backoff is scaled into
  /// [50%, 100%] of its nominal value). 0 disables jitter.
  std::uint64_t jitter_seed = 0;
};

struct RetryOutcome {
  bool ok = false;
  /// Attempts actually made (>= 1 unless the budget was already exhausted).
  std::uint32_t attempts = 0;
  /// Retries beyond the first attempt — what the per-site counters report.
  std::uint32_t retries() const { return attempts > 1 ? attempts - 1 : 0; }
  bool gave_up() const { return !ok; }
};

/// Runs `op` until it returns true or the policy is exhausted, sleeping the
/// backoff between attempts. Budget-aware so deadlines still win: the budget
/// (nullable) is rechecked before every attempt and before every sleep, and
/// an interrupted budget stops the retry loop immediately — a retrying
/// store must never hold a request past its deadline.
RetryOutcome RetryCall(const RetryPolicy& policy, ExecutionBudget* budget,
                       const std::function<bool()>& op);

}  // namespace featsep

#endif  // FEATSEP_UTIL_RETRY_H_
