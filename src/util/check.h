#ifndef FEATSEP_UTIL_CHECK_H_
#define FEATSEP_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace featsep {
namespace internal_check {

/// Formats the failure message and aborts. Never returns.
[[noreturn]] void CheckFailure(const char* file, int line, const char* expr,
                               const std::string& message);

/// Stream-collecting helper so that `CHECK(x) << "context"` works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailure(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace featsep

/// CHECK(condition): aborts with a diagnostic if `condition` is false.
/// Used for programmer errors and internal invariants (the library does not
/// use exceptions). Additional context may be streamed:
///   CHECK(i < n) << "index " << i << " out of range";
#define FEATSEP_CHECK(condition)                                        \
  while (!(condition))                                                  \
  ::featsep::internal_check::CheckMessageBuilder(__FILE__, __LINE__,    \
                                                 #condition)

#define FEATSEP_CHECK_EQ(a, b) FEATSEP_CHECK((a) == (b))
#define FEATSEP_CHECK_NE(a, b) FEATSEP_CHECK((a) != (b))
#define FEATSEP_CHECK_LT(a, b) FEATSEP_CHECK((a) < (b))
#define FEATSEP_CHECK_LE(a, b) FEATSEP_CHECK((a) <= (b))
#define FEATSEP_CHECK_GT(a, b) FEATSEP_CHECK((a) > (b))
#define FEATSEP_CHECK_GE(a, b) FEATSEP_CHECK((a) >= (b))

#endif  // FEATSEP_UTIL_CHECK_H_
