#include "util/thread_pool.h"

namespace featsep {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Help(Batch& batch) {
  for (;;) {
    std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    if (!batch.abort.load(std::memory_order_acquire)) {
      try {
        (*batch.fn)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(batch.error_mutex);
          if (!batch.error) batch.error = std::current_exception();
        }
        batch.abort.store(true, std::memory_order_release);
      }
    }
    // Claimed items count as finished even when skipped after an abort;
    // the dispatcher's wait is on the claimed-and-finished total.
    if (batch.finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.n) {
      // Last item: wake the dispatching thread. Taking the lock orders the
      // notification after the dispatcher's predicate check.
      std::lock_guard<std::mutex> lock(batch.done_mutex);
      batch.done.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      batch = current_;
    }
    if (batch != nullptr) Help(*batch);
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> serialize(batch_mutex_);
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = batch;
    ++generation_;
  }
  wake_.notify_all();
  Help(*batch);
  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->done.wait(lock, [&] {
      return batch->finished.load(std::memory_order_acquire) == batch->n;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace featsep
