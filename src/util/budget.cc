#include "util/budget.h"

namespace featsep {

const char* BudgetOutcomeName(BudgetOutcome outcome) {
  switch (outcome) {
    case BudgetOutcome::kCompleted:
      return "completed";
    case BudgetOutcome::kTimedOut:
      return "timed-out";
    case BudgetOutcome::kCancelled:
      return "cancelled";
    case BudgetOutcome::kBudgetExhausted:
      return "budget-exhausted";
  }
  return "unknown";
}

}  // namespace featsep
