#ifndef FEATSEP_UTIL_RESULT_H_
#define FEATSEP_UTIL_RESULT_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace featsep {

/// A lightweight error descriptor for fallible operations (parsing,
/// validation of user input, ...). Internal invariant violations use
/// FEATSEP_CHECK instead; the library does not throw exceptions.
class Error {
 public:
  explicit Error(std::string message) : message_(std::move(message)) {}

  const std::string& message() const { return message_; }

 private:
  std::string message_;
};

/// Result<T> holds either a value of type T or an Error, in the spirit of
/// absl::StatusOr / std::expected. Access to the value of an error-holding
/// Result is a checked programmer error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  ///   Result<int> Parse(...) { if (bad) return Error("..."); return 42; }
  Result(T value) : data_(std::move(value)) {}          // NOLINT
  Result(Error error) : data_(std::move(error)) {}      // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    FEATSEP_CHECK(ok()) << "Result::value() on error: " << error().message();
    return std::get<T>(data_);
  }
  T& value() & {
    FEATSEP_CHECK(ok()) << "Result::value() on error: " << error().message();
    return std::get<T>(data_);
  }
  T&& value() && {
    FEATSEP_CHECK(ok()) << "Result::value() on error: " << error().message();
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    FEATSEP_CHECK(!ok()) << "Result::error() on ok result";
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace featsep

#endif  // FEATSEP_UTIL_RESULT_H_
