#ifndef FEATSEP_UTIL_SVO_BITSET_H_
#define FEATSEP_UTIL_SVO_BITSET_H_

#include <cstdint>
#include <cstring>

#include "util/check.h"

namespace featsep {

namespace svo_internal {

/// Word-level kernels shared by the SvoBitset operations. Each is a single
/// pass, manually unrolled four words wide with independent accumulators so
/// the compiler can keep the popcount reductions in separate registers and,
/// under -march=native (FEATSEP_NATIVE), vectorize the AND/OR/AND-NOT loops.
/// The hot callers (the homomorphism kernel's forward checking) spend most
/// of their time here, so these never branch per word beyond the loop test.

inline std::size_t PopcountWords(const std::uint64_t* a, std::size_t n) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(__builtin_popcountll(a[i]));
    c1 += static_cast<std::size_t>(__builtin_popcountll(a[i + 1]));
    c2 += static_cast<std::size_t>(__builtin_popcountll(a[i + 2]));
    c3 += static_cast<std::size_t>(__builtin_popcountll(a[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return c0 + c1 + c2 + c3;
}

/// popcount(a & b) without materializing the intersection.
inline std::size_t AndCountWords(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
    c1 += static_cast<std::size_t>(__builtin_popcountll(a[i + 1] & b[i + 1]));
    c2 += static_cast<std::size_t>(__builtin_popcountll(a[i + 2] & b[i + 2]));
    c3 += static_cast<std::size_t>(__builtin_popcountll(a[i + 3] & b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return c0 + c1 + c2 + c3;
}

inline void AndWords(std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] &= b[i];
    a[i + 1] &= b[i + 1];
    a[i + 2] &= b[i + 2];
    a[i + 3] &= b[i + 3];
  }
  for (; i < n; ++i) a[i] &= b[i];
}

/// a &= b fused with popcount of the result.
inline std::size_t AndWordsCount(std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] &= b[i];
    a[i + 1] &= b[i + 1];
    a[i + 2] &= b[i + 2];
    a[i + 3] &= b[i + 3];
    c0 += static_cast<std::size_t>(__builtin_popcountll(a[i]));
    c1 += static_cast<std::size_t>(__builtin_popcountll(a[i + 1]));
    c2 += static_cast<std::size_t>(__builtin_popcountll(a[i + 2]));
    c3 += static_cast<std::size_t>(__builtin_popcountll(a[i + 3]));
  }
  for (; i < n; ++i) {
    a[i] &= b[i];
    c0 += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return c0 + c1 + c2 + c3;
}

inline void AndNotWords(std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] &= ~b[i];
    a[i + 1] &= ~b[i + 1];
    a[i + 2] &= ~b[i + 2];
    a[i + 3] &= ~b[i + 3];
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

inline void OrWords(std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] |= b[i];
    a[i + 1] |= b[i + 1];
    a[i + 2] |= b[i + 2];
    a[i + 3] |= b[i + 3];
  }
  for (; i < n; ++i) a[i] |= b[i];
}

inline bool IntersectsWords(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // One branch per four words: OR the pairwise ANDs before testing.
    std::uint64_t any = (a[i] & b[i]) | (a[i + 1] & b[i + 1]) |
                        (a[i + 2] & b[i + 2]) | (a[i + 3] & b[i + 3]);
    if (any != 0) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

inline bool AnyWords(const std::uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if ((a[i] | a[i + 1] | a[i + 2] | a[i + 3]) != 0) return true;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}

}  // namespace svo_internal

/// A fixed-size dynamic bitset with small-vector optimization: bitsets of up
/// to kInlineBits bits live entirely inside the object (no allocation), and
/// only larger ones spill to the heap. The homomorphism engine stores one
/// bitset per CSP variable and snapshots them onto its backtracking trail, so
/// copies must be cheap and allocation-free for the common case of domains
/// with at most a few hundred values (cf. the Glasgow subgraph solver's
/// SVOBitset design).
///
/// The bit universe size is fixed at construction; all binary operations
/// require operands of equal size. Bits beyond `size()` are never set, so
/// `count()`/`find_first()` need no masking.
class SvoBitset {
 public:
  static constexpr std::size_t kBitsPerWord = 64;
  static constexpr std::size_t kInlineWords = 4;
  static constexpr std::size_t kInlineBits = kInlineWords * kBitsPerWord;
  /// Sentinel returned by find_first/find_next when no bit is set.
  static constexpr std::size_t kNoBit = static_cast<std::size_t>(-1);

  /// An empty bitset over a universe of zero bits.
  SvoBitset() = default;

  /// A bitset over `bits` bits, all initialized to `value`.
  explicit SvoBitset(std::size_t bits, bool value = false) : bits_(bits) {
    if (num_words() > kInlineWords) heap_ = new std::uint64_t[num_words()];
    if (value) {
      set_all();
    } else {
      std::memset(words(), 0, num_words() * sizeof(std::uint64_t));
    }
  }

  SvoBitset(const SvoBitset& other) : bits_(other.bits_) {
    if (other.heap_ != nullptr) heap_ = new std::uint64_t[num_words()];
    std::memcpy(words(), other.words(), num_words() * sizeof(std::uint64_t));
  }

  SvoBitset(SvoBitset&& other) noexcept : bits_(other.bits_) {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      other.heap_ = nullptr;
      other.bits_ = 0;
    } else {
      std::memcpy(inline_, other.inline_, sizeof(inline_));
    }
  }

  SvoBitset& operator=(const SvoBitset& other) {
    if (this == &other) return *this;
    if (num_words() != other.num_words() ||
        (heap_ != nullptr) != (other.heap_ != nullptr)) {
      delete[] heap_;
      heap_ = nullptr;
      bits_ = other.bits_;
      if (other.heap_ != nullptr) heap_ = new std::uint64_t[num_words()];
    } else {
      bits_ = other.bits_;
    }
    std::memcpy(words(), other.words(), num_words() * sizeof(std::uint64_t));
    return *this;
  }

  SvoBitset& operator=(SvoBitset&& other) noexcept {
    if (this == &other) return *this;
    delete[] heap_;
    heap_ = nullptr;
    bits_ = other.bits_;
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      other.heap_ = nullptr;
      other.bits_ = 0;
    } else {
      std::memcpy(inline_, other.inline_, sizeof(inline_));
    }
    return *this;
  }

  ~SvoBitset() { delete[] heap_; }

  /// Number of bits in the universe.
  std::size_t size() const { return bits_; }

  void set(std::size_t bit) {
    FEATSEP_CHECK_LT(bit, bits_);
    words()[bit / kBitsPerWord] |= std::uint64_t{1} << (bit % kBitsPerWord);
  }

  void reset(std::size_t bit) {
    FEATSEP_CHECK_LT(bit, bits_);
    words()[bit / kBitsPerWord] &= ~(std::uint64_t{1} << (bit % kBitsPerWord));
  }

  bool test(std::size_t bit) const {
    FEATSEP_CHECK_LT(bit, bits_);
    return (words()[bit / kBitsPerWord] >>
            (bit % kBitsPerWord)) & std::uint64_t{1};
  }

  /// Sets every bit of the universe.
  void set_all() {
    if (bits_ == 0) return;
    std::memset(words(), 0xff, num_words() * sizeof(std::uint64_t));
    std::size_t tail = bits_ % kBitsPerWord;
    if (tail != 0) {
      words()[num_words() - 1] = (std::uint64_t{1} << tail) - 1;
    }
  }

  void reset_all() {
    std::memset(words(), 0, num_words() * sizeof(std::uint64_t));
  }

  /// In-place intersection; `other` must have the same universe size.
  void intersect_with(const SvoBitset& other) {
    FEATSEP_CHECK_EQ(bits_, other.bits_);
    svo_internal::AndWords(words(), other.words(), num_words());
  }

  /// Fused in-place intersection + popcount of the result: one pass instead
  /// of an intersect_with followed by count().
  std::size_t intersect_with_count(const SvoBitset& other) {
    FEATSEP_CHECK_EQ(bits_, other.bits_);
    return svo_internal::AndWordsCount(words(), other.words(), num_words());
  }

  /// In-place union; `other` must have the same universe size.
  void union_with(const SvoBitset& other) {
    FEATSEP_CHECK_EQ(bits_, other.bits_);
    svo_internal::OrWords(words(), other.words(), num_words());
  }

  /// In-place difference (this &= ~other); same universe size required.
  void and_not_with(const SvoBitset& other) {
    FEATSEP_CHECK_EQ(bits_, other.bits_);
    svo_internal::AndNotWords(words(), other.words(), num_words());
  }

  /// popcount(this & other) without writing or materializing a temporary —
  /// the forward-checking "would this mask shrink the domain?" probe.
  std::size_t and_count(const SvoBitset& other) const {
    FEATSEP_CHECK_EQ(bits_, other.bits_);
    return svo_internal::AndCountWords(words(), other.words(), num_words());
  }

  /// True if the intersection with `other` is nonempty (no temporary).
  bool intersects(const SvoBitset& other) const {
    FEATSEP_CHECK_EQ(bits_, other.bits_);
    return svo_internal::IntersectsWords(words(), other.words(), num_words());
  }

  bool empty() const {
    return !svo_internal::AnyWords(words(), num_words());
  }

  /// Number of set bits.
  std::size_t count() const {
    return svo_internal::PopcountWords(words(), num_words());
  }

  /// Index of the lowest set bit, or kNoBit if none.
  std::size_t find_first() const {
    const std::uint64_t* w = words();
    for (std::size_t i = 0; i < num_words(); ++i) {
      if (w[i] != 0) {
        return i * kBitsPerWord +
               static_cast<std::size_t>(__builtin_ctzll(w[i]));
      }
    }
    return kNoBit;
  }

  /// Index of the lowest set bit at position >= `from`, or kNoBit if none.
  std::size_t find_next(std::size_t from) const {
    if (from >= bits_) return kNoBit;
    const std::uint64_t* w = words();
    std::size_t word = from / kBitsPerWord;
    std::uint64_t masked = w[word] & (~std::uint64_t{0} << (from % kBitsPerWord));
    if (masked != 0) {
      return word * kBitsPerWord +
             static_cast<std::size_t>(__builtin_ctzll(masked));
    }
    for (std::size_t i = word + 1; i < num_words(); ++i) {
      if (w[i] != 0) {
        return i * kBitsPerWord +
               static_cast<std::size_t>(__builtin_ctzll(w[i]));
      }
    }
    return kNoBit;
  }

  /// Calls `fn(bit)` for every set bit in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::uint64_t* w = words();
    for (std::size_t i = 0; i < num_words(); ++i) {
      std::uint64_t word = w[i];
      while (word != 0) {
        std::size_t bit = static_cast<std::size_t>(__builtin_ctzll(word));
        fn(i * kBitsPerWord + bit);
        word &= word - 1;
      }
    }
  }

  friend bool operator==(const SvoBitset& a, const SvoBitset& b) {
    if (a.bits_ != b.bits_) return false;
    return std::memcmp(a.words(), b.words(),
                       a.num_words() * sizeof(std::uint64_t)) == 0;
  }
  friend bool operator!=(const SvoBitset& a, const SvoBitset& b) {
    return !(a == b);
  }

 private:
  std::size_t num_words() const {
    return (bits_ + kBitsPerWord - 1) / kBitsPerWord;
  }

  std::uint64_t* words() { return heap_ != nullptr ? heap_ : inline_; }
  const std::uint64_t* words() const {
    return heap_ != nullptr ? heap_ : inline_;
  }

  std::size_t bits_ = 0;
  std::uint64_t inline_[kInlineWords] = {0, 0, 0, 0};
  std::uint64_t* heap_ = nullptr;
};

}  // namespace featsep

#endif  // FEATSEP_UTIL_SVO_BITSET_H_
