#ifndef FEATSEP_UTIL_STRINGS_H_
#define FEATSEP_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace featsep {

/// Splits `text` on `separator`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins the elements of `pieces` with `separator` between them.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace featsep

#endif  // FEATSEP_UTIL_STRINGS_H_
