#ifndef FEATSEP_UTIL_FS_ENV_H_
#define FEATSEP_UTIL_FS_ENV_H_

#include <array>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace featsep {

/// Outcome of one filesystem operation. The three-way split matters: a
/// kNotFound is a *miss* (the path simply is not there — losing a claim
/// race, a cold cache), while kError is a *fault* (EIO, ENOSPC, permission,
/// injected) that may be transient and is what retry policies and the disk
/// circuit breaker key on. Collapsing the two is exactly the bug class this
/// interface exists to eliminate.
enum class FsStatus : std::uint8_t {
  kOk = 0,
  kNotFound,
  kError,
};

inline const char* FsStatusName(FsStatus status) {
  switch (status) {
    case FsStatus::kOk: return "ok";
    case FsStatus::kNotFound: return "not-found";
    case FsStatus::kError: return "error";
  }
  return "?";
}

/// One entry of a directory listing, with the metadata the durable tier's
/// scans need (GC by size/age, lease staleness by mtime).
struct FsDirEntry {
  std::string name;  ///< Filename only, no directory part.
  std::uint64_t size = 0;
  bool is_dir = false;
  std::filesystem::file_time_type mtime{};
};

struct FsListResult {
  std::vector<FsDirEntry> entries;
  /// Entries the scan could not stat or iterate past. Nonzero means
  /// `entries` is incomplete — callers deciding "what is garbage" or "is
  /// everything present" must not treat a partial scan as the whole truth.
  std::uint64_t scan_errors = 0;
  /// kError when the directory itself could not be opened (entries empty).
  FsStatus status = FsStatus::kOk;
};

/// The operation kinds a fault-injecting environment can target.
enum class FsOp : std::uint8_t {
  kRead = 0,
  kWrite,
  kRename,
  kRemove,
  kCreateDirs,
  kList,
  kTouch,
  kStat,  ///< Mtime() and Exists().
};
inline constexpr std::size_t kNumFsOps = 8;

/// Narrow, injectable filesystem interface for the durable tier. Every
/// read/publish/claim/lease/GC path in disk_cache, shard_protocol and the
/// serve layer goes through one of these instead of raw <filesystem>, so a
/// deterministic fault-injecting backend (FaultFsEnv) can exercise every
/// error branch the real kernel would only produce under ENOSPC, EIO, or a
/// kill at the worst possible instant. Implementations are thread-safe.
class FsEnv {
 public:
  virtual ~FsEnv() = default;

  /// Reads the whole file into *out. kNotFound when absent.
  virtual FsStatus ReadFile(const std::string& path, std::string* out) = 0;
  /// Creates/truncates and writes `bytes`. Not atomic — use Publish for
  /// anything another process may read concurrently.
  virtual FsStatus WriteFile(const std::string& path,
                             std::string_view bytes) = 0;
  /// Atomic rename. kNotFound when `from` does not exist (a lost claim
  /// race, not a fault).
  virtual FsStatus Rename(const std::string& from, const std::string& to) = 0;
  /// kNotFound when the path was already absent.
  virtual FsStatus Remove(const std::string& path) = 0;
  virtual FsStatus CreateDirs(const std::string& path) = 0;
  virtual FsListResult ListDir(const std::string& path) = 0;
  /// Sets mtime to now (lease renewal).
  virtual FsStatus Touch(const std::string& path) = 0;
  virtual std::optional<std::filesystem::file_time_type> Mtime(
      const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;

  /// The atomic publish idiom: write `bytes` to `tmp_path`, rename onto
  /// `final_path`, best-effort remove of the tmp on failure. Readers never
  /// observe a partial file under `final_path`; a crash (or injected fault)
  /// between the write and the rename leaves only an orphaned tmp, which
  /// startup GC collects.
  FsStatus Publish(const std::string& tmp_path, const std::string& final_path,
                   std::string_view bytes);
};

/// The real filesystem. Stateless; safe to share across threads.
class RealFsEnv : public FsEnv {
 public:
  FsStatus ReadFile(const std::string& path, std::string* out) override;
  FsStatus WriteFile(const std::string& path, std::string_view bytes) override;
  FsStatus Rename(const std::string& from, const std::string& to) override;
  FsStatus Remove(const std::string& path) override;
  FsStatus CreateDirs(const std::string& path) override;
  FsListResult ListDir(const std::string& path) override;
  FsStatus Touch(const std::string& path) override;
  std::optional<std::filesystem::file_time_type> Mtime(
      const std::string& path) override;
  bool Exists(const std::string& path) override;
};

/// Process-wide shared RealFsEnv — the default backend wherever no
/// environment is injected.
FsEnv* RealFs();

struct FaultFsOptions {
  std::uint64_t seed = 1;
  /// Per-operation probability of an injected kError, drawn from a
  /// deterministic stream keyed by (seed, op ordinal).
  double fail_chance = 0.0;
  /// When a WriteFile fails by injection, probability that a *prefix* of the
  /// bytes is left behind — the torn file a crash or ENOSPC mid-write leaves
  /// on a real disk. (The prefix length is drawn from the same stream.)
  double torn_write_chance = 0.0;
  /// When a ListDir fails by injection, probability the failure is a
  /// *partial* scan (a prefix of the entries plus nonzero scan_errors)
  /// rather than a failure to open the directory.
  double partial_list_chance = 0.5;
  /// After this many operations the environment "crashes": every subsequent
  /// op fails, simulating process death at an arbitrary I/O point. 0 = never.
  /// Recovery is a fresh environment (or Recover()) over the same directory.
  std::uint64_t crash_after_ops = 0;
};

struct FaultFsStats {
  std::array<std::uint64_t, kNumFsOps> attempts{};
  std::array<std::uint64_t, kNumFsOps> injected{};
  std::uint64_t total_attempts = 0;
  std::uint64_t total_injected = 0;
};

/// Deterministic fault-injecting decorator over a base environment. Three
/// composable fault sources:
///   - the seeded per-op schedule (FaultFsOptions::fail_chance);
///   - scripted one-shots: FailNext(op, n) forces the next n operations of
///     that kind to fail regardless of the schedule;
///   - the crash point (crash_after_ops / CrashNow()): once crashed, every
///     operation fails until Recover().
/// Failed reads/renames/removes/touches do nothing and report kError; failed
/// writes either leave the target untouched or leave a torn prefix; failed
/// lists either fail to open or return a truncated scan with scan_errors.
/// All decisions come from one seeded stream, so a given (seed, op sequence)
/// replays bit-identically. Thread-safe, though deterministic replay
/// additionally requires a single-threaded op sequence.
class FaultFsEnv : public FsEnv {
 public:
  explicit FaultFsEnv(FaultFsOptions options, FsEnv* base = RealFs());

  /// Force the next `count` operations of kind `op` to fail.
  void FailNext(FsOp op, std::uint64_t count);
  /// Disarms the schedule and all scripted failures (crash state persists).
  void ClearFaults();
  void set_fail_chance(double chance);
  /// Crash immediately: all subsequent ops fail until Recover().
  void CrashNow();
  /// Clears the crashed state — "the process restarted".
  void Recover();
  bool crashed() const;
  FaultFsStats stats() const;

  FsStatus ReadFile(const std::string& path, std::string* out) override;
  FsStatus WriteFile(const std::string& path, std::string_view bytes) override;
  FsStatus Rename(const std::string& from, const std::string& to) override;
  FsStatus Remove(const std::string& path) override;
  FsStatus CreateDirs(const std::string& path) override;
  FsListResult ListDir(const std::string& path) override;
  FsStatus Touch(const std::string& path) override;
  std::optional<std::filesystem::file_time_type> Mtime(
      const std::string& path) override;
  bool Exists(const std::string& path) override;

 private:
  /// Draws the next value of the decision stream (locked by the caller).
  std::uint64_t NextDraw();
  /// Records an attempt of `op` and decides whether it fails.
  bool Inject(FsOp op);

  FsEnv* const base_;
  mutable std::mutex mutex_;
  FaultFsOptions options_;
  std::uint64_t rng_state_;
  std::array<std::uint64_t, kNumFsOps> scripted_{};
  bool crashed_ = false;
  FaultFsStats stats_;
};

}  // namespace featsep

#endif  // FEATSEP_UTIL_FS_ENV_H_
