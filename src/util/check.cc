#include "util/check.h"

namespace featsep {
namespace internal_check {

void CheckFailure(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::fprintf(stderr, "[featsep] CHECK failed at %s:%d: %s", file, line,
               expr);
  if (!message.empty()) {
    std::fprintf(stderr, " — %s", message.c_str());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace featsep
