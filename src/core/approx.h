#ifndef FEATSEP_CORE_APPROX_H_
#define FEATSEP_CORE_APPROX_H_

#include <cstddef>
#include <memory>
#include <optional>

#include "core/statistic.h"
#include "relational/training_database.h"

namespace featsep {

/// Result of approximate CQ[m]-separability (paper, Section 7.2).
struct CqmApxSepResult {
  bool separable_with_error = false;
  /// Fewest training errors achievable by any CQ[m]-statistic + linear
  /// classifier (the optimization target behind L-ApxSep).
  std::size_t min_errors = 0;
  /// A model achieving min_errors.
  std::optional<SeparatorModel> model;
};

/// Decides CQ[m]-ApxSep: is (D, λ) CQ[m]-separable with error ε, i.e., is
/// there a statistic over CQ[m] and a linear classifier misclassifying at
/// most ε·|η(D)| examples? Constructive (returns a best model), combining
/// the Prop 4.1 feature enumeration with the exact min-error search —
/// NP-complete in general (Prop 7.2(2), via [17]), FPT in the schema size
/// (Prop 7.2(1)).
CqmApxSepResult DecideCqmApxSep(const TrainingDatabase& training,
                                std::size_t m, double epsilon,
                                std::size_t max_variable_occurrences = 0);

/// The Proposition 7.1 reduction from exact to approximate separability:
/// given (D, λ) and a fixed ε ∈ [0, 1/2), produces (D', λ') over the schema
/// extended with one fresh unary "anchor" marker such that
///   (D, λ) is L-separable  ⟺  (D', λ') is L-separable with error ε.
/// Construction: K fresh anchor entities (K even), all structurally
/// identical — half positive, half negative — forcing exactly K/2
/// unavoidable errors; K is chosen so the ε-budget admits K/2 but not
/// K/2 + 1 errors. Works for every class L of CQs (the anchors are
/// indistinguishable from each other by any CQ).
std::shared_ptr<TrainingDatabase> ReduceSepToApxSep(
    const TrainingDatabase& training, double epsilon);

}  // namespace featsep

#endif  // FEATSEP_CORE_APPROX_H_
